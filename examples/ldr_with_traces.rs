//! LDR end-to-end with measured traffic: Algorithm-1 prediction, the
//! Figure-14 multiplexing loop, and per-aggregate headroom — including a
//! fault-injection run with violently bursty traffic to show the tweak
//! loop engaging.
//!
//! Run: `cargo run --release --example ldr_with_traces`

use lowlat::prelude::*;

fn main() {
    let topo = named::abilene();
    let tm =
        GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);

    for (label, cv) in [("smooth traffic (cv 0.1)", 0.1), ("bursty traffic (cv 0.8)", 0.8)] {
        // One measured trace per aggregate, means matching the matrix.
        let traces: Vec<AggregateTrace> = tm
            .aggregates()
            .iter()
            .enumerate()
            .map(|(i, a)| {
                synthesize(&TraceGenConfig {
                    mean_mbps: a.volume_mbps,
                    cv,
                    minutes: 15,
                    seed: 7_000 + i as u64,
                    ..Default::default()
                })
            })
            .collect();

        let out = Ldr::default().place_with_traces(&topo, &tm, &traces).expect("LDR failed");
        let ev = PlacementEval::evaluate(&topo, &tm, &out.placement);
        let inflated =
            out.ba.iter().zip(tm.aggregates()).filter(|(b, a)| **b > a.volume_mbps * 1.15).count();
        println!("{label}:");
        println!("  outer iterations : {}", out.iterations);
        println!("  multiplexing ok  : {}", out.multiplexing_ok);
        println!("  aggregates inflated beyond the 10% hedge: {inflated}/{}", tm.len());
        println!("  latency stretch  : {:.4}", ev.latency_stretch());
        println!("  max utilization  : {:.3}\n", ev.max_utilization());
    }
    println!("Smooth traffic passes the Figure-14 tests immediately; bursty");
    println!("traffic drives the convolution test to add headroom exactly where");
    println!("aggregates fail to multiplex.");
}
