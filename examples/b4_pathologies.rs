//! Reproduce the paper's §3 B4 pathologies on the GTS-like grid: greedy
//! progressive filling congests a network that optimal routing fits, and
//! headroom (§6) partially rescues it.
//!
//! Run: `cargo run --release --example b4_pathologies`

use lowlat::prelude::*;

fn main() {
    let topo = named::gts_like();
    let gen = GravityTmGen::new(TmGenConfig::default());

    println!("B4 vs optimum on {} across 5 traffic matrices, load 0.7:\n", topo.name());
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12}",
        "tm", "B4 congested", "B4 stretch", "opt congested", "opt stretch"
    );
    let mut b4_congested_any = false;
    for i in 0..5 {
        let tm = gen.generate(&topo, i).scaled_to_load(&topo, 0.7);
        let b4 = B4Routing::default().place_on(&topo, &tm).unwrap();
        let opt = LatencyOptimal::default().place_on(&topo, &tm).unwrap();
        let ev_b4 = PlacementEval::evaluate(&topo, &tm, &b4);
        let ev_opt = PlacementEval::evaluate(&topo, &tm, &opt);
        b4_congested_any |= ev_b4.congested_pair_fraction() > 0.0;
        println!(
            "{:>3} {:>11.1}% {:>12.4} {:>11.1}% {:>12.4}",
            i,
            ev_b4.congested_pair_fraction() * 100.0,
            ev_b4.latency_stretch(),
            ev_opt.congested_pair_fraction() * 100.0,
            ev_opt.latency_stretch()
        );
    }
    println!("\nWith 10% reserved headroom (§6), B4's stragglers can still be placed:");
    println!("{:>3} {:>12} {:>12}", "tm", "congested", "stretch");
    for i in 0..5 {
        let tm = gen.generate(&topo, i).scaled_to_load(&topo, 0.7);
        let b4h = B4Routing::new(B4Config { headroom: 0.1, ..Default::default() })
            .place_on(&topo, &tm)
            .unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &b4h);
        println!(
            "{:>3} {:>11.1}% {:>12.4}",
            i,
            ev.congested_pair_fraction() * 100.0,
            ev.latency_stretch()
        );
    }
    if b4_congested_any {
        println!("\nGreedy filling hit the Figure-5 local minima above; the optimal");
        println!("placement fit the identical traffic without congestion.");
    } else {
        println!("\nNo congestion on these matrices; raise the load to see Figure 5.");
    }
}
