//! Survey the synthetic Topology-Zoo corpus: LLPD by structural class —
//! the §2 analysis that motivates the whole paper.
//!
//! Run: `cargo run --release --example llpd_survey`

use std::collections::BTreeMap;

use lowlat::prelude::*;

fn main() {
    let zoo = synthetic_zoo();
    println!("computing LLPD for {} networks...", zoo.len());
    let llpds = lowlat::sim::runner::llpd_map(&zoo, &LlpdConfig::default());

    let mut by_class: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (topo, llpd) in zoo.iter().zip(&llpds) {
        by_class.entry(format!("{:?}", ZooClass::of(topo))).or_default().push(*llpd);
    }
    println!("\n{:<14} {:>6} {:>8} {:>8} {:>8}", "class", "nets", "min", "median", "max");
    for (class, mut vals) in by_class {
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{:<14} {:>6} {:>8.3} {:>8.3} {:>8.3}",
            class,
            vals.len(),
            vals[0],
            vals[vals.len() / 2],
            vals[vals.len() - 1]
        );
    }

    // The paper's headline examples.
    println!("\nnamed networks:");
    for (topo, llpd) in zoo.iter().zip(&llpds) {
        if ZooClass::of(topo) == ZooClass::Named {
            println!("  {:<16} LLPD = {:.3}", topo.name(), llpd);
        }
    }
    println!("\nTrees score ~0 (no alternates), rings low (wrong-way-around is");
    println!("expensive), grids/meshes high, and the Google-like WAN highest —");
    println!("the Figure 1/19 landscape.");
}
