//! §8 / Figure 20: plan topology growth with LLPD and check which routing
//! schemes can actually harvest the new links.
//!
//! Run: `cargo run --release --example growth_planner`

use lowlat::prelude::*;

fn main() {
    let topo = named::abilene();
    println!("growing {}: {} cables, LLPD-guided, +15% links\n", topo.name(), topo.cables().len());
    let plan = grow_by_llpd(&topo, &GrowthPlanConfig { link_increase: 0.15, ..Default::default() });
    println!("initial LLPD: {:.3}", plan.initial_llpd);
    for ((a, b), llpd) in &plan.added {
        println!(
            "  + cable {} <-> {}  (LLPD -> {:.3})",
            plan.topology.pop_name(*a),
            plan.topology.pop_name(*b),
            llpd
        );
    }

    // Does routing benefit? Before/after latency stretch per scheme.
    let gen = GravityTmGen::new(TmGenConfig::default());
    println!("\n{:<10} {:>10} {:>10}", "scheme", "before", "after");
    for (name, scheme) in [
        ("LDR", Box::new(Ldr::default()) as Box<dyn RoutingScheme>),
        ("B4", Box::new(B4Routing::default())),
        ("MinMax", Box::new(MinMaxRouting::unrestricted())),
        ("MinMaxK10", Box::new(MinMaxRouting::with_k(10))),
    ] {
        let stretch = |t: &Topology| -> f64 {
            let tm = gen.generate(t, 0).scaled_to_load(t, 0.7);
            let placement = scheme.place_on(t, &tm).expect("scheme failed");
            PlacementEval::evaluate(t, &tm, &placement).latency_stretch()
        };
        println!("{:<10} {:>10.4} {:>10.4}", name, stretch(&topo), stretch(&plan.topology));
    }
    println!("\nOnly schemes that exploit path diversity convert added links into");
    println!("lower stretch; MinMax can even get worse (it load-balances wider).");
}
