//! Quickstart: measure a topology's low-latency potential (LLPD), then
//! route a realistic traffic matrix with every scheme the paper compares
//! and print the scoreboard.
//!
//! Run: `cargo run --release --example quickstart`

use lowlat::prelude::*;

fn main() {
    // The paper's running example: a GTS-like central-European grid —
    // high path diversity, hard for greedy routing.
    let topo = named::gts_like();
    println!(
        "network: {} ({} PoPs, {} cables, diameter {:.1} ms)",
        topo.name(),
        topo.pop_count(),
        topo.cables().len(),
        topo.diameter_ms()
    );

    // 1. How much low-latency path diversity does it have?
    let analysis = LlpdAnalysis::compute(&topo, &LlpdConfig::default());
    println!("LLPD = {:.3} (fraction of PoP pairs with APA >= 0.7)", analysis.llpd());

    // 2. A gravity traffic matrix at the paper's standard operating point:
    //    min-cut load 0.7 (traffic could grow 30% before becoming unroutable).
    let tm =
        GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);
    println!(
        "traffic: {} aggregates, {:.1} Gb/s total\n",
        tm.len(),
        tm.total_volume_mbps() / 1000.0
    );

    // 3. Route it five ways.
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>9}",
        "scheme", "congested", "stretch", "max-stretch", "max-util"
    );
    let schemes: Vec<(&str, Box<dyn RoutingScheme>)> = vec![
        ("SP", Box::new(ShortestPathRouting)),
        ("B4", Box::new(B4Routing::default())),
        ("MinMax", Box::new(MinMaxRouting::unrestricted())),
        ("MinMaxK10", Box::new(MinMaxRouting::with_k(10))),
        ("LDR", Box::new(Ldr::default())),
    ];
    for (name, scheme) in schemes {
        let placement = scheme.place_on(&topo, &tm).expect("scheme failed");
        let ev = PlacementEval::evaluate(&topo, &tm, &placement);
        println!(
            "{:<10} {:>9.1}% {:>10.4} {:>12.3} {:>9.3}",
            name,
            ev.congested_pair_fraction() * 100.0,
            ev.latency_stretch(),
            ev.max_flow_stretch(),
            ev.max_utilization()
        );
    }
    println!("\nThe paper's story in one table: SP/B4 congest the grid, MinMax");
    println!("avoids congestion by stretching paths, LDR gets both right.");
}
