//! The §4 "headroom dial": sweep reserved headroom from 0% (live on the
//! ragged edge) to the MinMax extreme and watch latency pay for safety.
//!
//! Run: `cargo run --release --example headroom_dial`

use lowlat::prelude::*;

fn main() {
    let topo = named::gts_like();
    let tm = GravityTmGen::new(TmGenConfig::default())
        .generate(&topo, 0)
        // Figure 8 uses the lighter operating point: min-cut load 0.6.
        .scaled_to_load(&topo, 0.6);

    println!("network: {}, min-cut load 0.6 (paper Figure 8 setup)\n", topo.name());
    println!("{:>9} {:>10} {:>12} {:>10}", "headroom", "stretch", "max-stretch", "max-util");
    for h in [0.0, 0.05, 0.11, 0.17, 0.23, 0.30, 0.40] {
        let placement =
            LatencyOptimal::with_headroom(h).place_on(&topo, &tm).expect("latency-optimal failed");
        let ev = PlacementEval::evaluate(&topo, &tm, &placement);
        println!(
            "{:>8.0}% {:>10.4} {:>12.3} {:>10.3}",
            h * 100.0,
            ev.latency_stretch(),
            ev.max_flow_stretch(),
            ev.max_utilization()
        );
    }

    // The other end of the dial: MinMax reserves as much as possible.
    let mm = MinMaxRouting::unrestricted().place_on(&topo, &tm).expect("minmax failed");
    let ev = PlacementEval::evaluate(&topo, &tm, &mm);
    println!(
        "{:>9} {:>10.4} {:>12.3} {:>10.3}",
        "MinMax",
        ev.latency_stretch(),
        ev.max_flow_stretch(),
        ev.max_utilization()
    );
    println!("\nModerate headroom is nearly free; only pushing toward the MinMax");
    println!("extreme really inflates delay — the paper's §4 conclusion.");
}
