//! The §5 controller cycle, end to end: every minute LDR re-measures,
//! re-predicts (Algorithm 1), re-checks multiplexing (Figure 14) and
//! re-places traffic; we then replay the *actual* 100 ms traffic over the
//! placement and report the queueing that materialized. A static
//! shortest-path baseline shows what the control loop buys.
//!
//! Run: `cargo run --release --example controller_timeline`

use lowlat::prelude::*;
use lowlat::sim::timeline::{simulate, Controller, TimelineConfig};

fn main() {
    let topo = named::abilene();
    let tm =
        GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);
    println!(
        "controller cycle on {}: {} aggregates, min-cut load 0.7, 8 decision minutes\n",
        topo.name(),
        tm.len()
    );

    for cv in [0.15, 0.5] {
        let cfg =
            TimelineConfig { minutes: 8, warmup_minutes: 4, cv, seed: 2026, ..Default::default() };
        let ldr = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        let bounded = simulate(
            &topo,
            &tm,
            &Controller::parse("bounded:LDR").expect("bounded:LDR parses"),
            &cfg,
        );
        let sp = simulate(&topo, &tm, &Controller::static_sp(), &cfg);
        println!("burstiness cv = {cv}:");
        println!(
            "  {:<22} {:>16} {:>18} {:>14} {:>12}",
            "controller", "worst queue (ms)", "minutes > 10 ms", "mean stretch", "path churn"
        );
        for (name, out) in [
            ("LDR (adaptive)", &ldr),
            ("LDR (bounded churn)", &bounded),
            ("static shortest path", &sp),
        ] {
            println!(
                "  {:<22} {:>16.2} {:>18} {:>14.4} {:>12}",
                name,
                out.worst_queue_ms(),
                out.minutes_with_queue_above(10.0),
                out.mean_stretch(),
                out.total_paths_changed()
            );
        }
        println!();
    }
    println!("LDR pays a little propagation stretch each minute to keep queueing");
    println!("inside the 10 ms allowance; the bounded variant buys nearly the same");
    println!("queueing for a fraction of the switch churn; static shortest paths");
    println!("queue heavily as soon as the traffic breathes.");
}
