//! # lowlat — low-latency-capable topologies and intra-domain routing
//!
//! Umbrella crate for a from-scratch Rust reproduction of
//! *"On low-latency-capable topologies, and their impact on the design of
//! intra-domain routing"* (Gvozdiev, Vissicchio, Karp, Handley — SIGCOMM 2018).
//!
//! The paper asks two questions and this workspace implements everything
//! needed to answer both:
//!
//! 1. **Which topologies are fundamentally capable of low-latency,
//!    congestion-free delivery?** Answered by the *Alternate Path
//!    Availability* (APA) and *Low-Latency Path Diversity* (LLPD) metrics in
//!    [`lowlat_core::llpd`].
//! 2. **Can a practical routing system unlock that capability?** Answered by
//!    *Low Delay Routing* (LDR) in [`lowlat_core::schemes::ldr`],
//!    compared against shortest-path, B4, MinMax and MinMax-K10 baselines.
//!
//! ## Quick start
//!
//! ```
//! use lowlat::prelude::*;
//!
//! // A GTS-like central-European grid: high LLPD, hard to route greedily.
//! let topo = named::gts_like();
//! let llpd = LlpdAnalysis::compute(&topo, &LlpdConfig::default()).llpd();
//! assert!(llpd > 0.4, "grids have high low-latency path diversity");
//!
//! // Generate a moderate-load traffic matrix and route it two ways.
//! let tm = GravityTmGen::new(TmGenConfig::default())
//!     .generate(&topo, 1)
//!     .scaled_to_load(&topo, 0.7);
//! let sp = ShortestPathRouting.place_on(&topo, &tm).unwrap();
//! let ldr = Ldr::default().place_on(&topo, &tm).unwrap();
//! let ev_sp = PlacementEval::evaluate(&topo, &tm, &sp);
//! let ev_ldr = PlacementEval::evaluate(&topo, &tm, &ldr);
//! assert!(ev_ldr.congested_pair_fraction() <= ev_sp.congested_pair_fraction());
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`netgraph`] | directed graph, Dijkstra, Yen k-shortest paths, Dinic max-flow |
//! | [`linprog`] | two-phase revised-simplex LP solver with variable bounds |
//! | [`topology`] | PoP-level topology model + synthetic Topology-Zoo substitute |
//! | [`tmgen`] | gravity-model traffic matrices with locality and load scaling |
//! | [`traffic`] | time-varying traffic, Algorithm-1 predictor, FFT multiplexing checks |
//! | [`core`] | APA/LLPD metrics, routing schemes (SP, B4, MinMax, MinMaxK, LatOpt, LDR) |
//! | [`sim`] | experiment harness and per-figure drivers |

#![forbid(unsafe_code)]

pub use lowlat_core as core;
pub use lowlat_linprog as linprog;
pub use lowlat_netgraph as netgraph;
pub use lowlat_sim as sim;
pub use lowlat_tmgen as tmgen;
pub use lowlat_topology as topology;
pub use lowlat_traffic as traffic;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use lowlat_core::classes::{place_with_classes, ClassConfig, TrafficClass};
    pub use lowlat_core::eval::PlacementEval;
    pub use lowlat_core::growth::{grow_by_llpd, GrowthPlanConfig};
    pub use lowlat_core::llpd::{LlpdAnalysis, LlpdConfig};
    pub use lowlat_core::scale::ScaleToLoad;
    pub use lowlat_core::schemes::b4::{B4Config, B4Routing};
    pub use lowlat_core::schemes::ecmp::EcmpRouting;
    pub use lowlat_core::schemes::latopt::{LatOptConfig, LatencyOptimal};
    pub use lowlat_core::schemes::ldr::{Ldr, LdrConfig};
    pub use lowlat_core::schemes::linkbased::LinkBasedOptimal;
    pub use lowlat_core::schemes::minmax::{MinMaxConfig, MinMaxRouting};
    pub use lowlat_core::schemes::mpls::{MplsAutoBandwidth, MplsConfig, SignalOrder};
    pub use lowlat_core::schemes::sp::ShortestPathRouting;
    pub use lowlat_core::schemes::RoutingScheme;
    pub use lowlat_tmgen::{Aggregate, GravityTmGen, TmGenConfig, TrafficMatrix};
    pub use lowlat_topology::format::{from_text, to_text};
    pub use lowlat_topology::zoo::{self, named, synthetic_zoo, ZooClass};
    pub use lowlat_topology::{GeoPoint, PopId, Topology, TopologyBuilder};
    pub use lowlat_traffic::{synthesize, AggregateTrace, Predictor, TraceGenConfig};
}
