# Workspace task runner. `just --list` shows everything.

# Tier-1 verification: what CI runs and every PR must keep green.
verify:
    cargo fmt --check
    cargo build --release
    cargo clippy --all-targets -- -D warnings
    cargo test -q
    cargo bench --no-run

# Full benchmark sweep (criterion stand-in: wall-clock medians on stdout).
bench:
    cargo bench

# Reproduce the paper's figures into figures/*.tsv (ASCII sketches go to
# stderr). Pass scale="--quick" for a CI-sized run, "--full" for the paper's.
figures scale="--std":
    mkdir -p figures
    for fig in fig01_apa_cdf fig03_sp_congestion fig04_active_schemes \
               fig07_util_cdf fig08_headroom fig09_prediction \
               fig10_sigma_scatter fig15_runtime fig16_max_stretch \
               fig17_load_sweep fig18_locality_sweep fig19_google \
               fig20_growth; do \
        cargo run --release -p lowlat_sim --bin $fig -- {{scale}} \
            > figures/$fig.tsv || exit 1; \
    done
