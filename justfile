# Workspace task runner. `just --list` shows everything.

# Tier-1 verification: what CI runs and every PR must keep green.
verify:
    cargo fmt --check
    cargo build --release
    cargo clippy --all-targets -- -D warnings
    cargo test -q
    cargo bench --no-run

# Full benchmark sweep (criterion stand-in: wall-clock medians on stdout).
bench:
    cargo bench

# Open scenario sweep over the corpus: any loads x localities x schemes
# (registry specs). Results land in sweeps/ as TSV.
sweep loads="0.6,0.7,0.9" localities="1.0" schemes="SP,ECMP,B4,MinMax,MinMaxK10,LatOpt,LDR" scale="--std":
    mkdir -p sweeps
    cargo run --release -p lowlat_sim --bin scenario_sweep -- {{scale}} \
        --loads {{loads}} --localities {{localities}} --schemes {{schemes}} \
        > sweeps/scenario_sweep.tsv
    @echo "wrote sweeps/scenario_sweep.tsv"

# Reproduce the paper's figures into figures/*.tsv (ASCII sketches go to
# stderr). Pass scale="--quick" for a CI-sized run, "--full" for the paper's.
figures scale="--std":
    mkdir -p figures
    for fig in fig01_apa_cdf fig03_sp_congestion fig04_active_schemes \
               fig07_util_cdf fig08_headroom fig09_prediction \
               fig10_sigma_scatter fig15_runtime fig16_max_stretch \
               fig17_load_sweep fig18_locality_sweep fig19_google \
               fig20_growth; do \
        cargo run --release -p lowlat_sim --bin $fig -- {{scale}} \
            > figures/$fig.tsv || exit 1; \
    done
