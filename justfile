# Workspace task runner. `just --list` shows everything.

# Tier-1 verification: what CI runs and every PR must keep green.
verify:
    cargo fmt --check
    cargo build --release
    cargo clippy --all-targets -- -D warnings
    cargo test -q
    cargo bench --no-run

# Full benchmark sweep (criterion stand-in: wall-clock medians on stdout).
bench:
    cargo bench

# Quick benches -> fresh BENCH_N.json, gated >25% against the latest
# committed baseline (engine/* skipped: worker-count-bound). The default
# `out=auto` writes the next free number — commit it to refresh the
# baseline after an intentional performance change.
bench-report out="auto":
    cargo bench -p lowlat_bench --bench substrates --bench fig_schemes \
        --bench warmstart --bench timeline --bench failure --bench controller \
        --bench hierarchy --bench pricing \
        | cargo run --release -p lowlat_bench --bin bench_report -- \
            --baseline auto --out {{out}} --max-regress 0.25 --skip engine/

# Internet-scale ingestion experiment: load an edge list (or generate the
# four synthetic models when file="") and run the hierarchical engine's
# seeded KSP batch. JSON lands in sweeps/topo_ingest.json, the per-model
# summary in sweeps/topo_ingest_summary.txt.
ingest file="" nodes="10000" tests="200" seeds="42,43":
    mkdir -p sweeps
    cargo run --release -p lowlat_sim --bin topo_ingest -- \
        {{ if file != "" { "--edge-list " + file } else { "" } }} \
        --nodes {{nodes}} --tests {{tests}} --seeds {{seeds}} \
        --output sweeps/topo_ingest.json \
        --summary-output sweeps/topo_ingest_summary.txt
    @echo "wrote sweeps/topo_ingest.json"

# The §5 deployment cycle across the corpus: any controllers (registry
# specs, `static:`-prefixed for the placed-once baseline) against bursty
# synthetic traffic. Results land in sweeps/ as TSV.
timeline minutes="10" cv="0.3" seed="99" schemes="LDR,SP,static:SP" scale="--std":
    mkdir -p sweeps
    cargo run --release -p lowlat_sim --bin timeline_sweep -- {{scale}} \
        --minutes {{minutes}} --cv {{cv}} --seed {{seed}} --schemes {{schemes}} \
        > sweeps/timeline_sweep.tsv
    @echo "wrote sweeps/timeline_sweep.tsv"

# Telemetry-instrumented timeline run: a diurnal Abilene deployment cycle
# with both sinks on. Drag sweeps/trace.json into https://ui.perfetto.dev
# (or chrome://tracing) to see the per-minute measure/decide/install
# breakdown; diff metrics snapshots with `perf_report`.
trace minutes="10" seed="99":
    mkdir -p sweeps
    cargo run --release -p lowlat_sim --bin timeline_sweep -- --quick \
        --networks Abilene --minutes {{minutes}} --seed {{seed}} \
        --diurnal 0.3 --period 10 \
        --trace-out sweeps/trace.json --metrics-out sweeps/metrics.json \
        > sweeps/trace_run.tsv
    @echo "wrote sweeps/trace.json (Perfetto), sweeps/metrics.json, sweeps/trace_run.tsv"

# Survivability sweep over the named corpus: failure scenarios (single =
# exhaustive single-cable, node, srlg, random) x schemes, each cell running
# cache repair + warm re-placement. Results land in sweeps/ as TSV.
failures scenarios="single" schemes="LDR,LatOpt,SP" load="0.7" scale="--std":
    mkdir -p sweeps
    cargo run --release -p lowlat_sim --bin failure_sweep -- {{scale}} \
        --scenarios {{scenarios}} --schemes {{schemes}} --load {{load}} \
        > sweeps/failure_sweep.tsv
    @echo "wrote sweeps/failure_sweep.tsv"

# Availability frontier: the failure sweep collapsed to CDF quantiles per
# (network, scheme, load) cell — scenarios (incl. brownout = dimmed cables,
# geo = great-circle corridor SRLGs) crossed with operating loads.
frontier scenarios="single,brownout,geo" schemes="LDR,LatOpt,SP" loads="0.5,0.7,0.9" scale="--std":
    mkdir -p sweeps
    cargo run --release -p lowlat_sim --bin failure_sweep -- {{scale}} \
        --scenarios {{scenarios}} --schemes {{schemes}} --loads {{loads}} \
        --frontier > sweeps/availability_frontier.tsv
    @echo "wrote sweeps/availability_frontier.tsv"

# Open scenario sweep over the corpus: any loads x localities x schemes
# (registry specs). Results land in sweeps/ as TSV.
sweep loads="0.6,0.7,0.9" localities="1.0" schemes="SP,ECMP,B4,MinMax,MinMaxK10,LatOpt,LDR" scale="--std":
    mkdir -p sweeps
    cargo run --release -p lowlat_sim --bin scenario_sweep -- {{scale}} \
        --loads {{loads}} --localities {{localities}} --schemes {{schemes}} \
        > sweeps/scenario_sweep.tsv
    @echo "wrote sweeps/scenario_sweep.tsv"

# Reproduce the paper's figures into figures/*.tsv (ASCII sketches go to
# stderr). Pass scale="--quick" for a CI-sized run, "--full" for the paper's.
figures scale="--std":
    mkdir -p figures
    for fig in fig01_apa_cdf fig03_sp_congestion fig04_active_schemes \
               fig07_util_cdf fig08_headroom fig09_prediction \
               fig10_sigma_scatter fig15_runtime fig16_max_stretch \
               fig17_load_sweep fig18_locality_sweep fig19_google \
               fig20_growth; do \
        cargo run --release -p lowlat_sim --bin $fig -- {{scale}} \
            > figures/$fig.tsv || exit 1; \
    done
