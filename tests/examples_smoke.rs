//! Runs every example end to end so they cannot silently rot.
//!
//! `cargo test` compiles all examples before any test executes, so the
//! binaries are guaranteed to sit in `target/<profile>/examples/` next to
//! this test's own executable; each one is spawned and must exit 0.

use std::path::PathBuf;
use std::process::Command;

/// Every example under `examples/`, kept in sync by `all_examples_listed`.
const EXAMPLES: [&str; 7] = [
    "b4_pathologies",
    "controller_timeline",
    "growth_planner",
    "headroom_dial",
    "ldr_with_traces",
    "llpd_survey",
    "quickstart",
];

fn example_bin(name: &str) -> PathBuf {
    // current_exe = target/<profile>/deps/examples_smoke-<hash>
    let mut p = std::env::current_exe().expect("test executable path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push("examples");
    p.push(name);
    p
}

#[test]
fn all_examples_listed() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(manifest)
        .expect("examples/ directory")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name().into_string().expect("utf-8 name");
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    assert_eq!(on_disk, EXAMPLES, "EXAMPLES constant is out of sync with examples/");
}

#[test]
fn examples_run_to_completion() {
    for name in EXAMPLES {
        let bin = example_bin(name);
        assert!(bin.exists(), "{} not built at {}", name, bin.display());
        let out = Command::new(&bin).output().unwrap_or_else(|e| panic!("spawning {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        // Every example narrates what it shows; silence means breakage.
        assert!(!out.stdout.is_empty(), "example {name} printed nothing");
    }
}
