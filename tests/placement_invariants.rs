//! Property tests across crates: every scheme, on random small topologies
//! and matrices, must emit structurally valid placements that deliver all
//! demand, and the evaluator's metrics must satisfy their definitions.

use proptest::prelude::*;

use lowlat::prelude::*;
use lowlat_netgraph::NodeId;

/// Random connected topology: ring + random chords with varied capacities.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (4usize..=9, proptest::collection::vec((any::<u32>(), any::<u32>(), 0u8..3), 0..6)).prop_map(
        |(n, chords)| {
            let mut b = TopologyBuilder::new("prop");
            let pops: Vec<PopId> = (0..n)
                .map(|i| {
                    let ang = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                    b.add_pop(
                        format!("p{i}"),
                        GeoPoint::new(45.0 + 5.0 * ang.sin(), -100.0 + 7.0 * ang.cos()),
                    )
                })
                .collect();
            for i in 0..n {
                b.connect(pops[i], pops[(i + 1) % n], 10_000.0);
            }
            for (x, y, c) in chords {
                let (i, j) = ((x as usize) % n, (y as usize) % n);
                if i != j && !b.connected(pops[i], pops[j]) {
                    b.connect(pops[i], pops[j], [2_500.0, 10_000.0, 40_000.0][c as usize]);
                }
            }
            b.build()
        },
    )
}

/// Random demand set over the topology's pairs.
fn arb_tm(n_pops: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((any::<u32>(), any::<u32>(), 1u32..5000), 1..12).prop_map(
        move |raw| {
            raw.into_iter()
                .map(|(s, d, v)| ((s as usize) % n_pops, (d as usize) % n_pops, v as f64))
                .filter(|(s, d, _)| s != d)
                .collect()
        },
    )
}

fn build_tm(demands: &[(usize, usize, f64)]) -> Option<TrafficMatrix> {
    let mut merged: std::collections::BTreeMap<(usize, usize), f64> = Default::default();
    for &(s, d, v) in demands {
        *merged.entry((s, d)).or_default() += v;
    }
    if merged.is_empty() {
        return None;
    }
    Some(TrafficMatrix::new(
        merged
            .into_iter()
            .map(|((s, d), v)| Aggregate {
                src: NodeId(s as u32),
                dst: NodeId(d as u32),
                volume_mbps: v,
                flow_count: (v / 5.0).ceil() as u64,
            })
            .collect(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_schemes_emit_valid_placements(topo in arb_topology(), demands in arb_tm(9)) {
        let demands: Vec<_> = demands.into_iter().filter(|&(s, d, _)| s < topo.pop_count() && d < topo.pop_count()).collect();
        let Some(tm) = build_tm(&demands) else { return Ok(()); };
        let schemes: Vec<Box<dyn RoutingScheme>> = vec![
            Box::new(ShortestPathRouting),
            Box::new(B4Routing::default()),
            Box::new(MinMaxRouting::with_k(4)),
            Box::new(LatencyOptimal::default()),
            Box::new(Ldr::default()),
        ];
        for scheme in schemes {
            let placement = scheme.place_on(&topo, &tm);
            let placement = match placement {
                Ok(p) => p,
                Err(e) => return Err(TestCaseError::fail(format!("{}: {e}", scheme.name()))),
            };
            prop_assert!(placement.validate(topo.graph(), &tm).is_ok(),
                "{} produced an invalid placement", scheme.name());
            // Demand conservation: link loads imply total volume-delay work
            // bounded and every aggregate fully routed (validate checks the
            // fraction sums; here check loads are consistent).
            let ev = PlacementEval::evaluate(&topo, &tm, &placement);
            prop_assert!(ev.latency_stretch() >= 1.0 - 1e-6,
                "{}: stretch below 1", scheme.name());
            prop_assert!(ev.max_flow_stretch() >= 1.0 - 1e-6);
            prop_assert!(ev.max_flow_stretch().is_finite());
            prop_assert!((0.0..=1.0).contains(&ev.congested_pair_fraction()));
            // fits <=> max utilization <= 1 (+tol).
            prop_assert_eq!(ev.fits(), ev.max_utilization() <= 1.0 + 1e-5,
                "fits flag inconsistent for {}", scheme.name());
        }
    }

    #[test]
    fn latopt_is_lower_bound_on_latency_when_everything_fits(
        topo in arb_topology(),
        demands in arb_tm(9),
    ) {
        let demands: Vec<_> = demands.into_iter().filter(|&(s, d, _)| s < topo.pop_count() && d < topo.pop_count()).collect();
        let Some(tm) = build_tm(&demands) else { return Ok(()); };
        let opt = LatencyOptimal::default().place_on(&topo, &tm).expect("latopt");
        let ev_opt = PlacementEval::evaluate(&topo, &tm, &opt);
        if !ev_opt.fits() {
            return Ok(()); // congestion unavoidable: bound doesn't apply
        }
        for scheme in [
            Box::new(MinMaxRouting::with_k(6)) as Box<dyn RoutingScheme>,
            Box::new(B4Routing::default()),
        ] {
            let other = scheme.place_on(&topo, &tm).expect("scheme");
            let ev = PlacementEval::evaluate(&topo, &tm, &other);
            if ev.fits() {
                prop_assert!(
                    ev_opt.latency_stretch() <= ev.latency_stretch() + 1e-4,
                    "{} beat the optimum: {} vs {}",
                    scheme.name(), ev.latency_stretch(), ev_opt.latency_stretch()
                );
            }
        }
    }

    #[test]
    fn llpd_well_defined_on_random_topologies(topo in arb_topology()) {
        let analysis = LlpdAnalysis::compute(&topo, &LlpdConfig::default());
        prop_assert!((0.0..=1.0).contains(&analysis.llpd()));
        for &apa in analysis.apa_values() {
            prop_assert!((0.0..=1.0).contains(&apa));
        }
        prop_assert_eq!(analysis.apa_values().len(), topo.unordered_pairs().len());
    }
}
