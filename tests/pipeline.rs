//! End-to-end integration: topology -> TM -> schemes -> evaluation, on the
//! named networks, asserting the paper's headline qualitative claims.

use lowlat::prelude::*;

/// Standard operating point: locality 1, min-cut load 0.7.
fn standard_tm(topo: &Topology, index: u64) -> TrafficMatrix {
    GravityTmGen::new(TmGenConfig::default()).generate(topo, index).scaled_to_load(topo, 0.7)
}

#[test]
fn minmax_and_latopt_fit_what_sp_congests() {
    let topo = named::gts_like();
    let tm = standard_tm(&topo, 0);
    let sp =
        PlacementEval::evaluate(&topo, &tm, &ShortestPathRouting.place_on(&topo, &tm).unwrap());
    let mm = PlacementEval::evaluate(
        &topo,
        &tm,
        &MinMaxRouting::unrestricted().place_on(&topo, &tm).unwrap(),
    );
    let lo = PlacementEval::evaluate(
        &topo,
        &tm,
        &LatencyOptimal::default().place_on(&topo, &tm).unwrap(),
    );
    // At 0.7 min-cut load the traffic fits by construction; load-aware
    // schemes must fit it, and SP must be the congestion-prone one.
    assert!(mm.fits());
    assert!(lo.fits());
    assert!(sp.max_utilization() >= mm.max_utilization() - 1e-6);
}

#[test]
fn scheme_latency_ordering_matches_paper() {
    // LatOpt <= LDR <= MinMax in latency stretch; all of them <= tolerance
    // above 1.0 when uncongested (stretch is relative to shortest paths).
    let topo = named::gts_like();
    for i in 0..2 {
        let tm = standard_tm(&topo, i);
        let lo = PlacementEval::evaluate(
            &topo,
            &tm,
            &LatencyOptimal::default().place_on(&topo, &tm).unwrap(),
        );
        let ldr =
            PlacementEval::evaluate(&topo, &tm, &Ldr::default().place_on(&topo, &tm).unwrap());
        let mm = PlacementEval::evaluate(
            &topo,
            &tm,
            &MinMaxRouting::unrestricted().place_on(&topo, &tm).unwrap(),
        );
        assert!(lo.latency_stretch() >= 1.0 - 1e-6);
        assert!(
            lo.latency_stretch() <= ldr.latency_stretch() + 1e-6,
            "tm {i}: optimal {} vs LDR {}",
            lo.latency_stretch(),
            ldr.latency_stretch()
        );
        assert!(
            ldr.latency_stretch() <= mm.latency_stretch() + 1e-3,
            "tm {i}: LDR {} vs MinMax {}",
            ldr.latency_stretch(),
            mm.latency_stretch()
        );
    }
}

#[test]
fn all_schemes_produce_valid_placements_on_all_named_networks() {
    for topo in [named::abilene(), named::gts_like(), named::cogent_like(), named::google_like()] {
        let tm = standard_tm(&topo, 0);
        let schemes: Vec<Box<dyn RoutingScheme>> = vec![
            Box::new(ShortestPathRouting),
            Box::new(B4Routing::default()),
            Box::new(MinMaxRouting::unrestricted()),
            Box::new(MinMaxRouting::with_k(10)),
            Box::new(LatencyOptimal::default()),
            Box::new(Ldr::default()),
        ];
        for scheme in schemes {
            let placement = scheme
                .place_on(&topo, &tm)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", scheme.name(), topo.name()));
            placement
                .validate(topo.graph(), &tm)
                .unwrap_or_else(|e| panic!("{} invalid on {}: {e}", scheme.name(), topo.name()));
        }
    }
}

#[test]
fn headroom_dial_interpolates_to_minmax() {
    // §4: latency-optimal with headroom equal to MinMax's spare capacity
    // converges to the MinMax placement quality.
    let topo = named::abilene();
    let tm = standard_tm(&topo, 1);
    let mm = PlacementEval::evaluate(
        &topo,
        &tm,
        &MinMaxRouting::unrestricted().place_on(&topo, &tm).unwrap(),
    );
    let spare = 1.0 - mm.max_utilization();
    let dialed = PlacementEval::evaluate(
        &topo,
        &tm,
        &LatencyOptimal::with_headroom(spare - 1e-6).place_on(&topo, &tm).unwrap(),
    );
    assert!(
        (dialed.latency_stretch() - mm.latency_stretch()).abs() < 0.05,
        "dialed {} vs minmax {}",
        dialed.latency_stretch(),
        mm.latency_stretch()
    );
}

#[test]
fn google_like_unroutable_by_sp_but_fine_for_ldr() {
    // Figure 19's point.
    let topo = named::google_like();
    let tm = standard_tm(&topo, 0);
    let sp =
        PlacementEval::evaluate(&topo, &tm, &ShortestPathRouting.place_on(&topo, &tm).unwrap());
    let ldr = PlacementEval::evaluate(&topo, &tm, &Ldr::default().place_on(&topo, &tm).unwrap());
    assert!(sp.congested_pair_fraction() > 0.0, "SP must congest the B4-like WAN");
    assert!(ldr.fits(), "LDR handles it");
}
