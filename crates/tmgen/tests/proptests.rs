//! Property tests for the traffic-matrix generator: the locality LP must
//! preserve gravity marginals for any topology, locality, and seed.

use proptest::prelude::*;

use lowlat_tmgen::{GravityTmGen, TmGenConfig};
use lowlat_topology::zoo;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn locality_preserves_marginals(
        seed in any::<u64>(),
        locality in 0.0f64..2.5,
        index in 0u64..4,
    ) {
        let topo = zoo::ring(7, 2, zoo::EUROPE, seed % 1000);
        let base = GravityTmGen::new(TmGenConfig {
            locality: 0.0,
            seed,
            ..Default::default()
        });
        let local = GravityTmGen::new(TmGenConfig {
            locality,
            seed,
            ..Default::default()
        });
        let tm0 = base.generate(&topo, index);
        let tm1 = local.generate(&topo, index);
        let n = topo.pop_count();
        let (e0, e1) = (tm0.egress_by_pop(n), tm1.egress_by_pop(n));
        let (i0, i1) = (tm0.ingress_by_pop(n), tm1.ingress_by_pop(n));
        for p in 0..n {
            prop_assert!((e0[p] - e1[p]).abs() < 1e-4 * (1.0 + e0[p]),
                "egress of pop {p}: {} vs {}", e0[p], e1[p]);
            prop_assert!((i0[p] - i1[p]).abs() < 1e-4 * (1.0 + i0[p]),
                "ingress of pop {p}: {} vs {}", i0[p], i1[p]);
        }
        // Caps respected: no aggregate grows beyond (1 + locality)x.
        for a in tm1.aggregates() {
            let orig = tm0.volume_between(a.src, a.dst);
            prop_assert!(a.volume_mbps <= (1.0 + locality) * orig + 1e-6,
                "aggregate {:?}->{:?} grew {} from {orig}", a.src, a.dst, a.volume_mbps);
        }
    }

    #[test]
    fn scaled_matrices_scale_everything(
        seed in any::<u64>(),
        factor in 0.1f64..5.0,
    ) {
        let topo = zoo::grid(3, 3, 0.2, zoo::USA, seed % 1000);
        let gen = GravityTmGen::new(TmGenConfig { seed, ..Default::default() });
        let tm = gen.generate(&topo, 0);
        let scaled = tm.scaled(factor);
        prop_assert_eq!(tm.len(), scaled.len());
        prop_assert!((scaled.total_volume_mbps() - factor * tm.total_volume_mbps()).abs()
            < 1e-6 * tm.total_volume_mbps());
        for (a, b) in tm.aggregates().iter().zip(scaled.aggregates()) {
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert!(b.flow_count >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed_and_index(
        seed in any::<u64>(),
        index in 0u64..8,
    ) {
        let topo = zoo::mesh(8, 800.0, zoo::EUROPE, 3);
        let gen = GravityTmGen::new(TmGenConfig { seed, ..Default::default() });
        let a = gen.generate(&topo, index);
        let b = gen.generate(&topo, index);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.aggregates().iter().zip(b.aggregates()) {
            prop_assert_eq!(x.volume_mbps.to_bits(), y.volume_mbps.to_bits(),
                "generation must be bit-reproducible");
        }
    }
}
