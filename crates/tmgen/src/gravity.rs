//! The gravity traffic-matrix generator (§3 of the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;

use lowlat_topology::Topology;

use crate::locality::apply_locality;
use crate::tm::{Aggregate, TrafficMatrix};
use crate::zipf::zipf_masses;

/// Configuration for [`GravityTmGen`].
#[derive(Clone, Debug)]
pub struct TmGenConfig {
    /// Zipf exponent for PoP masses. 1.0 reproduces the classic heavy-tailed
    /// aggregate-size distribution the paper cites.
    pub zipf_alpha: f64,
    /// The paper's locality parameter ℓ: short-distance aggregates may grow
    /// by up to ℓ× their gravity demand. The paper's default is 1.0.
    pub locality: f64,
    /// Nominal total offered load before scaling (Mbps). Figures rescale to
    /// a target network load anyway, so this only sets the numeric range.
    pub total_volume_mbps: f64,
    /// Mbps carried per flow, used to derive `flow_count` from volume
    /// (tm-gen keeps flow counts proportional to volume; so do we).
    pub mbps_per_flow: f64,
    /// Base RNG seed; combined with the matrix index so a batch of matrices
    /// differs while remaining reproducible.
    pub seed: u64,
}

impl Default for TmGenConfig {
    fn default() -> Self {
        TmGenConfig {
            zipf_alpha: 1.0,
            locality: 1.0,
            total_volume_mbps: 100_000.0,
            mbps_per_flow: 5.0,
            seed: 42,
        }
    }
}

/// Gravity-model generator with Zipf masses and the locality LP.
#[derive(Clone, Debug)]
pub struct GravityTmGen {
    config: TmGenConfig,
}

impl GravityTmGen {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics on non-positive volume/flow parameters or negative
    /// alpha/locality.
    pub fn new(config: TmGenConfig) -> Self {
        assert!(config.zipf_alpha >= 0.0);
        assert!(config.locality >= 0.0);
        assert!(config.total_volume_mbps > 0.0);
        assert!(config.mbps_per_flow > 0.0);
        GravityTmGen { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TmGenConfig {
        &self.config
    }

    /// Generates the `index`-th matrix for `topology` (deterministic in
    /// `(config.seed, index)`).
    pub fn generate(&self, topology: &Topology, index: u64) -> TrafficMatrix {
        let n = topology.pop_count();
        let mut rng = StdRng::seed_from_u64(
            self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(index),
        );
        let masses = zipf_masses(n, self.config.zipf_alpha, &mut rng);

        // Gravity: volume(s,d) ∝ mass_s * mass_d, diagonal excluded, then
        // normalized to the nominal total.
        let mut volumes = vec![vec![0.0; n]; n];
        let mut total = 0.0;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    volumes[s][d] = masses[s] * masses[d];
                    total += volumes[s][d];
                }
            }
        }
        let norm = self.config.total_volume_mbps / total;
        volumes.iter_mut().flatten().for_each(|v| *v *= norm);

        let volumes = apply_locality(topology, &volumes, self.config.locality);

        let mut aggregates = Vec::with_capacity(n * (n - 1));
        for (s, d) in topology.ordered_pairs() {
            let v = volumes[s.idx()][d.idx()];
            if v > 1e-9 {
                aggregates.push(Aggregate {
                    src: s,
                    dst: d,
                    volume_mbps: v,
                    flow_count: ((v / self.config.mbps_per_flow).round() as u64).max(1),
                });
            }
        }
        TrafficMatrix::new(aggregates)
    }

    /// Generates a batch of `count` matrices (indices `0..count`).
    pub fn generate_batch(&self, topology: &Topology, count: u64) -> Vec<TrafficMatrix> {
        (0..count).map(|i| self.generate(topology, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_topology::zoo::named;

    #[test]
    fn deterministic_and_distinct() {
        let topo = named::abilene();
        let g = GravityTmGen::new(TmGenConfig::default());
        let a = g.generate(&topo, 0);
        let b = g.generate(&topo, 0);
        let c = g.generate(&topo, 1);
        assert_eq!(a.total_volume_mbps(), b.total_volume_mbps());
        assert_eq!(a.len(), b.len());
        // Different indices shuffle masses differently.
        let differs = a
            .aggregates()
            .iter()
            .zip(c.aggregates())
            .any(|(x, y)| (x.volume_mbps - y.volume_mbps).abs() > 1e-9);
        assert!(differs, "index must vary the matrix");
    }

    #[test]
    fn nominal_total_preserved() {
        // The locality LP preserves marginals, hence the grand total.
        let topo = named::abilene();
        let g = GravityTmGen::new(TmGenConfig { total_volume_mbps: 5000.0, ..Default::default() });
        let tm = g.generate(&topo, 3);
        assert!((tm.total_volume_mbps() - 5000.0).abs() < 1.0, "got {}", tm.total_volume_mbps());
    }

    #[test]
    fn covers_all_pairs_without_locality_starvation() {
        let topo = named::abilene();
        let g = GravityTmGen::new(TmGenConfig::default());
        let tm = g.generate(&topo, 0);
        // Locality shifts load but the matrix should stay dense-ish:
        // at least half of all ordered pairs keep non-zero demand.
        assert!(tm.len() * 2 >= topo.ordered_pairs().len());
    }

    #[test]
    fn flow_counts_proportional() {
        let topo = named::abilene();
        let g = GravityTmGen::new(TmGenConfig { mbps_per_flow: 2.0, ..Default::default() });
        let tm = g.generate(&topo, 0);
        for a in tm.aggregates() {
            let expect = (a.volume_mbps / 2.0).round().max(1.0) as u64;
            assert_eq!(a.flow_count, expect);
        }
    }

    #[test]
    fn zero_locality_pure_gravity_rank_one() {
        let topo = named::abilene();
        let g = GravityTmGen::new(TmGenConfig { locality: 0.0, ..Default::default() });
        let tm = g.generate(&topo, 0);
        // Pure gravity is rank-one off-diagonal: v(s,a)*v(d,b) =
        // v(s,b)*v(d,a) for distinct s,d,a,b.
        let v = |s: u32, d: u32| {
            tm.volume_between(lowlat_netgraph::NodeId(s), lowlat_netgraph::NodeId(d))
        };
        let lhs = v(0, 2) * v(1, 3);
        let rhs = v(0, 3) * v(1, 2);
        assert!((lhs - rhs).abs() < 1e-6 * lhs.max(rhs), "{lhs} vs {rhs}");
    }
}
