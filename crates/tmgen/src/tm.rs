//! Traffic matrices: one aggregate per ordered PoP pair.

use lowlat_topology::PopId;

/// A directed traffic aggregate: the demand from one PoP to another.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aggregate {
    /// Ingress PoP.
    pub src: PopId,
    /// Egress PoP.
    pub dst: PopId,
    /// Mean offered load in Mbps (the paper's `Ba`).
    pub volume_mbps: f64,
    /// Number of flows in the aggregate (the paper's `na`). Our generator
    /// keeps this proportional to volume, as tm-gen does.
    pub flow_count: u64,
}

/// A traffic matrix: every ordered PoP pair with non-zero demand.
#[derive(Clone, Debug)]
pub struct TrafficMatrix {
    aggregates: Vec<Aggregate>,
}

impl TrafficMatrix {
    /// Builds a matrix from aggregates, dropping zero-volume entries.
    ///
    /// # Panics
    /// Panics if any aggregate has `src == dst`, a negative/non-finite
    /// volume, or if a (src, dst) pair repeats.
    pub fn new(mut aggregates: Vec<Aggregate>) -> Self {
        aggregates.retain(|a| a.volume_mbps > 0.0);
        let mut seen = std::collections::HashSet::new();
        for a in &aggregates {
            assert!(a.src != a.dst, "self-aggregate {:?}", a.src);
            assert!(a.volume_mbps.is_finite() && a.volume_mbps > 0.0);
            assert!(seen.insert((a.src, a.dst)), "duplicate aggregate {:?}->{:?}", a.src, a.dst);
        }
        aggregates.sort_by_key(|a| (a.src, a.dst));
        TrafficMatrix { aggregates }
    }

    /// The aggregates, sorted by (src, dst).
    pub fn aggregates(&self) -> &[Aggregate] {
        &self.aggregates
    }

    /// Number of aggregates.
    pub fn len(&self) -> usize {
        self.aggregates.len()
    }

    /// True when there is no demand at all.
    pub fn is_empty(&self) -> bool {
        self.aggregates.is_empty()
    }

    /// Demand from `src` to `dst` in Mbps (0 when absent).
    pub fn volume_between(&self, src: PopId, dst: PopId) -> f64 {
        self.aggregates
            .binary_search_by_key(&(src, dst), |a| (a.src, a.dst))
            .map(|i| self.aggregates[i].volume_mbps)
            .unwrap_or(0.0)
    }

    /// Total offered load in Mbps.
    pub fn total_volume_mbps(&self) -> f64 {
        self.aggregates.iter().map(|a| a.volume_mbps).sum()
    }

    /// A copy with every volume (and flow count) multiplied by `factor`.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite factor.
    pub fn scaled(&self, factor: f64) -> TrafficMatrix {
        assert!(factor.is_finite() && factor > 0.0, "bad scale factor {factor}");
        TrafficMatrix {
            aggregates: self
                .aggregates
                .iter()
                .map(|a| Aggregate {
                    volume_mbps: a.volume_mbps * factor,
                    flow_count: ((a.flow_count as f64 * factor).round() as u64).max(1),
                    ..*a
                })
                .collect(),
        }
    }

    /// Per-PoP egress totals (Mbps), keyed by PoP index.
    pub fn egress_by_pop(&self, pop_count: usize) -> Vec<f64> {
        let mut out = vec![0.0; pop_count];
        for a in &self.aggregates {
            out[a.src.idx()] += a.volume_mbps;
        }
        out
    }

    /// Per-PoP ingress totals (Mbps), keyed by PoP index.
    pub fn ingress_by_pop(&self, pop_count: usize) -> Vec<f64> {
        let mut out = vec![0.0; pop_count];
        for a in &self.aggregates {
            out[a.dst.idx()] += a.volume_mbps;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::NodeId;

    fn agg(s: u32, d: u32, v: f64) -> Aggregate {
        Aggregate { src: NodeId(s), dst: NodeId(d), volume_mbps: v, flow_count: v.ceil() as u64 }
    }

    #[test]
    fn lookup_and_totals() {
        let tm = TrafficMatrix::new(vec![agg(0, 1, 10.0), agg(1, 0, 5.0), agg(0, 2, 2.5)]);
        assert_eq!(tm.len(), 3);
        assert_eq!(tm.volume_between(NodeId(0), NodeId(1)), 10.0);
        assert_eq!(tm.volume_between(NodeId(2), NodeId(0)), 0.0);
        assert!((tm.total_volume_mbps() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn zero_volume_dropped() {
        let tm = TrafficMatrix::new(vec![agg(0, 1, 10.0), agg(1, 2, 0.0)]);
        assert_eq!(tm.len(), 1);
    }

    #[test]
    fn scaling() {
        let tm = TrafficMatrix::new(vec![agg(0, 1, 10.0)]).scaled(1.3);
        assert!((tm.total_volume_mbps() - 13.0).abs() < 1e-12);
        assert_eq!(tm.aggregates()[0].flow_count, 13);
    }

    #[test]
    fn marginals() {
        let tm = TrafficMatrix::new(vec![agg(0, 1, 10.0), agg(0, 2, 4.0), agg(2, 0, 1.0)]);
        assert_eq!(tm.egress_by_pop(3), vec![14.0, 0.0, 1.0]);
        assert_eq!(tm.ingress_by_pop(3), vec![1.0, 10.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn duplicate_pair_rejected() {
        TrafficMatrix::new(vec![agg(0, 1, 1.0), agg(0, 1, 2.0)]);
    }
}
