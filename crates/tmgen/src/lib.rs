//! # lowlat-tmgen
//!
//! Gravity-model traffic-matrix generation with a **locality** dial,
//! reproducing §3 of the paper (and its companion tool *tm-gen*, reference
//! \[20\]):
//!
//! 1. PoP "masses" are drawn from a Zipf distribution (real-world traffic
//!    aggregates are Zipf-ish, reference \[39\]); aggregate volume between a
//!    PoP pair is proportional to the product of their masses.
//! 2. The original gravity model ignores geography, but CDNs place content
//!    near users, so the paper redistributes load toward short-distance
//!    aggregates: a locality parameter ℓ lets each short-distance aggregate
//!    grow by up to ℓ× its original demand while per-PoP ingress/egress
//!    totals stay fixed. We express that exactly as a transportation LP
//!    ([`locality`]).
//! 3. The matrix is finally scaled to a target network load; the scale
//!    factor search lives in `lowlat-core` (it needs the MinMax routing
//!    machinery), exposed as `scaled_to_load`.
//!
//! All generation is deterministic in the (seed, matrix index) pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gravity;
pub mod locality;
pub mod tm;
pub mod zipf;

pub use gravity::{GravityTmGen, TmGenConfig};
pub use tm::{Aggregate, TrafficMatrix};
