//! Zipf-distributed PoP masses for the gravity model.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Returns `n` masses following a Zipf law with exponent `alpha`
/// (`mass_of_rank_k ∝ 1 / k^alpha`), normalized to sum to 1, assigned to
/// indices in a random order drawn from `rng`.
///
/// Shuffling matters: without it, PoP 0 would always be the heaviest in
/// every generated matrix and the corpus would correlate topology position
/// with load.
///
/// # Panics
/// Panics if `n == 0` or `alpha < 0`.
pub fn zipf_masses(n: usize, alpha: f64, rng: &mut StdRng) -> Vec<f64> {
    assert!(n > 0, "no PoPs");
    assert!(alpha >= 0.0, "negative Zipf exponent {alpha}");
    let mut masses: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
    let total: f64 = masses.iter().sum();
    masses.iter_mut().for_each(|m| *m /= total);
    masses.shuffle(rng);
    masses
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normalized() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = zipf_masses(20, 1.0, &mut rng);
        assert_eq!(m.len(), 20);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(m.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = zipf_masses(10, 0.0, &mut rng);
        for &x in &m {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_alpha_more_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let low = zipf_masses(50, 0.5, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let high = zipf_masses(50, 2.0, &mut rng);
        let max_low = low.iter().cloned().fold(0.0, f64::max);
        let max_high = high.iter().cloned().fold(0.0, f64::max);
        assert!(max_high > max_low, "heavier tail should concentrate mass");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = zipf_masses(12, 1.0, &mut StdRng::seed_from_u64(7));
        let b = zipf_masses(12, 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
