//! The locality-redistribution LP (§3 of the paper, detailed in tm-gen
//! \[20\]).
//!
//! Given base gravity volumes `v` and a locality parameter `ℓ`, find new
//! volumes `v'` that
//!
//! * preserve every PoP's total ingress and egress (the gravity marginals),
//! * never exceed `(1 + ℓ) · v_a` per aggregate, and
//! * minimize total *distance-weighted* volume `Σ_a S_a · v'_a`, where `S_a`
//!   is the shortest-path delay of the pair —
//!
//! i.e. shift as much load as the cap allows from long-haul aggregates onto
//! short ones, exactly the "content moves closer to users" effect the paper
//! models. With `ℓ = 0` the caps pin `v' = v` (the pristine gravity model).

use lowlat_linprog::{Problem, Relation};
use lowlat_netgraph::all_pairs_delays;
use lowlat_topology::Topology;

/// Applies the locality LP to per-pair volumes.
///
/// `volumes[s][d]` is the base gravity demand (0 on the diagonal). Returns
/// the redistributed matrix in the same layout.
///
/// # Panics
/// Panics if `locality < 0` or the matrix shape disagrees with the topology.
pub fn apply_locality(topology: &Topology, volumes: &[Vec<f64>], locality: f64) -> Vec<Vec<f64>> {
    assert!(locality >= 0.0, "negative locality {locality}");
    let n = topology.pop_count();
    assert_eq!(volumes.len(), n, "volume matrix shape");
    if locality == 0.0 {
        // Caps force v' = v; skip the solve.
        return volumes.to_vec();
    }

    let delays = all_pairs_delays(topology.graph());
    // Variable layout: one per ordered pair (s != d), in row-major order.
    let mut var_of = vec![vec![usize::MAX; n]; n];
    let mut pairs = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d && volumes[s][d] > 0.0 {
                var_of[s][d] = pairs.len();
                pairs.push((s, d));
            }
        }
    }

    let mut p = Problem::minimize(pairs.len());
    for (j, &(s, d)) in pairs.iter().enumerate() {
        p.set_objective(j, delays[s][d]);
        p.set_upper_bound(j, (1.0 + locality) * volumes[s][d]);
    }
    // Marginals. One of the 2n rows is linearly dependent; the solver's
    // artificial handling tolerates that.
    for s in 0..n {
        let coeffs: Vec<(usize, f64)> =
            (0..n).filter(|&d| var_of[s][d] != usize::MAX).map(|d| (var_of[s][d], 1.0)).collect();
        if !coeffs.is_empty() {
            let egress: f64 = (0..n).map(|d| volumes[s][d]).sum();
            p.add_row(Relation::Eq, egress, &coeffs);
        }
    }
    for d in 0..n {
        let coeffs: Vec<(usize, f64)> =
            (0..n).filter(|&s| var_of[s][d] != usize::MAX).map(|s| (var_of[s][d], 1.0)).collect();
        if !coeffs.is_empty() {
            let ingress: f64 = (0..n).map(|s| volumes[s][d]).sum();
            p.add_row(Relation::Eq, ingress, &coeffs);
        }
    }

    let sol = p.solve().expect("locality LP is always feasible: the base volumes satisfy it");
    let mut out = vec![vec![0.0; n]; n];
    for (j, &(s, d)) in pairs.iter().enumerate() {
        out[s][d] = sol.value(j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_topology::zoo::named;

    fn base_volumes(topo: &Topology) -> Vec<Vec<f64>> {
        // Uniform gravity for the test: every pair 10 Mbps.
        let n = topo.pop_count();
        let mut v = vec![vec![0.0; n]; n];
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    v[s][d] = 10.0;
                }
            }
        }
        v
    }

    #[test]
    fn zero_locality_is_identity() {
        let topo = named::abilene();
        let v = base_volumes(&topo);
        assert_eq!(apply_locality(&topo, &v, 0.0), v);
    }

    #[test]
    fn marginals_preserved() {
        let topo = named::abilene();
        let n = topo.pop_count();
        let v = base_volumes(&topo);
        let out = apply_locality(&topo, &v, 1.0);
        for i in 0..n {
            let (eg_in, eg_out): (f64, f64) =
                ((0..n).map(|d| v[i][d]).sum(), (0..n).map(|d| out[i][d]).sum());
            assert!((eg_in - eg_out).abs() < 1e-5, "egress of {i}: {eg_in} vs {eg_out}");
            let (ig_in, ig_out): (f64, f64) =
                ((0..n).map(|s| v[s][i]).sum(), (0..n).map(|s| out[s][i]).sum());
            assert!((ig_in - ig_out).abs() < 1e-5, "ingress of {i}: {ig_in} vs {ig_out}");
        }
    }

    #[test]
    fn caps_respected_and_distance_reduced() {
        let topo = named::abilene();
        let n = topo.pop_count();
        let v = base_volumes(&topo);
        let out = apply_locality(&topo, &v, 1.0);
        let delays = lowlat_netgraph::all_pairs_delays(topo.graph());
        let mut before = 0.0;
        let mut after = 0.0;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    assert!(out[s][d] <= 2.0 * v[s][d] + 1e-7, "cap violated at ({s},{d})");
                    assert!(out[s][d] >= -1e-9);
                    before += delays[s][d] * v[s][d];
                    after += delays[s][d] * out[s][d];
                }
            }
        }
        assert!(after < before - 1e-6, "locality should shorten mean distance");
    }

    #[test]
    fn higher_locality_shortens_more() {
        let topo = named::abilene();
        let n = topo.pop_count();
        let v = base_volumes(&topo);
        let delays = lowlat_netgraph::all_pairs_delays(topo.graph());
        let weighted = |m: &Vec<Vec<f64>>| -> f64 {
            let mut t = 0.0;
            for s in 0..n {
                for d in 0..n {
                    t += delays[s][d] * m[s][d];
                }
            }
            t
        };
        let l05 = weighted(&apply_locality(&topo, &v, 0.5));
        let l20 = weighted(&apply_locality(&topo, &v, 2.0));
        assert!(l20 <= l05 + 1e-6);
    }
}
