//! End-to-end tests of the `topo_ingest` binary: the malformed-input
//! contract (exit 2, offending line number in the message) and the
//! happy-path JSON the scale-smoke CI job asserts on.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_topo_ingest"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("topo_ingest_cli_{}_{name}", std::process::id()));
    p
}

#[test]
fn malformed_edge_list_exits_2_with_line_number() {
    let path = tmp("bad.edges");
    // Line 3 has a non-numeric capacity.
    std::fs::write(&path, "a b 100 5\nb c 100 5\nc d oops 5\n").unwrap();
    let out = bin().args(["--edge-list", path.to_str().unwrap()]).output().unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2), "malformed input must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "stderr must name the offending line: {stderr}");
}

#[test]
fn self_loop_edge_exits_2_with_line_number() {
    let path = tmp("loop.edges");
    std::fs::write(&path, "a b 100 5\nb b 100 5\n").unwrap();
    let out = bin().args(["--edge-list", path.to_str().unwrap()]).output().unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "stderr must name the offending line: {stderr}");
}

#[test]
fn unknown_flag_exits_2() {
    let out = bin().arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn synthetic_run_emits_parseable_json_with_full_success() {
    let json_path = tmp("out.json");
    let out = bin()
        .args([
            "--synthetic",
            "ba",
            "--nodes",
            "120",
            "--tests",
            "24",
            "--seeds",
            "42,43",
            "--leaf",
            "32",
            "--output",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&json_path).unwrap();
    std::fs::remove_file(&json_path).ok();
    // Hand-rolled emitter, hand-rolled check: the fields the CI assertions
    // read must be present, and BA is connected by construction so the
    // engine's fallback guarantee pins success_rate at exactly 1.
    for key in ["\"config\"", "\"results\"", "\"summary\"", "\"success_rate\"", "\"stretch\""] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(
        json.contains("\"success_rate\": 1.000000"),
        "connected BA must answer every query: {json}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("BarabasiAlbert: success_rate="), "summary line missing: {stderr}");
}

#[test]
fn emitted_edge_list_round_trips_through_the_parser() {
    let edges = tmp("roundtrip.edges");
    let emit = bin()
        .args([
            "--synthetic",
            "grid",
            "--nodes",
            "64",
            "--tests",
            "0",
            "--emit-edge-list",
            edges.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(emit.status.success(), "stderr: {}", String::from_utf8_lossy(&emit.stderr));
    // Re-ingest what the generator wrote: the scale-smoke job's shape.
    let out = bin()
        .args(["--edge-list", edges.to_str().unwrap(), "--tests", "16", "--seeds", "7"])
        .output()
        .unwrap();
    std::fs::remove_file(&edges).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"label\": \"RealWorld\""),
        "re-ingested file must be labeled RealWorld: {stdout}"
    );
    assert!(stdout.contains("\"success_rate\": 1.000000"), "grid is connected: {stdout}");
}
