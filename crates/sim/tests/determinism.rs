//! The work-stealing engine's output must not depend on scheduling: the
//! same grid run with 1 worker and with many workers has to produce
//! byte-identical record sets (`runtime_ms` aside — it is wall time).
//! This guards the executor against ordering and seed drift; CI also runs
//! the whole suite under `RUST_TEST_THREADS=1` for the same reason.

use lowlat_sim::runner::{run_grid_replay_with_workers, run_grid_with_workers, RunGrid, Scale};

fn quick_networks() -> Vec<lowlat_topology::Topology> {
    Scale::Quick.select_networks(lowlat_topology::zoo::synthetic_zoo())
}

#[test]
fn run_grid_is_worker_count_invariant_at_quick_scale() {
    let nets = quick_networks();
    assert!(nets.len() >= 8, "quick corpus shrank; the test lost its bite");
    // One representative per scheme mechanism: pure path lookup (SP),
    // DAG splitting (ECMP), greedy filling (B4), and the LP pipeline
    // (MinMaxK6) — enough to catch any scheduling sensitivity without
    // running the full LP set twice.
    let grid = RunGrid::with_schemes(
        0.7,
        1.0,
        Scale::Quick.tms_per_network(),
        &["SP", "ECMP", "B4", "MinMaxK6"],
    );
    let serial = run_grid_with_workers(&nets, &grid, 1);
    let parallel = run_grid_with_workers(&nets, &grid, 8);
    let a: Vec<String> = serial.iter().map(|r| r.deterministic_repr()).collect();
    let b: Vec<String> = parallel.iter().map(|r| r.deterministic_repr()).collect();
    assert!(!a.is_empty(), "quick grid produced no records");
    assert_eq!(a.len(), nets.len() * grid.schemes.len(), "every item must yield a record");
    assert_eq!(a, b, "1-worker vs 8-worker record sets diverge");
}

#[test]
fn replay_engine_is_worker_count_invariant() {
    // The replay path through the same executor: cloned donors have
    // distinct addresses, forcing the separate scaling caches.
    let nets: Vec<_> = quick_networks().into_iter().take(4).collect();
    let donors = nets.clone();
    let grid = RunGrid::with_schemes(0.7, 1.0, 1, &["SP", "LDR"]);
    let serial = run_grid_replay_with_workers(&nets, &donors, &grid, 1);
    let parallel = run_grid_replay_with_workers(&nets, &donors, &grid, 8);
    let a: Vec<String> = serial.iter().map(|r| r.deterministic_repr()).collect();
    let b: Vec<String> = parallel.iter().map(|r| r.deterministic_repr()).collect();
    assert!(!a.is_empty());
    assert_eq!(a, b);
}
