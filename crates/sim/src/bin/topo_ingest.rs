//! Internet-scale ingestion + hierarchical routing experiment.
//!
//! Reproduces the Snippet-1 experiment shape: load (or generate) a large
//! topology, build the hierarchical partitioned path engine over it, answer
//! a seeded batch of KSP queries, and report per-(topology, seed)
//! success-rate / avg-hops / stretch with a cross-seed summary.
//!
//! Usage:
//! `cargo run --release --bin topo_ingest --
//!     [--edge-list FILE | --graphml FILE] [--synthetic ba,ws,grid,random]
//!     [--nodes 1000] [--tests 100] [--seeds 42,43] [--k 3]
//!     [--depth 3] [--leaf 128] [--branching 8] [--landmarks 32]
//!     [--emit-edge-list FILE] [--output FILE] [--summary-output FILE]
//!     [--metrics-out FILE] [--trace-out FILE]`
//!
//! With no source flags all four synthetic models run. A real file is
//! labeled `RealWorld`; synthetic graphs are regenerated **per seed** (the
//! Snippet-1 convention), so each (model, seed) cell is an independent
//! draw. Malformed input files exit with status 2 and a `line N` message.
//!
//! Metrics per cell: `success_rate` = fraction of queried pairs that got at
//! least one path (on connected graphs this is 1.0 by the engine's
//! fallback guarantee); `avg_hops` = mean hop count of the best path;
//! `stretch` = mean (best returned delay / true shortest delay). The JSON
//! also carries the query mix (cross-leaf and exact-fallback fractions),
//! hierarchy depth metrics, and build/query wall times.
//!
//! `--metrics-out` / `--trace-out` enable the telemetry layer: the engines'
//! query-mix counters land in the registry (`hier.*`), build/query wall
//! times become trace spans, and the sinks are written at exit.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lowlat_core::hier::{EngineConfig, PartitionedPathEngine};
use lowlat_netgraph::hierarchy::HierarchyConfig;
use lowlat_netgraph::{shortest_path_tree, NodeId};
use lowlat_sim::runner::{flag_value, parse_flag, write_telemetry_sinks};
use lowlat_telemetry as telemetry;
use lowlat_topology::ingest::{self, EdgeListConfig, IngestedGraph};
use lowlat_topology::synth::{generate, SynthConfig, SynthModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One (topology, seed) cell's outcome.
struct CellResult {
    label: String,
    seed: u64,
    nodes: usize,
    cables: usize,
    tests: usize,
    success_rate: f64,
    avg_hops: f64,
    stretch: f64,
    cross_fraction: f64,
    fallback_fraction: f64,
    leaves: usize,
    landmarks: usize,
    build_ms: f64,
    query_us_mean: f64,
}

/// Where a cell's graph comes from.
enum Source {
    /// Shared pre-ingested graph (real file), index into `ingested`.
    File(usize),
    /// Regenerated per seed.
    Model(SynthModel),
}

fn mean_and_ci(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

/// Minimal JSON string escape (labels and paths only).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut edge_list: Option<String> = None;
    let mut graphml: Option<String> = None;
    let mut models: Vec<SynthModel> = Vec::new();
    let mut nodes = 1000usize;
    let mut tests = 100usize;
    let mut seeds = vec![42u64];
    let mut k = 3usize;
    let mut hier = HierarchyConfig::default();
    let mut landmarks = 32usize;
    let mut emit: Option<String> = None;
    let mut output: Option<String> = None;
    let mut summary_output: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--edge-list" => {
                edge_list = Some(flag_value(&args, i, "--edge-list").to_string());
                i += 1;
            }
            "--graphml" => {
                graphml = Some(flag_value(&args, i, "--graphml").to_string());
                i += 1;
            }
            "--synthetic" => {
                for spec in flag_value(&args, i, "--synthetic").split(',') {
                    let spec = spec.trim();
                    if spec.is_empty() {
                        continue;
                    }
                    match SynthModel::parse(spec) {
                        Some(m) => models.push(m),
                        None => {
                            eprintln!(
                                "error: unknown synthetic model '{spec}' (ba, ws, grid, random)"
                            );
                            std::process::exit(2);
                        }
                    }
                }
                i += 1;
            }
            "--nodes" => {
                nodes = parse_flag("--nodes", flag_value(&args, i, "--nodes"));
                i += 1;
            }
            "--tests" => {
                tests = parse_flag("--tests", flag_value(&args, i, "--tests"));
                i += 1;
            }
            "--seeds" => {
                seeds = flag_value(&args, i, "--seeds")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| parse_flag("--seeds", s.trim()))
                    .collect();
                if seeds.is_empty() {
                    eprintln!("error: --seeds expects at least one seed");
                    std::process::exit(2);
                }
                i += 1;
            }
            "--k" => {
                k = parse_flag::<usize>("--k", flag_value(&args, i, "--k")).max(1);
                i += 1;
            }
            "--depth" => {
                hier.max_depth = parse_flag("--depth", flag_value(&args, i, "--depth"));
                i += 1;
            }
            "--leaf" => {
                hier.max_leaf = parse_flag("--leaf", flag_value(&args, i, "--leaf"));
                i += 1;
            }
            "--branching" => {
                hier.branching = parse_flag("--branching", flag_value(&args, i, "--branching"));
                i += 1;
            }
            "--landmarks" => {
                landmarks = parse_flag("--landmarks", flag_value(&args, i, "--landmarks"));
                i += 1;
            }
            "--emit-edge-list" => {
                emit = Some(flag_value(&args, i, "--emit-edge-list").to_string());
                i += 1;
            }
            "--output" => {
                output = Some(flag_value(&args, i, "--output").to_string());
                i += 1;
            }
            "--summary-output" => {
                summary_output = Some(flag_value(&args, i, "--summary-output").to_string());
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(flag_value(&args, i, "--metrics-out").to_string());
                i += 1;
            }
            "--trace-out" => {
                trace_out = Some(flag_value(&args, i, "--trace-out").to_string());
                i += 1;
            }
            other => {
                eprintln!("error: unknown flag '{other}' (see the module docs for usage)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if metrics_out.is_some() || trace_out.is_some() {
        telemetry::set_enabled(true);
    }

    // Ingest real files up front (shared across seeds); malformed input is
    // an exit-2 with the offending line number.
    let mut ingested: Vec<IngestedGraph> = Vec::new();
    let mut sources: Vec<(String, Source)> = Vec::new();
    if let Some(path) = &edge_list {
        let text = read_or_die(path);
        match ingest::from_edge_list("RealWorld", &text, &EdgeListConfig::default()) {
            Ok(g) => {
                sources.push(("RealWorld".to_string(), Source::File(ingested.len())));
                ingested.push(g);
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &graphml {
        let text = read_or_die(path);
        match ingest::from_graphml("RealWorld", &text, &EdgeListConfig::default()) {
            Ok(g) => {
                let label =
                    if edge_list.is_some() { "RealWorldGraphml" } else { "RealWorld" }.to_string();
                sources.push((label, Source::File(ingested.len())));
                ingested.push(g);
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if sources.is_empty() && models.is_empty() {
        models = SynthModel::ALL.to_vec();
    }
    for m in &models {
        sources.push((m.label().to_string(), Source::Model(*m)));
    }

    // --emit-edge-list writes the first source's graph (synthetic: first
    // seed) so CI can round-trip generator output through the parser.
    if let Some(path) = &emit {
        let g = match &sources[0].1 {
            Source::File(gi) => ingest::to_edge_list(&ingested[*gi]),
            Source::Model(m) => ingest::to_edge_list(&generate(
                *m,
                &SynthConfig { nodes, seed: seeds[0], ..Default::default() },
            )),
        };
        std::fs::write(path, g).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote edge list for {} to {path}", sources[0].0);
    }

    let engine_cfg = EngineConfig { hierarchy: hier, landmarks };
    eprintln!(
        "ingest space: {} topologies ({}) x {} seeds, {} tests each, k={}, \
         hierarchy depth<={} leaf<={} branching={} landmarks={}",
        sources.len(),
        sources.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>().join(","),
        seeds.len(),
        tests,
        k,
        hier.max_depth,
        hier.max_leaf,
        hier.branching,
        landmarks,
    );

    // (source, seed) cells are independent; work-steal them into
    // pre-assigned slots so output order never depends on worker count.
    let cells: Vec<(usize, u64)> = sources
        .iter()
        .enumerate()
        .flat_map(|(si, _)| seeds.iter().map(move |&s| (si, s)))
        .collect();
    let slots: Mutex<Vec<Option<CellResult>>> =
        Mutex::new((0..cells.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(cells.len()) {
            scope.spawn(|| loop {
                let ci = next.fetch_add(1, Ordering::Relaxed);
                if ci >= cells.len() {
                    break;
                }
                let (si, seed) = cells[ci];
                let (label, source) = &sources[si];
                // Synthetic graphs are per-seed draws; files are shared.
                let own;
                let graph_ref = match source {
                    Source::File(gi) => &ingested[*gi],
                    Source::Model(m) => {
                        own = generate(*m, &SynthConfig { nodes, seed, ..Default::default() });
                        &own
                    }
                };
                let g = graph_ref.graph();
                let build_span = telemetry::timed_span("ingest.build_engine", "ingest");
                let engine = PartitionedPathEngine::build(g, &engine_cfg);
                let build_ms = build_span.finish_ms();

                let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let n = g.node_count() as u32;
                let mut ok = 0usize;
                let mut hops = 0usize;
                let mut stretch_sum = 0.0f64;
                let batch_span = telemetry::timed_span("ingest.query_batch", "ingest");
                for _ in 0..tests {
                    let src = NodeId(rng.gen_range(0..n));
                    let dst = loop {
                        let d = NodeId(rng.gen_range(0..n));
                        if d != src {
                            break d;
                        }
                    };
                    let paths = engine.paths(src, dst, k);
                    if let Some(best) = paths.first() {
                        ok += 1;
                        hops += best.hop_count();
                        let flat = shortest_path_tree(g, src, None, None).dist_ms(dst);
                        stretch_sum += best.delay_ms() / flat;
                    }
                }
                let batch_ms = batch_span.finish_ms();
                let query_us_mean = if tests > 0 { batch_ms * 1e3 / tests as f64 } else { 0.0 };
                let (cross, fallback) = {
                    let (_, c, f) = engine.stats().snapshot();
                    (c, f)
                };
                slots.lock().expect("slots")[ci] = Some(CellResult {
                    label: label.clone(),
                    seed,
                    nodes: g.node_count(),
                    cables: graph_ref.cable_count(),
                    tests,
                    success_rate: if tests > 0 { ok as f64 / tests as f64 } else { 0.0 },
                    avg_hops: if ok > 0 { hops as f64 / ok as f64 } else { 0.0 },
                    stretch: if ok > 0 { stretch_sum / ok as f64 } else { 0.0 },
                    cross_fraction: if tests > 0 { cross as f64 / tests as f64 } else { 0.0 },
                    fallback_fraction: if tests > 0 { fallback as f64 / tests as f64 } else { 0.0 },
                    leaves: engine.leaf_ids().len(),
                    landmarks: engine.landmark_count(),
                    build_ms,
                    query_us_mean,
                });
            });
        }
    });
    let results: Vec<CellResult> =
        slots.into_inner().expect("slots").into_iter().flatten().collect();

    // Cross-seed summary in the Snippet-1 line format.
    let mut summary_lines: Vec<String> = Vec::new();
    let mut summary_json: Vec<String> = Vec::new();
    for (label, _) in &sources {
        let rows: Vec<&CellResult> =
            results.iter().filter(|r| &r.label == label && r.tests > 0).collect();
        if rows.is_empty() {
            continue;
        }
        let (sr, sr_ci) = mean_and_ci(&rows.iter().map(|r| r.success_rate).collect::<Vec<_>>());
        let (ah, ah_ci) = mean_and_ci(&rows.iter().map(|r| r.avg_hops).collect::<Vec<_>>());
        let (st, st_ci) = mean_and_ci(&rows.iter().map(|r| r.stretch).collect::<Vec<_>>());
        summary_lines.push(format!(
            "{label}: success_rate={sr:.4} +/- {sr_ci:.4}, avg_hops={ah:.4} +/- {ah_ci:.4}, \
             stretch={st:.4} +/- {st_ci:.4}"
        ));
        summary_json.push(format!(
            "{{\"label\": {}, \"seeds\": {}, \"tests\": {}, \
             \"success_rate\": {sr:.6}, \"success_rate_ci\": {sr_ci:.6}, \
             \"avg_hops\": {ah:.6}, \"avg_hops_ci\": {ah_ci:.6}, \
             \"stretch\": {st:.6}, \"stretch_ci\": {st_ci:.6}}}",
            jstr(label),
            rows.len(),
            rows[0].tests,
        ));
    }
    for line in &summary_lines {
        eprintln!("{line}");
    }
    if let Some(path) = &summary_output {
        let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        });
        for line in &summary_lines {
            writeln!(f, "{line}").expect("write summary");
        }
    }

    let result_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"label\": {}, \"seed\": {}, \"nodes\": {}, \"cables\": {}, \
                 \"tests\": {}, \"success_rate\": {:.6}, \"avg_hops\": {:.6}, \
                 \"stretch\": {:.6}, \"cross_fraction\": {:.6}, \
                 \"fallback_fraction\": {:.6}, \"leaves\": {}, \"landmarks\": {}, \
                 \"build_ms\": {:.3}, \"query_us_mean\": {:.3}}}",
                jstr(&r.label),
                r.seed,
                r.nodes,
                r.cables,
                r.tests,
                r.success_rate,
                r.avg_hops,
                r.stretch,
                r.cross_fraction,
                r.fallback_fraction,
                r.leaves,
                r.landmarks,
                r.build_ms,
                r.query_us_mean,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\"tests\": {}, \"k\": {}, \"seeds\": [{}], \"nodes\": {}, \
         \"max_depth\": {}, \"max_leaf\": {}, \"branching\": {}, \"landmarks\": {}}},\n  \
         \"results\": [\n    {}\n  ],\n  \"summary\": [\n    {}\n  ]\n}}",
        tests,
        k,
        seeds.iter().map(u64::to_string).collect::<Vec<_>>().join(", "),
        nodes,
        hier.max_depth,
        hier.max_leaf,
        hier.branching,
        landmarks,
        result_json.join(",\n    "),
        summary_json.join(",\n    "),
    );
    match &output {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    write_telemetry_sinks(metrics_out.as_deref(), trace_out.as_deref());
}
