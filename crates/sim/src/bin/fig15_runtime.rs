//! Regenerates Figure 15: runtime CDFs (LDR warm/cold, link-based).
//!
//! Usage: `cargo run --release --bin fig15_runtime -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig15_runtime::run(scale);
    lowlat_sim::figures::emit("Figure 15: runtime CDFs (LDR warm/cold, link-based)", &series);
}
