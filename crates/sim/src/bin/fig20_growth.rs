//! Regenerates Figure 20: latency stretch before vs after LLPD-guided growth.
//!
//! Usage: `cargo run --release --bin fig20_growth -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig20_growth::run(scale);
    lowlat_sim::figures::emit(
        "Figure 20: latency stretch before vs after LLPD-guided growth",
        &series,
    );
}
