//! Exports the 116-network synthetic corpus as `.topo` text files (the
//! format in `lowlat_topology::format`) plus a manifest with per-network
//! statistics, so the corpus can be inspected or consumed by other tools.
//!
//! Usage: `cargo run --release --bin zoo_export -- [output-dir]`
//! (default `./zoo-export`)

use std::fs;
use std::path::PathBuf;

use lowlat_core::llpd::LlpdConfig;
use lowlat_sim::runner::llpd_map;
use lowlat_topology::to_text;
use lowlat_topology::zoo::{synthetic_zoo, ZooClass};

fn main() -> std::io::Result<()> {
    let dir: PathBuf = std::env::args().nth(1).unwrap_or_else(|| "zoo-export".into()).into();
    fs::create_dir_all(&dir)?;
    let zoo = synthetic_zoo();
    eprintln!("computing LLPD for {} networks...", zoo.len());
    let llpds = llpd_map(&zoo, &LlpdConfig::default());

    let mut manifest = String::from("name\tclass\tpops\tcables\tdiameter_ms\tllpd\n");
    for (topo, llpd) in zoo.iter().zip(&llpds) {
        let file = dir.join(format!("{}.topo", topo.name()));
        fs::write(&file, to_text(topo))?;
        manifest.push_str(&format!(
            "{}\t{:?}\t{}\t{}\t{:.2}\t{:.4}\n",
            topo.name(),
            ZooClass::of(topo),
            topo.pop_count(),
            topo.cables().len(),
            topo.diameter_ms(),
            llpd
        ));
    }
    fs::write(dir.join("MANIFEST.tsv"), &manifest)?;
    println!("wrote {} networks + MANIFEST.tsv to {}", zoo.len(), dir.display());
    Ok(())
}
