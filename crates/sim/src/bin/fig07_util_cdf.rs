//! Regenerates Figure 7: link-utilization CDF on GTS-like (LatOpt vs MinMax).
//!
//! Usage: `cargo run --release --bin fig07_util_cdf -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig07_util::run(scale);
    lowlat_sim::figures::emit(
        "Figure 7: link-utilization CDF on GTS-like (LatOpt vs MinMax)",
        &series,
    );
}
