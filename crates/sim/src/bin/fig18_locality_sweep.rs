//! Regenerates Figure 18: median max stretch vs locality (LLPD > 0.5).
//!
//! Usage: `cargo run --release --bin fig18_locality_sweep -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig18_locality::run(scale);
    lowlat_sim::figures::emit("Figure 18: median max stretch vs locality (LLPD > 0.5)", &series);
}
