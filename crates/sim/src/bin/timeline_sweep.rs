//! Timeline sweep: the §5 deployment cycle run across the corpus for any
//! set of controllers — bursty-trace scenarios join the sweep surface.
//!
//! Where `scenario_sweep` crosses static operating points, this crosses
//! *dynamics*: every (network × controller) cell simulates the
//! minute-by-minute measure→optimize→install loop against evolving traffic
//! and reports the queueing that actually materialized, the LP warm-start
//! telemetry that makes the per-minute cycle affordable, and the service
//! axes of the loop itself: decision latency and path churn.
//!
//! Usage:
//! `cargo run --release --bin timeline_sweep -- [--quick|--std|--full]
//!     [--minutes N] [--warmup N] [--cv 0.3] [--seed 99]
//!     [--diurnal 0.0] [--period 1440] [--networks Abilene,...]
//!     [--schemes LDR,SP,static:SP]
//!     [--metrics-out FILE] [--trace-out FILE]`
//!
//! Controllers are registry specs, `static:`-prefixed for the placed-once
//! baseline or `bounded:`-prefixed for the churn-bounded variant.
//! `--diurnal`/`--period` modulate the minute means with a sine cycle for
//! long-horizon runs; `--networks` restricts the corpus to the named
//! networks (the named corpus — Abilene, GtsCe-like, … — plus the
//! synthetic zoo). One TSV row per (network, controller). New columns are
//! appended after the original twelve so existing column indices stay
//! valid.
//!
//! `--metrics-out` / `--trace-out` enable the telemetry layer and write a
//! metrics snapshot (JSON, or TSV with a `.tsv` path) and a chrome-trace
//! (load in Perfetto / `chrome://tracing`) when the sweep finishes. The
//! TSV columns are unchanged either way.

use std::sync::atomic::{AtomicUsize, Ordering};

use lowlat_core::scale::ScaleToLoad;
use lowlat_sim::runner::{flag_value, parse_flag, write_telemetry_sinks, Scale};
use lowlat_sim::timeline::{self, simulate, Controller, TimelineConfig};
use lowlat_telemetry as telemetry;
use lowlat_tmgen::{GravityTmGen, TmGenConfig};
use lowlat_topology::zoo::{self, named};
use lowlat_topology::Topology;

/// Resolves `--networks` names against the named corpus plus the synthetic
/// zoo (case-insensitive); exits with the available names on a miss.
fn select_named(names: &str) -> Vec<Topology> {
    let pool: Vec<Topology> = [
        named::abilene(),
        named::gts_like(),
        named::cogent_like(),
        named::google_like(),
        named::geant_like(),
        named::nsfnet(),
    ]
    .into_iter()
    .chain(zoo::synthetic_zoo())
    .collect();
    names
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|want| {
            let want = want.trim();
            pool.iter().find(|t| t.name().eq_ignore_ascii_case(want)).cloned().unwrap_or_else(
                || {
                    eprintln!(
                        "error: unknown network `{want}`; known: {}",
                        pool.iter().map(|t| t.name().to_string()).collect::<Vec<_>>().join(", ")
                    );
                    std::process::exit(2);
                },
            )
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut minutes: Option<usize> = None;
    let mut warmup: Option<usize> = None;
    let mut cv = timeline::DEFAULT_CV;
    let mut seed = timeline::DEFAULT_SEED;
    let mut diurnal = 0.0f64;
    let mut period = 1440usize;
    let mut networks: Option<String> = None;
    let mut specs = vec!["LDR".to_string(), "SP".to_string(), "static:SP".to_string()];
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--minutes" => {
                minutes = Some(parse_flag("--minutes", flag_value(&args, i, "--minutes")));
                i += 1;
            }
            "--warmup" => {
                warmup = Some(parse_flag("--warmup", flag_value(&args, i, "--warmup")));
                i += 1;
            }
            "--cv" => {
                cv = parse_flag("--cv", flag_value(&args, i, "--cv"));
                i += 1;
            }
            "--seed" => {
                seed = parse_flag("--seed", flag_value(&args, i, "--seed"));
                i += 1;
            }
            "--diurnal" => {
                diurnal = parse_flag("--diurnal", flag_value(&args, i, "--diurnal"));
                i += 1;
            }
            "--period" => {
                period = parse_flag("--period", flag_value(&args, i, "--period"));
                i += 1;
            }
            "--networks" => {
                networks = Some(flag_value(&args, i, "--networks").to_string());
                i += 1;
            }
            "--schemes" => {
                specs = flag_value(&args, i, "--schemes")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(flag_value(&args, i, "--metrics-out").to_string());
                i += 1;
            }
            "--trace-out" => {
                trace_out = Some(flag_value(&args, i, "--trace-out").to_string());
                i += 1;
            }
            _ => {} // --quick/--std/--full (or junk) handled by Scale::parse
        }
        i += 1;
    }
    let scale = Scale::from_args_filtered(&[
        "--minutes",
        "--warmup",
        "--cv",
        "--seed",
        "--diurnal",
        "--period",
        "--networks",
        "--schemes",
        "--metrics-out",
        "--trace-out",
    ]);
    if metrics_out.is_some() || trace_out.is_some() {
        telemetry::set_enabled(true);
    }
    let controllers: Vec<Controller> = specs
        .iter()
        .map(|s| {
            Controller::parse(s).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            })
        })
        .collect();
    // Scale-dependent defaults: the timeline multiplies whole-corpus cost by
    // its minute count, so --quick trims both axes.
    let config = TimelineConfig {
        minutes: minutes.unwrap_or(match scale {
            Scale::Quick => 3,
            Scale::Std => timeline::DEFAULT_MINUTES,
            Scale::Full => 2 * timeline::DEFAULT_MINUTES,
        }),
        warmup_minutes: warmup.unwrap_or(match scale {
            Scale::Quick => 2,
            _ => timeline::DEFAULT_WARMUP_MINUTES,
        }),
        cv,
        seed,
        diurnal_amplitude: diurnal,
        diurnal_period: period,
    };

    let nets = match &networks {
        Some(names) => select_named(names),
        None => scale.select_networks(lowlat_topology::zoo::synthetic_zoo()),
    };
    eprintln!(
        "timeline space: {} networks x {} controllers ({}), {} minutes (+{} warm-up), cv {cv}, \
         seed {seed}, diurnal {diurnal}",
        nets.len(),
        controllers.len(),
        controllers.iter().map(|c| c.name()).collect::<Vec<_>>().join(","),
        config.minutes,
        config.warmup_minutes,
    );

    // (network, controller) cells are independent: work-steal them off an
    // atomic counter into pre-assigned slots (deterministic output order).
    struct Row {
        network: String,
        pops: usize,
        links: usize,
        controller: String,
        worst_queue_ms: f64,
        queue_minutes: usize,
        mean_stretch: f64,
        lp_solves: usize,
        lp_warm_hits: usize,
        decision_ms_med: f64,
        paths_changed: usize,
        moved_volume_frac: f64,
    }
    let tms: Vec<_> = nets
        .iter()
        .map(|t| GravityTmGen::new(TmGenConfig::default()).generate(t, 0).scaled_to_load(t, 0.7))
        .collect();
    let cells: Vec<(usize, usize)> =
        (0..nets.len()).flat_map(|n| (0..controllers.len()).map(move |c| (n, c))).collect();
    // Pre-assigned result slots keep the output order deterministic
    // whatever the worker count (the engine's idiom).
    let slots: std::sync::Mutex<Vec<Option<Row>>> =
        std::sync::Mutex::new((0..cells.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(cells.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let (n, c) = cells[i];
                let out = simulate(&nets[n], &tms[n], &controllers[c], &config);
                let row = Row {
                    network: nets[n].name().to_string(),
                    pops: nets[n].pop_count(),
                    links: nets[n].link_count(),
                    controller: controllers[c].name(),
                    worst_queue_ms: out.worst_queue_ms(),
                    queue_minutes: out.minutes_with_queue_above(1.0),
                    mean_stretch: out.mean_stretch(),
                    lp_solves: out.lp_solves,
                    lp_warm_hits: out.lp_warm_hits,
                    decision_ms_med: out.median_decision_ms(),
                    paths_changed: out.total_paths_changed(),
                    moved_volume_frac: out.mean_moved_volume_fraction(),
                };
                slots.lock().expect("slots")[i] = Some(row);
            });
        }
    });
    println!(
        "network\tpops\tlinks\tcontroller\tminutes\tcv\tseed\tworst_queue_ms\tqueue_minutes\t\
         mean_stretch\tlp_solves\tlp_warm_hits\tdecision_ms_med\tpaths_changed\t\
         moved_volume_frac"
    );
    for row in slots.into_inner().expect("slots").into_iter().flatten() {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\t{}\t{:.4}\t{}\t{}\t{:.3}\t{}\t{:.4}",
            row.network,
            row.pops,
            row.links,
            row.controller,
            config.minutes,
            cv,
            seed,
            row.worst_queue_ms,
            row.queue_minutes,
            row.mean_stretch,
            row.lp_solves,
            row.lp_warm_hits,
            row.decision_ms_med,
            row.paths_changed,
            row.moved_volume_frac,
        );
    }
    write_telemetry_sinks(metrics_out.as_deref(), trace_out.as_deref());
}
