//! Regenerates Figure 9: CDF of measured/predicted bitrate (Algorithm 1).
//!
//! Usage: `cargo run --release --bin fig09_prediction -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig09_prediction::run(scale);
    lowlat_sim::figures::emit("Figure 9: CDF of measured/predicted bitrate (Algorithm 1)", &series);
}
