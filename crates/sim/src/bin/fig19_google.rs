//! Regenerates Figure 19: Figure 3 plus the Google-like WAN datapoint.
//!
//! Usage: `cargo run --release --bin fig19_google -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig19_google::run(scale);
    lowlat_sim::figures::emit("Figure 19: Figure 3 plus the Google-like WAN datapoint", &series);
}
