//! Failure sweep: the survivability axis of the experiment surface.
//!
//! Where `scenario_sweep` crosses static operating points and
//! `timeline_sweep` crosses traffic dynamics, this crosses *topology
//! dynamics*: every (network × scheme × failure scenario) cell runs the
//! full §5 reaction — repair the shared path cache under the failure mask
//! (keeping every pair the failure missed), drop disconnected demand,
//! re-place the survivors through the scheme's warm LP context — and
//! reports both the outcome (unroutable fraction, stretch, overload) and
//! the recovery telemetry (kept vs repaired pairs, warm-started solves,
//! wall time).
//!
//! Usage:
//! `cargo run --release --bin failure_sweep -- [--quick|--std|--full]
//!     [--scenarios single,node,srlg,geo,random,brownout] [--k 2]
//!     [--count 5] [--seed 7] [--loads 0.5,0.7] [--degrade 0.5]
//!     [--corridor-km 100] [--schemes LDR,LatOpt,SP] [--frontier]
//!     [--metrics-out FILE] [--trace-out FILE]`
//!
//! Scenario axes: `single` (exhaustive single-cable), `node` (each PoP
//! down), `srlg` (per-PoP conduit groups), `geo` (great-circle corridor
//! SRLGs within `--corridor-km`), `random` (`--count` draws of `--k`
//! simultaneous cable failures, deterministic in `--seed`), `brownout`
//! (each cable degraded to `--degrade` of capacity — nothing down, so the
//! LP must fit against *effective* capacities). One TSV row per (network,
//! scheme, load, scenario); `--load X` is shorthand for `--loads X`.
//!
//! `--frontier` switches to availability-frontier output: per (network,
//! scheme, load) cell, nearest-rank quantiles across the scenario set of
//! unroutable fraction, worst path stretch and worst overload — the CDF
//! rows Figure-style availability curves are plotted from.
//!
//! `--metrics-out` / `--trace-out` enable the telemetry layer and write a
//! metrics snapshot and a chrome-trace when the sweep finishes; the
//! `repair_ms` column and the trace's per-scenario span read the same
//! measurement.

use std::sync::atomic::{AtomicUsize, Ordering};

use lowlat_core::failure::{self, replace_under_failure, FailureScenario};
use lowlat_core::pathset::PathCache;
use lowlat_core::scale::ScaleToLoad;
use lowlat_core::schemes::{registry, SolveContext};
use lowlat_sim::runner::{flag_value, parse_flag, write_telemetry_sinks, Scale};
use lowlat_sim::stats::Cdf;
use lowlat_telemetry as telemetry;
use lowlat_tmgen::{GravityTmGen, TmGenConfig};
use lowlat_topology::zoo::named;
use lowlat_topology::Topology;

/// The named backbone corpus the survivability claims are made on.
fn named_corpus(scale: Scale) -> Vec<Topology> {
    match scale {
        Scale::Quick => vec![named::abilene(), named::gts_like()],
        _ => vec![
            named::abilene(),
            named::nsfnet(),
            named::geant_like(),
            named::gts_like(),
            named::cogent_like(),
            named::google_like(),
        ],
    }
}

struct ScenarioParams {
    k: usize,
    count: usize,
    seed: u64,
    degrade: f64,
    corridor_km: f64,
}

fn scenarios_for(topo: &Topology, axes: &[String], p: &ScenarioParams) -> Vec<FailureScenario> {
    let mut out = Vec::new();
    for axis in axes {
        match axis.as_str() {
            "single" => out.extend(failure::single_link_failures(topo)),
            "node" => out.extend(failure::node_failures(topo)),
            "srlg" => out.extend(failure::pop_conduit_srlgs(topo)),
            "geo" => out.extend(failure::geo_corridor_srlgs(topo, p.corridor_km)),
            "random" => {
                let k = p.k.min(topo.cables().len());
                out.extend(failure::random_k_link_failures(topo, k, p.count, p.seed));
            }
            "brownout" => out.extend(failure::brownout_failures(topo, p.degrade)),
            other => {
                eprintln!(
                    "error: unknown scenario axis '{other}' \
                     (single, node, srlg, geo, random, brownout)"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

struct Row {
    network: String,
    pops: usize,
    links: usize,
    scheme: String,
    scenario: String,
    failed_elements: usize,
    kept_pairs: usize,
    repaired_pairs: usize,
    paths_regrown: usize,
    unroutable_fraction: f64,
    latency_stretch: f64,
    max_path_stretch: f64,
    max_overload: f64,
    lp_solves: usize,
    lp_warm_hits: usize,
    repair_ms: f64,
    load: f64,
}

/// Nearest-rank quantiles reported per frontier cell.
const FRONTIER_QUANTILES: [f64; 5] = [0.5, 0.9, 0.95, 0.99, 1.0];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut axes = vec!["single".to_string()];
    let mut k = 2usize;
    let mut count = 5usize;
    let mut seed = 7u64;
    let mut loads = vec![0.7f64];
    let mut degrade = 0.5f64;
    let mut corridor_km = 100.0f64;
    let mut frontier = false;
    let mut specs = vec!["LDR".to_string(), "LatOpt".to_string(), "SP".to_string()];
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scenarios" => {
                axes = flag_value(&args, i, "--scenarios")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                i += 1;
            }
            "--k" => {
                k = parse_flag("--k", flag_value(&args, i, "--k"));
                i += 1;
            }
            "--count" => {
                count = parse_flag("--count", flag_value(&args, i, "--count"));
                i += 1;
            }
            "--seed" => {
                seed = parse_flag("--seed", flag_value(&args, i, "--seed"));
                i += 1;
            }
            // `--load 0.7` is the single-point alias for `--loads`.
            flag @ ("--load" | "--loads") => {
                loads = flag_value(&args, i, flag)
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| parse_flag(flag, s.trim()))
                    .collect();
                if loads.is_empty() {
                    eprintln!("error: {flag} expects at least one load");
                    std::process::exit(2);
                }
                i += 1;
            }
            "--degrade" => {
                degrade = parse_flag("--degrade", flag_value(&args, i, "--degrade"));
                if !(0.0..1.0).contains(&degrade) || degrade == 0.0 {
                    eprintln!("error: --degrade expects a factor in (0, 1), got {degrade}");
                    std::process::exit(2);
                }
                i += 1;
            }
            "--corridor-km" => {
                corridor_km = parse_flag("--corridor-km", flag_value(&args, i, "--corridor-km"));
                i += 1;
            }
            "--frontier" => frontier = true,
            "--schemes" => {
                specs = flag_value(&args, i, "--schemes")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(flag_value(&args, i, "--metrics-out").to_string());
                i += 1;
            }
            "--trace-out" => {
                trace_out = Some(flag_value(&args, i, "--trace-out").to_string());
                i += 1;
            }
            _ => {} // --quick/--std/--full (or junk) handled by Scale::parse
        }
        i += 1;
    }
    // Scale::parse rejects unknown flags; strip the valueless --frontier
    // and hand it the value flags so it skips their arguments.
    let scale_args: Vec<String> = args.iter().filter(|a| *a != "--frontier").cloned().collect();
    let scale = Scale::parse(
        &scale_args,
        &[
            "--scenarios",
            "--k",
            "--count",
            "--seed",
            "--load",
            "--loads",
            "--degrade",
            "--corridor-km",
            "--schemes",
            "--metrics-out",
            "--trace-out",
        ],
    )
    .unwrap_or_else(|message| {
        eprintln!("error: {message}");
        std::process::exit(2);
    });
    if metrics_out.is_some() || trace_out.is_some() {
        telemetry::set_enabled(true);
    }
    let schemes: Vec<_> = specs
        .iter()
        .map(|s| {
            registry::build(s).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            })
        })
        .collect();
    let nets = named_corpus(scale);
    // One matrix per (network, load): the same gravity structure swept
    // across operating points.
    let tms: Vec<Vec<_>> = nets
        .iter()
        .map(|t| {
            let raw = GravityTmGen::new(TmGenConfig::default()).generate(t, 0);
            loads.iter().map(|&load| raw.scaled_to_load(t, load)).collect()
        })
        .collect();
    let params = ScenarioParams { k, count, seed, degrade, corridor_km };
    let scenario_sets: Vec<Vec<FailureScenario>> =
        nets.iter().map(|t| scenarios_for(t, &axes, &params)).collect();
    // Intact all-pairs delays, once per network — every scenario row of a
    // network judges stretch against the same baseline.
    let intact_delays: Vec<Vec<Vec<f64>>> =
        nets.iter().map(|t| lowlat_netgraph::all_pairs_delays(t.graph())).collect();
    eprintln!(
        "failure space: {} networks x {} schemes ({}) x {} loads ({:?}), \
         {} scenarios total ({}){}",
        nets.len(),
        schemes.len(),
        schemes.iter().map(|s| s.name()).collect::<Vec<_>>().join(","),
        loads.len(),
        loads,
        scenario_sets.iter().map(Vec::len).sum::<usize>(),
        axes.join(","),
        if frontier { ", frontier quantiles" } else { "" },
    );

    // (network, scheme, load) cells are independent and each iterates its
    // scenarios sequentially over ONE shared cache + LP context — the
    // repair-not-rebuild, warm-not-cold recovery story. Work-steal cells
    // off an atomic counter into pre-assigned slots (deterministic order).
    let load_count = loads.len();
    let cells: Vec<(usize, usize, usize)> = (0..nets.len())
        .flat_map(|n| {
            (0..schemes.len()).flat_map(move |s| (0..load_count).map(move |li| (n, s, li)))
        })
        .collect();
    let slots: std::sync::Mutex<Vec<Option<Vec<Row>>>> =
        std::sync::Mutex::new((0..cells.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(cells.len()) {
            scope.spawn(|| loop {
                let ci = next.fetch_add(1, Ordering::Relaxed);
                if ci >= cells.len() {
                    break;
                }
                let (n, s, li) = cells[ci];
                let (net, tm, scheme) = (&nets[n], &tms[n][li], &schemes[s]);
                let cache = PathCache::new(net.graph());
                let mut ctx = SolveContext::new();
                // Pre-failure baseline warms the cache and the LP bases.
                scheme.place_with_context(&cache, tm, &mut ctx).unwrap_or_else(|e| {
                    panic!("{} baseline on {}: {e}", scheme.name(), net.name())
                });
                let mut rows = Vec::with_capacity(scenario_sets[n].len());
                for scenario in &scenario_sets[n] {
                    let mask = scenario.mask(net);
                    // Restore the intact view first: generators repaired for
                    // the previous scenario go back to pure, so each row
                    // measures repair against the warm pre-failure cache
                    // (direct mask-to-mask transitions would re-mask a
                    // monotonically growing pair set). Timed separately —
                    // repair_ms covers the failure reaction itself.
                    cache.clear_failure();
                    let scenario_span = telemetry::timed_span("failure_sweep.scenario", "failure");
                    let out = replace_under_failure(
                        scheme.as_ref(),
                        net,
                        &cache,
                        tm,
                        &mask,
                        &mut ctx,
                        Some(&intact_delays[n]),
                    )
                    .unwrap_or_else(|e| {
                        panic!("{} under {} on {}: {e}", scheme.name(), scenario.name, net.name())
                    });
                    // One measurement feeds both the repair_ms column and
                    // the trace's per-scenario span.
                    let repair_ms = scenario_span.finish_ms();
                    rows.push(Row {
                        network: net.name().to_string(),
                        pops: net.pop_count(),
                        links: net.link_count(),
                        scheme: scheme.name(),
                        scenario: scenario.name.clone(),
                        failed_elements: scenario.failed_elements(),
                        kept_pairs: out.repair.kept_pairs,
                        repaired_pairs: out.repair.repaired_pairs,
                        paths_regrown: out.repair.paths_regrown,
                        unroutable_fraction: out.impact.unroutable_fraction,
                        latency_stretch: out.impact.latency_stretch,
                        max_path_stretch: out.impact.max_path_stretch,
                        max_overload: out.impact.max_overload,
                        lp_solves: out.lp_solves,
                        lp_warm_hits: out.lp_warm_hits,
                        repair_ms,
                        load: loads[li],
                    });
                }
                slots.lock().expect("slots")[ci] = Some(rows);
            });
        }
    });
    let cell_rows: Vec<Vec<Row>> =
        slots.into_inner().expect("slots").into_iter().flatten().collect();
    if frontier {
        // Availability frontier: per (network, scheme, load) cell, the
        // scenario distribution collapsed to nearest-rank quantiles — one
        // row per quantile, so plotting `quantile` against any metric
        // column draws the availability CDF directly.
        println!(
            "network\tpops\tlinks\tscheme\tscenarios\tquantile\tunroutable_frac\t\
             max_path_stretch\tmax_overload\tload"
        );
        for rows in cell_rows {
            let Some(first) = rows.first() else { continue };
            let unroutable = Cdf::new(rows.iter().map(|r| r.unroutable_fraction).collect());
            let stretch = Cdf::new(rows.iter().map(|r| r.max_path_stretch).collect());
            let overload = Cdf::new(rows.iter().map(|r| r.max_overload).collect());
            for q in FRONTIER_QUANTILES {
                println!(
                    "{}\t{}\t{}\t{}\t{}\t{:.2}\t{:.4}\t{:.4}\t{:.4}\t{}",
                    first.network,
                    first.pops,
                    first.links,
                    first.scheme,
                    rows.len(),
                    q,
                    unroutable.quantile(q),
                    stretch.quantile(q),
                    overload.quantile(q),
                    first.load,
                );
            }
        }
        write_telemetry_sinks(metrics_out.as_deref(), trace_out.as_deref());
        return;
    }
    println!(
        "network\tpops\tlinks\tscheme\tscenario\tfailed_elements\tkept_pairs\trepaired_pairs\t\
         paths_regrown\tunroutable_frac\tlatency_stretch\tmax_path_stretch\tmax_overload\t\
         lp_solves\tlp_warm_hits\trepair_ms\tload"
    );
    for rows in cell_rows {
        for r in rows {
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{}\t{}\t{:.2}\t{}",
                r.network,
                r.pops,
                r.links,
                r.scheme,
                r.scenario,
                r.failed_elements,
                r.kept_pairs,
                r.repaired_pairs,
                r.paths_regrown,
                r.unroutable_fraction,
                r.latency_stretch,
                r.max_path_stretch,
                r.max_overload,
                r.lp_solves,
                r.lp_warm_hits,
                r.repair_ms,
                r.load,
            );
        }
    }
    write_telemetry_sinks(metrics_out.as_deref(), trace_out.as_deref());
}
