//! Regenerates Figure 3: congested-pair fraction vs LLPD under shortest-path routing.
//!
//! Usage: `cargo run --release --bin fig03_sp_congestion -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig03_sp::run(scale);
    lowlat_sim::figures::emit(
        "Figure 3: congested-pair fraction vs LLPD under shortest-path routing",
        &series,
    );
}
