//! Regenerates Figure 16 (a-c): CDFs of max path stretch by LLPD band and
//! headroom.
//!
//! Usage: `cargo run --release --bin fig16_max_stretch -- [--quick|--std|--full]`

use lowlat_sim::figures::fig16_stretch::{run, Panel};

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    for (panel, title) in [
        (Panel::LowLlpd, "Figure 16a: LLPD < 0.5, no headroom"),
        (Panel::HighLlpd, "Figure 16b: LLPD > 0.5, no headroom"),
        (Panel::HighLlpdHeadroom, "Figure 16c: LLPD > 0.5, 10% headroom"),
    ] {
        let series = run(scale, panel);
        lowlat_sim::figures::emit(title, &series);
    }
}
