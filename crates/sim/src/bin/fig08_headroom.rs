//! Regenerates Figure 8: median latency stretch vs LLPD as headroom rises.
//!
//! Usage: `cargo run --release --bin fig08_headroom -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig08_headroom::run(scale);
    lowlat_sim::figures::emit(
        "Figure 8: median latency stretch vs LLPD as headroom rises",
        &series,
    );
}
