//! Regenerates Figure 4: congestion + latency stretch vs LLPD (LatOpt, B4, MinMax, MinMaxK10).
//!
//! Usage: `cargo run --release --bin fig04_active_schemes -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig04_schemes::run(scale);
    lowlat_sim::figures::emit(
        "Figure 4: congestion + latency stretch vs LLPD (LatOpt, B4, MinMax, MinMaxK10)",
        &series,
    );
}
