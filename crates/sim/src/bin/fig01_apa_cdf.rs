//! Regenerates Figure 1: CDF of APA per network, path stretch limit 1.4.
//!
//! Usage: `cargo run --release --bin fig01_apa_cdf -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig01_apa::run(scale);
    lowlat_sim::figures::emit("Figure 1: CDF of APA per network, path stretch limit 1.4", &series);
}
