//! Free-form parameter sweep over the corpus: pick load, locality and
//! schemes from the command line and get one TSV row per (network, matrix,
//! scheme) — the raw-records interface behind all the aggregated figures.
//! For a multi-point (loads × localities) sweep see `scenario_sweep`.
//!
//! Usage:
//! `cargo run --release --bin grid_sweep -- [--quick|--std|--full]
//!     [--load 0.7] [--locality 1.0] [--schemes SP,ECMP,B4-h10,MinMaxK10,...]`

use lowlat_core::schemes::registry;
use lowlat_sim::output::print_records_tsv;
use lowlat_sim::runner::{flag_value, parse_flag, run_grid, RunGrid, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut load = 0.7f64;
    let mut locality = 1.0f64;
    let mut schemes = registry::schemes(registry::DEFAULT_SPECS);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--load" => {
                load = parse_flag("--load", flag_value(&args, i, "--load"));
                i += 1;
            }
            "--locality" => {
                locality = parse_flag("--locality", flag_value(&args, i, "--locality"));
                i += 1;
            }
            "--schemes" => {
                schemes =
                    registry::parse_csv(flag_value(&args, i, "--schemes")).unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    });
                i += 1;
            }
            _ => {} // --quick/--std/--full (or junk) handled by Scale::parse
        }
        i += 1;
    }
    let scale = Scale::from_args_filtered(&["--load", "--locality", "--schemes"]);
    let nets = scale.select_networks(lowlat_topology::zoo::synthetic_zoo());
    let grid = RunGrid { load, locality, tms_per_network: scale.tms_per_network(), schemes };
    eprintln!(
        "sweeping {} networks x {} matrices x {} schemes at load {load}, locality {locality}...",
        nets.len(),
        grid.tms_per_network,
        grid.schemes.len()
    );
    let records = run_grid(&nets, &grid);
    print_records_tsv(&records, None, std::io::stdout().lock()).expect("stdout");
}
