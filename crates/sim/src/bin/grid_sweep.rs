//! Free-form parameter sweep over the corpus: pick load, locality and
//! schemes from the command line and get one TSV row per (network, matrix,
//! scheme) — the raw-records interface behind all the aggregated figures.
//!
//! Usage:
//! `cargo run --release --bin grid_sweep -- [--quick|--std|--full]
//!     [--load 0.7] [--locality 1.0] [--schemes SP,ECMP,B4,MinMax,MinMaxK10,LatOpt,LDR]`

use lowlat_sim::runner::{run_grid, RunGrid, Scale, SchemeKind};

fn parse_schemes(spec: &str) -> Vec<SchemeKind> {
    spec.split(',')
        .map(|s| match s.trim() {
            "SP" => SchemeKind::Sp,
            "B4" => SchemeKind::B4 { headroom: 0.0 },
            "MinMax" => SchemeKind::MinMax,
            "MinMaxK10" => SchemeKind::MinMaxK(10),
            "LatOpt" => SchemeKind::LatOpt { headroom: 0.0 },
            "LDR" => SchemeKind::Ldr { headroom: 0.1 },
            other => {
                eprintln!("unknown scheme '{other}', expected SP,B4,MinMax,MinMaxK10,LatOpt,LDR");
                std::process::exit(2);
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut load = 0.7f64;
    let mut locality = 1.0f64;
    let mut schemes = vec![
        SchemeKind::Sp,
        SchemeKind::B4 { headroom: 0.0 },
        SchemeKind::MinMax,
        SchemeKind::LatOpt { headroom: 0.0 },
        SchemeKind::Ldr { headroom: 0.1 },
    ];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--load" => {
                load = args.get(i + 1).and_then(|v| v.parse().ok()).expect("--load <f64>");
                i += 1;
            }
            "--locality" => {
                locality = args.get(i + 1).and_then(|v| v.parse().ok()).expect("--locality <f64>");
                i += 1;
            }
            "--schemes" => {
                schemes = parse_schemes(args.get(i + 1).expect("--schemes <list>"));
                i += 1;
            }
            _ => {} // --quick/--std/--full handled by Scale::from_args
        }
        i += 1;
    }
    let scale = Scale::from_args_filtered(&["--load", "--locality", "--schemes"]);
    let nets = scale.select_networks(lowlat_topology::zoo::synthetic_zoo());
    let grid = RunGrid { load, locality, tms_per_network: scale.tms_per_network(), schemes };
    eprintln!(
        "sweeping {} networks x {} matrices x {} schemes at load {load}, locality {locality}...",
        nets.len(),
        grid.tms_per_network,
        grid.schemes.len()
    );
    let records = run_grid(&nets, &grid);
    println!(
        "network\tclass\tllpd\ttm\tscheme\tcongested_fraction\tlatency_stretch\tmax_stretch\tmax_util\tfits\truntime_ms"
    );
    for r in &records {
        println!(
            "{}\t{:?}\t{:.4}\t{}\t{}\t{:.6}\t{:.6}\t{:.4}\t{:.4}\t{}\t{:.2}",
            r.network,
            r.class,
            r.llpd,
            r.tm_index,
            r.scheme,
            r.congested_fraction,
            r.latency_stretch,
            r.max_flow_stretch,
            r.max_utilization,
            r.fits,
            r.runtime_ms
        );
    }
}
