//! Regenerates Figure 10: sigma(t) vs sigma(t+1) scatter.
//!
//! Usage: `cargo run --release --bin fig10_sigma_scatter -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig10_sigma::run(scale);
    lowlat_sim::figures::emit("Figure 10: sigma(t) vs sigma(t+1) scatter", &series);
}
