//! Regenerates Figure 17: median max stretch vs load (LLPD > 0.5).
//!
//! Usage: `cargo run --release --bin fig17_load_sweep -- [--quick|--std|--full]`

fn main() {
    let scale = lowlat_sim::runner::Scale::from_args();
    let series = lowlat_sim::figures::fig17_load::run(scale);
    lowlat_sim::figures::emit("Figure 17: median max stretch vs load (LLPD > 0.5)", &series);
}
