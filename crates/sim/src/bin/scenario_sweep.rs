//! Open scenario sweep: the figure grids generalized to any
//! (load × locality × scheme) cross product over the corpus, one TSV row
//! per (scenario, network, matrix, scheme).
//!
//! Where the figure binaries reproduce the paper's fixed operating points,
//! this is the exploration surface: survivability-style load escalation,
//! locality sensitivity, scheme shoot-outs at arbitrary headrooms — all
//! without touching code, on the full work-stealing engine.
//!
//! Usage:
//! `cargo run --release --bin scenario_sweep -- [--quick|--std|--full]
//!     [--loads 0.6,0.7,0.9] [--localities 0.0,1.0,2.0]
//!     [--schemes SP,ECMP,B4-h10,MinMaxK10,LatOpt-h23,LDR]`

use lowlat_core::schemes::registry;
use lowlat_sim::output::{print_records_header, print_records_rows};
use lowlat_sim::runner::{flag_value, parse_flag, run_scenarios, Scale};

fn parse_f64_list(flag: &str, spec: &str) -> Vec<f64> {
    let values: Vec<f64> = spec
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_flag(flag, s.trim()))
        .collect();
    if values.is_empty() {
        eprintln!("error: {flag} expects at least one value");
        std::process::exit(2);
    }
    values
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut loads = vec![0.7f64];
    let mut localities = vec![1.0f64];
    let mut schemes = registry::schemes(registry::DEFAULT_SPECS);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--loads" => {
                loads = parse_f64_list("--loads", flag_value(&args, i, "--loads"));
                i += 1;
            }
            "--localities" => {
                localities = parse_f64_list("--localities", flag_value(&args, i, "--localities"));
                i += 1;
            }
            "--schemes" => {
                schemes =
                    registry::parse_csv(flag_value(&args, i, "--schemes")).unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    });
                i += 1;
            }
            _ => {} // --quick/--std/--full (or junk) handled by Scale::parse
        }
        i += 1;
    }
    let scale = Scale::from_args_filtered(&["--loads", "--localities", "--schemes"]);
    let nets = scale.select_networks(lowlat_topology::zoo::synthetic_zoo());
    eprintln!(
        "scenario space: {} loads x {} localities over {} networks, {} matrices, {} schemes ({})",
        loads.len(),
        localities.len(),
        nets.len(),
        scale.tms_per_network(),
        schemes.len(),
        schemes.iter().map(|s| s.name()).collect::<Vec<_>>().join(",")
    );
    let scenarios: Vec<(f64, f64)> = loads
        .iter()
        .flat_map(|&load| localities.iter().map(move |&locality| (load, locality)))
        .collect();
    // One engine call: LLPD and the per-network path caches are computed
    // once and reused across every scenario point.
    let per_scenario = run_scenarios(&nets, &scenarios, scale.tms_per_network(), &schemes);
    let stdout = std::io::stdout();
    print_records_header(true, stdout.lock()).expect("stdout");
    for (&(load, locality), records) in scenarios.iter().zip(&per_scenario) {
        eprintln!("  load {load} locality {locality}: {} records", records.len());
        print_records_rows(records, Some((load, locality)), stdout.lock()).expect("stdout");
    }
}
