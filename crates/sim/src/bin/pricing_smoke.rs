//! Column-generation placement smoke at Internet scale.
//!
//! Builds the hierarchical partitioned path engine over a large synthetic
//! graph and runs full LP placements through it as a `PathSource` — the
//! tentpole claim of the pricing-oracle API: registry schemes place on a
//! 10k-node topology without a materialized flat path corpus, growing only
//! the columns the LP actually prices in.
//!
//! Usage:
//! `cargo run --release --bin pricing_smoke --
//!     [--nodes 10000] [--seed 42] [--pairs 48] [--overload 3.0]
//!     [--schemes LatOpt,LDR] [--leaf 128] [--landmarks 32]`
//!
//! The demand is scaled so shortest-path routing would overload its worst
//! link by `--overload`x, forcing the growth loop to price in alternate
//! columns. One TSV row per scheme reports the wall time, the objective,
//! and the pricing telemetry. Exits 1 when a scheme fails to place, prices
//! no columns, or the engine materializes more per-pair state than the
//! matrix it served.

use lowlat_core::hier::{EngineConfig, PartitionedPathEngine};
use lowlat_core::schemes::registry;
use lowlat_netgraph::hierarchy::HierarchyConfig;
use lowlat_netgraph::NodeId;
use lowlat_sim::runner::{flag_value, parse_flag};
use lowlat_telemetry as telemetry;
use lowlat_tmgen::{Aggregate, TrafficMatrix};
use lowlat_topology::synth::{generate, SynthConfig, SynthModel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes = 10_000usize;
    let mut seed = 42u64;
    let mut pairs = 48usize;
    let mut overload = 3.0f64;
    let mut schemes = "LatOpt,LDR".to_string();
    let mut hier = HierarchyConfig::default();
    let mut landmarks = 32usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                nodes = parse_flag("--nodes", flag_value(&args, i, "--nodes"));
                i += 1;
            }
            "--seed" => {
                seed = parse_flag("--seed", flag_value(&args, i, "--seed"));
                i += 1;
            }
            "--pairs" => {
                pairs = parse_flag("--pairs", flag_value(&args, i, "--pairs"));
                i += 1;
            }
            "--overload" => {
                overload = parse_flag("--overload", flag_value(&args, i, "--overload"));
                i += 1;
            }
            "--schemes" => {
                schemes = flag_value(&args, i, "--schemes").to_string();
                i += 1;
            }
            "--leaf" => {
                hier.max_leaf = parse_flag("--leaf", flag_value(&args, i, "--leaf"));
                i += 1;
            }
            "--landmarks" => {
                landmarks = parse_flag("--landmarks", flag_value(&args, i, "--landmarks"));
                i += 1;
            }
            other => {
                eprintln!("error: unknown flag '{other}' (see the module docs for usage)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    telemetry::set_enabled(true);

    let ingested =
        generate(SynthModel::BarabasiAlbert, &SynthConfig { nodes, seed, ..Default::default() });
    let graph = ingested.graph();
    let build_span = telemetry::timed_span("pricing.build_engine", "pricing");
    let engine = PartitionedPathEngine::build(graph, &EngineConfig { hierarchy: hier, landmarks });
    let build_ms = build_span.finish_ms();
    eprintln!(
        "engine: {} nodes, {} cables, {} leaves, {} landmarks, built in {:.0} ms",
        graph.node_count(),
        ingested.cable_count(),
        engine.leaf_ids().len(),
        engine.landmark_count(),
        build_ms,
    );

    // A seeded pair batch spread over the node space; at default leaf sizes
    // nearly every pair is cross-leaf.
    let n = graph.node_count() as u32;
    let aggs: Vec<Aggregate> = (0..pairs as u32)
        .map(|i| {
            let s = (i * 997) % n;
            let mut d = (i * 313 + n / 2) % n;
            if d == s {
                d = (d + 1) % n;
            }
            Aggregate {
                src: NodeId(s),
                dst: NodeId(d),
                volume_mbps: 100.0 + (i % 7) as f64 * 30.0,
                flow_count: 10,
            }
        })
        .collect();
    let tm = TrafficMatrix::new(aggs);

    // Scale demand so pure shortest-path routing overloads its worst link
    // by `overload`x: the growth loop must then price alternate columns in.
    let sp = registry::build("SP").expect("SP in registry");
    let baseline = sp.place(&engine, &tm).expect("SP placement");
    let loads = baseline.link_loads(graph, &tm);
    let u =
        graph.link_ids().map(|l| loads[l.idx()] / graph.link(l).capacity_mbps).fold(0.0, f64::max);
    assert!(u > 0.0, "matrix places no load");
    let tm = tm.scaled(overload / u);
    eprintln!("demand scaled by {:.3} (SP max-utilization {u:.3} -> {overload})", overload / u);

    println!(
        "scheme\tplace_ms\tobjective_ms\tcolumns_grown\tpricing_skips\tcached_pairs\tcross\tfallback"
    );
    let mut failures = 0usize;
    for spec in schemes.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let scheme = match registry::build(spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let before = telemetry::snapshot();
        let span = telemetry::timed_span("pricing.place", "pricing");
        let placement = match scheme.place(&engine, &tm) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("FAIL {spec}: {e}");
                failures += 1;
                continue;
            }
        };
        let place_ms = span.finish_ms();
        let after = telemetry::snapshot();
        let grown =
            after.counter("pathgrow.columns_grown") - before.counter("pathgrow.columns_grown");
        let skips =
            after.counter("pathgrow.pricing_skips") - before.counter("pathgrow.pricing_skips");
        let (_, cross, fallback) = engine.stats().snapshot();
        if let Err(e) = placement.validate(graph, &tm) {
            eprintln!("FAIL {spec}: invalid placement: {e:?}");
            failures += 1;
            continue;
        }
        let objective: f64 = tm
            .aggregates()
            .iter()
            .enumerate()
            .map(|(a, agg)| agg.volume_mbps * placement.aggregate(a).mean_delay_ms())
            .sum::<f64>()
            / tm.aggregates().iter().map(|a| a.volume_mbps).sum::<f64>();
        println!(
            "{spec}\t{place_ms:.1}\t{objective:.3}\t{grown}\t{skips}\t{}\t{cross}\t{fallback}",
            engine.cached_pairs(),
        );
        // The tentpole assertions: columns were actually priced in, and the
        // engine never materialized per-pair state beyond the matrix.
        // k-limited MinMax (`MinMaxK<k>`) is exempt from the first check by
        // design: it seeds every pair with its full k columns up front and
        // never grows, so columns_grown == 0 is its correct behavior.
        if grown == 0 && !spec.starts_with("MinMaxK") {
            eprintln!("FAIL {spec}: LP placed an overloaded matrix without growing any columns");
            failures += 1;
        }
        if engine.cached_pairs() > tm.aggregates().len() {
            eprintln!(
                "FAIL {spec}: {} cached pairs for a {}-aggregate matrix",
                engine.cached_pairs(),
                tm.aggregates().len(),
            );
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
