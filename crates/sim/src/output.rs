//! TSV series output and quick ASCII plots for the figure binaries.
//!
//! Figures are emitted as tab-separated series (easy to pipe into any
//! plotting tool) plus a terminal-friendly ASCII sketch so a reader can see
//! the shape without leaving the shell — the smoltcp school of honest,
//! self-contained tooling.

use std::io::Write;

/// A named series of (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// The points, in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

/// Prints series as TSV: `x<TAB>series1<TAB>series2...` when x-values align,
/// otherwise one `series<TAB>x<TAB>y` block per series.
pub fn print_tsv(header: &str, series: &[Series], mut out: impl Write) -> std::io::Result<()> {
    writeln!(out, "# {header}")?;
    let aligned = series.len() > 1
        && series.windows(2).all(|w| {
            w[0].points.len() == w[1].points.len()
                && w[0].points.iter().zip(&w[1].points).all(|(a, b)| (a.0 - b.0).abs() < 1e-12)
        });
    if aligned {
        let names: Vec<&str> = series.iter().map(|s| s.name.as_str()).collect();
        writeln!(out, "x\t{}", names.join("\t"))?;
        for i in 0..series[0].points.len() {
            let mut row = format!("{:.6}", series[0].points[i].0);
            for s in series {
                row.push_str(&format!("\t{:.6}", s.points[i].1));
            }
            writeln!(out, "{row}")?;
        }
    } else {
        writeln!(out, "series\tx\ty")?;
        for s in series {
            for (x, y) in &s.points {
                writeln!(out, "{}\t{x:.6}\t{y:.6}", s.name)?;
            }
        }
    }
    Ok(())
}

/// Prints raw [`RunRecord`]s as TSV, one row per (network, matrix, scheme).
/// `scenario` prepends (load, locality) columns so rows from different
/// sweep points stay distinguishable in one stream (the `scenario_sweep`
/// format); `None` omits them (the `grid_sweep` format).
pub fn print_records_tsv(
    records: &[crate::runner::RunRecord],
    scenario: Option<(f64, f64)>,
    mut out: impl Write,
) -> std::io::Result<()> {
    print_records_header(scenario.is_some(), &mut out)?;
    print_records_rows(records, scenario, out)
}

/// The column header line of [`print_records_tsv`], on its own — sweep
/// binaries emit it once, then one [`print_records_rows`] block per
/// scenario.
pub fn print_records_header(with_scenario: bool, mut out: impl Write) -> std::io::Result<()> {
    let prefix = if with_scenario { "load\tlocality\t" } else { "" };
    writeln!(
        out,
        "{prefix}network\tclass\tllpd\ttm\tscheme\tcongested_fraction\tlatency_stretch\t\
         max_stretch\tmax_util\tfits\truntime_ms"
    )
}

/// The data rows of [`print_records_tsv`], without the header.
pub fn print_records_rows(
    records: &[crate::runner::RunRecord],
    scenario: Option<(f64, f64)>,
    mut out: impl Write,
) -> std::io::Result<()> {
    for r in records {
        if let Some((load, locality)) = scenario {
            write!(out, "{load}\t{locality}\t")?;
        }
        writeln!(
            out,
            "{}\t{:?}\t{:.4}\t{}\t{}\t{:.6}\t{:.6}\t{:.4}\t{:.4}\t{}\t{:.2}",
            r.network,
            r.class,
            r.llpd,
            r.tm_index,
            r.scheme,
            r.congested_fraction,
            r.latency_stretch,
            r.max_flow_stretch,
            r.max_utilization,
            r.fits,
            r.runtime_ms
        )?;
    }
    Ok(())
}

/// Renders series as a crude ASCII scatter (one glyph per series).
pub fn ascii_plot(title: &str, series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = g;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!("x: [{x0:.3}, {x1:.3}]  y: [{y0:.3}, {y1:.3}]  legend: "));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={} ", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_aligned_series() {
        let s = vec![
            Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]),
            Series::new("b", vec![(0.0, 3.0), (1.0, 4.0)]),
        ];
        let mut buf = Vec::new();
        print_tsv("test", &s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("x\ta\tb"));
        assert!(text.contains("0.000000\t1.000000\t3.000000"));
    }

    #[test]
    fn tsv_ragged_series() {
        let s = vec![
            Series::new("a", vec![(0.0, 1.0)]),
            Series::new("b", vec![(0.5, 3.0), (1.0, 4.0)]),
        ];
        let mut buf = Vec::new();
        print_tsv("test", &s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("series\tx\ty"));
        assert!(text.contains("b\t0.500000\t3.000000"));
    }

    #[test]
    fn ascii_plot_renders() {
        let s = vec![Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)])];
        let plot = ascii_plot("t", &s, 20, 5);
        assert!(plot.contains('*'));
        assert!(plot.contains("legend: *=a"));
    }
}
