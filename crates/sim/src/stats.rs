//! Percentiles and empirical CDFs.

/// An empirical CDF over f64 samples.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF; non-finite samples are rejected.
    ///
    /// # Panics
    /// Panics on an empty or non-finite sample set.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empty sample set");
        assert!(samples.iter().all(|s| s.is_finite()), "non-finite sample");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty sets); mirrors `Vec::is_empty`.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (0 <= q <= 1), nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q}");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples <= x.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Smallest and largest sample.
    pub fn range(&self) -> (f64, f64) {
        (self.sorted[0], *self.sorted.last().expect("non-empty"))
    }

    /// `(x, F(x))` points at `n` evenly spaced sample ranks — what the
    /// figure binaries print as a series.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                (self.quantile(q.max(1.0 / self.sorted.len() as f64)), q)
            })
            .collect()
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

/// Median of a slice (convenience for per-group reductions).
pub fn median_of(values: &[f64]) -> f64 {
    Cdf::new(values.to_vec()).median()
}

/// q-quantile of a slice.
pub fn quantile_of(values: &[f64], q: f64) -> f64 {
    Cdf::new(values.to_vec()).quantile(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.median(), 2.0);
        assert_eq!(c.quantile(0.75), 3.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.range(), (1.0, 4.0));
        assert_eq!(c.mean(), 2.5);
    }

    #[test]
    fn fraction_below() {
        let c = Cdf::new(vec![1.0, 2.0, 2.0, 5.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(2.0), 0.75);
        assert_eq!(c.fraction_at_or_below(5.0), 1.0);
    }

    #[test]
    fn points_monotone() {
        let c = Cdf::new((0..100).map(|i| i as f64).collect());
        let pts = c.points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        Cdf::new(vec![]);
    }
}
