//! Minute-by-minute controller simulation — the §5 deployment cycle
//! (measure demand → calculate paths → install) run against evolving,
//! bursty traffic, with *realized* queueing measured after the fact.
//!
//! This closes the loop the paper's figures leave implicit: Figures 12-14
//! argue LDR's placements leave the right headroom; this simulator replays
//! actual 100 ms traffic over each minute's placement and reports how much
//! queueing materialized, so the headroom claims can be checked end to end
//! (and fault-injected with arbitrarily bursty traces).

use lowlat_core::eval::PlacementEval;
use lowlat_core::schemes::ldr::{Ldr, LdrConfig};
use lowlat_core::schemes::sp::ShortestPathRouting;
use lowlat_core::schemes::RoutingScheme;
use lowlat_core::Placement;
use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::Topology;
use lowlat_traffic::{synthesize, AggregateTrace, TraceGenConfig};

/// Which controller drives path computation each minute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Controller {
    /// Full LDR: Algorithm-1 prediction + multiplexing loop, re-run every
    /// minute on the history so far.
    Ldr,
    /// Static shortest paths computed once (the OSPF baseline).
    StaticShortestPath,
}

/// Timeline parameters.
#[derive(Clone, Debug)]
pub struct TimelineConfig {
    /// Decision minutes simulated (after warm-up).
    pub minutes: usize,
    /// History minutes available before the first decision.
    pub warmup_minutes: usize,
    /// Burstiness of the synthetic traffic (coefficient of variation).
    pub cv: f64,
    /// RNG seed for trace synthesis.
    pub seed: u64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig { minutes: 10, warmup_minutes: 5, cv: 0.3, seed: 99 }
    }
}

/// What one simulated minute looked like.
#[derive(Clone, Debug)]
pub struct MinuteReport {
    /// Worst realized queueing delay over any link this minute (ms).
    pub worst_queue_ms: f64,
    /// Links whose 100 ms load ever exceeded capacity.
    pub overloaded_links: usize,
    /// Propagation latency stretch of the placement in force.
    pub latency_stretch: f64,
}

/// Result of a timeline run.
#[derive(Clone, Debug)]
pub struct TimelineOutcome {
    /// One report per simulated minute.
    pub minutes: Vec<MinuteReport>,
}

impl TimelineOutcome {
    /// Worst queueing delay over the whole run.
    pub fn worst_queue_ms(&self) -> f64 {
        self.minutes.iter().map(|m| m.worst_queue_ms).fold(0.0, f64::max)
    }

    /// Mean latency stretch across minutes.
    pub fn mean_stretch(&self) -> f64 {
        self.minutes.iter().map(|m| m.latency_stretch).sum::<f64>()
            / self.minutes.len().max(1) as f64
    }

    /// Minutes with any queueing above the threshold.
    pub fn minutes_with_queue_above(&self, threshold_ms: f64) -> usize {
        self.minutes.iter().filter(|m| m.worst_queue_ms > threshold_ms).count()
    }
}

/// Runs the controller cycle: each minute the controller re-places traffic
/// using only the history seen so far, then the *actual* next minute of
/// traffic is replayed over the placement.
///
/// # Panics
/// Panics if the matrix is empty or config is degenerate.
pub fn simulate(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: Controller,
    config: &TimelineConfig,
) -> TimelineOutcome {
    assert!(!tm.is_empty());
    assert!(config.minutes >= 1 && config.warmup_minutes >= 2);
    let total_minutes = config.warmup_minutes + config.minutes;
    // Ground-truth traffic: one evolving trace per aggregate, mean anchored
    // at its matrix volume.
    let traces: Vec<AggregateTrace> = tm
        .aggregates()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            synthesize(&TraceGenConfig {
                mean_mbps: a.volume_mbps,
                cv: config.cv,
                minutes: total_minutes,
                seed: config.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                ..Default::default()
            })
        })
        .collect();

    let static_sp: Option<Placement> = match controller {
        Controller::StaticShortestPath => {
            Some(ShortestPathRouting.place_on(topology, tm).expect("sp"))
        }
        Controller::Ldr => None,
    };

    let graph = topology.graph();
    let mut minutes = Vec::with_capacity(config.minutes);
    for t in config.warmup_minutes..total_minutes {
        // Decide on history [0, t).
        let placement = match &controller {
            Controller::StaticShortestPath => static_sp.clone().expect("precomputed"),
            Controller::Ldr => {
                let history: Vec<AggregateTrace> =
                    traces.iter().map(|tr| tr.truncated(t)).collect();
                Ldr::new(LdrConfig::default())
                    .place_with_traces(topology, tm, &history)
                    .expect("ldr")
                    .placement
            }
        };

        // Replay minute t's actual samples over the placement.
        let bins = traces[0].bins_per_minute();
        let mut per_link_load = vec![vec![0.0f64; bins]; graph.link_count()];
        for (a, trace) in traces.iter().enumerate() {
            let samples = trace.samples(t);
            for (l, x) in placement.link_fractions_of(a) {
                let row = &mut per_link_load[l as usize];
                for (bin, &s) in samples.iter().enumerate() {
                    row[bin] += s * x;
                }
            }
        }
        let mut worst_queue_ms = 0.0f64;
        let mut overloaded_links = 0usize;
        for l in graph.link_ids() {
            let cap = graph.link(l).capacity_mbps;
            let mut backlog_mb = 0.0f64;
            let mut overloaded = false;
            for &load in &per_link_load[l.idx()] {
                backlog_mb = (backlog_mb + (load - cap) * 0.1).max(0.0);
                worst_queue_ms = worst_queue_ms.max(backlog_mb / cap * 1000.0);
                overloaded |= load > cap;
            }
            if overloaded {
                overloaded_links += 1;
            }
        }
        let ev = PlacementEval::evaluate(topology, tm, &placement);
        minutes.push(MinuteReport {
            worst_queue_ms,
            overloaded_links,
            latency_stretch: ev.latency_stretch(),
        });
    }
    TimelineOutcome { minutes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_core::scale::ScaleToLoad;
    use lowlat_tmgen::{GravityTmGen, TmGenConfig};
    use lowlat_topology::zoo::named;

    fn setup() -> (Topology, TrafficMatrix) {
        let topo = named::abilene();
        let tm =
            GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);
        (topo, tm)
    }

    #[test]
    fn ldr_controller_bounds_queueing_on_smooth_traffic() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.1, seed: 1 };
        let out = simulate(&topo, &tm, Controller::Ldr, &cfg);
        assert_eq!(out.minutes.len(), 4);
        // Smooth traffic + LDR headroom: queueing stays near the allowance.
        assert!(
            out.worst_queue_ms() <= 50.0,
            "LDR should bound queueing, saw {} ms",
            out.worst_queue_ms()
        );
        assert!(out.mean_stretch() >= 1.0 - 1e-9);
    }

    #[test]
    fn ldr_beats_static_sp_on_realized_queueing() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.3, seed: 7 };
        let ldr = simulate(&topo, &tm, Controller::Ldr, &cfg);
        let sp = simulate(&topo, &tm, Controller::StaticShortestPath, &cfg);
        assert!(
            ldr.worst_queue_ms() <= sp.worst_queue_ms() + 1e-9,
            "LDR {} ms vs SP {} ms",
            ldr.worst_queue_ms(),
            sp.worst_queue_ms()
        );
    }

    #[test]
    fn overloaded_static_routing_queues_heavily() {
        // Mean-level overload is what static routing cannot absorb: the
        // same matrix at 1.3x min-cut load must queue far more than at
        // 0.35x. (Burstiness alone is *not* monotone for lognormal noise —
        // higher cv lowers the median load — so the load level is the
        // robust axis to test.)
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 3, warmup_minutes: 2, cv: 0.2, seed: 3 };
        let light = simulate(&topo, &tm.scaled(0.5), Controller::StaticShortestPath, &cfg);
        let heavy = simulate(&topo, &tm.scaled(1.9), Controller::StaticShortestPath, &cfg);
        assert!(
            heavy.worst_queue_ms() > light.worst_queue_ms() + 10.0,
            "overload must dominate queueing: heavy {} ms vs light {} ms",
            heavy.worst_queue_ms(),
            light.worst_queue_ms()
        );
        assert!(heavy.minutes_with_queue_above(10.0) > 0);
    }
}
