//! Minute-by-minute controller simulation — the §5 deployment cycle
//! (measure demand → calculate paths → install) run against evolving,
//! bursty traffic, with *realized* queueing measured after the fact.
//!
//! This closes the loop the paper's figures leave implicit: Figures 12-14
//! argue LDR's placements leave the right headroom; this simulator replays
//! actual 100 ms traffic over each minute's placement and reports how much
//! queueing materialized, so the headroom claims can be checked end to end
//! (and fault-injected with arbitrarily bursty traces).
//!
//! Any [`registry`] scheme can drive the loop: a [`Controller`] wraps a
//! scheme either *adaptively* (re-placed every minute from the measured
//! history — LDR runs its full Figure-14 loop, everything else re-places
//! Algorithm-1 predicted demands) or *statically* (placed once up front,
//! the OSPF-style baseline). One shared [`PathCache`] and one warm-start
//! [`SolveContext`] persist across the whole run, so successive minutes
//! restart from each other's LP bases — the reason the cycle is fast
//! enough to run every minute.

use std::sync::Arc;

use lowlat_core::eval::PlacementEval;
use lowlat_core::pathset::PathCache;
use lowlat_core::schemes::registry::{self, UnknownScheme};
use lowlat_core::schemes::{RoutingScheme, SolveContext};
use lowlat_core::Placement;
use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::Topology;
use lowlat_traffic::{spread_seed, synthesize, AggregateTrace, TraceGenConfig};

/// Default decision minutes per run.
pub const DEFAULT_MINUTES: usize = 10;
/// Default history minutes before the first decision.
pub const DEFAULT_WARMUP_MINUTES: usize = 5;
/// Default burstiness (coefficient of variation) of the synthetic traffic.
pub const DEFAULT_CV: f64 = 0.3;
/// Default RNG seed for trace synthesis.
pub const DEFAULT_SEED: u64 = 99;

/// Which controller drives path computation each minute: any registry
/// scheme, run adaptively (re-placed every minute on the history so far)
/// or statically (placed once — the paper's OSPF baseline, generalized).
#[derive(Clone)]
pub struct Controller {
    scheme: Arc<dyn RoutingScheme>,
    adaptive: bool,
}

impl Controller {
    /// An adaptive controller: re-runs the named registry scheme every
    /// minute on the measured history. LDR uses its full trace-driven
    /// Figure-14 loop; other schemes re-place Algorithm-1 predictions.
    pub fn adaptive(spec: &str) -> Result<Controller, UnknownScheme> {
        Ok(Controller { scheme: registry::build(spec)?, adaptive: true })
    }

    /// A static controller: the named scheme placed once on the base
    /// matrix, then left alone for the whole run.
    pub fn static_baseline(spec: &str) -> Result<Controller, UnknownScheme> {
        Ok(Controller { scheme: registry::build(spec)?, adaptive: false })
    }

    /// Parses a sweep spec: a registry name, optionally prefixed with
    /// `static:` for the placed-once variant (`"LDR"`, `"static:SP"`).
    pub fn parse(spec: &str) -> Result<Controller, UnknownScheme> {
        match spec.trim().strip_prefix("static:") {
            Some(rest) => Controller::static_baseline(rest),
            None => Controller::adaptive(spec),
        }
    }

    /// The paper's full LDR deployment cycle.
    ///
    /// # Panics
    /// Never — `LDR` is a registry spec.
    pub fn ldr() -> Controller {
        Controller::adaptive("LDR").expect("LDR is a registry spec")
    }

    /// Static shortest paths computed once (the OSPF baseline).
    ///
    /// # Panics
    /// Never — `SP` is a registry spec.
    pub fn static_sp() -> Controller {
        Controller::static_baseline("SP").expect("SP is a registry spec")
    }

    /// Display name: the scheme's registry name, `static:`-prefixed for
    /// placed-once controllers. Round-trips through [`Controller::parse`].
    pub fn name(&self) -> String {
        if self.adaptive {
            self.scheme.name()
        } else {
            format!("static:{}", self.scheme.name())
        }
    }

    /// True when the controller re-places every minute.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller").field("name", &self.name()).finish()
    }
}

/// Timeline parameters.
#[derive(Clone, Debug)]
pub struct TimelineConfig {
    /// Decision minutes simulated (after warm-up).
    pub minutes: usize,
    /// History minutes available before the first decision.
    pub warmup_minutes: usize,
    /// Burstiness of the synthetic traffic (coefficient of variation).
    pub cv: f64,
    /// RNG seed for trace synthesis.
    pub seed: u64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            minutes: DEFAULT_MINUTES,
            warmup_minutes: DEFAULT_WARMUP_MINUTES,
            cv: DEFAULT_CV,
            seed: DEFAULT_SEED,
        }
    }
}

/// What one simulated minute looked like.
#[derive(Clone, Debug)]
pub struct MinuteReport {
    /// Worst realized queueing delay over any link this minute (ms).
    pub worst_queue_ms: f64,
    /// Links whose 100 ms load ever exceeded capacity.
    pub overloaded_links: usize,
    /// Propagation latency stretch of the placement in force.
    pub latency_stretch: f64,
}

/// Result of a timeline run.
#[derive(Clone, Debug)]
pub struct TimelineOutcome {
    /// One report per simulated minute.
    pub minutes: Vec<MinuteReport>,
    /// LP solves that warm-started from a previous minute's (or growth
    /// round's) basis, over the total — the §5 hot-path telemetry.
    pub lp_warm_hits: usize,
    /// Total LP solves the controller issued.
    pub lp_solves: usize,
}

impl TimelineOutcome {
    /// Worst queueing delay over the whole run.
    pub fn worst_queue_ms(&self) -> f64 {
        self.minutes.iter().map(|m| m.worst_queue_ms).fold(0.0, f64::max)
    }

    /// Mean latency stretch across minutes.
    pub fn mean_stretch(&self) -> f64 {
        self.minutes.iter().map(|m| m.latency_stretch).sum::<f64>()
            / self.minutes.len().max(1) as f64
    }

    /// Minutes with any queueing above the threshold.
    pub fn minutes_with_queue_above(&self, threshold_ms: f64) -> usize {
        self.minutes.iter().filter(|m| m.worst_queue_ms > threshold_ms).count()
    }
}

/// Runs the controller cycle: each minute the controller re-places traffic
/// using only the history seen so far, then the *actual* next minute of
/// traffic is replayed over the placement.
///
/// # Panics
/// Panics if the matrix is empty, the config is degenerate, or the wrapped
/// scheme fails to place (a solver failure, not congestion).
pub fn simulate(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
) -> TimelineOutcome {
    assert!(!tm.is_empty());
    assert!(config.minutes >= 1 && config.warmup_minutes >= 2);
    let total_minutes = config.warmup_minutes + config.minutes;
    // Ground-truth traffic: one evolving trace per aggregate, mean anchored
    // at its matrix volume.
    let traces: Vec<AggregateTrace> = tm
        .aggregates()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            synthesize(&TraceGenConfig {
                mean_mbps: a.volume_mbps,
                cv: config.cv,
                minutes: total_minutes,
                seed: spread_seed(config.seed, i as u64),
                ..Default::default()
            })
        })
        .collect();

    let graph = topology.graph();
    // One cache and one warm-start context for the whole run: the §5 cycle's
    // speed comes from successive minutes reusing paths and LP bases.
    let cache = PathCache::new(graph);
    let mut ctx = SolveContext::new();

    let static_placement: Option<Placement> = if controller.adaptive {
        None
    } else {
        Some(controller.scheme.place(&cache, tm).expect("static placement"))
    };

    let mut minutes = Vec::with_capacity(config.minutes);
    for t in config.warmup_minutes..total_minutes {
        // Decide on history [0, t).
        let placement = match &static_placement {
            Some(p) => p.clone(),
            None => {
                let history: Vec<AggregateTrace> =
                    traces.iter().map(|tr| tr.truncated(t)).collect();
                controller
                    .scheme
                    .place_with_history(&cache, tm, &history, &mut ctx)
                    .expect("adaptive placement")
            }
        };

        // Replay minute t's actual samples over the placement.
        let bins = traces[0].bins_per_minute();
        let mut per_link_load = vec![vec![0.0f64; bins]; graph.link_count()];
        for (a, trace) in traces.iter().enumerate() {
            let samples = trace.samples(t);
            for (l, x) in placement.link_fractions_of(a) {
                let row = &mut per_link_load[l as usize];
                for (bin, &s) in samples.iter().enumerate() {
                    row[bin] += s * x;
                }
            }
        }
        let mut worst_queue_ms = 0.0f64;
        let mut overloaded_links = 0usize;
        for l in graph.link_ids() {
            let cap = graph.link(l).capacity_mbps;
            let mut backlog_mb = 0.0f64;
            let mut overloaded = false;
            for &load in &per_link_load[l.idx()] {
                backlog_mb = (backlog_mb + (load - cap) * 0.1).max(0.0);
                worst_queue_ms = worst_queue_ms.max(backlog_mb / cap * 1000.0);
                overloaded |= load > cap;
            }
            if overloaded {
                overloaded_links += 1;
            }
        }
        let ev = PlacementEval::evaluate(topology, tm, &placement);
        minutes.push(MinuteReport {
            worst_queue_ms,
            overloaded_links,
            latency_stretch: ev.latency_stretch(),
        });
    }
    TimelineOutcome { minutes, lp_warm_hits: ctx.warm_hits(), lp_solves: ctx.solves() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_core::scale::ScaleToLoad;
    use lowlat_tmgen::{GravityTmGen, TmGenConfig};
    use lowlat_topology::zoo::named;

    fn setup() -> (Topology, TrafficMatrix) {
        let topo = named::abilene();
        let tm =
            GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);
        (topo, tm)
    }

    #[test]
    fn ldr_controller_bounds_queueing_on_smooth_traffic() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.1, seed: 1 };
        let out = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        assert_eq!(out.minutes.len(), 4);
        // Smooth traffic + LDR headroom: queueing stays near the allowance.
        assert!(
            out.worst_queue_ms() <= 50.0,
            "LDR should bound queueing, saw {} ms",
            out.worst_queue_ms()
        );
        assert!(out.mean_stretch() >= 1.0 - 1e-9);
    }

    #[test]
    fn ldr_beats_static_sp_on_realized_queueing() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.3, seed: 7 };
        let ldr = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        let sp = simulate(&topo, &tm, &Controller::static_sp(), &cfg);
        assert!(
            ldr.worst_queue_ms() <= sp.worst_queue_ms() + 1e-9,
            "LDR {} ms vs SP {} ms",
            ldr.worst_queue_ms(),
            sp.worst_queue_ms()
        );
    }

    #[test]
    fn overloaded_static_routing_queues_heavily() {
        // Mean-level overload is what static routing cannot absorb: the
        // same matrix at 1.3x min-cut load must queue far more than at
        // 0.35x. (Burstiness alone is *not* monotone for lognormal noise —
        // higher cv lowers the median load — so the load level is the
        // robust axis to test.)
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 3, warmup_minutes: 2, cv: 0.2, seed: 3 };
        let light = simulate(&topo, &tm.scaled(0.5), &Controller::static_sp(), &cfg);
        let heavy = simulate(&topo, &tm.scaled(1.9), &Controller::static_sp(), &cfg);
        assert!(
            heavy.worst_queue_ms() > light.worst_queue_ms() + 10.0,
            "overload must dominate queueing: heavy {} ms vs light {} ms",
            heavy.worst_queue_ms(),
            light.worst_queue_ms()
        );
        assert!(heavy.minutes_with_queue_above(10.0) > 0);
    }

    #[test]
    fn any_registry_scheme_drives_the_timeline() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 2, warmup_minutes: 2, cv: 0.2, seed: 5 };
        for spec in ["SP", "ECMP", "B4", "MinMaxK4", "LatOpt", "static:B4"] {
            let controller = Controller::parse(spec).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(controller.name(), spec, "controller names round-trip");
            let out = simulate(&topo, &tm, &controller, &cfg);
            assert_eq!(out.minutes.len(), 2, "{spec} must produce every minute");
            assert!(out.mean_stretch() >= 1.0 - 1e-9, "{spec} stretch sane");
        }
        assert!(Controller::parse("static:nope").is_err());
        assert!(Controller::parse("nope").is_err());
    }

    #[test]
    fn adaptive_lp_controllers_warm_start_across_minutes() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.2, seed: 11 };
        let out = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        assert!(out.lp_solves > 0, "LDR solves LPs every minute");
        assert!(
            out.lp_warm_hits > 0,
            "successive minutes must reuse bases: {} hits / {} solves",
            out.lp_warm_hits,
            out.lp_solves
        );
        // Static controllers never touch the per-minute LP context.
        let sp = simulate(&topo, &tm, &Controller::static_sp(), &cfg);
        assert_eq!(sp.lp_solves, 0);
    }
}
