//! Minute-by-minute controller simulation — the §5 deployment cycle
//! (measure demand → calculate paths → install) run against evolving,
//! bursty traffic, with *realized* queueing measured after the fact.
//!
//! This closes the loop the paper's figures leave implicit: Figures 12-14
//! argue LDR's placements leave the right headroom; this simulator replays
//! actual 100 ms traffic over each minute's placement and reports how much
//! queueing materialized, so the headroom claims can be checked end to end
//! (and fault-injected with arbitrarily bursty traces).
//!
//! Any [`registry`] scheme can drive the loop: a [`Controller`] wraps a
//! scheme either *adaptively* (re-placed every minute from the measured
//! history — LDR runs its full Figure-14 loop, everything else re-places
//! Algorithm-1 predicted demands) or *statically* (placed once up front,
//! the OSPF-style baseline). One shared [`PathSource`] and one warm-start
//! [`SolveContext`] persist across the whole run, so successive minutes
//! restart from each other's LP bases — the reason the cycle is fast
//! enough to run every minute. The default entry points build a private
//! flat [`PathCache`]; [`simulate_with_events_on`] runs the same cycle
//! through any caller-provided source — the partitioned engine at
//! Internet scale.
//!
//! ## Failure events
//!
//! [`simulate_with_events`] interleaves topology changes with the TM
//! minutes: each [`TimelineEvent`] puts a [`FailureMask`] in force from a
//! given decision minute (an empty mask models repair/link-up). The shared
//! cache is *repaired*, not rebuilt — only cached paths crossing failed
//! elements regrow under the mask — and adaptive controllers re-place the
//! surviving demand through the same warm [`SolveContext`], so recovery
//! minutes restart from pre-failure bases. Static baselines keep their
//! placement; whatever they had routed over failed elements is counted
//! lost, which is exactly the availability argument for the adaptive
//! cycle.
//!
//! ## Load-induced cascades
//!
//! [`simulate_with_cascades`] adds the failure mode the scripted events
//! cannot express: overload *causing* the next failure. After each minute's
//! replay, if the worst surviving link's minute-mean load exceeds its
//! effective capacity by more than [`CascadeConfig::trip_overload`], that
//! cable trips at the next decision minute, up to
//! [`CascadeConfig::max_trips`] trips per run. A trip is stored as a
//! *delta* — the tripped cable — and applied to whatever mask is in force
//! when it fires, so a scripted event landing at the same minute (a
//! link-up, say) is never clobbered by a stale snapshot. Trips are counted
//! in [`TimelineOutcome::cascade_trips`] and flow through the exact same
//! repair/re-place machinery as scripted events, so a brown-out that
//! concentrates traffic can be watched snowballing into an outage.
//!
//! ## Event ordering
//!
//! All events due at one decision minute apply *in slice order* before
//! that minute's placement decision: scripted events first, each replacing
//! the mask in force (the last one wins), then any cascade trip emitted
//! the previous minute, applied as a delta on top. The ordering is part of
//! the contract and asserted by the test suite.
//!
//! ## Bounded churn
//!
//! [`Controller::adaptive_bounded`] (sweep spec `bounded:LDR`) runs the
//! same per-minute cycle but treats path churn — installs, uninstalls and
//! split re-programs pushed to switches — as a cost. Each minute the
//! scheme's fresh solution is a *candidate*: an aggregate is re-installed
//! only when its candidate improves predicted mean delay by more than
//! [`ChurnBudget::epsilon`], its installed paths are broken by the mask,
//! keeping it would push a link's predicted load past
//! [`ChurnBudget::util_guard`], or a link it rides *actually queued* past
//! [`ChurnBudget::queue_trigger_ms`] last minute (the reactive half of the
//! loop: mean-load prediction cannot see bursts, realized queueing can);
//! everything else keeps the previous minute's paths. Re-installs of live paths happen make-before-break:
//! the aggregate drains linearly across the transition minute — each
//! 100 ms bin carries a shrinking share on the retiring splits and a
//! growing share on the new ones — so the old paths' capacity stays
//! claimed until the drain completes and the old path is only retired
//! once its replacement carries the traffic. (Paths already broken by a
//! failure switch immediately: there is nothing left to break.) This is
//! the §5 install story made honest. Per-minute churn ([`PlacementDelta`])
//! and decision latency are reported in every [`MinuteReport`].

use std::sync::Arc;

use lowlat_core::eval::PlacementEval;
use lowlat_core::failure::{partition_routable, RoutablePartition};
use lowlat_core::pathset::PathCache;
use lowlat_core::placement::{AggregatePlacement, PlacementDelta};
use lowlat_core::schemes::registry::{self, UnknownScheme};
use lowlat_core::schemes::{predict_volumes, RoutingScheme, SolveContext};
use lowlat_core::{PathSource, Placement};
use lowlat_netgraph::{FailureMask, Graph, LinkId, Path};
use lowlat_telemetry as telemetry;
use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::Topology;
use lowlat_traffic::{spread_seed, synthesize, AggregateTrace, TraceGenConfig};

/// Default decision minutes per run.
pub const DEFAULT_MINUTES: usize = 10;
/// Default history minutes before the first decision.
pub const DEFAULT_WARMUP_MINUTES: usize = 5;
/// Default burstiness (coefficient of variation) of the synthetic traffic.
pub const DEFAULT_CV: f64 = 0.3;
/// Default RNG seed for trace synthesis.
pub const DEFAULT_SEED: u64 = 99;

/// How much per-minute path churn [`Controller::adaptive_bounded`] may
/// spend, and when keeping a stale placement stops being acceptable.
#[derive(Clone, Debug)]
pub struct ChurnBudget {
    /// Minimum *relative* predicted mean-delay improvement before an
    /// aggregate's candidate placement is worth re-installing. Below this
    /// the previous minute's paths are kept as-is.
    pub epsilon: f64,
    /// Hard cap on switch operations (installs + uninstalls + re-programs)
    /// per decision minute. Forced re-installs (broken paths, fresh
    /// aggregates) are spent first; optional improvements fill the rest,
    /// best predicted delay-volume gain first.
    pub max_paths_per_minute: usize,
    /// Utilization multiple of effective capacity above which a kept
    /// placement is force-re-installed: keeping stale paths must not
    /// (predictably) overload a link. 1.0 = re-install at predicted
    /// saturation.
    pub util_guard: f64,
    /// Realized-queueing trigger (ms): a link whose replay queued above
    /// this last minute forces re-install of the kept aggregates riding
    /// it (when the fresh candidate actually relieves the link). This is
    /// the reactive half of the loop — mean-load prediction cannot see
    /// bursts, realized queueing can.
    pub queue_trigger_ms: f64,
}

impl Default for ChurnBudget {
    fn default() -> Self {
        ChurnBudget {
            epsilon: 0.2,
            max_paths_per_minute: usize::MAX,
            util_guard: 1.0,
            queue_trigger_ms: 50.0,
        }
    }
}

/// Why a controller spec failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControllerParseError {
    /// A mode prefix (`static:`, `bounded:`) with nothing after it.
    EmptySpec {
        /// The offending prefix.
        prefix: &'static str,
    },
    /// The scheme name is not in the registry.
    Unknown(UnknownScheme),
}

impl std::fmt::Display for ControllerParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerParseError::EmptySpec { prefix } => {
                write!(f, "controller spec `{prefix}` needs a scheme name after the prefix")
            }
            ControllerParseError::Unknown(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ControllerParseError {}

impl From<UnknownScheme> for ControllerParseError {
    fn from(e: UnknownScheme) -> Self {
        ControllerParseError::Unknown(e)
    }
}

/// Which controller drives path computation each minute: any registry
/// scheme, run adaptively (re-placed every minute on the history so far),
/// adaptively under a [`ChurnBudget`], or statically (placed once — the
/// paper's OSPF baseline, generalized).
#[derive(Clone)]
pub struct Controller {
    scheme: Arc<dyn RoutingScheme>,
    adaptive: bool,
    churn: Option<ChurnBudget>,
}

impl Controller {
    /// An adaptive controller: re-runs the named registry scheme every
    /// minute on the measured history. LDR uses its full trace-driven
    /// Figure-14 loop; other schemes re-place Algorithm-1 predictions.
    pub fn adaptive(spec: &str) -> Result<Controller, UnknownScheme> {
        Ok(Controller { scheme: registry::build(spec)?, adaptive: true, churn: None })
    }

    /// An adaptive controller that only re-installs aggregates whose fresh
    /// solution pays for its churn (see [`ChurnBudget`] and the
    /// module-level *Bounded churn* notes). Re-installs are
    /// make-before-break: retiring paths hold capacity for one overlap
    /// minute.
    pub fn adaptive_bounded(spec: &str, budget: ChurnBudget) -> Result<Controller, UnknownScheme> {
        Ok(Controller { scheme: registry::build(spec)?, adaptive: true, churn: Some(budget) })
    }

    /// A static controller: the named scheme placed once on the base
    /// matrix, then left alone for the whole run.
    pub fn static_baseline(spec: &str) -> Result<Controller, UnknownScheme> {
        Ok(Controller { scheme: registry::build(spec)?, adaptive: false, churn: None })
    }

    /// Parses a sweep spec: a registry name, optionally prefixed with
    /// `static:` for the placed-once variant or `bounded:` for the
    /// default-budget churn-bounded variant (`"LDR"`, `"static: SP"`,
    /// `"bounded:LDR"`). Whitespace around the name and after the prefix is
    /// ignored; a prefix with nothing after it is rejected with
    /// [`ControllerParseError::EmptySpec`] rather than a confusing
    /// unknown-scheme error for `""`.
    pub fn parse(spec: &str) -> Result<Controller, ControllerParseError> {
        let spec = spec.trim();
        if let Some(rest) = spec.strip_prefix("static:") {
            let rest = rest.trim();
            if rest.is_empty() {
                return Err(ControllerParseError::EmptySpec { prefix: "static:" });
            }
            return Ok(Controller::static_baseline(rest)?);
        }
        if let Some(rest) = spec.strip_prefix("bounded:") {
            let rest = rest.trim();
            if rest.is_empty() {
                return Err(ControllerParseError::EmptySpec { prefix: "bounded:" });
            }
            return Ok(Controller::adaptive_bounded(rest, ChurnBudget::default())?);
        }
        Ok(Controller::adaptive(spec)?)
    }

    /// The paper's full LDR deployment cycle.
    ///
    /// # Panics
    /// Never — `LDR` is a registry spec.
    pub fn ldr() -> Controller {
        Controller::adaptive("LDR").expect("LDR is a registry spec")
    }

    /// Static shortest paths computed once (the OSPF baseline).
    ///
    /// # Panics
    /// Never — `SP` is a registry spec.
    pub fn static_sp() -> Controller {
        Controller::static_baseline("SP").expect("SP is a registry spec")
    }

    /// Display name: the scheme's registry name, `static:`-prefixed for
    /// placed-once controllers and `bounded:`-prefixed for churn-bounded
    /// ones. Round-trips through [`Controller::parse`].
    pub fn name(&self) -> String {
        if !self.adaptive {
            format!("static:{}", self.scheme.name())
        } else if self.churn.is_some() {
            format!("bounded:{}", self.scheme.name())
        } else {
            self.scheme.name()
        }
    }

    /// True when the controller re-places every minute.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// The churn budget, for churn-bounded controllers.
    pub fn churn_budget(&self) -> Option<&ChurnBudget> {
        self.churn.as_ref()
    }
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller").field("name", &self.name()).finish()
    }
}

/// Timeline parameters.
#[derive(Clone, Debug)]
pub struct TimelineConfig {
    /// Decision minutes simulated (after warm-up).
    pub minutes: usize,
    /// History minutes available before the first decision.
    pub warmup_minutes: usize,
    /// Burstiness of the synthetic traffic (coefficient of variation).
    pub cv: f64,
    /// RNG seed for trace synthesis.
    pub seed: u64,
    /// Diurnal amplitude of the minute means, `0.0..1.0`. 0 (the default)
    /// keeps traffic stationary; 0.3 swings each aggregate's mean ±30%
    /// over a cycle — the long-horizon driver for bounded-churn runs.
    pub diurnal_amplitude: f64,
    /// Diurnal period in minutes (warm-up included), ignored while the
    /// amplitude is 0.
    pub diurnal_period: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            minutes: DEFAULT_MINUTES,
            warmup_minutes: DEFAULT_WARMUP_MINUTES,
            cv: DEFAULT_CV,
            seed: DEFAULT_SEED,
            diurnal_amplitude: 0.0,
            diurnal_period: 1440,
        }
    }
}

/// A topology change taking effect at a decision minute: the failure mask
/// in force from that minute on. An empty mask restores the intact
/// topology (link-up), so an outage window is two events.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// 0-based decision-minute index (warm-up excluded) at which the mask
    /// takes effect — before that minute's placement decision.
    pub at_minute: usize,
    /// The complete mask in force from this minute (not a delta).
    pub mask: FailureMask,
}

/// The load-induced cascade model for [`simulate_with_cascades`]: when a
/// surviving link's minute-mean load exceeds `(1 + trip_overload)` times
/// its effective capacity, its cable trips at the next decision minute.
/// One trip per minute (the worst-overloaded cable), at most `max_trips`
/// per run.
#[derive(Clone, Debug)]
pub struct CascadeConfig {
    /// Overload fraction (load / effective capacity − 1) above which the
    /// worst link's cable trips. 0.2 means sustained load 20% over
    /// effective capacity blows the cable.
    pub trip_overload: f64,
    /// Upper bound on cascade trips per run — the breaker on the breaker,
    /// so a hopeless overload cannot fail every cable in the network.
    pub max_trips: usize,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig { trip_overload: 0.2, max_trips: 4 }
    }
}

/// What one simulated minute looked like.
#[derive(Clone, Debug)]
pub struct MinuteReport {
    /// Worst realized queueing delay over any surviving link this minute
    /// (ms).
    pub worst_queue_ms: f64,
    /// Links whose 100 ms load ever exceeded (effective) capacity.
    pub overloaded_links: usize,
    /// Propagation latency stretch of the placement in force. Adaptive
    /// controllers are judged on the routable demand they re-placed (1.0
    /// when nothing was routable); static placements on the full matrix —
    /// including traffic currently being lost, whose share is reported in
    /// `unroutable_fraction`, not discounted here.
    pub latency_stretch: f64,
    /// Volume fraction of demand not delivered this minute: disconnected
    /// pairs for adaptive controllers, plus traffic a static placement
    /// kept sending into failed elements.
    pub unroutable_fraction: f64,
    /// Wall-clock of this minute's decision: event repair + partition +
    /// placement (+ bounded merge). Replay is excluded — it models the
    /// network, not the controller.
    pub decision_ms: f64,
    /// Switch operations this minute's decision pushed: path installs +
    /// uninstalls + split re-programs vs the state already installed.
    /// Minute 0's initial install is free; static controllers never churn.
    pub paths_changed: usize,
    /// Fraction of the re-decided volume that moved between paths this
    /// minute (0 when nothing changed or nothing was compared).
    pub moved_volume_fraction: f64,
}

/// Result of a timeline run.
#[derive(Clone, Debug)]
pub struct TimelineOutcome {
    /// One report per simulated minute.
    pub minutes: Vec<MinuteReport>,
    /// LP solves that warm-started from a previous minute's (or growth
    /// round's) basis, over the total — the §5 hot-path telemetry.
    pub lp_warm_hits: usize,
    /// Total LP solves the controller issued.
    pub lp_solves: usize,
    /// Topology events applied (mask changes, including link-ups).
    pub repair_events: usize,
    /// Cached pairs invalidated and regrown across all repairs (0 for
    /// static controllers, which never consult the cache after placing).
    pub repaired_pairs: usize,
    /// Cached pairs that survived repairs untouched (0 for static
    /// controllers).
    pub kept_pairs: usize,
    /// Load-induced cable trips emitted by the cascade model (always 0
    /// outside [`simulate_with_cascades`]). Each trip also counts as a
    /// repair event once its failure takes effect.
    pub cascade_trips: usize,
}

impl TimelineOutcome {
    /// Worst queueing delay over the whole run.
    pub fn worst_queue_ms(&self) -> f64 {
        self.minutes.iter().map(|m| m.worst_queue_ms).fold(0.0, f64::max)
    }

    /// Mean latency stretch across minutes.
    pub fn mean_stretch(&self) -> f64 {
        self.minutes.iter().map(|m| m.latency_stretch).sum::<f64>()
            / self.minutes.len().max(1) as f64
    }

    /// Minutes with any queueing above the threshold.
    pub fn minutes_with_queue_above(&self, threshold_ms: f64) -> usize {
        self.minutes.iter().filter(|m| m.worst_queue_ms > threshold_ms).count()
    }

    /// Worst per-minute undelivered-demand fraction.
    pub fn max_unroutable_fraction(&self) -> f64 {
        self.minutes.iter().map(|m| m.unroutable_fraction).fold(0.0, f64::max)
    }

    /// Total switch operations over the run — the churn the network
    /// actually paid.
    pub fn total_paths_changed(&self) -> usize {
        self.minutes.iter().map(|m| m.paths_changed).sum()
    }

    /// Median per-minute decision latency (ms).
    pub fn median_decision_ms(&self) -> f64 {
        let mut v: Vec<f64> = self.minutes.iter().map(|m| m.decision_ms).collect();
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v[v.len() / 2]
    }

    /// Worst per-minute decision latency (ms).
    pub fn max_decision_ms(&self) -> f64 {
        self.minutes.iter().map(|m| m.decision_ms).fold(0.0, f64::max)
    }

    /// Mean per-minute moved-volume fraction.
    pub fn mean_moved_volume_fraction(&self) -> f64 {
        self.minutes.iter().map(|m| m.moved_volume_fraction).sum::<f64>()
            / self.minutes.len().max(1) as f64
    }
}

/// Runs the controller cycle: each minute the controller re-places traffic
/// using only the history seen so far, then the *actual* next minute of
/// traffic is replayed over the placement.
///
/// # Panics
/// Panics if the matrix is empty, the config is degenerate, or the wrapped
/// scheme fails to place (a solver failure, not congestion).
pub fn simulate(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
) -> TimelineOutcome {
    simulate_with_events(topology, tm, controller, config, &[])
}

/// As [`simulate`], with failure events interleaved into the minute loop.
///
/// Events fire before their minute's placement decision: the cache is
/// repaired under the new mask, adaptive controllers re-place the demand
/// that survives, static placements soldier on and leak whatever they had
/// routed across the failed elements.
///
/// # Panics
/// As [`simulate`]; additionally if an event's minute is out of range.
pub fn simulate_with_events(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
    events: &[TimelineEvent],
) -> TimelineOutcome {
    let cache = PathCache::new(topology.graph());
    run_timeline(&cache, tm, controller, config, events, None)
}

/// As [`simulate_with_events`], through a caller-provided [`PathSource`]
/// instead of a private flat cache — the partitioned engine at Internet
/// scale. The controller's repair/re-place cycle uses the source's failure
/// plumbing (`apply_failure` + warm re-placement), so adaptive and
/// bounded-churn control run unchanged on either backend.
///
/// The source must be quiescent (no concurrent queries) for the duration
/// of the run: event minutes mutate its failure state in place.
///
/// # Panics
/// As [`simulate_with_events`].
pub fn simulate_with_events_on(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
    events: &[TimelineEvent],
) -> TimelineOutcome {
    run_timeline(source, tm, controller, config, events, None)
}

/// As [`simulate_with_events`], with the load-induced cascade model armed:
/// a minute whose worst surviving link sustains mean load above
/// `(1 + cascade.trip_overload)` times effective capacity trips that cable
/// at the next decision minute (see [`CascadeConfig`]).
///
/// # Panics
/// As [`simulate_with_events`].
pub fn simulate_with_cascades(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
    events: &[TimelineEvent],
    cascade: &CascadeConfig,
) -> TimelineOutcome {
    let cache = PathCache::new(topology.graph());
    run_timeline(&cache, tm, controller, config, events, Some(cascade))
}

/// `numer / denom`, 0 when the denominator is not positive — keeps a
/// zero-volume denominator from poisoning fractions (and the TSV) with NaN.
fn safe_fraction(numer: f64, denom: f64) -> f64 {
    if denom > 0.0 {
        numer / denom
    } else {
        0.0
    }
}

/// An entry in the per-run event queue. Scripted events carry the complete
/// mask the caller asked for; cascade trips carry only the tripped cable —
/// a *delta* resolved against the mask in force when the trip fires, so a
/// scripted change landing at the same minute is never clobbered by a
/// snapshot taken at emit time.
#[derive(Clone, Debug)]
enum QueuedEvent {
    Scripted(TimelineEvent),
    Trip { at_minute: usize, cable: LinkId },
}

impl QueuedEvent {
    fn at_minute(&self) -> usize {
        match self {
            QueuedEvent::Scripted(ev) => ev.at_minute,
            QueuedEvent::Trip { at_minute, .. } => *at_minute,
        }
    }
}

fn run_timeline(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
    events: &[TimelineEvent],
    cascade: Option<&CascadeConfig>,
) -> TimelineOutcome {
    assert!(!tm.is_empty());
    assert!(config.minutes >= 1 && config.warmup_minutes >= 2);
    assert!(
        events.iter().all(|e| e.at_minute < config.minutes),
        "event minute out of 0..{}",
        config.minutes
    );
    let total_minutes = config.warmup_minutes + config.minutes;
    // Ground-truth traffic: one evolving trace per aggregate, mean anchored
    // at its matrix volume (modulated by the configured diurnal cycle).
    let traces: Vec<AggregateTrace> = tm
        .aggregates()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            synthesize(&TraceGenConfig {
                mean_mbps: a.volume_mbps,
                cv: config.cv,
                minutes: total_minutes,
                seed: spread_seed(config.seed, i as u64),
                diurnal_amplitude: config.diurnal_amplitude,
                diurnal_period_minutes: config.diurnal_period,
                ..Default::default()
            })
        })
        .collect();

    let graph = source.graph();
    // One source and one warm-start context for the whole run: the §5
    // cycle's speed comes from successive minutes reusing paths and LP
    // bases — and from repairing, not rebuilding, when the topology
    // changes.
    let mut ctx = SolveContext::new();

    let static_placement: Option<Placement> = if controller.adaptive {
        None
    } else {
        Some(controller.scheme.place(source, tm).expect("static placement"))
    };
    let total_volume = tm.total_volume_mbps();

    let mut current_mask = FailureMask::new();
    // The routable view under the current mask; `None` while everything is
    // up (the common fast path: no partition, no per-minute mask checks).
    let mut partition: Option<RoutablePartition> = None;
    // Static placements leak a fixed volume fraction per mask; recomputed
    // only when the mask changes.
    let mut static_lost_fraction = 0.0f64;

    let mut repair_events = 0usize;
    let mut repaired_pairs = 0usize;
    let mut kept_pairs = 0usize;
    let mut cascade_trips = 0usize;
    // Scripted events plus any cascade trips appended along the way; trips
    // always land at a later minute than the one that emitted them, so
    // per-minute index iteration stays sound. Within one minute the queue
    // drains in slice order: scripted events in their given order (the
    // last mask wins), then trips — which were appended after them.
    let mut queue: Vec<QueuedEvent> = events.iter().cloned().map(QueuedEvent::Scripted).collect();

    // The per-aggregate placement actually installed on switches, keyed by
    // ORIGINAL matrix index so entries survive re-partitions. Per-minute
    // churn is the delta against it; the bounded controller additionally
    // keeps entries live instead of re-installing.
    let mut installed: Vec<Option<AggregatePlacement>> = vec![None; tm.aggregates().len()];
    // Links whose replay queued above the bounded controller's reactive
    // trigger last minute — next minute's merge re-installs their riders.
    let mut queued_links = vec![false; graph.link_count()];

    let mut minutes = Vec::with_capacity(config.minutes);
    for t in config.warmup_minutes..total_minutes {
        let rel_t = t - config.warmup_minutes;
        // Per-minute root span; everything below nests under it. The
        // decision window keeps its own always-on timer because its
        // duration *is* the `decision_ms` column — one measurement feeds
        // both the TSV and the trace.
        let _minute = telemetry::span("timeline.minute", "timeline");
        let decision = telemetry::timed_span("timeline.decision", "timeline");
        let measure = telemetry::span("timeline.measure", "timeline");
        // Topology events due this decision minute fire first.
        for i in 0..queue.len() {
            if queue[i].at_minute() != rel_t {
                continue;
            }
            let new_mask = match &queue[i] {
                QueuedEvent::Scripted(ev) => ev.mask.clone(),
                QueuedEvent::Trip { cable, .. } => {
                    // Applied as a delta to whatever is in force *now* —
                    // same-minute scripted events already fired above.
                    let mut m = current_mask.clone();
                    m.fail_cable(graph, *cable);
                    m
                }
            };
            repair_events += 1;
            // A static controller never consults the cache after its
            // initial placement, so there is nothing to repair — the mask
            // alone drives its loss accounting and replay.
            if controller.adaptive {
                let stats = source.apply_failure(&new_mask);
                repaired_pairs += stats.repaired_pairs;
                kept_pairs += stats.kept_pairs;
            }
            current_mask = new_mask;
            partition =
                (!current_mask.is_empty()).then(|| partition_routable(graph, tm, &current_mask));
            static_lost_fraction = match &static_placement {
                Some(p) if !current_mask.is_empty() => {
                    let mut lost = 0.0;
                    for (agg, pl) in tm.aggregates().iter().zip(p.per_aggregate()) {
                        for (path, x) in &pl.splits {
                            if *x > 1e-9 && current_mask.hits_path(graph, path) {
                                lost += agg.volume_mbps * x;
                            }
                        }
                    }
                    safe_fraction(lost, total_volume)
                }
                _ => 0.0,
            };
        }
        drop(measure);

        // The demand the controller can see/route this minute, and the
        // original-matrix index of each of its aggregates.
        let minute_tm: &TrafficMatrix = partition.as_ref().map_or(tm, |p| &p.tm);
        let trace_of = |j: usize| partition.as_ref().map_or(j, |p| p.kept[j]);

        // Make-before-break transitions this minute: (minute_tm index, the
        // full placement being drained). The aggregate's traffic ramps
        // from these splits onto the new ones across the minute's bins.
        let mut overlap: Vec<(usize, AggregatePlacement)> = Vec::new();

        // Decide on history [0, t).
        let decide = telemetry::span("timeline.decide", "timeline");
        let placement = match &static_placement {
            Some(p) => Some(p.clone()),
            None if minute_tm.is_empty() => None,
            None => {
                let history: Vec<AggregateTrace> = (0..minute_tm.aggregates().len())
                    .map(|j| traces[trace_of(j)].truncated(t))
                    .collect();
                let candidate = controller
                    .scheme
                    .place_with_history(source, minute_tm, &history, &mut ctx)
                    .expect("adaptive placement");
                match &controller.churn {
                    Some(budget) => {
                        let orig_of: Vec<usize> =
                            (0..minute_tm.aggregates().len()).map(trace_of).collect();
                        let predicted = predict_volumes(&history);
                        let (merged, retired) = merge_bounded(
                            graph,
                            &current_mask,
                            &predicted,
                            &candidate,
                            &installed,
                            &orig_of,
                            &queued_links,
                            budget,
                        );
                        overlap = retired;
                        Some(merged)
                    }
                    None => Some(candidate),
                }
            }
        };
        drop(decide);

        // Churn: what this minute's decision pushed to switches, measured
        // against the installed state. The initial install (minute 0) is
        // the cost of turning the network on, not churn — skipped.
        let install = telemetry::span("timeline.install", "timeline");
        let mut churn = PlacementDelta::default();
        if controller.adaptive {
            if let Some(pl) = &placement {
                for (j, agg_pl) in pl.per_aggregate().iter().enumerate() {
                    let orig = trace_of(j);
                    let volume = minute_tm.aggregates()[j].volume_mbps;
                    match (&installed[orig], rel_t) {
                        (Some(prev), _) => {
                            churn.accumulate(&PlacementDelta::of_aggregate(
                                Some(prev),
                                agg_pl,
                                volume,
                            ));
                        }
                        (None, 0) => {}
                        (None, _) => {
                            churn.accumulate(&PlacementDelta::of_aggregate(None, agg_pl, volume));
                        }
                    }
                    installed[orig] = Some(agg_pl.clone());
                }
            }
        }
        drop(install);
        let decision_ms = decision.finish_ms();

        // Replay minute t's actual samples over the placement. A static
        // placement aligns with the *full* matrix (its traffic into failed
        // elements is dropped and counted); an adaptive one with the
        // routable view.
        let unroutable_fraction = if static_placement.is_some() {
            static_lost_fraction
        } else {
            partition.as_ref().map_or(0.0, |p| p.unroutable_fraction)
        };
        let _replay = telemetry::span("timeline.replay", "timeline");
        let bins = traces[0].bins_per_minute();
        let mut per_link_load = vec![vec![0.0f64; bins]; graph.link_count()];
        // Make-before-break drain: for aggregates in transition, bin b
        // carries ramp[b] of the traffic on the new splits and the rest on
        // the retiring ones — the old paths' capacity stays claimed until
        // the drain completes, no bin is double-charged. Empty outside
        // bounded mode, so other controllers replay bit-for-bit as before.
        let mut transition: Vec<Option<&AggregatePlacement>> =
            vec![None; placement.as_ref().map_or(0, |p| p.per_aggregate().len())];
        for (j, old) in &overlap {
            transition[*j] = Some(old);
        }
        let ramp = |bin: usize| (bin + 1) as f64 / bins as f64;
        if let Some(pl) = &placement {
            for (j, agg_pl) in pl.per_aggregate().iter().enumerate() {
                let trace =
                    if static_placement.is_some() { &traces[j] } else { &traces[trace_of(j)] };
                let samples = trace.samples(t);
                for (path, x) in &agg_pl.splits {
                    if *x <= 1e-9 {
                        continue;
                    }
                    if !current_mask.is_empty() && current_mask.hits_path(graph, path) {
                        // Lost traffic, accounted in static_lost_fraction.
                        // Adaptive placements are built from the repaired
                        // cache and must never route over failed elements.
                        debug_assert!(
                            static_placement.is_some(),
                            "adaptive placement routed over a failed element"
                        );
                        continue;
                    }
                    for &l in path.links() {
                        let row = &mut per_link_load[l.idx()];
                        match transition[j] {
                            None => {
                                for (bin, &s) in samples.iter().enumerate() {
                                    row[bin] += s * x;
                                }
                            }
                            Some(_) => {
                                for (bin, &s) in samples.iter().enumerate() {
                                    row[bin] += s * x * ramp(bin);
                                }
                            }
                        }
                    }
                }
                let Some(old) = transition[j] else { continue };
                for (path, x) in &old.splits {
                    if *x <= 1e-9
                        || (!current_mask.is_empty() && current_mask.hits_path(graph, path))
                    {
                        continue;
                    }
                    for &l in path.links() {
                        let row = &mut per_link_load[l.idx()];
                        for (bin, &s) in samples.iter().enumerate() {
                            row[bin] += s * x * (1.0 - ramp(bin));
                        }
                    }
                }
            }
        }
        let mut worst_queue_ms = 0.0f64;
        let mut overloaded_links = 0usize;
        // The cascade candidate: the worst cable sustaining minute-mean
        // load above the trip threshold (per-bin bursts queue, they don't
        // blow cables).
        let mut trip: Option<lowlat_netgraph::LinkId> = None;
        let mut trip_over = cascade.map_or(f64::INFINITY, |c| c.trip_overload);
        let queue_trigger_ms =
            controller.churn.as_ref().map_or(f64::INFINITY, |b| b.queue_trigger_ms);
        for l in graph.link_ids() {
            queued_links[l.idx()] = false;
            let cap = if current_mask.is_empty() {
                graph.link(l).capacity_mbps
            } else {
                current_mask.effective_capacity(graph, l)
            };
            if cap <= 0.0 {
                continue; // downed link: carries nothing (filtered above)
            }
            let mut backlog_mb = 0.0f64;
            let mut link_queue_ms = 0.0f64;
            let mut overloaded = false;
            let mut sum = 0.0f64;
            for &load in &per_link_load[l.idx()] {
                backlog_mb = (backlog_mb + (load - cap) * 0.1).max(0.0);
                link_queue_ms = link_queue_ms.max(backlog_mb / cap * 1000.0);
                overloaded |= load > cap;
                sum += load;
            }
            worst_queue_ms = worst_queue_ms.max(link_queue_ms);
            queued_links[l.idx()] = link_queue_ms > queue_trigger_ms;
            if overloaded {
                overloaded_links += 1;
            }
            let over = sum / bins as f64 / cap - 1.0;
            if over > trip_over {
                trip = Some(l);
                trip_over = over;
            }
        }
        if let Some(l) = trip {
            let max_trips = cascade.map_or(0, |c| c.max_trips);
            if cascade_trips < max_trips && rel_t + 1 < config.minutes {
                // The overloaded cable blows next minute. Stored as a
                // delta — the mask it lands on is resolved at fire time,
                // after any scripted event due the same minute.
                queue.push(QueuedEvent::Trip { at_minute: rel_t + 1, cable: l });
                cascade_trips += 1;
            }
        }
        let latency_stretch = match &placement {
            Some(pl) if static_placement.is_some() => {
                PlacementEval::evaluate_on(graph, tm, pl).latency_stretch()
            }
            Some(pl) => PlacementEval::evaluate_on(graph, minute_tm, pl).latency_stretch(),
            None => 1.0,
        };
        minutes.push(MinuteReport {
            worst_queue_ms,
            overloaded_links,
            latency_stretch,
            unroutable_fraction,
            decision_ms,
            paths_changed: churn.paths_changed(),
            moved_volume_fraction: churn.moved_volume_fraction(),
        });
    }
    TimelineOutcome {
        minutes,
        lp_warm_hits: ctx.warm_hits(),
        lp_solves: ctx.solves(),
        repair_events,
        repaired_pairs,
        kept_pairs,
        cascade_trips,
    }
}

/// Merges the minute's fresh `candidate` placement with the `installed`
/// switch state under a [`ChurnBudget`].
///
/// Per aggregate `j` of the minute's matrix (whose original index is
/// `orig_of[j]`), the candidate is taken when (a) nothing is installed yet,
/// (b) the installed paths are broken by the mask, or (c) the candidate
/// improves predicted mean delay by more than `budget.epsilon` relative —
/// optional re-installs are ranked by predicted delay·volume gain and cut
/// off at `budget.max_paths_per_minute` switch operations (forced ones
/// spend first). A final pass force-takes kept aggregates while keeping
/// them would push some link's *predicted* load past `budget.util_guard`
/// times effective capacity.
///
/// Returns the merged placement (aligned with the minute's matrix) plus
/// the make-before-break transitions: the full old placement of every
/// aggregate re-installed while its installed paths were still alive,
/// which the replay drains across the transition minute. Aggregates whose
/// paths a failure already broke switch instantly — there is nothing left
/// to break gently — and fresh installs have nothing to drain.
#[allow(clippy::too_many_arguments)]
fn merge_bounded(
    graph: &Graph,
    mask: &FailureMask,
    predicted: &[f64],
    candidate: &Placement,
    installed: &[Option<AggregatePlacement>],
    orig_of: &[usize],
    queued_links: &[bool],
    budget: &ChurnBudget,
) -> (Placement, Vec<(usize, AggregatePlacement)>) {
    let n = candidate.per_aggregate().len();
    let change_cost = |j: usize| {
        PlacementDelta::of_aggregate(installed[orig_of[j]].as_ref(), candidate.aggregate(j), 1.0)
            .paths_changed()
    };
    let mut take = vec![false; n];
    let mut broken_paths = vec![false; n];
    let mut spent = 0usize;
    let mut optional: Vec<(usize, f64)> = Vec::new();
    for j in 0..n {
        match &installed[orig_of[j]] {
            // Nothing installed (fresh aggregate, or one coming back from
            // an unroutable spell): must install.
            None => {
                take[j] = true;
                spent += change_cost(j);
            }
            Some(prev) => {
                let broken = !mask.is_empty()
                    && prev.splits.iter().any(|(p, x)| *x > 1e-9 && mask.hits_path(graph, p));
                if broken {
                    take[j] = true;
                    broken_paths[j] = true;
                    spent += change_cost(j);
                } else {
                    let prev_d = prev.mean_delay_ms();
                    let cand_d = candidate.aggregate(j).mean_delay_ms();
                    if prev_d - cand_d > budget.epsilon * prev_d.max(1e-9) {
                        optional.push((j, predicted[j] * (prev_d - cand_d)));
                    }
                }
            }
        }
    }
    // Spend whatever budget remains on the re-installs that buy the most
    // predicted delay·volume, best first (ties broken by index for
    // determinism).
    optional.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    for &(j, _) in &optional {
        let cost = change_cost(j);
        if spent + cost <= budget.max_paths_per_minute {
            take[j] = true;
            spent += cost;
        }
    }
    // Capacity pressure: keeping stale splits must not (predictably)
    // overload a link — and a link that *actually queued* past the
    // reactive trigger last minute is repaired now, prediction or not.
    // While a link is hot, flip the kept aggregate whose re-install
    // relieves it most. Links the *fresh candidate* itself would run as
    // hot are hopeless — no amount of re-installing cures them, so they
    // never charge churn.
    let mut cand_load = vec![0.0f64; graph.link_count()];
    let fraction_on = |splits: &[(Path, f64)], link: LinkId| -> f64 {
        splits.iter().filter(|(p, x)| *x > 1e-9 && p.links().contains(&link)).map(|(_, x)| *x).sum()
    };
    for j in 0..n {
        for (path, x) in &candidate.aggregate(j).splits {
            if *x > 1e-9 {
                for &l in path.links() {
                    cand_load[l.idx()] += predicted[j] * x;
                }
            }
        }
    }
    loop {
        let mut load = vec![0.0f64; graph.link_count()];
        for j in 0..n {
            let splits = if take[j] {
                &candidate.aggregate(j).splits
            } else {
                &installed[orig_of[j]].as_ref().expect("kept implies installed").splits
            };
            for (path, x) in splits {
                if *x > 1e-9 {
                    for &l in path.links() {
                        load[l.idx()] += predicted[j] * x;
                    }
                }
            }
        }
        let worst = graph
            .link_ids()
            .filter_map(|l| {
                let cap = if mask.is_empty() {
                    graph.link(l).capacity_mbps
                } else {
                    mask.effective_capacity(graph, l)
                };
                if cap <= 0.0 {
                    return None;
                }
                let guard = budget.util_guard * cap;
                let predicted_hot = load[l.idx()] > guard && cand_load[l.idx()] <= guard;
                let reactive_hot =
                    queued_links[l.idx()] && load[l.idx()] > cand_load[l.idx()] + 1e-9;
                (predicted_hot || reactive_hot).then(|| (l, load[l.idx()] / cap))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let Some((hot, _)) = worst else { break };
        let flip = (0..n)
            .filter(|&j| !take[j])
            .filter_map(|j| {
                let prev = installed[orig_of[j]].as_ref().expect("kept implies installed");
                let relief = predicted[j]
                    * (fraction_on(&prev.splits, hot)
                        - fraction_on(&candidate.aggregate(j).splits, hot));
                (relief > 0.0).then_some((j, relief))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        // No kept aggregate can relieve the hot link (or the budget is
        // exhausted): stop rather than churn without effect.
        let Some((j, _)) = flip else { break };
        if spent + change_cost(j) > budget.max_paths_per_minute {
            break;
        }
        take[j] = true;
        spent += change_cost(j);
    }
    let mut merged = Vec::with_capacity(n);
    let mut transitions = Vec::new();
    for j in 0..n {
        if take[j] {
            let new = candidate.aggregate(j);
            if let Some(prev) = &installed[orig_of[j]] {
                // A live re-install drains make-before-break; one that
                // actually changes nothing has nothing to drain.
                if !broken_paths[j]
                    && PlacementDelta::of_aggregate(Some(prev), new, 1.0).paths_changed() > 0
                {
                    transitions.push((j, prev.clone()));
                }
            }
            merged.push(new.clone());
        } else {
            merged.push(installed[orig_of[j]].as_ref().expect("kept implies installed").clone());
        }
    }
    (Placement::new(merged), transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_core::failure::single_link_failures;
    use lowlat_core::scale::ScaleToLoad;
    use lowlat_tmgen::{Aggregate, GravityTmGen, TmGenConfig};
    use lowlat_topology::zoo::named;
    use lowlat_topology::{GeoPoint, PopId, TopologyBuilder};

    fn setup() -> (Topology, TrafficMatrix) {
        let topo = named::abilene();
        let tm =
            GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);
        (topo, tm)
    }

    #[test]
    fn ldr_controller_bounds_queueing_on_smooth_traffic() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 4,
            warmup_minutes: 3,
            cv: 0.1,
            seed: 1,
            ..Default::default()
        };
        let out = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        assert_eq!(out.minutes.len(), 4);
        // Smooth traffic + LDR headroom: queueing stays near the allowance.
        assert!(
            out.worst_queue_ms() <= 50.0,
            "LDR should bound queueing, saw {} ms",
            out.worst_queue_ms()
        );
        assert!(out.mean_stretch() >= 1.0 - 1e-9);
        // No events: nothing repaired, nothing lost.
        assert_eq!(out.repair_events, 0);
        assert_eq!(out.max_unroutable_fraction(), 0.0);
    }

    #[test]
    fn controller_runs_unchanged_on_the_partitioned_engine() {
        // The deployment cycle through `&dyn PathSource`: on a one-leaf
        // network the partitioned engine prices exactly the flat cache's
        // columns, so an eventful adaptive run must agree minute-for-minute
        // (decision_ms, the one wall-clock field, excluded).
        use lowlat_core::hier::{EngineConfig, PartitionedPathEngine};
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 4,
            warmup_minutes: 2,
            cv: 0.2,
            seed: 9,
            ..Default::default()
        };
        let scenario = single_link_failures(&topo).into_iter().next().expect("a cable");
        let events = vec![TimelineEvent { at_minute: 1, mask: scenario.mask(&topo) }];
        let flat = simulate_with_events(&topo, &tm, &Controller::ldr(), &cfg, &events);
        let engine = PartitionedPathEngine::build(topo.graph(), &EngineConfig::default());
        let part = simulate_with_events_on(&engine, &tm, &Controller::ldr(), &cfg, &events);
        assert_eq!(flat.minutes.len(), part.minutes.len());
        for (a, b) in flat.minutes.iter().zip(&part.minutes) {
            assert_eq!(a.worst_queue_ms, b.worst_queue_ms);
            assert_eq!(a.latency_stretch, b.latency_stretch);
            assert_eq!(a.unroutable_fraction, b.unroutable_fraction);
            assert_eq!(a.paths_changed, b.paths_changed);
        }
        assert_eq!(flat.repair_events, part.repair_events);
        assert_eq!((flat.repaired_pairs, flat.kept_pairs), (part.repaired_pairs, part.kept_pairs));
    }

    #[test]
    fn telemetry_does_not_change_the_controller_outcome() {
        // The observability layer is a write-only side channel: every
        // deterministic MinuteReport field must be identical with telemetry
        // off and on. Only decision_ms (wall-clock) may differ.
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 3,
            warmup_minutes: 2,
            cv: 0.2,
            seed: 5,
            ..Default::default()
        };
        let off = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        telemetry::set_enabled(true);
        let on = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        telemetry::set_enabled(false);
        let snap = telemetry::snapshot();
        assert_eq!(off.minutes.len(), on.minutes.len());
        for (a, b) in off.minutes.iter().zip(&on.minutes) {
            assert_eq!(a.worst_queue_ms, b.worst_queue_ms);
            assert_eq!(a.overloaded_links, b.overloaded_links);
            assert_eq!(a.latency_stretch, b.latency_stretch);
            assert_eq!(a.unroutable_fraction, b.unroutable_fraction);
            assert_eq!(a.paths_changed, b.paths_changed);
            assert_eq!(a.moved_volume_fraction, b.moved_volume_fraction);
            assert!(a.decision_ms >= 0.0 && b.decision_ms >= 0.0);
        }
        assert_eq!((off.lp_solves, off.lp_warm_hits), (on.lp_solves, on.lp_warm_hits));
        assert_eq!(
            (off.repair_events, off.repaired_pairs, off.kept_pairs),
            (on.repair_events, on.repaired_pairs, on.kept_pairs)
        );
        // The instrumented run actually recorded something.
        assert!(snap.counter("telemetry.spans") > 0, "spans recorded while enabled");
        assert!(snap.counter("lp.solves") > 0, "LP counters recorded while enabled");
    }

    #[test]
    fn ldr_beats_static_sp_on_realized_queueing() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 4,
            warmup_minutes: 3,
            cv: 0.3,
            seed: 7,
            ..Default::default()
        };
        let ldr = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        let sp = simulate(&topo, &tm, &Controller::static_sp(), &cfg);
        assert!(
            ldr.worst_queue_ms() <= sp.worst_queue_ms() + 1e-9,
            "LDR {} ms vs SP {} ms",
            ldr.worst_queue_ms(),
            sp.worst_queue_ms()
        );
    }

    #[test]
    fn overloaded_static_routing_queues_heavily() {
        // Mean-level overload is what static routing cannot absorb: the
        // same matrix at 1.3x min-cut load must queue far more than at
        // 0.35x. (Burstiness alone is *not* monotone for lognormal noise —
        // higher cv lowers the median load — so the load level is the
        // robust axis to test.)
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 3,
            warmup_minutes: 2,
            cv: 0.2,
            seed: 3,
            ..Default::default()
        };
        let light = simulate(&topo, &tm.scaled(0.5), &Controller::static_sp(), &cfg);
        let heavy = simulate(&topo, &tm.scaled(1.9), &Controller::static_sp(), &cfg);
        assert!(
            heavy.worst_queue_ms() > light.worst_queue_ms() + 10.0,
            "overload must dominate queueing: heavy {} ms vs light {} ms",
            heavy.worst_queue_ms(),
            light.worst_queue_ms()
        );
        assert!(heavy.minutes_with_queue_above(10.0) > 0);
    }

    #[test]
    fn any_registry_scheme_drives_the_timeline() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 2,
            warmup_minutes: 2,
            cv: 0.2,
            seed: 5,
            ..Default::default()
        };
        for spec in ["SP", "ECMP", "B4", "MinMaxK4", "LatOpt", "static:B4"] {
            let controller = Controller::parse(spec).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(controller.name(), spec, "controller names round-trip");
            let out = simulate(&topo, &tm, &controller, &cfg);
            assert_eq!(out.minutes.len(), 2, "{spec} must produce every minute");
            assert!(out.mean_stretch() >= 1.0 - 1e-9, "{spec} stretch sane");
        }
        assert!(Controller::parse("static:nope").is_err());
        assert!(Controller::parse("nope").is_err());
    }

    #[test]
    fn adaptive_lp_controllers_warm_start_across_minutes() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 4,
            warmup_minutes: 3,
            cv: 0.2,
            seed: 11,
            ..Default::default()
        };
        let out = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        assert!(out.lp_solves > 0, "LDR solves LPs every minute");
        assert!(
            out.lp_warm_hits > 0,
            "successive minutes must reuse bases: {} hits / {} solves",
            out.lp_warm_hits,
            out.lp_solves
        );
        // Static controllers never touch the per-minute LP context.
        let sp = simulate(&topo, &tm, &Controller::static_sp(), &cfg);
        assert_eq!(sp.lp_solves, 0);
    }

    /// An outage window: the first single-cable failure from minute 1,
    /// repaired at `up_minute`.
    fn outage(topo: &Topology, up_minute: usize) -> Vec<TimelineEvent> {
        let scenario = &single_link_failures(topo)[0];
        vec![
            TimelineEvent { at_minute: 1, mask: scenario.mask(topo) },
            TimelineEvent { at_minute: up_minute, mask: FailureMask::new() },
        ]
    }

    #[test]
    fn adaptive_controller_reroutes_around_an_outage() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 5,
            warmup_minutes: 3,
            cv: 0.15,
            seed: 13,
            ..Default::default()
        };
        let events = outage(&topo, 4);
        let out = simulate_with_events(&topo, &tm, &Controller::ldr(), &cfg, &events);
        assert_eq!(out.minutes.len(), 5);
        assert_eq!(out.repair_events, 2, "down then up");
        assert!(out.repaired_pairs > 0, "the failed cable crossed cached paths");
        assert!(out.kept_pairs > 0, "repair must not rebuild the whole cache");
        // Abilene survives any single failure: the adaptive controller
        // delivers everything, every minute.
        assert_eq!(out.max_unroutable_fraction(), 0.0);
        assert!(out.mean_stretch() >= 1.0 - 1e-9);
        assert!(out.lp_warm_hits > 0, "recovery minutes must stay warm");
    }

    #[test]
    fn static_baseline_loses_traffic_during_the_outage() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 4,
            warmup_minutes: 3,
            cv: 0.15,
            seed: 13,
            ..Default::default()
        };
        // Fail a cable SP actually uses: try scenarios until one leaks.
        let mut leaked = false;
        for scenario in single_link_failures(&topo) {
            let events = vec![TimelineEvent { at_minute: 1, mask: scenario.mask(&topo) }];
            let out = simulate_with_events(&topo, &tm, &Controller::static_sp(), &cfg, &events);
            assert_eq!(out.minutes[0].unroutable_fraction, 0.0, "pre-failure minute clean");
            if out.max_unroutable_fraction() > 0.0 {
                leaked = true;
                break;
            }
        }
        assert!(leaked, "some single failure must hit SP's placed paths");
    }

    /// A two-path network: A—M—Z wide (1000 Mbps cables), A—N—Z narrow
    /// (400 Mbps cables). Losing the wide path forces everything onto
    /// cables that cannot carry it — the cascade trigger.
    fn two_path_setup() -> (Topology, TrafficMatrix, PopId) {
        let mut b = TopologyBuilder::new("cascade2p");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect(a, m, 1000.0);
        b.connect(m, z, 1000.0);
        b.connect(a, n, 400.0);
        b.connect(n, z, 400.0);
        let topo = b.build();
        let tm = TrafficMatrix::new(vec![Aggregate {
            src: a,
            dst: z,
            volume_mbps: 600.0,
            flow_count: 600,
        }]);
        (topo, tm, a)
    }

    #[test]
    fn overload_after_reroute_trips_a_cascade() {
        let (topo, tm, _) = two_path_setup();
        let graph = topo.graph();
        // Fail the wide path's first cable (connect order: A-M first).
        let mut mask = FailureMask::new();
        mask.fail_cable(graph, topo.cables()[0]);
        let events = vec![TimelineEvent { at_minute: 1, mask }];
        let cfg = TimelineConfig {
            minutes: 5,
            warmup_minutes: 2,
            cv: 0.05,
            seed: 21,
            ..Default::default()
        };
        let cascade = CascadeConfig { trip_overload: 0.2, max_trips: 4 };
        let out = simulate_with_cascades(&topo, &tm, &Controller::ldr(), &cfg, &events, &cascade);
        // Minute 1: 600 Mbps rerouted onto 400 Mbps cables — 50% sustained
        // overload, far past the 20% trip threshold.
        assert!(out.minutes[1].overloaded_links > 0, "reroute must overload the narrow path");
        assert_eq!(out.cascade_trips, 1, "exactly one cable blows");
        assert_eq!(out.repair_events, 2, "the scripted failure plus the trip");
        // The trip severs the only remaining path: demand goes unroutable.
        assert_eq!(out.minutes[1].unroutable_fraction, 0.0);
        assert!(
            out.minutes[2].unroutable_fraction > 0.99,
            "after the cascade A-Z is disconnected, got {}",
            out.minutes[2].unroutable_fraction
        );
        // Nothing left to overload, so the cascade stops at one trip.
        assert!(out.max_unroutable_fraction() > 0.99);
    }

    #[test]
    fn no_overload_means_no_trips_and_event_equivalence() {
        // Below the trip threshold the cascade runner must be bit-for-bit
        // the plain event runner.
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 4,
            warmup_minutes: 3,
            cv: 0.15,
            seed: 13,
            ..Default::default()
        };
        let events = outage(&topo, 3);
        let plain = simulate_with_events(&topo, &tm, &Controller::ldr(), &cfg, &events);
        let cascade = CascadeConfig { trip_overload: 10.0, max_trips: 8 };
        let with_cascade =
            simulate_with_cascades(&topo, &tm, &Controller::ldr(), &cfg, &events, &cascade);
        assert_eq!(with_cascade.cascade_trips, 0, "nothing sustains 10x overload");
        assert_eq!(plain.cascade_trips, 0, "plain runs never trip");
        assert_eq!(plain.repair_events, with_cascade.repair_events);
        assert_eq!(plain.minutes.len(), with_cascade.minutes.len());
        for (a, b) in plain.minutes.iter().zip(&with_cascade.minutes) {
            assert!((a.worst_queue_ms - b.worst_queue_ms).abs() < 1e-12);
            assert!((a.latency_stretch - b.latency_stretch).abs() < 1e-12);
            assert_eq!(a.overloaded_links, b.overloaded_links);
        }
    }

    #[test]
    fn safe_fraction_guards_zero_denominator() {
        assert_eq!(safe_fraction(1.0, 2.0), 0.5);
        assert_eq!(safe_fraction(5.0, 0.0), 0.0, "zero volume must not yield NaN");
        assert_eq!(safe_fraction(5.0, -1.0), 0.0);
        assert!(safe_fraction(f64::NAN, 0.0) == 0.0, "NaN numerator is masked when nothing flows");
    }

    #[test]
    fn parse_trims_prefixed_specs_and_rejects_empty_ones() {
        assert_eq!(Controller::parse("static: SP").expect("trimmed").name(), "static:SP");
        assert_eq!(Controller::parse("  static:B4 ").expect("trimmed").name(), "static:B4");
        assert_eq!(Controller::parse("bounded: LDR").expect("trimmed").name(), "bounded:LDR");
        let bounded = Controller::parse("bounded:LDR").expect("bounded");
        assert!(bounded.is_adaptive());
        assert!(bounded.churn_budget().is_some());
        assert_eq!(
            Controller::parse("static:").unwrap_err(),
            ControllerParseError::EmptySpec { prefix: "static:" }
        );
        assert_eq!(
            Controller::parse("bounded:   ").unwrap_err(),
            ControllerParseError::EmptySpec { prefix: "bounded:" }
        );
        let err = Controller::parse("static:").unwrap_err().to_string();
        assert!(err.contains("static:"), "error names the prefix: {err}");
        assert!(matches!(Controller::parse("bounded:nope"), Err(ControllerParseError::Unknown(_))));
    }

    #[test]
    fn same_minute_scripted_events_apply_in_slice_order() {
        // Two events at the same decision minute: the last mask in the
        // slice wins — that ordering is the documented contract.
        let (topo, tm, _) = two_path_setup();
        let graph = topo.graph();
        // Failing both of A's cables disconnects A-Z entirely.
        let mut sever = FailureMask::new();
        sever.fail_cable(graph, topo.cables()[0]);
        sever.fail_cable(graph, topo.cables()[2]);
        let cfg = TimelineConfig {
            minutes: 3,
            warmup_minutes: 2,
            cv: 0.1,
            seed: 9,
            ..Default::default()
        };

        let sever_then_up = vec![
            TimelineEvent { at_minute: 1, mask: sever.clone() },
            TimelineEvent { at_minute: 1, mask: FailureMask::new() },
        ];
        let out = simulate_with_events(&topo, &tm, &Controller::ldr(), &cfg, &sever_then_up);
        assert_eq!(out.repair_events, 2, "both events fire");
        assert_eq!(out.max_unroutable_fraction(), 0.0, "the later link-up wins");

        let up_then_sever = vec![
            TimelineEvent { at_minute: 1, mask: FailureMask::new() },
            TimelineEvent { at_minute: 1, mask: sever },
        ];
        let out = simulate_with_events(&topo, &tm, &Controller::ldr(), &cfg, &up_then_sever);
        assert_eq!(out.repair_events, 2);
        assert!(
            out.minutes[1].unroutable_fraction > 0.99,
            "the later severance wins, got {}",
            out.minutes[1].unroutable_fraction
        );
    }

    #[test]
    fn same_minute_link_up_and_cascade_trip_interleave_as_deltas() {
        // Regression: a cascade trip used to snapshot `current_mask` at
        // *emit* time, so a scripted link-up firing the same minute as the
        // trip was clobbered — the snapshot resurrected the already-
        // repaired failure and the network looked fully severed. Stored as
        // a delta, the trip lands on the mask the link-up left in force:
        // only the tripped narrow cable stays down, and the restored wide
        // path carries everything.
        let (topo, tm, _) = two_path_setup();
        let graph = topo.graph();
        let mut wide_down = FailureMask::new();
        wide_down.fail_cable(graph, topo.cables()[0]);
        let events = vec![
            // Minute 1: the wide path fails; 600 Mbps lands on the 400 Mbps
            // narrow cables and trips one of them for minute 2.
            TimelineEvent { at_minute: 1, mask: wide_down },
            // Minute 2: the wide path is repaired — scripted before the
            // trip fires.
            TimelineEvent { at_minute: 2, mask: FailureMask::new() },
        ];
        let cfg = TimelineConfig {
            minutes: 4,
            warmup_minutes: 2,
            cv: 0.05,
            seed: 21,
            ..Default::default()
        };
        let cascade = CascadeConfig { trip_overload: 0.2, max_trips: 4 };
        let out = simulate_with_cascades(&topo, &tm, &Controller::ldr(), &cfg, &events, &cascade);
        assert!(out.minutes[1].overloaded_links > 0, "reroute overloads the narrow path");
        assert_eq!(out.cascade_trips, 1, "the narrow path trips exactly once");
        assert_eq!(out.repair_events, 3, "failure, link-up, then the trip");
        // The decisive assertion: with the trip applied as a delta to the
        // repaired topology, A-Z flows over the wide path every minute.
        assert_eq!(
            out.max_unroutable_fraction(),
            0.0,
            "the link-up must survive the same-minute trip"
        );
    }

    #[test]
    fn bounded_churn_cuts_reinstalls_while_bounding_queueing() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 12,
            warmup_minutes: 3,
            cv: 0.2,
            seed: 17,
            diurnal_amplitude: 0.3,
            diurnal_period: 12,
        };
        let full = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        let bounded =
            simulate(&topo, &tm, &Controller::parse("bounded:LDR").expect("bounded:LDR"), &cfg);
        // Minute 0's initial install is the cost of turning on, not churn.
        assert_eq!(full.minutes[0].paths_changed, 0);
        assert_eq!(bounded.minutes[0].paths_changed, 0);
        assert!(
            full.total_paths_changed() > 0,
            "diurnal traffic must churn the per-minute re-placer"
        );
        assert!(
            (bounded.total_paths_changed() as f64) <= 0.25 * full.total_paths_changed() as f64,
            "bounded churn {} must be <= 25% of full re-placement churn {}",
            bounded.total_paths_changed(),
            full.total_paths_changed()
        );
        assert!(
            bounded.worst_queue_ms() <= 2.0 * full.worst_queue_ms() + 5.0,
            "kept placements must not blow up queueing: bounded {} ms vs full {} ms",
            bounded.worst_queue_ms(),
            full.worst_queue_ms()
        );
        assert_eq!(bounded.max_unroutable_fraction(), 0.0);
        // Decision latency is measured and sane for every controller kind.
        for out in [&full, &bounded] {
            assert!(out.minutes.iter().all(|m| m.decision_ms.is_finite() && m.decision_ms >= 0.0));
            assert!(out.median_decision_ms() > 0.0, "placement work takes nonzero wall-clock");
        }
        // Moved volume only when paths actually changed.
        for m in &bounded.minutes {
            assert!(m.moved_volume_fraction.is_finite());
            if m.paths_changed == 0 {
                assert!(m.moved_volume_fraction < 1e-9);
            }
        }
        // Static controllers never churn; their decision cost is ~copying.
        let sp = simulate(&topo, &tm, &Controller::static_sp(), &cfg);
        assert_eq!(sp.total_paths_changed(), 0);
        assert_eq!(sp.mean_moved_volume_fraction(), 0.0);
    }

    #[test]
    fn bounded_controller_reroutes_around_an_outage() {
        // Broken installed paths are a forced re-install: the bounded
        // controller must recover exactly like the full one.
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 5,
            warmup_minutes: 3,
            cv: 0.15,
            seed: 13,
            ..Default::default()
        };
        let events = outage(&topo, 4);
        let bounded = Controller::parse("bounded:LDR").expect("bounded:LDR");
        let out = simulate_with_events(&topo, &tm, &bounded, &cfg, &events);
        assert_eq!(out.repair_events, 2, "down then up");
        assert_eq!(out.max_unroutable_fraction(), 0.0, "Abilene survives any single failure");
        assert!(out.minutes[1].paths_changed > 0, "re-placing around the failure is paid churn");
    }

    #[test]
    fn events_out_of_range_panic() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig {
            minutes: 2,
            warmup_minutes: 2,
            cv: 0.2,
            seed: 5,
            ..Default::default()
        };
        let events = vec![TimelineEvent { at_minute: 2, mask: FailureMask::new() }];
        let result = std::panic::catch_unwind(|| {
            simulate_with_events(&topo, &tm, &Controller::static_sp(), &cfg, &events)
        });
        assert!(result.is_err());
    }
}
