//! Minute-by-minute controller simulation — the §5 deployment cycle
//! (measure demand → calculate paths → install) run against evolving,
//! bursty traffic, with *realized* queueing measured after the fact.
//!
//! This closes the loop the paper's figures leave implicit: Figures 12-14
//! argue LDR's placements leave the right headroom; this simulator replays
//! actual 100 ms traffic over each minute's placement and reports how much
//! queueing materialized, so the headroom claims can be checked end to end
//! (and fault-injected with arbitrarily bursty traces).
//!
//! Any [`registry`] scheme can drive the loop: a [`Controller`] wraps a
//! scheme either *adaptively* (re-placed every minute from the measured
//! history — LDR runs its full Figure-14 loop, everything else re-places
//! Algorithm-1 predicted demands) or *statically* (placed once up front,
//! the OSPF-style baseline). One shared [`PathCache`] and one warm-start
//! [`SolveContext`] persist across the whole run, so successive minutes
//! restart from each other's LP bases — the reason the cycle is fast
//! enough to run every minute.
//!
//! ## Failure events
//!
//! [`simulate_with_events`] interleaves topology changes with the TM
//! minutes: each [`TimelineEvent`] puts a [`FailureMask`] in force from a
//! given decision minute (an empty mask models repair/link-up). The shared
//! cache is *repaired*, not rebuilt — only cached paths crossing failed
//! elements regrow under the mask — and adaptive controllers re-place the
//! surviving demand through the same warm [`SolveContext`], so recovery
//! minutes restart from pre-failure bases. Static baselines keep their
//! placement; whatever they had routed over failed elements is counted
//! lost, which is exactly the availability argument for the adaptive
//! cycle.
//!
//! ## Load-induced cascades
//!
//! [`simulate_with_cascades`] adds the failure mode the scripted events
//! cannot express: overload *causing* the next failure. After each minute's
//! replay, if the worst surviving link's minute-mean load exceeds its
//! effective capacity by more than [`CascadeConfig::trip_overload`], that
//! cable trips — a new [`TimelineEvent`] failing it (on top of the mask
//! already in force) fires at the next decision minute, up to
//! [`CascadeConfig::max_trips`] trips per run. Trips are counted in
//! [`TimelineOutcome::cascade_trips`] and flow through the exact same
//! repair/re-place machinery as scripted events, so a brown-out that
//! concentrates traffic can be watched snowballing into an outage.

use std::sync::Arc;

use lowlat_core::eval::PlacementEval;
use lowlat_core::failure::{partition_routable, RoutablePartition};
use lowlat_core::pathset::PathCache;
use lowlat_core::schemes::registry::{self, UnknownScheme};
use lowlat_core::schemes::{RoutingScheme, SolveContext};
use lowlat_core::Placement;
use lowlat_netgraph::FailureMask;
use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::Topology;
use lowlat_traffic::{spread_seed, synthesize, AggregateTrace, TraceGenConfig};

/// Default decision minutes per run.
pub const DEFAULT_MINUTES: usize = 10;
/// Default history minutes before the first decision.
pub const DEFAULT_WARMUP_MINUTES: usize = 5;
/// Default burstiness (coefficient of variation) of the synthetic traffic.
pub const DEFAULT_CV: f64 = 0.3;
/// Default RNG seed for trace synthesis.
pub const DEFAULT_SEED: u64 = 99;

/// Which controller drives path computation each minute: any registry
/// scheme, run adaptively (re-placed every minute on the history so far)
/// or statically (placed once — the paper's OSPF baseline, generalized).
#[derive(Clone)]
pub struct Controller {
    scheme: Arc<dyn RoutingScheme>,
    adaptive: bool,
}

impl Controller {
    /// An adaptive controller: re-runs the named registry scheme every
    /// minute on the measured history. LDR uses its full trace-driven
    /// Figure-14 loop; other schemes re-place Algorithm-1 predictions.
    pub fn adaptive(spec: &str) -> Result<Controller, UnknownScheme> {
        Ok(Controller { scheme: registry::build(spec)?, adaptive: true })
    }

    /// A static controller: the named scheme placed once on the base
    /// matrix, then left alone for the whole run.
    pub fn static_baseline(spec: &str) -> Result<Controller, UnknownScheme> {
        Ok(Controller { scheme: registry::build(spec)?, adaptive: false })
    }

    /// Parses a sweep spec: a registry name, optionally prefixed with
    /// `static:` for the placed-once variant (`"LDR"`, `"static:SP"`).
    pub fn parse(spec: &str) -> Result<Controller, UnknownScheme> {
        match spec.trim().strip_prefix("static:") {
            Some(rest) => Controller::static_baseline(rest),
            None => Controller::adaptive(spec),
        }
    }

    /// The paper's full LDR deployment cycle.
    ///
    /// # Panics
    /// Never — `LDR` is a registry spec.
    pub fn ldr() -> Controller {
        Controller::adaptive("LDR").expect("LDR is a registry spec")
    }

    /// Static shortest paths computed once (the OSPF baseline).
    ///
    /// # Panics
    /// Never — `SP` is a registry spec.
    pub fn static_sp() -> Controller {
        Controller::static_baseline("SP").expect("SP is a registry spec")
    }

    /// Display name: the scheme's registry name, `static:`-prefixed for
    /// placed-once controllers. Round-trips through [`Controller::parse`].
    pub fn name(&self) -> String {
        if self.adaptive {
            self.scheme.name()
        } else {
            format!("static:{}", self.scheme.name())
        }
    }

    /// True when the controller re-places every minute.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller").field("name", &self.name()).finish()
    }
}

/// Timeline parameters.
#[derive(Clone, Debug)]
pub struct TimelineConfig {
    /// Decision minutes simulated (after warm-up).
    pub minutes: usize,
    /// History minutes available before the first decision.
    pub warmup_minutes: usize,
    /// Burstiness of the synthetic traffic (coefficient of variation).
    pub cv: f64,
    /// RNG seed for trace synthesis.
    pub seed: u64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            minutes: DEFAULT_MINUTES,
            warmup_minutes: DEFAULT_WARMUP_MINUTES,
            cv: DEFAULT_CV,
            seed: DEFAULT_SEED,
        }
    }
}

/// A topology change taking effect at a decision minute: the failure mask
/// in force from that minute on. An empty mask restores the intact
/// topology (link-up), so an outage window is two events.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// 0-based decision-minute index (warm-up excluded) at which the mask
    /// takes effect — before that minute's placement decision.
    pub at_minute: usize,
    /// The complete mask in force from this minute (not a delta).
    pub mask: FailureMask,
}

/// The load-induced cascade model for [`simulate_with_cascades`]: when a
/// surviving link's minute-mean load exceeds `(1 + trip_overload)` times
/// its effective capacity, its cable trips at the next decision minute.
/// One trip per minute (the worst-overloaded cable), at most `max_trips`
/// per run.
#[derive(Clone, Debug)]
pub struct CascadeConfig {
    /// Overload fraction (load / effective capacity − 1) above which the
    /// worst link's cable trips. 0.2 means sustained load 20% over
    /// effective capacity blows the cable.
    pub trip_overload: f64,
    /// Upper bound on cascade trips per run — the breaker on the breaker,
    /// so a hopeless overload cannot fail every cable in the network.
    pub max_trips: usize,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig { trip_overload: 0.2, max_trips: 4 }
    }
}

/// What one simulated minute looked like.
#[derive(Clone, Debug)]
pub struct MinuteReport {
    /// Worst realized queueing delay over any surviving link this minute
    /// (ms).
    pub worst_queue_ms: f64,
    /// Links whose 100 ms load ever exceeded (effective) capacity.
    pub overloaded_links: usize,
    /// Propagation latency stretch of the placement in force. Adaptive
    /// controllers are judged on the routable demand they re-placed (1.0
    /// when nothing was routable); static placements on the full matrix —
    /// including traffic currently being lost, whose share is reported in
    /// `unroutable_fraction`, not discounted here.
    pub latency_stretch: f64,
    /// Volume fraction of demand not delivered this minute: disconnected
    /// pairs for adaptive controllers, plus traffic a static placement
    /// kept sending into failed elements.
    pub unroutable_fraction: f64,
}

/// Result of a timeline run.
#[derive(Clone, Debug)]
pub struct TimelineOutcome {
    /// One report per simulated minute.
    pub minutes: Vec<MinuteReport>,
    /// LP solves that warm-started from a previous minute's (or growth
    /// round's) basis, over the total — the §5 hot-path telemetry.
    pub lp_warm_hits: usize,
    /// Total LP solves the controller issued.
    pub lp_solves: usize,
    /// Topology events applied (mask changes, including link-ups).
    pub repair_events: usize,
    /// Cached pairs invalidated and regrown across all repairs (0 for
    /// static controllers, which never consult the cache after placing).
    pub repaired_pairs: usize,
    /// Cached pairs that survived repairs untouched (0 for static
    /// controllers).
    pub kept_pairs: usize,
    /// Load-induced cable trips emitted by the cascade model (always 0
    /// outside [`simulate_with_cascades`]). Each trip also counts as a
    /// repair event once its failure takes effect.
    pub cascade_trips: usize,
}

impl TimelineOutcome {
    /// Worst queueing delay over the whole run.
    pub fn worst_queue_ms(&self) -> f64 {
        self.minutes.iter().map(|m| m.worst_queue_ms).fold(0.0, f64::max)
    }

    /// Mean latency stretch across minutes.
    pub fn mean_stretch(&self) -> f64 {
        self.minutes.iter().map(|m| m.latency_stretch).sum::<f64>()
            / self.minutes.len().max(1) as f64
    }

    /// Minutes with any queueing above the threshold.
    pub fn minutes_with_queue_above(&self, threshold_ms: f64) -> usize {
        self.minutes.iter().filter(|m| m.worst_queue_ms > threshold_ms).count()
    }

    /// Worst per-minute undelivered-demand fraction.
    pub fn max_unroutable_fraction(&self) -> f64 {
        self.minutes.iter().map(|m| m.unroutable_fraction).fold(0.0, f64::max)
    }
}

/// Runs the controller cycle: each minute the controller re-places traffic
/// using only the history seen so far, then the *actual* next minute of
/// traffic is replayed over the placement.
///
/// # Panics
/// Panics if the matrix is empty, the config is degenerate, or the wrapped
/// scheme fails to place (a solver failure, not congestion).
pub fn simulate(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
) -> TimelineOutcome {
    simulate_with_events(topology, tm, controller, config, &[])
}

/// As [`simulate`], with failure events interleaved into the minute loop.
///
/// Events fire before their minute's placement decision: the cache is
/// repaired under the new mask, adaptive controllers re-place the demand
/// that survives, static placements soldier on and leak whatever they had
/// routed across the failed elements.
///
/// # Panics
/// As [`simulate`]; additionally if an event's minute is out of range.
pub fn simulate_with_events(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
    events: &[TimelineEvent],
) -> TimelineOutcome {
    run_timeline(topology, tm, controller, config, events, None)
}

/// As [`simulate_with_events`], with the load-induced cascade model armed:
/// a minute whose worst surviving link sustains mean load above
/// `(1 + cascade.trip_overload)` times effective capacity trips that cable
/// at the next decision minute (see [`CascadeConfig`]).
///
/// # Panics
/// As [`simulate_with_events`].
pub fn simulate_with_cascades(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
    events: &[TimelineEvent],
    cascade: &CascadeConfig,
) -> TimelineOutcome {
    run_timeline(topology, tm, controller, config, events, Some(cascade))
}

fn run_timeline(
    topology: &Topology,
    tm: &TrafficMatrix,
    controller: &Controller,
    config: &TimelineConfig,
    events: &[TimelineEvent],
    cascade: Option<&CascadeConfig>,
) -> TimelineOutcome {
    assert!(!tm.is_empty());
    assert!(config.minutes >= 1 && config.warmup_minutes >= 2);
    assert!(
        events.iter().all(|e| e.at_minute < config.minutes),
        "event minute out of 0..{}",
        config.minutes
    );
    let total_minutes = config.warmup_minutes + config.minutes;
    // Ground-truth traffic: one evolving trace per aggregate, mean anchored
    // at its matrix volume.
    let traces: Vec<AggregateTrace> = tm
        .aggregates()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            synthesize(&TraceGenConfig {
                mean_mbps: a.volume_mbps,
                cv: config.cv,
                minutes: total_minutes,
                seed: spread_seed(config.seed, i as u64),
                ..Default::default()
            })
        })
        .collect();

    let graph = topology.graph();
    // One cache and one warm-start context for the whole run: the §5 cycle's
    // speed comes from successive minutes reusing paths and LP bases — and
    // from repairing, not rebuilding, the cache when the topology changes.
    let cache = PathCache::new(graph);
    let mut ctx = SolveContext::new();

    let static_placement: Option<Placement> = if controller.adaptive {
        None
    } else {
        Some(controller.scheme.place(&cache, tm).expect("static placement"))
    };
    let total_volume = tm.total_volume_mbps();

    let mut current_mask = FailureMask::new();
    // The routable view under the current mask; `None` while everything is
    // up (the common fast path: no partition, no per-minute mask checks).
    let mut partition: Option<RoutablePartition> = None;
    // Static placements leak a fixed volume fraction per mask; recomputed
    // only when the mask changes.
    let mut static_lost_fraction = 0.0f64;

    let mut repair_events = 0usize;
    let mut repaired_pairs = 0usize;
    let mut kept_pairs = 0usize;
    let mut cascade_trips = 0usize;
    // Scripted events plus any cascade trips appended along the way; trips
    // always land at a later minute than the one that emitted them, so
    // per-minute index iteration stays sound.
    let mut queue: Vec<TimelineEvent> = events.to_vec();

    let mut minutes = Vec::with_capacity(config.minutes);
    for t in config.warmup_minutes..total_minutes {
        let rel_t = t - config.warmup_minutes;
        // Topology events due this decision minute fire first.
        for i in 0..queue.len() {
            if queue[i].at_minute != rel_t {
                continue;
            }
            let ev = queue[i].clone();
            repair_events += 1;
            // A static controller never consults the cache after its
            // initial placement, so there is nothing to repair — the mask
            // alone drives its loss accounting and replay.
            if controller.adaptive {
                let stats = cache.apply_failure(&ev.mask);
                repaired_pairs += stats.repaired_pairs;
                kept_pairs += stats.kept_pairs;
            }
            current_mask = ev.mask.clone();
            partition =
                (!current_mask.is_empty()).then(|| partition_routable(graph, tm, &current_mask));
            static_lost_fraction = match &static_placement {
                Some(p) if !current_mask.is_empty() => {
                    let mut lost = 0.0;
                    for (agg, pl) in tm.aggregates().iter().zip(p.per_aggregate()) {
                        for (path, x) in &pl.splits {
                            if *x > 1e-9 && current_mask.hits_path(graph, path) {
                                lost += agg.volume_mbps * x;
                            }
                        }
                    }
                    lost / total_volume
                }
                _ => 0.0,
            };
        }

        // The demand the controller can see/route this minute, and the
        // original-matrix index of each of its aggregates.
        let minute_tm: &TrafficMatrix = partition.as_ref().map_or(tm, |p| &p.tm);
        let trace_of = |j: usize| partition.as_ref().map_or(j, |p| p.kept[j]);

        // Decide on history [0, t).
        let placement = match &static_placement {
            Some(p) => Some(p.clone()),
            None if minute_tm.is_empty() => None,
            None => {
                let history: Vec<AggregateTrace> = (0..minute_tm.aggregates().len())
                    .map(|j| traces[trace_of(j)].truncated(t))
                    .collect();
                Some(
                    controller
                        .scheme
                        .place_with_history(&cache, minute_tm, &history, &mut ctx)
                        .expect("adaptive placement"),
                )
            }
        };

        // Replay minute t's actual samples over the placement. A static
        // placement aligns with the *full* matrix (its traffic into failed
        // elements is dropped and counted); an adaptive one with the
        // routable view.
        let unroutable_fraction = if static_placement.is_some() {
            static_lost_fraction
        } else {
            partition.as_ref().map_or(0.0, |p| p.unroutable_fraction)
        };
        let bins = traces[0].bins_per_minute();
        let mut per_link_load = vec![vec![0.0f64; bins]; graph.link_count()];
        if let Some(pl) = &placement {
            for (j, agg_pl) in pl.per_aggregate().iter().enumerate() {
                let trace =
                    if static_placement.is_some() { &traces[j] } else { &traces[trace_of(j)] };
                let samples = trace.samples(t);
                for (path, x) in &agg_pl.splits {
                    if *x <= 1e-9 {
                        continue;
                    }
                    if !current_mask.is_empty() && current_mask.hits_path(graph, path) {
                        // Lost traffic, accounted in static_lost_fraction.
                        // Adaptive placements are built from the repaired
                        // cache and must never route over failed elements.
                        debug_assert!(
                            static_placement.is_some(),
                            "adaptive placement routed over a failed element"
                        );
                        continue;
                    }
                    for &l in path.links() {
                        let row = &mut per_link_load[l.idx()];
                        for (bin, &s) in samples.iter().enumerate() {
                            row[bin] += s * x;
                        }
                    }
                }
            }
        }
        let mut worst_queue_ms = 0.0f64;
        let mut overloaded_links = 0usize;
        // The cascade candidate: the worst cable sustaining minute-mean
        // load above the trip threshold (per-bin bursts queue, they don't
        // blow cables).
        let mut trip: Option<lowlat_netgraph::LinkId> = None;
        let mut trip_over = cascade.map_or(f64::INFINITY, |c| c.trip_overload);
        for l in graph.link_ids() {
            let cap = if current_mask.is_empty() {
                graph.link(l).capacity_mbps
            } else {
                current_mask.effective_capacity(graph, l)
            };
            if cap <= 0.0 {
                continue; // downed link: carries nothing (filtered above)
            }
            let mut backlog_mb = 0.0f64;
            let mut overloaded = false;
            let mut sum = 0.0f64;
            for &load in &per_link_load[l.idx()] {
                backlog_mb = (backlog_mb + (load - cap) * 0.1).max(0.0);
                worst_queue_ms = worst_queue_ms.max(backlog_mb / cap * 1000.0);
                overloaded |= load > cap;
                sum += load;
            }
            if overloaded {
                overloaded_links += 1;
            }
            let over = sum / bins as f64 / cap - 1.0;
            if over > trip_over {
                trip = Some(l);
                trip_over = over;
            }
        }
        if let Some(l) = trip {
            let max_trips = cascade.map_or(0, |c| c.max_trips);
            if cascade_trips < max_trips && rel_t + 1 < config.minutes {
                // The overloaded cable blows: schedule its failure, on top
                // of whatever mask is already in force, for next minute.
                let mut mask = current_mask.clone();
                mask.fail_cable(graph, l);
                queue.push(TimelineEvent { at_minute: rel_t + 1, mask });
                cascade_trips += 1;
            }
        }
        let latency_stretch = match &placement {
            Some(pl) if static_placement.is_some() => {
                PlacementEval::evaluate(topology, tm, pl).latency_stretch()
            }
            Some(pl) => PlacementEval::evaluate(topology, minute_tm, pl).latency_stretch(),
            None => 1.0,
        };
        minutes.push(MinuteReport {
            worst_queue_ms,
            overloaded_links,
            latency_stretch,
            unroutable_fraction,
        });
    }
    TimelineOutcome {
        minutes,
        lp_warm_hits: ctx.warm_hits(),
        lp_solves: ctx.solves(),
        repair_events,
        repaired_pairs,
        kept_pairs,
        cascade_trips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_core::failure::single_link_failures;
    use lowlat_core::scale::ScaleToLoad;
    use lowlat_tmgen::{Aggregate, GravityTmGen, TmGenConfig};
    use lowlat_topology::zoo::named;
    use lowlat_topology::{GeoPoint, PopId, TopologyBuilder};

    fn setup() -> (Topology, TrafficMatrix) {
        let topo = named::abilene();
        let tm =
            GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);
        (topo, tm)
    }

    #[test]
    fn ldr_controller_bounds_queueing_on_smooth_traffic() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.1, seed: 1 };
        let out = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        assert_eq!(out.minutes.len(), 4);
        // Smooth traffic + LDR headroom: queueing stays near the allowance.
        assert!(
            out.worst_queue_ms() <= 50.0,
            "LDR should bound queueing, saw {} ms",
            out.worst_queue_ms()
        );
        assert!(out.mean_stretch() >= 1.0 - 1e-9);
        // No events: nothing repaired, nothing lost.
        assert_eq!(out.repair_events, 0);
        assert_eq!(out.max_unroutable_fraction(), 0.0);
    }

    #[test]
    fn ldr_beats_static_sp_on_realized_queueing() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.3, seed: 7 };
        let ldr = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        let sp = simulate(&topo, &tm, &Controller::static_sp(), &cfg);
        assert!(
            ldr.worst_queue_ms() <= sp.worst_queue_ms() + 1e-9,
            "LDR {} ms vs SP {} ms",
            ldr.worst_queue_ms(),
            sp.worst_queue_ms()
        );
    }

    #[test]
    fn overloaded_static_routing_queues_heavily() {
        // Mean-level overload is what static routing cannot absorb: the
        // same matrix at 1.3x min-cut load must queue far more than at
        // 0.35x. (Burstiness alone is *not* monotone for lognormal noise —
        // higher cv lowers the median load — so the load level is the
        // robust axis to test.)
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 3, warmup_minutes: 2, cv: 0.2, seed: 3 };
        let light = simulate(&topo, &tm.scaled(0.5), &Controller::static_sp(), &cfg);
        let heavy = simulate(&topo, &tm.scaled(1.9), &Controller::static_sp(), &cfg);
        assert!(
            heavy.worst_queue_ms() > light.worst_queue_ms() + 10.0,
            "overload must dominate queueing: heavy {} ms vs light {} ms",
            heavy.worst_queue_ms(),
            light.worst_queue_ms()
        );
        assert!(heavy.minutes_with_queue_above(10.0) > 0);
    }

    #[test]
    fn any_registry_scheme_drives_the_timeline() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 2, warmup_minutes: 2, cv: 0.2, seed: 5 };
        for spec in ["SP", "ECMP", "B4", "MinMaxK4", "LatOpt", "static:B4"] {
            let controller = Controller::parse(spec).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(controller.name(), spec, "controller names round-trip");
            let out = simulate(&topo, &tm, &controller, &cfg);
            assert_eq!(out.minutes.len(), 2, "{spec} must produce every minute");
            assert!(out.mean_stretch() >= 1.0 - 1e-9, "{spec} stretch sane");
        }
        assert!(Controller::parse("static:nope").is_err());
        assert!(Controller::parse("nope").is_err());
    }

    #[test]
    fn adaptive_lp_controllers_warm_start_across_minutes() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.2, seed: 11 };
        let out = simulate(&topo, &tm, &Controller::ldr(), &cfg);
        assert!(out.lp_solves > 0, "LDR solves LPs every minute");
        assert!(
            out.lp_warm_hits > 0,
            "successive minutes must reuse bases: {} hits / {} solves",
            out.lp_warm_hits,
            out.lp_solves
        );
        // Static controllers never touch the per-minute LP context.
        let sp = simulate(&topo, &tm, &Controller::static_sp(), &cfg);
        assert_eq!(sp.lp_solves, 0);
    }

    /// An outage window: the first single-cable failure from minute 1,
    /// repaired at `up_minute`.
    fn outage(topo: &Topology, up_minute: usize) -> Vec<TimelineEvent> {
        let scenario = &single_link_failures(topo)[0];
        vec![
            TimelineEvent { at_minute: 1, mask: scenario.mask(topo) },
            TimelineEvent { at_minute: up_minute, mask: FailureMask::new() },
        ]
    }

    #[test]
    fn adaptive_controller_reroutes_around_an_outage() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 5, warmup_minutes: 3, cv: 0.15, seed: 13 };
        let events = outage(&topo, 4);
        let out = simulate_with_events(&topo, &tm, &Controller::ldr(), &cfg, &events);
        assert_eq!(out.minutes.len(), 5);
        assert_eq!(out.repair_events, 2, "down then up");
        assert!(out.repaired_pairs > 0, "the failed cable crossed cached paths");
        assert!(out.kept_pairs > 0, "repair must not rebuild the whole cache");
        // Abilene survives any single failure: the adaptive controller
        // delivers everything, every minute.
        assert_eq!(out.max_unroutable_fraction(), 0.0);
        assert!(out.mean_stretch() >= 1.0 - 1e-9);
        assert!(out.lp_warm_hits > 0, "recovery minutes must stay warm");
    }

    #[test]
    fn static_baseline_loses_traffic_during_the_outage() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.15, seed: 13 };
        // Fail a cable SP actually uses: try scenarios until one leaks.
        let mut leaked = false;
        for scenario in single_link_failures(&topo) {
            let events = vec![TimelineEvent { at_minute: 1, mask: scenario.mask(&topo) }];
            let out = simulate_with_events(&topo, &tm, &Controller::static_sp(), &cfg, &events);
            assert_eq!(out.minutes[0].unroutable_fraction, 0.0, "pre-failure minute clean");
            if out.max_unroutable_fraction() > 0.0 {
                leaked = true;
                break;
            }
        }
        assert!(leaked, "some single failure must hit SP's placed paths");
    }

    /// A two-path network: A—M—Z wide (1000 Mbps cables), A—N—Z narrow
    /// (400 Mbps cables). Losing the wide path forces everything onto
    /// cables that cannot carry it — the cascade trigger.
    fn two_path_setup() -> (Topology, TrafficMatrix, PopId) {
        let mut b = TopologyBuilder::new("cascade2p");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect(a, m, 1000.0);
        b.connect(m, z, 1000.0);
        b.connect(a, n, 400.0);
        b.connect(n, z, 400.0);
        let topo = b.build();
        let tm = TrafficMatrix::new(vec![Aggregate {
            src: a,
            dst: z,
            volume_mbps: 600.0,
            flow_count: 600,
        }]);
        (topo, tm, a)
    }

    #[test]
    fn overload_after_reroute_trips_a_cascade() {
        let (topo, tm, _) = two_path_setup();
        let graph = topo.graph();
        // Fail the wide path's first cable (connect order: A-M first).
        let mut mask = FailureMask::new();
        mask.fail_cable(graph, topo.cables()[0]);
        let events = vec![TimelineEvent { at_minute: 1, mask }];
        let cfg = TimelineConfig { minutes: 5, warmup_minutes: 2, cv: 0.05, seed: 21 };
        let cascade = CascadeConfig { trip_overload: 0.2, max_trips: 4 };
        let out = simulate_with_cascades(&topo, &tm, &Controller::ldr(), &cfg, &events, &cascade);
        // Minute 1: 600 Mbps rerouted onto 400 Mbps cables — 50% sustained
        // overload, far past the 20% trip threshold.
        assert!(out.minutes[1].overloaded_links > 0, "reroute must overload the narrow path");
        assert_eq!(out.cascade_trips, 1, "exactly one cable blows");
        assert_eq!(out.repair_events, 2, "the scripted failure plus the trip");
        // The trip severs the only remaining path: demand goes unroutable.
        assert_eq!(out.minutes[1].unroutable_fraction, 0.0);
        assert!(
            out.minutes[2].unroutable_fraction > 0.99,
            "after the cascade A-Z is disconnected, got {}",
            out.minutes[2].unroutable_fraction
        );
        // Nothing left to overload, so the cascade stops at one trip.
        assert!(out.max_unroutable_fraction() > 0.99);
    }

    #[test]
    fn no_overload_means_no_trips_and_event_equivalence() {
        // Below the trip threshold the cascade runner must be bit-for-bit
        // the plain event runner.
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 4, warmup_minutes: 3, cv: 0.15, seed: 13 };
        let events = outage(&topo, 3);
        let plain = simulate_with_events(&topo, &tm, &Controller::ldr(), &cfg, &events);
        let cascade = CascadeConfig { trip_overload: 10.0, max_trips: 8 };
        let with_cascade =
            simulate_with_cascades(&topo, &tm, &Controller::ldr(), &cfg, &events, &cascade);
        assert_eq!(with_cascade.cascade_trips, 0, "nothing sustains 10x overload");
        assert_eq!(plain.cascade_trips, 0, "plain runs never trip");
        assert_eq!(plain.repair_events, with_cascade.repair_events);
        assert_eq!(plain.minutes.len(), with_cascade.minutes.len());
        for (a, b) in plain.minutes.iter().zip(&with_cascade.minutes) {
            assert!((a.worst_queue_ms - b.worst_queue_ms).abs() < 1e-12);
            assert!((a.latency_stretch - b.latency_stretch).abs() < 1e-12);
            assert_eq!(a.overloaded_links, b.overloaded_links);
        }
    }

    #[test]
    fn events_out_of_range_panic() {
        let (topo, tm) = setup();
        let cfg = TimelineConfig { minutes: 2, warmup_minutes: 2, cv: 0.2, seed: 5 };
        let events = vec![TimelineEvent { at_minute: 2, mask: FailureMask::new() }];
        let result = std::panic::catch_unwind(|| {
            simulate_with_events(&topo, &tm, &Controller::static_sp(), &cfg, &events)
        });
        assert!(result.is_err());
    }
}
