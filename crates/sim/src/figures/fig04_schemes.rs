//! Figure 4 (a-d): congestion and latency stretch vs LLPD for the active
//! schemes — latency-optimal, B4, MinMax, MinMax K=10.

use crate::output::Series;
use crate::runner::{by_llpd, run_grid, RunGrid, Scale};

/// Per scheme, four series: congestion median/p90 and stretch median/p90,
/// all over LLPD.
pub fn run(scale: Scale) -> Vec<Series> {
    let nets = scale.select_networks(lowlat_topology::zoo::synthetic_zoo());
    let grid = RunGrid::with_schemes(
        0.7,
        1.0,
        scale.tms_per_network(),
        &["LatOpt", "B4", "MinMax", "MinMaxK10"],
    );
    let records = run_grid(&nets, &grid);
    let mut series = Vec::new();
    for scheme in ["LatOpt", "B4", "MinMax", "MinMaxK10"] {
        let cong = by_llpd(&records, scheme, |r| r.congested_fraction);
        let stretch = by_llpd(&records, scheme, |r| r.latency_stretch);
        series.push(Series::new(
            format!("{scheme}/congested/median"),
            cong.iter().map(|&(l, m, _)| (l, m)).collect(),
        ));
        series.push(Series::new(
            format!("{scheme}/congested/p90"),
            cong.iter().map(|&(l, _, p)| (l, p)).collect(),
        ));
        series.push(Series::new(
            format!("{scheme}/stretch/median"),
            stretch.iter().map(|&(l, m, _)| (l, m)).collect(),
        ));
        series.push(Series::new(
            format!("{scheme}/stretch/p90"),
            stretch.iter().map(|&(l, _, p)| (l, p)).collect(),
        ));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualitative_shape_of_figure4() {
        let series = run(Scale::Quick);
        let get = |name: &str| {
            series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        // 4a: the optimal scheme never congests at 0.7 load.
        for (_, v) in &get("LatOpt/congested/median").points {
            assert!(*v < 1e-9, "optimal routing congested");
        }
        // 4c: MinMax never congests either...
        for (_, v) in &get("MinMax/congested/median").points {
            assert!(*v < 1e-9, "MinMax congested");
        }
        // ...but pays latency: median-of-medians stretch above LatOpt's.
        let avg = |pts: &[(f64, f64)]| pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
        assert!(
            avg(&get("MinMax/stretch/median").points)
                >= avg(&get("LatOpt/stretch/median").points) - 1e-9
        );
    }
}
