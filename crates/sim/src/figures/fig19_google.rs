//! Figure 19: the Figure-3 shortest-path congestion data with the
//! Google-like global WAN added — the highest-LLPD network in the corpus,
//! unroutable with shortest paths alone.

use crate::output::Series;
use crate::runner::{by_llpd, run_grid, RunGrid, Scale};

/// Figure-3 series plus a one-point "Google" series.
pub fn run(scale: Scale) -> Vec<Series> {
    let mut series = super::fig03_sp::run(scale);
    let google = lowlat_topology::zoo::named::google_like();
    let llpd = crate::runner::llpd_map(std::slice::from_ref(&google), &Default::default())[0];
    let grid = RunGrid::with_schemes(0.7, 1.0, scale.tms_per_network(), &["SP"]);
    let records = run_grid(&[google], &grid);
    let rows = by_llpd(&records, "SP", |r| r.congested_fraction);
    let _ = llpd;
    series.push(Series::new("Google", rows.iter().map(|&(l, m, _)| (l, m)).collect()));
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_like_has_top_llpd_and_congests_under_sp() {
        let series = run(Scale::Quick);
        let google = series.iter().find(|s| s.name == "Google").unwrap();
        let (llpd, congestion) = google.points[0];
        // Among the very top of the corpus by LLPD (paper: 0.875; our
        // corpus has one dense synthetic mesh slightly above it at Std
        // scale, so assert a top-decile position rather than the maximum)...
        let corpus: Vec<f64> = series[0].points.iter().map(|p| p.0).collect();
        let above = corpus.iter().filter(|&&l| l > llpd).count();
        assert!(
            above * 10 <= corpus.len(),
            "google llpd {llpd} should be top-decile ({above} of {} above)",
            corpus.len()
        );
        // ...and cannot be routed with shortest paths alone.
        assert!(congestion > 0.0, "SP must congest the Google-like WAN");
    }
}
