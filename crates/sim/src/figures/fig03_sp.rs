//! Figure 3: fraction of congested pairs vs LLPD under shortest-path
//! routing (median and 90th percentile across matrices).

use crate::output::Series;
use crate::runner::{by_llpd, run_grid, RunGrid, Scale};

/// Two series over (llpd, congested-pair fraction): median and p90.
pub fn run(scale: Scale) -> Vec<Series> {
    let nets = scale.select_networks(lowlat_topology::zoo::synthetic_zoo());
    let grid = RunGrid::with_schemes(0.7, 1.0, scale.tms_per_network(), &["SP"]);
    let records = run_grid(&nets, &grid);
    let rows = by_llpd(&records, "SP", |r| r.congested_fraction);
    vec![
        Series::new("median", rows.iter().map(|&(l, m, _)| (l, m)).collect()),
        Series::new("p90", rows.iter().map(|&(l, _, p)| (l, p)).collect()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_llpd_networks_congest_more_under_sp() {
        let series = run(Scale::Quick);
        let median = &series[0].points;
        assert!(!median.is_empty());
        // The paper's claim: congestion under SP rises with LLPD. Compare
        // the low-LLPD third against the high-LLPD third.
        let third = (median.len() / 3).max(1);
        let low: f64 = median[..third].iter().map(|p| p.1).sum::<f64>() / third as f64;
        let hi_start = median.len() - third;
        let high: f64 = median[hi_start..].iter().map(|p| p.1).sum::<f64>() / third as f64;
        assert!(
            high >= low,
            "expected congestion to rise with LLPD: low {low:.3} vs high {high:.3}"
        );
    }
}
