//! Figure 10: scatter of within-minute σ at minute t vs minute t+1 —
//! traffic variability is stable enough to predict.

use lowlat_traffic::trace::caida_like_traces;

use crate::output::Series;
use crate::runner::Scale;

/// One scatter series per trace: points (σ_t, σ_{t+1}) in Gbps.
pub fn run(scale: Scale) -> Vec<Series> {
    let (links, per_link) = match scale {
        Scale::Quick => (1, 3),
        Scale::Std => (4, 10),
        Scale::Full => (4, 40),
    };
    caida_like_traces(links, per_link, 2013)
        .into_iter()
        .enumerate()
        .map(|(i, trace)| {
            let sigmas: Vec<f64> = (0..trace.minutes()).map(|m| trace.sigma(m) / 1000.0).collect();
            let pts = sigmas.windows(2).map(|w| (w[0], w[1])).collect();
            Series::new(format!("trace{i}"), pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_cluster_around_diagonal() {
        let series = run(Scale::Quick);
        let mut total = 0usize;
        let mut near = 0usize;
        for s in &series {
            for &(a, b) in &s.points {
                total += 1;
                if (a - b).abs() <= 0.5 * a.max(b) {
                    near += 1;
                }
            }
        }
        assert!(total > 50);
        assert!(
            near as f64 / total as f64 > 0.9,
            "σ must be stable minute to minute ({near}/{total} near diagonal)"
        );
    }
}
