//! Figure 17: effect of load on the median max flow stretch (networks with
//! LLPD > 0.5).

use lowlat_core::schemes::registry;

use crate::output::Series;
use crate::runner::{run_grid, RunGrid, Scale};
use crate::stats::median_of;

/// Load levels (percent of min-cut utilization) the paper sweeps.
pub const LOADS: [f64; 4] = [0.6, 0.7, 0.8, 0.9];

/// One series per scheme: (load %, median max stretch across matrices).
/// Runs that fail to fit contribute a large sentinel stretch (they are the
/// reason B4's curve shoots up on a log axis).
pub fn run(scale: Scale) -> Vec<Series> {
    let nets: Vec<_> =
        super::networks_with_llpd(scale, |l| l > 0.5).into_iter().map(|(t, _)| t).collect();
    let schemes = registry::schemes(&["B4", "LDR", "MinMax", "MinMaxK10"]);
    let mut per_scheme: Vec<(String, Vec<(f64, f64)>)> =
        schemes.iter().map(|s| (s.name(), Vec::new())).collect();
    for &load in &LOADS {
        let grid = RunGrid {
            load,
            locality: 1.0,
            tms_per_network: scale.tms_per_network(),
            schemes: schemes.clone(),
        };
        let records = run_grid(&nets, &grid);
        for (name, points) in per_scheme.iter_mut() {
            let vals: Vec<f64> = records
                .iter()
                .filter(|r| &r.scheme == name)
                .map(|r| if r.fits { r.max_flow_stretch } else { 50.0 })
                .collect();
            if !vals.is_empty() {
                points.push((load * 100.0, median_of(&vals)));
            }
        }
    }
    per_scheme.into_iter().map(|(n, p)| Series::new(n, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b4_degrades_fastest_with_load() {
        let series = run(Scale::Quick);
        let last = |name: &str| {
            series.iter().find(|s| s.name == name).and_then(|s| s.points.last()).map(|p| p.1)
        };
        let (b4, ldr) = (last("B4").unwrap(), last("LDR").unwrap());
        assert!(
            b4 >= ldr - 1e-9,
            "at 90% load B4 ({b4}) should be at least as stretched as LDR ({ldr})"
        );
    }
}
