//! Figure 16 (a-c): CDFs of the maximum path stretch per traffic matrix,
//! split by LLPD band and headroom. Where a scheme could not fit the
//! traffic the CDF saturates below 1.0 — exactly how the paper renders
//! B4's and MinMaxK10's failures.

use crate::output::Series;
use crate::runner::{run_grid, RunGrid, Scale};

/// Which panel of the figure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Panel {
    /// (a) LLPD < 0.5, no headroom.
    LowLlpd,
    /// (b) LLPD > 0.5, no headroom.
    HighLlpd,
    /// (c) LLPD > 0.5, 10% headroom on every scheme that takes one.
    HighLlpdHeadroom,
}

/// One CDF per scheme (B4, LDR, MinMaxK10, MinMax).
pub fn run(scale: Scale, panel: Panel) -> Vec<Series> {
    let keep_low = matches!(panel, Panel::LowLlpd);
    let nets: Vec<_> = super::networks_with_llpd(scale, |l| (l < 0.5) == keep_low)
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    let specs: &[&str] = if matches!(panel, Panel::HighLlpdHeadroom) {
        &["B4-h10", "LDR-h10", "MinMaxK10", "MinMax"]
    } else {
        &["B4", "LDR-h00", "MinMaxK10", "MinMax"]
    };
    let grid = RunGrid::with_schemes(0.7, 1.0, scale.tms_per_network(), specs);
    let records = run_grid(&nets, &grid);
    grid.schemes
        .iter()
        .map(|scheme| {
            let name = scheme.name();
            // A run that does not fit contributes no stretch sample but
            // still counts in the denominator: the CDF tops out below 1.
            let all: Vec<&crate::runner::RunRecord> =
                records.iter().filter(|r| r.scheme == name).collect();
            let total = all.len().max(1);
            let mut fitting: Vec<f64> =
                all.iter().filter(|r| r.fits).map(|r| r.max_flow_stretch).collect();
            fitting.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pts = fitting
                .iter()
                .enumerate()
                .map(|(i, &x)| (x, (i + 1) as f64 / total as f64))
                .collect();
            Series::new(display_name(&name), pts)
        })
        .collect()
}

fn display_name(name: &str) -> String {
    // The figure legend drops headroom suffixes: the 10%-headroom B4 is
    // just "B4", the zero-headroom LDR just "LDR".
    if name.starts_with("B4") {
        "B4".into()
    } else if name.starts_with("LDR") {
        "LDR".into()
    } else {
        name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_llpd_minmax_and_ldr_always_fit() {
        let series = run(Scale::Quick, Panel::HighLlpd);
        let top = |name: &str| {
            series
                .iter()
                .find(|s| s.name == name)
                .and_then(|s| s.points.last().map(|p| p.1))
                .unwrap_or(0.0)
        };
        // Figure 16b: MinMax and LDR reach 1.0; B4/MinMaxK10 may not.
        assert!(top("MinMax") >= 0.999, "MinMax CDF tops at {}", top("MinMax"));
        assert!(top("LDR") >= 0.999, "LDR CDF tops at {}", top("LDR"));
        assert!(top("B4") <= 1.0 + 1e-9);
    }
}
