//! Figure 1: CDF of per-pair APA for every network (stretch limit 1.4).

use lowlat_core::llpd::{LlpdAnalysis, LlpdConfig};
use lowlat_topology::zoo::synthetic_zoo;

use crate::output::Series;
use crate::runner::Scale;
use crate::stats::Cdf;

/// One CDF series per network. Curves toward the lower right indicate
/// usable low-latency path diversity; horizontal lines are cliques.
pub fn run(scale: Scale) -> Vec<Series> {
    let nets = scale.select_networks(synthetic_zoo());
    let llpds = crate::runner::llpd_map(&nets, &LlpdConfig::default());
    // APA values per network (recomputed; llpd_map only returns the scalar).
    nets.iter()
        .zip(&llpds)
        .map(|(t, llpd)| {
            let analysis = LlpdAnalysis::compute(t, &LlpdConfig::default());
            let cdf = Cdf::new(analysis.apa_values().to_vec());
            Series::new(format!("{}(llpd={llpd:.2})", t.name()), cdf_as_xy(&cdf))
        })
        .collect()
}

/// `(APA value, cumulative fraction)` points — x in [0,1].
fn cdf_as_xy(cdf: &Cdf) -> Vec<(f64, f64)> {
    let mut pts = Vec::with_capacity(22);
    for i in 0..=20 {
        let x = i as f64 / 20.0;
        pts.push((x, cdf.fraction_at_or_below(x)));
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_produces_monotone_cdfs() {
        let series = run(Scale::Quick);
        assert!(!series.is_empty());
        for s in &series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12, "CDF must be monotone in {}", s.name);
            }
            assert!(s.points.last().unwrap().1 >= 0.999, "CDF reaches 1");
        }
    }
}
