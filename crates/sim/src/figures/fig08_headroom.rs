//! Figure 8: median change in total delay vs LLPD as headroom rises
//! (0%, 11%, 23%, 40%), at the lighter 0.6 min-cut load.

use crate::output::Series;
use crate::runner::{by_llpd, run_grid, RunGrid, Scale};

/// Headroom values the paper sweeps.
pub const HEADROOMS: [f64; 4] = [0.0, 0.11, 0.23, 0.40];

/// One series per headroom: (llpd, median latency stretch).
pub fn run(scale: Scale) -> Vec<Series> {
    let nets = scale.select_networks(lowlat_topology::zoo::synthetic_zoo());
    let specs: Vec<String> =
        HEADROOMS.iter().map(|&h| format!("LatOpt-h{:02}", (h * 100.0).round() as u32)).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let grid = RunGrid::with_schemes(0.6, 1.0, scale.tms_per_network(), &spec_refs);
    let records = run_grid(&nets, &grid);
    grid.schemes
        .iter()
        .zip(&HEADROOMS)
        .map(|(scheme, &h)| {
            let rows = by_llpd(&records, &scheme.name(), |r| r.latency_stretch);
            Series::new(
                format!("{}% headroom", (h * 100.0).round() as u32),
                rows.iter().map(|&(l, m, _)| (l, m)).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_rises_with_headroom_but_moderately() {
        let series = run(Scale::Quick);
        assert_eq!(series.len(), 4);
        let avg = |s: &Series| s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64;
        // Monotone in headroom on average.
        for w in series.windows(2) {
            assert!(avg(&w[1]) >= avg(&w[0]) - 1e-6, "stretch should not drop as headroom grows");
        }
        // The paper's observation: moderate headroom costs little delay.
        assert!(
            avg(&series[1]) < avg(&series[0]) * 1.2 + 0.05,
            "11% headroom should cost only a little stretch"
        );
    }
}
