//! Figure 15: run time of the optimization algorithms on the hardest
//! networks (LLPD > 0.5): LDR with a warm k-shortest-path cache, LDR cold,
//! and the link-based MCF formulation.

use std::time::Instant;

use lowlat_core::pathset::PathCache;
use lowlat_core::scale::min_cut_load_with_cache;
use lowlat_core::schemes::ldr::Ldr;
use lowlat_core::schemes::linkbased::LinkBasedOptimal;
use lowlat_core::schemes::RoutingScheme;
use lowlat_tmgen::{GravityTmGen, TmGenConfig};

use crate::output::Series;
use crate::runner::Scale;
use crate::stats::Cdf;

/// Pop-count cap for the link-based baseline at Std scale: its basis is
/// O(pops²) rows, so the largest corpus networks take minutes per solve —
/// which is the figure's very point, but `--std` keeps a ceiling so the
/// sweep finishes; `--full` lifts it.
const LINK_BASED_POP_CAP_STD: usize = 40;

/// Three runtime CDFs (milliseconds, log-friendly).
pub fn run(scale: Scale) -> Vec<Series> {
    // Quick mode pins two mid-size high-LLPD networks so the comparison is
    // deterministic; the larger scales use the LLPD > 0.5 corpus subset as
    // in the paper.
    let nets: Vec<(lowlat_topology::Topology, f64)> = match scale {
        Scale::Quick => vec![
            (lowlat_topology::zoo::named::gts_like(), 0.6),
            (lowlat_topology::zoo::named::cogent_like(), 0.6),
        ],
        _ => super::networks_with_llpd(scale, |l| l > 0.5),
    };
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    let mut link_based = Vec::new();
    let gen = GravityTmGen::new(TmGenConfig::default());
    for (topo, _) in &nets {
        let cache = PathCache::new(topo.graph());
        let raw = gen.generate(topo, 0);
        let Ok(u0) = min_cut_load_with_cache(&cache, &raw) else { continue };
        let tm = raw.scaled(0.7 / u0.max(1e-9));

        // Cold: fresh cache, first run.
        let fresh = PathCache::new(topo.graph());
        let t0 = Instant::now();
        let _ = Ldr::default().place(&fresh, &tm);
        cold.push(t0.elapsed().as_secs_f64() * 1000.0);

        // Warm: the same cache again (the scaling pass above plus the cold
        // run populated `fresh`; reuse it).
        let t0 = Instant::now();
        let _ = Ldr::default().place(&fresh, &tm);
        warm.push(t0.elapsed().as_secs_f64() * 1000.0);

        let cap = match scale {
            Scale::Full => usize::MAX,
            _ => LINK_BASED_POP_CAP_STD,
        };
        if topo.pop_count() <= cap {
            let t0 = Instant::now();
            let _ = LinkBasedOptimal::default().place_on(topo, &tm);
            link_based.push(t0.elapsed().as_secs_f64() * 1000.0);
        }
    }
    let mut out = Vec::new();
    for (name, samples) in [("LDR", warm), ("LDR-cold", cold), ("LinkBased", link_based)] {
        if samples.is_empty() {
            continue;
        }
        let cdf = Cdf::new(samples);
        out.push(Series::new(name, cdf.points(24)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldr_is_much_faster_than_link_based() {
        let series = run(Scale::Quick);
        let median = |name: &str| {
            let s = series.iter().find(|s| s.name == name).unwrap();
            s.points[s.points.len() / 2].0
        };
        let warm = median("LDR");
        let lb = median("LinkBased");
        assert!(lb > 3.0 * warm, "link-based should be far slower: {lb:.1} ms vs {warm:.1} ms");
        // Warm cache never slower than cold on the median.
        assert!(median("LDR") <= median("LDR-cold") * 1.5 + 5.0);
    }
}
