//! Figure 20: latency benefits of growing a topology by LLPD-guided link
//! addition — only a routing scheme that exploits path diversity (LDR)
//! fully converts new links into lower stretch.

use lowlat_core::growth::{grow_by_llpd, GrowthPlanConfig};
use lowlat_core::schemes::registry;
use lowlat_topology::Topology;

use crate::output::Series;
use crate::runner::{run_grid, run_grid_replay, RunGrid, Scale};
use crate::stats::{median_of, quantile_of};

/// Picks hard-to-route networks: high median latency stretch under the
/// latency-optimal scheme, cliques excluded (they cannot grow).
fn hard_networks(scale: Scale, count: usize) -> Vec<Topology> {
    let nets = scale.select_networks(lowlat_topology::zoo::synthetic_zoo());
    let grid = RunGrid::with_schemes(0.7, 1.0, 1, &["LatOpt"]);
    let records = run_grid(&nets, &grid);
    let mut scored: Vec<(f64, &str)> = records
        .iter()
        .filter(|r| r.class != lowlat_topology::zoo::ZooClass::Clique)
        .map(|r| (r.latency_stretch, r.network.as_str()))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    scored.truncate(count);
    let names: Vec<String> = scored.iter().map(|(_, n)| n.to_string()).collect();
    nets.into_iter().filter(|t| names.iter().any(|n| n == t.name())).collect()
}

/// Per scheme, two series: median (before, after) stretch pairs, and p90
/// pairs. Points below the x=y diagonal mean the added links helped.
pub fn run(scale: Scale) -> Vec<Series> {
    let count = match scale {
        Scale::Quick => 2,
        _ => 4,
    };
    let originals = hard_networks(scale, count);
    let grown: Vec<Topology> =
        originals.iter().map(|t| grow_by_llpd(t, &GrowthPlanConfig::default()).topology).collect();

    let schemes = registry::schemes(&["LDR", "MinMax", "MinMaxK10", "B4"]);
    let grid = RunGrid {
        load: 0.7,
        locality: 1.0,
        tms_per_network: scale.tms_per_network(),
        schemes: schemes.clone(),
    };
    let before = run_grid(&originals, &grid);
    // Replay the *same* matrices on the grown topologies: growth raises the
    // min-cut, so re-scaling on the grown network would inflate the load and
    // bury the latency benefit the figure is about.
    let after = run_grid_replay(&grown, &originals, &grid);

    let mut out = Vec::new();
    for scheme in &grid.schemes {
        let name = scheme.name();
        let mut med_pts = Vec::new();
        let mut p90_pts = Vec::new();
        for (orig, new) in originals.iter().zip(&grown) {
            let vals = |records: &[crate::runner::RunRecord], net: &str| -> Vec<f64> {
                records
                    .iter()
                    .filter(|r| r.scheme == name && r.network == net)
                    .map(|r| r.latency_stretch)
                    .collect()
            };
            let b = vals(&before, orig.name());
            let a = vals(&after, new.name());
            if b.is_empty() || a.is_empty() {
                continue;
            }
            med_pts.push((median_of(&b), median_of(&a)));
            p90_pts.push((quantile_of(&b, 0.9), quantile_of(&a, 0.9)));
        }
        out.push(Series::new(format!("{name}/median"), med_pts));
        out.push(Series::new(format!("{name}/p90"), p90_pts));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldr_converts_new_links_into_lower_stretch() {
        let series = run(Scale::Quick);
        let ldr = series.iter().find(|s| s.name == "LDR/median").unwrap();
        assert!(!ldr.points.is_empty());
        for &(before, after) in &ldr.points {
            assert!(
                after <= before + 0.05,
                "LDR after-growth stretch {after} should not exceed before {before}"
            );
        }
    }
}
