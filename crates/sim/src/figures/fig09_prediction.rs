//! Figure 9: CDF of measured/predicted bitrate under Algorithm 1 over the
//! CAIDA-like trace corpus.

use lowlat_traffic::predictor::prediction_ratios;
use lowlat_traffic::trace::caida_like_traces;

use crate::output::Series;
use crate::runner::Scale;
use crate::stats::Cdf;

/// One CDF of measured/predicted ratios. Constant traffic would pin the
/// ratio at 1/1.1 ≈ 0.91; the paper reports overshoot (> 1) only ~0.5% of
/// the time and never by more than 10%.
pub fn run(scale: Scale) -> Vec<Series> {
    let (links, per_link) = match scale {
        Scale::Quick => (2, 5),
        Scale::Std => (4, 20),
        Scale::Full => (4, 40),
    };
    let mut ratios = Vec::new();
    for trace in caida_like_traces(links, per_link, 2013) {
        ratios.extend(prediction_ratios(&trace.minute_means()));
    }
    let cdf = Cdf::new(ratios);
    let (lo, hi) = cdf.range();
    let pts = (0..=60)
        .map(|i| {
            let x = lo + (hi - lo) * i as f64 / 60.0;
            (x, cdf.fraction_at_or_below(x))
        })
        .collect();
    vec![Series::new("measured/predicted", pts)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_rarely_overshoot() {
        let series = run(Scale::Quick);
        let pts = &series[0].points;
        // Fraction of ratios <= 1.0 (i.e. measured within prediction).
        let below_one = pts.iter().filter(|p| p.0 <= 1.0).map(|p| p.1).fold(0.0f64, f64::max);
        assert!(below_one > 0.95, "overshoot must be rare, got {below_one}");
        // And the bulk of mass sits near 1/1.1 ≈ 0.91.
        let (lo, hi) = (pts[0].0, pts.last().unwrap().0);
        assert!(lo > 0.6 && hi < 1.25, "ratios in a narrow band: [{lo}, {hi}]");
    }
}
