//! Figure 7: link-utilization CDFs on the GTS-like network (median traffic
//! matrix) under latency-optimal and MinMax placement.

use lowlat_core::eval::PlacementEval;
use lowlat_core::scale::ScaleToLoad;
use lowlat_core::schemes::latopt::LatencyOptimal;
use lowlat_core::schemes::minmax::MinMaxRouting;
use lowlat_core::schemes::RoutingScheme;
use lowlat_tmgen::{GravityTmGen, TmGenConfig};

use crate::output::Series;
use crate::runner::Scale;
use crate::stats::Cdf;

/// Two CDFs of link utilization; the paper reports means 0.32 (latency-
/// optimal) and 0.30 (MinMax) with the busiest links near 1.0 only under
/// latency-optimal routing.
pub fn run(_scale: Scale) -> Vec<Series> {
    let topo = lowlat_topology::zoo::named::gts_like();
    let tm =
        GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);
    let mut out = Vec::new();
    for (name, placement) in [
        ("Latency-optimal", LatencyOptimal::default().place_on(&topo, &tm).expect("latopt")),
        ("MinMax", MinMaxRouting::unrestricted().place_on(&topo, &tm).expect("minmax")),
    ] {
        let ev = PlacementEval::evaluate(&topo, &tm, &placement);
        let cdf = Cdf::new(ev.utilizations().to_vec());
        let label = format!("{name}(mean={:.2})", cdf.mean());
        let pts = (0..=40)
            .map(|i| {
                let x = i as f64 / 40.0 * 1.05;
                (x, cdf.fraction_at_or_below(x))
            })
            .collect();
        out.push(Series::new(label, pts));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latopt_fills_busiest_links_harder_than_minmax() {
        let series = run(Scale::Quick);
        // Compare the fraction of links above 90% utilization.
        let frac_above_090 = |s: &Series| 1.0 - s.points.iter().find(|p| p.0 >= 0.9).unwrap().1;
        let latopt = frac_above_090(&series[0]);
        let minmax = frac_above_090(&series[1]);
        assert!(
            latopt >= minmax,
            "latency-optimal loads the busiest links at least as hard ({latopt} vs {minmax})"
        );
        // Figure 7: most links lightly loaded under both schemes.
        for s in &series {
            let below_half = s.points.iter().find(|p| p.0 >= 0.5).unwrap().1;
            assert!(below_half > 0.5, "most links under 50% in {}", s.name);
        }
    }
}
