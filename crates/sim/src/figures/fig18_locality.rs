//! Figure 18: effect of traffic locality on the median max flow stretch
//! (networks with LLPD > 0.5, load 0.7).

use lowlat_core::schemes::registry;

use crate::output::Series;
use crate::runner::{run_grid, RunGrid, Scale};
use crate::stats::median_of;

/// Locality values the paper sweeps.
pub const LOCALITIES: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];

/// One series per scheme: (locality, median max stretch).
pub fn run(scale: Scale) -> Vec<Series> {
    let nets: Vec<_> =
        super::networks_with_llpd(scale, |l| l > 0.5).into_iter().map(|(t, _)| t).collect();
    let schemes = registry::schemes(&["B4", "LDR", "MinMax", "MinMaxK10"]);
    let mut per_scheme: Vec<(String, Vec<(f64, f64)>)> =
        schemes.iter().map(|s| (s.name(), Vec::new())).collect();
    for &locality in &LOCALITIES {
        let grid = RunGrid {
            load: 0.7,
            locality,
            tms_per_network: scale.tms_per_network(),
            schemes: schemes.clone(),
        };
        let records = run_grid(&nets, &grid);
        for (name, points) in per_scheme.iter_mut() {
            let vals: Vec<f64> = records
                .iter()
                .filter(|r| &r.scheme == name)
                .map(|r| if r.fits { r.max_flow_stretch } else { 50.0 })
                .collect();
            if !vals.is_empty() {
                points.push((locality, median_of(&vals)));
            }
        }
    }
    per_scheme.into_iter().map(|(n, p)| Series::new(n, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldr_dominates_minmax_across_localities() {
        // At Quick scale the medians ride one or two networks, so the
        // paper's smooth locality trends are noisy; what is robust is that
        // LDR (latency objective) never stretches more than MinMax
        // (latency only as tie-break) at any locality.
        let series = run(Scale::Quick);
        let get = |name: &str| series.iter().find(|s| s.name == name).unwrap();
        let (ldr, mm) = (get("LDR"), get("MinMax"));
        assert_eq!(ldr.points.len(), LOCALITIES.len());
        for (a, b) in ldr.points.iter().zip(&mm.points) {
            assert!(a.1 <= b.1 + 1e-6, "locality {}: LDR {} vs MinMax {}", a.0, a.1, b.1);
            assert!(a.1 >= 1.0 - 1e-9);
        }
    }
}
