//! One driver per data figure in the paper.
//!
//! Each `figNN` module exposes `run(scale) -> Vec<Series>`; the matching
//! binary in `src/bin/` prints the series as TSV plus an ASCII sketch.
//! EXPERIMENTS.md records the measured output against the paper's claims.

pub mod fig01_apa;
pub mod fig03_sp;
pub mod fig04_schemes;
pub mod fig07_util;
pub mod fig08_headroom;
pub mod fig09_prediction;
pub mod fig10_sigma;
pub mod fig15_runtime;
pub mod fig16_stretch;
pub mod fig17_load;
pub mod fig18_locality;
pub mod fig19_google;
pub mod fig20_growth;

use crate::output::{ascii_plot, print_tsv, Series};

/// Prints a figure's series (TSV to stdout + ASCII sketch to stderr).
pub fn emit(title: &str, series: &[Series]) {
    print_tsv(title, series, std::io::stdout().lock()).expect("stdout");
    eprintln!("{}", ascii_plot(title, series, 72, 18));
}

/// The corpus restricted to networks the figure wants (LLPD filtering is
/// common enough to share).
pub fn networks_with_llpd(
    scale: crate::runner::Scale,
    filter: impl Fn(f64) -> bool,
) -> Vec<(lowlat_topology::Topology, f64)> {
    let nets = scale.select_networks(lowlat_topology::zoo::synthetic_zoo());
    let llpds = crate::runner::llpd_map(&nets, &lowlat_core::llpd::LlpdConfig::default());
    nets.into_iter().zip(llpds).filter(|(_, l)| filter(*l)).collect()
}
