//! # lowlat-sim
//!
//! Experiment harness reproducing every data figure of the paper. Each
//! `fig*` binary in `src/bin/` regenerates one figure's series and prints
//! them as TSV (plus a quick ASCII rendition); [`runner`] executes
//! (network × traffic-matrix × scheme) grids in parallel with crossbeam;
//! [`stats`] provides the CDF/percentile machinery the figures plot.
//!
//! Scale control: every binary accepts `--quick` (CI-sized), `--std`
//! (default) and `--full` (the paper's full corpus sweep), because the full
//! grid is hours of CPU. The *shape* of every result — who congests, who
//! stretches, where crossovers sit — is stable across scales; EXPERIMENTS.md
//! records the `--std` outputs next to the paper's claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod output;
pub mod runner;
pub mod stats;
pub mod timeline;

pub use runner::{RunGrid, RunRecord, Scale};
pub use stats::Cdf;
