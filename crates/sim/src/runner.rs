//! Parallel (network × traffic-matrix × scheme) experiment execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lowlat_core::eval::PlacementEval;
use lowlat_core::llpd::{LlpdAnalysis, LlpdConfig};
use lowlat_core::pathset::PathCache;
use lowlat_core::scale::min_cut_load_with_cache;
use lowlat_core::schemes::b4::{B4Config, B4Routing};
use lowlat_core::schemes::latopt::LatencyOptimal;
use lowlat_core::schemes::ldr::Ldr;
use lowlat_core::schemes::minmax::MinMaxRouting;
use lowlat_core::schemes::sp::ShortestPathRouting;
use lowlat_core::Placement;
use lowlat_tmgen::{GravityTmGen, TmGenConfig, TrafficMatrix};
use lowlat_topology::zoo::ZooClass;
use lowlat_topology::Topology;

/// Experiment size, selected by `--quick` / `--std` / `--full`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: a handful of small networks, one matrix each.
    Quick,
    /// Default: the whole corpus, a few matrices each.
    Std,
    /// The paper's sweep: the whole corpus, many matrices.
    Full,
}

impl Scale {
    /// Parses process arguments (`--quick`, `--std`, `--full`).
    pub fn from_args() -> Scale {
        Scale::from_args_filtered(&[])
    }

    /// As [`Scale::from_args`], but treats each flag in `value_flags` (and
    /// the argument following it) as belonging to the caller, so binaries
    /// with extra options don't trigger unknown-argument warnings.
    pub fn from_args_filtered(value_flags: &[&str]) -> Scale {
        let mut scale = Scale::Std;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => scale = Scale::Quick,
                "--std" => scale = Scale::Std,
                "--full" => scale = Scale::Full,
                other if value_flags.contains(&other) => i += 1, // skip value
                other => {
                    eprintln!("ignoring unknown argument {other} (expected --quick/--std/--full)")
                }
            }
            i += 1;
        }
        scale
    }

    /// Subsets the corpus for this scale.
    pub fn select_networks(&self, zoo: Vec<Topology>) -> Vec<Topology> {
        match self {
            Scale::Quick => zoo
                .into_iter()
                .enumerate()
                .filter(|(i, t)| i % 8 == 0 && t.pop_count() <= 30)
                .map(|(_, t)| t)
                .collect(),
            _ => zoo,
        }
    }

    /// Traffic matrices per network.
    pub fn tms_per_network(&self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Std => 3,
            Scale::Full => 10,
        }
    }
}

/// Which scheme to run, with its figure-specific knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchemeKind {
    /// Delay-weighted shortest path.
    Sp,
    /// B4-style greedy with the given headroom.
    B4 {
        /// Reserved capacity fraction (0 in Figure 4).
        headroom: f64,
    },
    /// Pure MinMax.
    MinMax,
    /// MinMax over the k shortest paths.
    MinMaxK(usize),
    /// Latency-optimal with the given headroom.
    LatOpt {
        /// Reserved capacity fraction.
        headroom: f64,
    },
    /// LDR with its static headroom (trace-free mode).
    Ldr {
        /// Reserved capacity fraction.
        headroom: f64,
    },
}

impl SchemeKind {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            SchemeKind::Sp => "SP".into(),
            SchemeKind::B4 { headroom } if *headroom == 0.0 => "B4".into(),
            SchemeKind::B4 { headroom } => format!("B4-h{:02}", (headroom * 100.0) as u32),
            SchemeKind::MinMax => "MinMax".into(),
            SchemeKind::MinMaxK(k) => format!("MinMaxK{k}"),
            SchemeKind::LatOpt { headroom } if *headroom == 0.0 => "LatOpt".into(),
            SchemeKind::LatOpt { headroom } => format!("LatOpt-h{:02}", (headroom * 100.0) as u32),
            SchemeKind::Ldr { .. } => "LDR".into(),
        }
    }

    fn run(&self, cache: &PathCache<'_>, topo: &Topology, tm: &TrafficMatrix) -> Option<Placement> {
        match self {
            SchemeKind::Sp => ShortestPathRouting.place_with_cache(cache, tm).ok(),
            SchemeKind::B4 { headroom } => {
                B4Routing::new(B4Config { headroom: *headroom, ..Default::default() })
                    .place_with_cache(cache, tm)
                    .ok()
            }
            SchemeKind::MinMax => {
                MinMaxRouting::unrestricted().solve_with_cache(cache, tm).ok().map(|o| o.placement)
            }
            SchemeKind::MinMaxK(k) => {
                MinMaxRouting::with_k(*k).solve_with_cache(cache, tm).ok().map(|o| o.placement)
            }
            SchemeKind::LatOpt { headroom } => LatencyOptimal::with_headroom(*headroom)
                .solve_with_cache(cache, tm)
                .ok()
                .map(|o| o.placement),
            SchemeKind::Ldr { headroom } => {
                let cfg = lowlat_core::schemes::ldr::LdrConfig {
                    static_headroom: *headroom,
                    ..Default::default()
                };
                Ldr::new(cfg).place_with_cache(cache, tm).ok()
            }
        }
        .inspect(|p| {
            debug_assert!(p.validate(topo.graph(), tm).is_ok());
        })
    }
}

/// Grid parameters shared by most figures.
#[derive(Clone, Debug)]
pub struct RunGrid {
    /// Target min-cut load after scaling (0.7 in Figures 3/4/16, 0.6 in 8).
    pub load: f64,
    /// Gravity locality parameter (1.0 unless stated otherwise).
    pub locality: f64,
    /// Matrices per network.
    pub tms_per_network: u64,
    /// Schemes to evaluate.
    pub schemes: Vec<SchemeKind>,
}

/// One (network, matrix, scheme) measurement.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Network name.
    pub network: String,
    /// Structural class.
    pub class: ZooClass,
    /// Network LLPD (paper x-axes).
    pub llpd: f64,
    /// Matrix index.
    pub tm_index: u64,
    /// Scheme display name.
    pub scheme: String,
    /// Fraction of pairs crossing a saturated link.
    pub congested_fraction: f64,
    /// Flow-weighted latency stretch.
    pub latency_stretch: f64,
    /// Max per-aggregate stretch.
    pub max_flow_stretch: f64,
    /// Peak link utilization.
    pub max_utilization: f64,
    /// No link over capacity.
    pub fits: bool,
    /// Placement wall time.
    pub runtime_ms: f64,
}

/// Computes LLPD for many networks in parallel. Returns values aligned with
/// the input order.
pub fn llpd_map(networks: &[Topology], config: &LlpdConfig) -> Vec<f64> {
    let results: Vec<Mutex<f64>> = networks.iter().map(|_| Mutex::new(0.0)).collect();
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    std::thread::scope(|s| {
        for _ in 0..workers.min(networks.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= networks.len() {
                    break;
                }
                let llpd = LlpdAnalysis::compute(&networks[i], config).llpd();
                *results[i].lock().expect("poisoned") = llpd;
            });
        }
    });
    results.into_iter().map(|m| m.into_inner().expect("poisoned")).collect()
}

/// Runs the grid over the given networks, parallel across networks.
pub fn run_grid(networks: &[Topology], grid: &RunGrid) -> Vec<RunRecord> {
    run_grid_replay(networks, networks, grid)
}

/// As [`run_grid`], but generates and scales each network's traffic on the
/// matching `traffic_from` topology instead of the network itself. This is
/// the Figure-20 replay: growing a topology raises its min-cut, so scaling
/// on the *grown* network would quietly increase the offered load; the
/// before/after comparison is only meaningful when the very same matrices
/// are re-routed over the new links.
pub fn run_grid_replay(
    networks: &[Topology],
    traffic_from: &[Topology],
    grid: &RunGrid,
) -> Vec<RunRecord> {
    assert_eq!(networks.len(), traffic_from.len());
    let llpds = llpd_map(networks, &LlpdConfig::default());
    let all: Vec<Mutex<Vec<RunRecord>>> = networks.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    std::thread::scope(|s| {
        for _ in 0..workers.min(networks.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= networks.len() {
                    break;
                }
                let records = run_network_replay(&networks[i], &traffic_from[i], llpds[i], grid);
                *all[i].lock().expect("poisoned") = records;
            });
        }
    });
    all.into_iter().flat_map(|m| m.into_inner().expect("poisoned")).collect()
}

/// Runs one network's share of the grid (sequential; parallelism lives one
/// level up).
pub fn run_network(topo: &Topology, llpd: f64, grid: &RunGrid) -> Vec<RunRecord> {
    run_network_replay(topo, topo, llpd, grid)
}

/// As [`run_network`], with traffic generated and scaled on `traffic_from`
/// (see [`run_grid_replay`]). Both topologies must share the same PoP set.
pub fn run_network_replay(
    topo: &Topology,
    traffic_from: &Topology,
    llpd: f64,
    grid: &RunGrid,
) -> Vec<RunRecord> {
    assert_eq!(topo.pop_count(), traffic_from.pop_count(), "replay needs matching PoP sets");
    let mut records = Vec::new();
    let gen = GravityTmGen::new(TmGenConfig { locality: grid.locality, ..Default::default() });
    let scale_cache = PathCache::new(traffic_from.graph());
    let cache = PathCache::new(topo.graph());
    for tm_index in 0..grid.tms_per_network {
        let raw = gen.generate(traffic_from, tm_index);
        let Ok(u0) = min_cut_load_with_cache(&scale_cache, &raw) else {
            continue; // LP failure: skip this matrix, keep the run alive
        };
        if u0 <= 0.0 {
            continue;
        }
        let tm = raw.scaled(grid.load / u0);
        for scheme in &grid.schemes {
            let started = Instant::now();
            let Some(placement) = scheme.run(&cache, topo, &tm) else {
                continue;
            };
            let runtime_ms = started.elapsed().as_secs_f64() * 1000.0;
            let ev = PlacementEval::evaluate(topo, &tm, &placement);
            records.push(RunRecord {
                network: topo.name().to_string(),
                class: ZooClass::of(topo),
                llpd,
                tm_index,
                scheme: scheme.name(),
                congested_fraction: ev.congested_pair_fraction(),
                latency_stretch: ev.latency_stretch(),
                max_flow_stretch: ev.max_flow_stretch(),
                max_utilization: ev.max_utilization(),
                fits: ev.fits(),
                runtime_ms,
            });
        }
    }
    records
}

/// Groups records by network and reduces a metric to (llpd, median, p90)
/// triples sorted by LLPD — the paper's standard presentation (Figures 3
/// and 4).
pub fn by_llpd(
    records: &[RunRecord],
    scheme: &str,
    metric: impl Fn(&RunRecord) -> f64,
) -> Vec<(f64, f64, f64)> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<String, (f64, Vec<f64>)> = BTreeMap::new();
    for r in records.iter().filter(|r| r.scheme == scheme) {
        groups.entry(r.network.clone()).or_insert((r.llpd, Vec::new())).1.push(metric(r));
    }
    let mut out: Vec<(f64, f64, f64)> = groups
        .into_values()
        .filter(|(_, v)| !v.is_empty())
        .map(|(llpd, v)| (llpd, crate::stats::median_of(&v), crate::stats::quantile_of(&v, 0.9)))
        .collect();
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite LLPD"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_topology::zoo::named;

    #[test]
    fn grid_runs_all_schemes_on_abilene() {
        let topo = named::abilene();
        let grid = RunGrid {
            load: 0.7,
            locality: 1.0,
            tms_per_network: 1,
            schemes: vec![
                SchemeKind::Sp,
                SchemeKind::B4 { headroom: 0.0 },
                SchemeKind::MinMax,
                SchemeKind::MinMaxK(10),
                SchemeKind::LatOpt { headroom: 0.0 },
                SchemeKind::Ldr { headroom: 0.1 },
            ],
        };
        let records = run_grid(&[topo], &grid);
        assert_eq!(records.len(), 6, "one record per scheme");
        for r in &records {
            assert!(r.latency_stretch >= 1.0 - 1e-6, "{}: stretch {}", r.scheme, r.latency_stretch);
            assert!(r.runtime_ms >= 0.0);
        }
        // MinMax must fit traffic scaled to 0.7 min-cut load.
        let mm = records.iter().find(|r| r.scheme == "MinMax").unwrap();
        assert!(mm.fits, "minmax at 0.7 load must fit (util {})", mm.max_utilization);
        assert!((mm.max_utilization - 0.7).abs() < 0.05);
        // LatOpt at zero headroom must also fit.
        let lo = records.iter().find(|r| r.scheme == "LatOpt").unwrap();
        assert!(lo.fits);
        // SP and B4 at least produce sane numbers.
        let sp = records.iter().find(|r| r.scheme == "SP").unwrap();
        assert!((sp.latency_stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn by_llpd_reduction() {
        let rec = |net: &str, llpd: f64, v: f64| RunRecord {
            network: net.into(),
            class: ZooClass::Named,
            llpd,
            tm_index: 0,
            scheme: "SP".into(),
            congested_fraction: v,
            latency_stretch: 1.0,
            max_flow_stretch: 1.0,
            max_utilization: 0.5,
            fits: true,
            runtime_ms: 0.0,
        };
        let records = vec![rec("a", 0.2, 0.1), rec("a", 0.2, 0.3), rec("b", 0.1, 0.9)];
        let rows = by_llpd(&records, "SP", |r| r.congested_fraction);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0.1, "sorted by llpd");
        assert_eq!(rows[1].1, 0.1, "median of {{0.1, 0.3}} nearest-rank = 0.1");
    }
}
