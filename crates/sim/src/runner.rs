//! Work-stealing (network × traffic-matrix × scheme) experiment engine.
//!
//! The seed engine parallelized across *networks* only, so a Std/Full sweep
//! spent its tail waiting on the few large topologies while most cores sat
//! idle. This engine flattens the grid into individual work items — first
//! `(network, matrix)` generation/scaling items, then
//! `(network, matrix, scheme)` placement items — that workers steal off a
//! shared atomic counter. All of a network's items share one lock-striped
//! [`PathCache`], so the k-shortest-path work the min-cut scaling solve does
//! is reused by every scheme, and schemes running concurrently on the same
//! graph do not contend (§5's "readily cached" observation).
//!
//! Output is deterministic: every work item writes into its own pre-assigned
//! slot, so the returned [`RunRecord`] order — and, `runtime_ms` aside, the
//! records themselves — are identical whatever the worker count.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lowlat_core::eval::PlacementEval;
use lowlat_core::llpd::{LlpdAnalysis, LlpdConfig};
use lowlat_core::pathset::PathCache;
use lowlat_core::scale::min_cut_load_with_cache;
use lowlat_core::schemes::{registry, RoutingScheme};
use lowlat_core::PathSource;
use lowlat_tmgen::{GravityTmGen, TmGenConfig, TrafficMatrix};
use lowlat_topology::zoo::ZooClass;
use lowlat_topology::Topology;

/// Experiment size, selected by `--quick` / `--std` / `--full`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: a handful of small networks, one matrix each.
    Quick,
    /// Default: the whole corpus, a few matrices each.
    Std,
    /// The paper's sweep: the whole corpus, many matrices.
    Full,
}

impl Scale {
    /// Parses process arguments (`--quick`, `--std`, `--full`).
    pub fn from_args() -> Scale {
        Scale::from_args_filtered(&[])
    }

    /// As [`Scale::from_args`], but treats each flag in `value_flags` (and
    /// the argument following it) as belonging to the caller. Unknown
    /// arguments terminate the process with exit code 2 — a typoed flag
    /// must not silently run a multi-hour sweep at the wrong settings.
    pub fn from_args_filtered(value_flags: &[&str]) -> Scale {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Scale::parse(&args, value_flags) {
            Ok(scale) => scale,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }

    /// Parses `--quick`/`--std`/`--full` out of `args`. Each flag in
    /// `value_flags` is skipped together with the value following it;
    /// anything else is an error.
    pub fn parse(args: &[String], value_flags: &[&str]) -> Result<Scale, String> {
        let mut scale = Scale::Std;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => scale = Scale::Quick,
                "--std" => scale = Scale::Std,
                "--full" => scale = Scale::Full,
                other if value_flags.contains(&other) => {
                    i += 1; // skip the flag's value
                    if i >= args.len() {
                        return Err(format!("flag {other} expects a value"));
                    }
                }
                other => {
                    return Err(format!(
                        "unknown argument {other} (expected --quick/--std/--full{})",
                        if value_flags.is_empty() {
                            String::new()
                        } else {
                            format!(" or one of {}", value_flags.join("/"))
                        }
                    ));
                }
            }
            i += 1;
        }
        Ok(scale)
    }

    /// Subsets the corpus for this scale.
    pub fn select_networks(&self, zoo: Vec<Topology>) -> Vec<Topology> {
        match self {
            Scale::Quick => zoo
                .into_iter()
                .enumerate()
                .filter(|(i, t)| i % 8 == 0 && t.pop_count() <= 30)
                .map(|(_, t)| t)
                .collect(),
            _ => zoo,
        }
    }

    /// Traffic matrices per network.
    pub fn tms_per_network(&self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Std => 3,
            Scale::Full => 10,
        }
    }
}

/// The value following flag `args[i]`, or exit 2 — shared by the sweep
/// binaries' hand-rolled argument loops.
pub fn flag_value<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    args.get(i + 1).unwrap_or_else(|| {
        eprintln!("error: flag {flag} expects a value");
        std::process::exit(2);
    })
}

/// Parses a flag's value, or exit 2 with the offending text.
pub fn parse_flag<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} got unparsable value '{value}'");
        std::process::exit(2);
    })
}

/// Writes the telemetry sinks a sweep binary's `--metrics-out` /
/// `--trace-out` flags asked for (or exit 2 on an unwritable path). No-op
/// when neither flag was given — the sweep's own output is unchanged either
/// way. Shared by the sweep binaries so every sink is written the same way.
pub fn write_telemetry_sinks(metrics_out: Option<&str>, trace_out: Option<&str>) {
    if let Some(path) = metrics_out {
        lowlat_telemetry::write_metrics(path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote metrics to {path}");
    }
    if let Some(path) = trace_out {
        lowlat_telemetry::write_trace(path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote chrome-trace to {path}");
    }
}

/// Grid parameters shared by most figures. Schemes are trait objects built
/// directly or requested by name through the registry
/// ([`RunGrid::with_schemes`]).
#[derive(Clone)]
pub struct RunGrid {
    /// Target min-cut load after scaling (0.7 in Figures 3/4/16, 0.6 in 8).
    pub load: f64,
    /// Gravity locality parameter (1.0 unless stated otherwise).
    pub locality: f64,
    /// Matrices per network.
    pub tms_per_network: u64,
    /// Schemes to evaluate.
    pub schemes: Vec<Arc<dyn RoutingScheme>>,
}

impl RunGrid {
    /// Builds a grid whose schemes are registry specs ("SP", "B4-h10", …).
    ///
    /// # Panics
    /// Panics on an unknown scheme spec.
    pub fn with_schemes(load: f64, locality: f64, tms_per_network: u64, specs: &[&str]) -> RunGrid {
        RunGrid { load, locality, tms_per_network, schemes: registry::schemes(specs) }
    }
}

impl fmt::Debug for RunGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunGrid")
            .field("load", &self.load)
            .field("locality", &self.locality)
            .field("tms_per_network", &self.tms_per_network)
            .field("schemes", &self.schemes.iter().map(|s| s.name()).collect::<Vec<_>>())
            .finish()
    }
}

/// One (network, matrix, scheme) measurement.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Network name.
    pub network: String,
    /// Structural class.
    pub class: ZooClass,
    /// Network LLPD (paper x-axes).
    pub llpd: f64,
    /// Matrix index.
    pub tm_index: u64,
    /// Scheme display name.
    pub scheme: String,
    /// Fraction of pairs crossing a saturated link.
    pub congested_fraction: f64,
    /// Flow-weighted latency stretch.
    pub latency_stretch: f64,
    /// Max per-aggregate stretch.
    pub max_flow_stretch: f64,
    /// Peak link utilization.
    pub max_utilization: f64,
    /// No link over capacity.
    pub fits: bool,
    /// Placement wall time. The only non-deterministic field; compare runs
    /// with [`RunRecord::deterministic_repr`].
    pub runtime_ms: f64,
}

impl RunRecord {
    /// Canonical text form of every deterministic field — what the
    /// determinism suite compares byte-for-byte across worker counts
    /// (`runtime_ms` is wall time and necessarily excluded).
    pub fn deterministic_repr(&self) -> String {
        format!(
            "{}|{:?}|{:.12e}|{}|{}|{:.12e}|{:.12e}|{:.12e}|{:.12e}|{}",
            self.network,
            self.class,
            self.llpd,
            self.tm_index,
            self.scheme,
            self.congested_fraction,
            self.latency_stretch,
            self.max_flow_stretch,
            self.max_utilization,
            self.fits
        )
    }
}

/// Worker count used when the caller does not pin one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Computes LLPD for many networks in parallel. Returns values aligned with
/// the input order.
pub fn llpd_map(networks: &[Topology], config: &LlpdConfig) -> Vec<f64> {
    llpd_map_with_workers(networks, config, default_workers())
}

/// As [`llpd_map`] with an explicit worker count.
pub fn llpd_map_with_workers(
    networks: &[Topology],
    config: &LlpdConfig,
    workers: usize,
) -> Vec<f64> {
    let results: Vec<Mutex<f64>> = networks.iter().map(|_| Mutex::new(0.0)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(networks.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= networks.len() {
                    break;
                }
                let llpd = LlpdAnalysis::compute(&networks[i], config).llpd();
                *results[i].lock().expect("poisoned") = llpd;
            });
        }
    });
    results.into_iter().map(|m| m.into_inner().expect("poisoned")).collect()
}

/// Runs the grid over the given networks with the default worker count.
pub fn run_grid(networks: &[Topology], grid: &RunGrid) -> Vec<RunRecord> {
    run_grid_with_workers(networks, grid, default_workers())
}

/// As [`run_grid`] with an explicit worker count (the determinism suite
/// pins 1 vs many).
pub fn run_grid_with_workers(
    networks: &[Topology],
    grid: &RunGrid,
    workers: usize,
) -> Vec<RunRecord> {
    run_grid_replay_with_workers(networks, networks, grid, workers)
}

/// As [`run_grid`], but generates and scales each network's traffic on the
/// matching `traffic_from` topology instead of the network itself. This is
/// the Figure-20 replay: growing a topology raises its min-cut, so scaling
/// on the *grown* network would quietly increase the offered load; the
/// before/after comparison is only meaningful when the very same matrices
/// are re-routed over the new links.
pub fn run_grid_replay(
    networks: &[Topology],
    traffic_from: &[Topology],
    grid: &RunGrid,
) -> Vec<RunRecord> {
    run_grid_replay_with_workers(networks, traffic_from, grid, default_workers())
}

/// The full engine: [`run_grid_replay`] with an explicit worker count.
pub fn run_grid_replay_with_workers(
    networks: &[Topology],
    traffic_from: &[Topology],
    grid: &RunGrid,
    workers: usize,
) -> Vec<RunRecord> {
    assert_eq!(networks.len(), traffic_from.len());
    for (net, from) in networks.iter().zip(traffic_from) {
        assert_eq!(net.pop_count(), from.pop_count(), "replay needs matching PoP sets");
    }
    let workers = workers.max(1);
    let llpds = llpd_map_with_workers(networks, &LlpdConfig::default(), workers);

    // One shared cache per network, serving the scaling solve and every
    // (matrix, scheme) placement on that network. In replay mode the donor
    // topology's graph differs from the routed one, so scaling gets its own
    // cache; otherwise both roles share a single cache and the Yen work of
    // the min-cut solve warms the schemes'.
    let caches: Vec<PathCache<'_>> = networks.iter().map(|t| PathCache::new(t.graph())).collect();
    let scale_caches: Vec<Option<PathCache<'_>>> = networks
        .iter()
        .zip(traffic_from)
        .map(
            |(net, from)| {
                if std::ptr::eq(net, from) {
                    None
                } else {
                    Some(PathCache::new(from.graph()))
                }
            },
        )
        .collect();
    let sources: Vec<&dyn PathSource> = caches.iter().map(|c| c as &dyn PathSource).collect();
    let scale_sources: Vec<Option<&dyn PathSource>> =
        scale_caches.iter().map(|o| o.as_ref().map(|c| c as &dyn PathSource)).collect();

    run_with_resources(networks, traffic_from, grid, workers, &llpds, &sources, &scale_sources)
}

/// Sweeps many (load, locality) scenario points over one corpus. LLPD and
/// the per-network path caches — the graph-only work — are computed once
/// and shared across every point; only traffic generation, scaling and
/// placement rerun per scenario. This is the `scenario_sweep` backend.
pub fn run_scenarios(
    networks: &[Topology],
    scenarios: &[(f64, f64)],
    tms_per_network: u64,
    schemes: &[Arc<dyn RoutingScheme>],
) -> Vec<Vec<RunRecord>> {
    let workers = default_workers();
    let llpds = llpd_map_with_workers(networks, &LlpdConfig::default(), workers);
    let caches: Vec<PathCache<'_>> = networks.iter().map(|t| PathCache::new(t.graph())).collect();
    let sources: Vec<&dyn PathSource> = caches.iter().map(|c| c as &dyn PathSource).collect();
    let scale_sources: Vec<Option<&dyn PathSource>> = networks.iter().map(|_| None).collect();
    scenarios
        .iter()
        .map(|&(load, locality)| {
            let grid = RunGrid { load, locality, tms_per_network, schemes: schemes.to_vec() };
            run_with_resources(networks, networks, &grid, workers, &llpds, &sources, &scale_sources)
        })
        .collect()
}

/// One scenario's two-stage work-stealing pass over precomputed per-network
/// resources — the common core of the one-shot entry points and
/// [`run_scenarios`].
fn run_with_resources(
    networks: &[Topology],
    traffic_from: &[Topology],
    grid: &RunGrid,
    workers: usize,
    llpds: &[f64],
    sources: &[&dyn PathSource],
    scale_sources: &[Option<&dyn PathSource>],
) -> Vec<RunRecord> {
    let tms = grid.tms_per_network as usize;

    // Stage 1: steal (network, matrix) items — generate, min-cut-scale.
    let matrix_slots: Vec<Mutex<Option<TrafficMatrix>>> =
        (0..networks.len() * tms).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(matrix_slots.len()) {
            s.spawn(|| {
                let gen = GravityTmGen::new(TmGenConfig {
                    locality: grid.locality,
                    ..Default::default()
                });
                loop {
                    let item = next.fetch_add(1, Ordering::Relaxed);
                    if item >= matrix_slots.len() {
                        break;
                    }
                    let (n, t) = (item / tms, item % tms);
                    let raw = gen.generate(&traffic_from[n], t as u64);
                    let scale_source = scale_sources[n].unwrap_or(sources[n]);
                    // LP failure or an empty matrix: leave the slot empty,
                    // keep the run alive.
                    let Ok(u0) = min_cut_load_with_cache(scale_source, &raw) else {
                        continue;
                    };
                    if u0 <= 0.0 {
                        continue;
                    }
                    *matrix_slots[item].lock().expect("poisoned") =
                        Some(raw.scaled(grid.load / u0));
                }
            });
        }
    });
    let matrices: Vec<Option<TrafficMatrix>> =
        matrix_slots.into_iter().map(|m| m.into_inner().expect("poisoned")).collect();

    // Stage 2: steal (network, matrix, scheme) items — place and evaluate.
    // Scheme index varies fastest, so slot order reproduces the classic
    // nested-loop record order.
    let total = networks.len() * tms * grid.schemes.len();
    let record_slots: Vec<Mutex<Option<RunRecord>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(total) {
            s.spawn(|| loop {
                let item = next.fetch_add(1, Ordering::Relaxed);
                if item >= total {
                    break;
                }
                let scheme = &grid.schemes[item % grid.schemes.len()];
                let flat_tm = item / grid.schemes.len();
                let (n, t) = (flat_tm / tms, flat_tm % tms);
                let Some(tm) = matrices[flat_tm].as_ref() else {
                    continue;
                };
                let started = Instant::now();
                let Ok(placement) = scheme.place(sources[n], tm) else {
                    continue; // solver failure: skip the item, keep the run
                };
                let runtime_ms = started.elapsed().as_secs_f64() * 1000.0;
                debug_assert!(placement.validate(networks[n].graph(), tm).is_ok());
                let ev = PlacementEval::evaluate(&networks[n], tm, &placement);
                *record_slots[item].lock().expect("poisoned") = Some(RunRecord {
                    network: networks[n].name().to_string(),
                    class: ZooClass::of(&networks[n]),
                    llpd: llpds[n],
                    tm_index: t as u64,
                    scheme: scheme.name(),
                    congested_fraction: ev.congested_pair_fraction(),
                    latency_stretch: ev.latency_stretch(),
                    max_flow_stretch: ev.max_flow_stretch(),
                    max_utilization: ev.max_utilization(),
                    fits: ev.fits(),
                    runtime_ms,
                });
            });
        }
    });
    record_slots.into_iter().filter_map(|m| m.into_inner().expect("poisoned")).collect()
}

/// Groups records by network and reduces a metric to (llpd, median, p90)
/// triples sorted by LLPD — the paper's standard presentation (Figures 3
/// and 4).
pub fn by_llpd(
    records: &[RunRecord],
    scheme: &str,
    metric: impl Fn(&RunRecord) -> f64,
) -> Vec<(f64, f64, f64)> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<String, (f64, Vec<f64>)> = BTreeMap::new();
    for r in records.iter().filter(|r| r.scheme == scheme) {
        groups.entry(r.network.clone()).or_insert((r.llpd, Vec::new())).1.push(metric(r));
    }
    let mut out: Vec<(f64, f64, f64)> = groups
        .into_values()
        .filter(|(_, v)| !v.is_empty())
        .map(|(llpd, v)| (llpd, crate::stats::median_of(&v), crate::stats::quantile_of(&v, 0.9)))
        .collect();
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite LLPD"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_topology::zoo::named;

    #[test]
    fn grid_runs_all_schemes_on_abilene() {
        let topo = named::abilene();
        let grid = RunGrid::with_schemes(
            0.7,
            1.0,
            1,
            &["SP", "B4", "MinMax", "MinMaxK10", "LatOpt", "LDR"],
        );
        let records = run_grid(&[topo], &grid);
        assert_eq!(records.len(), 6, "one record per scheme");
        for r in &records {
            assert!(r.latency_stretch >= 1.0 - 1e-6, "{}: stretch {}", r.scheme, r.latency_stretch);
            assert!(r.runtime_ms >= 0.0);
        }
        // MinMax must fit traffic scaled to 0.7 min-cut load.
        let mm = records.iter().find(|r| r.scheme == "MinMax").unwrap();
        assert!(mm.fits, "minmax at 0.7 load must fit (util {})", mm.max_utilization);
        assert!((mm.max_utilization - 0.7).abs() < 0.05);
        // LatOpt at zero headroom must also fit.
        let lo = records.iter().find(|r| r.scheme == "LatOpt").unwrap();
        assert!(lo.fits);
        // SP and B4 at least produce sane numbers.
        let sp = records.iter().find(|r| r.scheme == "SP").unwrap();
        assert!((sp.latency_stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn record_order_is_network_matrix_scheme() {
        let nets = [named::abilene(), named::nsfnet()];
        let grid = RunGrid::with_schemes(0.7, 1.0, 2, &["SP", "ECMP"]);
        let records = run_grid(&nets, &grid);
        assert_eq!(records.len(), 2 * 2 * 2);
        for (i, r) in records.iter().enumerate() {
            let want_net = if i < 4 { "Abilene" } else { "NSFNET" };
            assert_eq!(r.network, want_net, "record {i}");
            assert_eq!(r.tm_index, (i as u64 / 2) % 2, "record {i}");
            assert_eq!(r.scheme, if i % 2 == 0 { "SP" } else { "ECMP" }, "record {i}");
        }
    }

    #[test]
    fn scale_parse_accepts_known_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(Scale::parse(&args(&[]), &[]), Ok(Scale::Std));
        assert_eq!(Scale::parse(&args(&["--quick"]), &[]), Ok(Scale::Quick));
        assert_eq!(Scale::parse(&args(&["--std", "--full"]), &[]), Ok(Scale::Full));
    }

    #[test]
    fn scale_parse_skips_value_flags_with_their_values() {
        let args: Vec<String> = ["--load", "0.7", "--quick", "--schemes", "SP,B4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(Scale::parse(&args, &["--load", "--schemes"]), Ok(Scale::Quick));
        // The value after a value flag is consumed even when it looks like
        // a scale flag.
        let tricky: Vec<String> = ["--note", "--full"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Scale::parse(&tricky, &["--note"]), Ok(Scale::Std));
    }

    #[test]
    fn scale_parse_rejects_unknown_and_dangling() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(Scale::parse(&args(&["--fast"]), &[]).is_err());
        assert!(Scale::parse(&args(&["extra"]), &["--load"]).is_err());
        // A value flag at the end of the line is missing its value.
        assert!(Scale::parse(&args(&["--load"]), &["--load"]).is_err());
    }

    #[test]
    fn by_llpd_reduction() {
        let rec = |net: &str, llpd: f64, v: f64| RunRecord {
            network: net.into(),
            class: ZooClass::Named,
            llpd,
            tm_index: 0,
            scheme: "SP".into(),
            congested_fraction: v,
            latency_stretch: 1.0,
            max_flow_stretch: 1.0,
            max_utilization: 0.5,
            fits: true,
            runtime_ms: 0.0,
        };
        let records = vec![rec("a", 0.2, 0.1), rec("a", 0.2, 0.3), rec("b", 0.1, 0.9)];
        let rows = by_llpd(&records, "SP", |r| r.congested_fraction);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0.1, "sorted by llpd");
        assert_eq!(rows[1].1, 0.1, "median of {{0.1, 0.3}} nearest-rank = 0.1");
    }
}
