//! Property tests for the graph substrate.
//!
//! Dijkstra is cross-checked against an independent Bellman-Ford
//! implementation; Yen's generator is checked against exhaustive loopless
//! path enumeration; Dinic is checked against brute-force cut enumeration.

use proptest::prelude::*;

use lowlat_netgraph::{
    max_flow, max_flow_masked, shortest_path, shortest_path_tree, FailureMask, Graph, GraphBuilder,
    KspGenerator, NodeId,
};

/// The physically rebuilt subgraph: same node set, failed links dropped,
/// degraded capacities baked in. The oracle the masked algorithms must
/// agree with.
fn rebuild_without(g: &Graph, mask: &FailureMask) -> Graph {
    let mut b = GraphBuilder::new(g.node_count());
    for l in g.link_ids() {
        let factor = mask.capacity_factor(g, l);
        if factor > 0.0 {
            let link = g.link(l);
            b.add_link(link.src, link.dst, link.delay_ms, link.capacity_mbps * factor);
        }
    }
    b.build()
}

/// A failure mask downing every `stride`-th cable-ish link (deterministic
/// in the graph, so shrinking stays meaningful).
fn stride_mask(g: &Graph, stride: usize) -> FailureMask {
    let mut mask = FailureMask::new();
    for l in g.link_ids().filter(|l| l.idx() % stride == 0) {
        mask.fail_link(l);
    }
    mask
}

/// A random strongly-connectable graph: a duplex ring (guaranteeing strong
/// connectivity) plus random duplex chords.
fn arb_graph(max_nodes: usize, max_extra: usize) -> impl Strategy<Value = Graph> {
    (
        3..=max_nodes,
        proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 1u32..1000, 1u32..1000),
            0..max_extra,
        ),
    )
        .prop_map(|(n, extras)| {
            let mut b = GraphBuilder::new(n);
            for i in 0..n {
                let j = (i + 1) % n;
                b.add_duplex(NodeId(i as u32), NodeId(j as u32), 1.0 + (i as f64), 100.0);
            }
            for (x, y, d, c) in extras {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v {
                    b.add_duplex(NodeId(u as u32), NodeId(v as u32), d as f64 / 10.0, c as f64);
                }
            }
            b.build()
        })
}

/// Reference Bellman-Ford distances from `s`.
fn bellman_ford(g: &Graph, s: NodeId) -> Vec<f64> {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[s.idx()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for l in g.link_ids() {
            let link = g.link(l);
            let nd = dist[link.src.idx()] + link.delay_ms;
            if nd < dist[link.dst.idx()] - 1e-12 {
                dist[link.dst.idx()] = nd;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Exhaustive loopless path enumeration (for tiny graphs only).
fn all_loopless_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<f64> {
    fn rec(
        g: &Graph,
        at: NodeId,
        t: NodeId,
        visited: &mut Vec<bool>,
        delay: f64,
        out: &mut Vec<f64>,
    ) {
        if at == t {
            out.push(delay);
            return;
        }
        for &l in g.out_links(at) {
            let link = g.link(l);
            if !visited[link.dst.idx()] {
                visited[link.dst.idx()] = true;
                rec(g, link.dst, t, visited, delay + link.delay_ms, out);
                visited[link.dst.idx()] = false;
            }
        }
    }
    let mut visited = vec![false; g.node_count()];
    visited[s.idx()] = true;
    let mut out = Vec::new();
    rec(g, s, t, &mut visited, 0.0, &mut out);
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

/// Brute-force minimum s-t cut: every node bipartition with `s` on the
/// source side and `t` on the sink side, capacity of the crossing links.
/// Exponential, so tiny graphs only.
fn brute_force_min_cut(g: &Graph, s: NodeId, t: NodeId) -> f64 {
    let n = g.node_count();
    assert!(n <= 16, "2^n enumeration");
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask & (1 << s.idx()) == 0 || mask & (1 << t.idx()) != 0 {
            continue;
        }
        let mut cap = 0.0;
        for l in g.link_ids() {
            let link = g.link(l);
            if mask & (1 << link.src.idx()) != 0 && mask & (1 << link.dst.idx()) == 0 {
                cap += link.capacity_mbps;
            }
        }
        best = best.min(cap);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_graph(12, 20)) {
        let tree = shortest_path_tree(&g, NodeId(0), None, None);
        let reference = bellman_ford(&g, NodeId(0));
        for v in g.nodes() {
            let (a, b) = (tree.dist_ms(v), reference[v.idx()]);
            prop_assert!((a - b).abs() < 1e-6, "node {v:?}: dijkstra {a} vs bf {b}");
        }
    }

    #[test]
    fn dijkstra_path_delay_equals_distance(g in arb_graph(12, 20)) {
        let tree = shortest_path_tree(&g, NodeId(0), None, None);
        for v in g.nodes().skip(1) {
            if let Some(p) = tree.path_to(&g, v) {
                prop_assert!((p.delay_ms() - tree.dist_ms(v)).abs() < 1e-9);
                prop_assert!(p.validate(&g).is_ok());
            }
        }
    }

    #[test]
    fn yen_enumerates_exactly_all_loopless_paths(g in arb_graph(7, 6)) {
        let (s, t) = (NodeId(0), NodeId(1));
        let expected = all_loopless_paths(&g, s, t);
        let mut gen = KspGenerator::new(&g, s, t);
        let mut got = Vec::new();
        while let Some(p) = gen.next_path() {
            prop_assert!(p.validate(&g).is_ok());
            got.push(p.delay_ms());
            prop_assert!(got.len() <= expected.len(), "yen produced too many paths");
        }
        prop_assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(expected.iter()) {
            prop_assert!((a - b).abs() < 1e-9, "delay multiset mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn yen_is_sorted_and_distinct(g in arb_graph(9, 10)) {
        let (s, t) = (NodeId(0), NodeId(2));
        let mut gen = KspGenerator::new(&g, s, t);
        let mut prev = 0.0f64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..25 {
            match gen.next_path() {
                Some(p) => {
                    prop_assert!(p.delay_ms() >= prev - 1e-12);
                    prev = p.delay_ms();
                    prop_assert!(seen.insert(p.links().to_vec()));
                }
                None => break,
            }
        }
    }

    #[test]
    fn max_flow_equals_min_cut(g in arb_graph(8, 10)) {
        // Strong duality for Dinic — the oracle behind the min-cut load
        // scaling every figure uses. The cut side is independent brute
        // force, so agreement pins both directions of the LP-free bound.
        let (s, t) = (NodeId(0), NodeId((g.node_count() - 1) as u32));
        let flow = max_flow(&g, s, t);
        let cut = brute_force_min_cut(&g, s, t);
        prop_assert!(
            (flow - cut).abs() <= 1e-6 * (1.0 + cut.abs()),
            "max-flow {flow} != min-cut {cut}"
        );
    }

    #[test]
    fn max_flow_at_most_cut_of_source_and_sink(g in arb_graph(10, 15)) {
        let (s, t) = (NodeId(0), NodeId(1));
        let f = max_flow(&g, s, t);
        let out_cap: f64 = g.out_links(s).iter().map(|&l| g.link(l).capacity_mbps).sum();
        let in_cap: f64 = g.in_links(t).iter().map(|&l| g.link(l).capacity_mbps).sum();
        prop_assert!(f <= out_cap + 1e-6);
        prop_assert!(f <= in_cap + 1e-6);
        prop_assert!(f > 0.0, "ring guarantees connectivity");
    }

    #[test]
    fn masked_dijkstra_equals_rebuilt_subgraph(g in arb_graph(12, 20), stride in 2usize..5) {
        // A failed topology as a *view* must agree with the failed topology
        // as a *rebuild*: distances under the mask equal distances on the
        // graph with the failed links physically removed.
        let mask = stride_mask(&g, stride);
        let rebuilt = rebuild_without(&g, &mask);
        let masked = shortest_path_tree(&g, NodeId(0), mask.link_mask(), mask.node_mask());
        let reference = shortest_path_tree(&rebuilt, NodeId(0), None, None);
        for v in g.nodes() {
            let (a, b) = (masked.dist_ms(v), reference.dist_ms(v));
            prop_assert!(
                (a == b) || (a - b).abs() < 1e-9,
                "node {v:?}: masked {a} vs rebuilt {b}"
            );
        }
    }

    #[test]
    fn masked_dijkstra_with_node_failures_equals_rebuilt(g in arb_graph(12, 20)) {
        // Down one non-terminal node by masking it; the rebuild drops every
        // incident link. (Source stays up so both sides root identically.)
        let victim = NodeId((g.node_count() - 1) as u32);
        let mut mask = FailureMask::new();
        mask.fail_node(victim);
        // capacity_factor is 0 for links incident to a downed node, so the
        // shared rebuild helper drops exactly the victim's links.
        let rebuilt = rebuild_without(&g, &mask);
        let masked = shortest_path_tree(&g, NodeId(0), mask.link_mask(), mask.node_mask());
        let reference = shortest_path_tree(&rebuilt, NodeId(0), None, None);
        for v in g.nodes().filter(|&v| v != victim) {
            let (a, b) = (masked.dist_ms(v), reference.dist_ms(v));
            prop_assert!(
                (a == b) || (a - b).abs() < 1e-9,
                "node {v:?}: masked {a} vs rebuilt {b}"
            );
        }
    }

    #[test]
    fn masked_max_flow_equals_rebuilt_subgraph(g in arb_graph(10, 12), stride in 2usize..5) {
        let mask = stride_mask(&g, stride);
        let rebuilt = rebuild_without(&g, &mask);
        let (s, t) = (NodeId(0), NodeId((g.node_count() / 2) as u32));
        let a = max_flow_masked(&g, s, t, &mask);
        let b = max_flow(&rebuilt, s, t);
        prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "masked {a} vs rebuilt {b}");
    }

    #[test]
    fn degraded_max_flow_equals_rebuilt_subgraph(g in arb_graph(10, 12), stride in 2usize..4) {
        // Degradation: every stride-th link at 30% capacity, the next one
        // down entirely — the mixed overlay the sweep generators produce.
        let mut mask = FailureMask::new();
        for l in g.link_ids() {
            match l.idx() % (2 * stride) {
                0 => { mask.degrade_link(l, 0.3); }
                1 => { mask.fail_link(l); }
                _ => {}
            }
        }
        let rebuilt = rebuild_without(&g, &mask);
        let (s, t) = (NodeId(0), NodeId(1));
        let a = max_flow_masked(&g, s, t, &mask);
        let b = max_flow(&rebuilt, s, t);
        prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "masked {a} vs rebuilt {b}");
    }

    #[test]
    fn masked_yen_equals_rebuilt_subgraph(g in arb_graph(7, 6), stride in 3usize..6) {
        // Masked Yen must produce the same delay sequence as Yen on the
        // rebuilt subgraph (path link ids differ; delays are comparable).
        let mask = stride_mask(&g, stride);
        let rebuilt = rebuild_without(&g, &mask);
        let (s, t) = (NodeId(0), NodeId(1));
        let mut masked = KspGenerator::under_mask(&g, s, t, &mask);
        let mut reference = KspGenerator::new(&rebuilt, s, t);
        for _ in 0..12 {
            match (masked.next_path(), reference.next_path()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    prop_assert!(
                        (a.delay_ms() - b.delay_ms()).abs() < 1e-9,
                        "masked {} vs rebuilt {}", a.delay_ms(), b.delay_ms()
                    );
                    for &l in a.links() {
                        prop_assert!(!mask.link_down(&g, l));
                    }
                }
                (a, b) => prop_assert!(false, "path count mismatch: {:?} vs {:?}", a.map(|p| p.delay_ms()), b.map(|p| p.delay_ms())),
            }
        }
    }

    #[test]
    fn shortest_path_never_uses_masked_link(g in arb_graph(10, 10)) {
        use lowlat_netgraph::BitSet;
        let mut mask = BitSet::new(g.link_count());
        // Mask every even link.
        for l in g.link_ids().filter(|l| l.idx() % 2 == 0) {
            mask.insert(l.idx());
        }
        if let Some(p) = shortest_path(&g, NodeId(0), NodeId(1), Some(&mask), None) {
            for &l in p.links() {
                prop_assert!(!mask.contains(l.idx()));
            }
        }
    }
}
