//! Directed multigraph with delay/capacity attributes on links.
//!
//! Topologies in the paper are undirected at the cable level but routing is
//! directional (the GTS example in Figure 5 hinges on link 2 being full
//! *westbound* while eastbound capacity remains). We therefore model every
//! physical cable as a pair of directed links; the [`crate::graph::Graph`]
//! itself is purely directed and the topology layer tracks reverse pairing.

use std::fmt;

/// Index of a node (PoP) in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of a directed link in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The index as a usize, for indexing into per-node arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The index as a usize, for indexing into per-link arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A directed link with propagation delay (ms) and capacity (Mbps).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Propagation delay in milliseconds. Must be finite and >= 0.
    pub delay_ms: f64,
    /// Capacity in Mbps. Must be finite and > 0.
    pub capacity_mbps: f64,
}

/// A directed multigraph. Immutable once built (see [`GraphBuilder`]).
#[derive(Clone, Debug)]
pub struct Graph {
    links: Vec<Link>,
    /// Outgoing link ids per node, sorted by (dst, delay) for determinism.
    out: Vec<Vec<LinkId>>,
    /// Incoming link ids per node.
    inc: Vec<Vec<LinkId>>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed links.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids, in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.out.len() as u32).map(NodeId)
    }

    /// All link ids, in order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Link attributes.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// Outgoing links of `n`.
    #[inline]
    pub fn out_links(&self, n: NodeId) -> &[LinkId] {
        &self.out[n.idx()]
    }

    /// Incoming links of `n`.
    #[inline]
    pub fn in_links(&self, n: NodeId) -> &[LinkId] {
        &self.inc[n.idx()]
    }

    /// Finds the directed link from `src` to `dst` with the smallest delay,
    /// if any (multigraphs may have parallel links).
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out[src.idx()].iter().copied().filter(|&l| self.links[l.idx()].dst == dst).min_by(
            |&a, &b| {
                self.links[a.idx()]
                    .delay_ms
                    .partial_cmp(&self.links[b.idx()].delay_ms)
                    .expect("delays are finite")
            },
        )
    }

    /// The reverse link (same endpoints, opposite direction) with the
    /// smallest delay, if any.
    pub fn reverse_of(&self, id: LinkId) -> Option<LinkId> {
        let l = self.link(id);
        self.find_link(l.dst, l.src)
    }

    /// Sum of `delay_ms` over the given links.
    pub fn path_delay(&self, links: &[LinkId]) -> f64 {
        links.iter().map(|&l| self.links[l.idx()].delay_ms).sum()
    }

    /// Minimum capacity over the given links; `f64::INFINITY` for the empty
    /// slice (an empty path has no bottleneck).
    pub fn path_bottleneck(&self, links: &[LinkId]) -> f64 {
        links.iter().map(|&l| self.links[l.idx()].capacity_mbps).fold(f64::INFINITY, f64::min)
    }

    /// True if every node can reach every other node (strong connectivity),
    /// which the paper's topologies always satisfy.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let reach = |forward: bool| -> usize {
            let mut seen = vec![false; n];
            let mut stack = vec![NodeId(0)];
            seen[0] = true;
            let mut cnt = 1;
            while let Some(u) = stack.pop() {
                let edges = if forward { &self.out[u.idx()] } else { &self.inc[u.idx()] };
                for &l in edges {
                    let v = if forward { self.links[l.idx()].dst } else { self.links[l.idx()].src };
                    if !seen[v.idx()] {
                        seen[v.idx()] = true;
                        cnt += 1;
                        stack.push(v);
                    }
                }
            }
            cnt
        };
        reach(true) == n && reach(false) == n
    }
}

/// Builder for [`Graph`]. Validates attributes at `build()`.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_count: usize,
    links: Vec<Link>,
}

impl GraphBuilder {
    /// Creates a builder with `node_count` nodes and no links.
    pub fn new(node_count: usize) -> Self {
        GraphBuilder { node_count, links: Vec::new() }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Adds a directed link and returns its id.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, non-finite or negative
    /// delay, or non-positive capacity — these are construction bugs, not
    /// runtime conditions.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        delay_ms: f64,
        capacity_mbps: f64,
    ) -> LinkId {
        assert!(src.idx() < self.node_count, "src {src:?} out of range");
        assert!(dst.idx() < self.node_count, "dst {dst:?} out of range");
        assert!(src != dst, "self-loops are not meaningful in a PoP topology");
        assert!(delay_ms.is_finite() && delay_ms >= 0.0, "bad delay {delay_ms}");
        assert!(capacity_mbps.is_finite() && capacity_mbps > 0.0, "bad capacity {capacity_mbps}");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { src, dst, delay_ms, capacity_mbps });
        id
    }

    /// Adds a pair of directed links (both directions) with identical
    /// attributes, returning (forward, reverse) ids.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay_ms: f64,
        capacity_mbps: f64,
    ) -> (LinkId, LinkId) {
        let f = self.add_link(a, b, delay_ms, capacity_mbps);
        let r = self.add_link(b, a, delay_ms, capacity_mbps);
        (f, r)
    }

    /// Finalizes into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let mut out: Vec<Vec<LinkId>> = vec![Vec::new(); self.node_count];
        let mut inc: Vec<Vec<LinkId>> = vec![Vec::new(); self.node_count];
        for (i, l) in self.links.iter().enumerate() {
            out[l.src.idx()].push(LinkId(i as u32));
            inc[l.dst.idx()].push(LinkId(i as u32));
        }
        // Deterministic adjacency order: by (dst node, delay, id).
        for v in &mut out {
            v.sort_by(|&a, &b| {
                let (la, lb) = (&self.links[a.idx()], &self.links[b.idx()]);
                (la.dst, la.delay_ms, a)
                    .partial_cmp(&(lb.dst, lb.delay_ms, b))
                    .expect("finite delays")
            });
        }
        Graph { links: self.links, out, inc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 100.0);
        b.add_duplex(NodeId(1), NodeId(2), 2.0, 50.0);
        b.add_duplex(NodeId(0), NodeId(2), 5.0, 10.0);
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 6);
        let l = g.find_link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.link(l).delay_ms, 1.0);
        assert_eq!(g.link(l).capacity_mbps, 100.0);
        assert!(g.find_link(NodeId(1), NodeId(0)).is_some());
    }

    #[test]
    fn reverse_pairing() {
        let g = triangle();
        let f = g.find_link(NodeId(1), NodeId(2)).unwrap();
        let r = g.reverse_of(f).unwrap();
        assert_eq!(g.link(r).src, NodeId(2));
        assert_eq!(g.link(r).dst, NodeId(1));
    }

    #[test]
    fn path_attributes() {
        let g = triangle();
        let a = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let b = g.find_link(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(g.path_delay(&[a, b]), 3.0);
        assert_eq!(g.path_bottleneck(&[a, b]), 50.0);
        assert_eq!(g.path_bottleneck(&[]), f64::INFINITY);
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_strongly_connected());
        let mut b = GraphBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), 1.0, 1.0);
        b.add_link(NodeId(1), NodeId(2), 1.0, 1.0);
        let g = b.build(); // no way back
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn parallel_links_pick_lowest_delay() {
        let mut b = GraphBuilder::new(2);
        b.add_link(NodeId(0), NodeId(1), 4.0, 10.0);
        let fast = b.add_link(NodeId(0), NodeId(1), 2.0, 10.0);
        let g = b.build();
        assert_eq!(g.find_link(NodeId(0), NodeId(1)), Some(fast));
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_link(NodeId(0), NodeId(0), 1.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_link(NodeId(0), NodeId(1), 1.0, 0.0);
    }
}
