//! Yen's loopless k-shortest-paths algorithm (the paper's reference [49]),
//! exposed as an **incremental generator**.
//!
//! The paper's Figure 13 grows each aggregate's path list lazily — "generate
//! shortest paths for an increasing k" — and notes that the k-shortest-paths
//! computation, not the LP, is the bottleneck, so results "can be readily
//! cached". [`KspGenerator`] supports exactly that usage: call
//! [`KspGenerator::next_path`] to pull one more path; state persists so the
//! k+1-th path costs one round of spur computations, and the whole generator
//! can be cached per (src, dst) pair.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::bitset::BitSet;
use crate::dijkstra::shortest_path;
use crate::graph::{Graph, LinkId, NodeId};
use crate::path::Path;

/// A candidate path in Yen's B-heap, min-ordered by (delay, hops, links).
struct Candidate {
    delay_ms: f64,
    links: Vec<LinkId>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.links == other.links
    }
}
impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour inside BinaryHeap (a max-heap).
        other
            .delay_ms
            .partial_cmp(&self.delay_ms)
            .expect("finite delays")
            .then_with(|| other.links.len().cmp(&self.links.len()))
            .then_with(|| other.links.cmp(&self.links))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Incremental loopless k-shortest-paths generator between one (src, dst)
/// pair, optionally avoiding a base set of links.
///
/// Paths are produced in non-decreasing delay order, each loopless and
/// distinct. The `avoid` mask supports the APA probe of §2 ("route around
/// that link").
pub struct KspGenerator<'g> {
    graph: &'g Graph,
    src: NodeId,
    dst: NodeId,
    avoid: Option<BitSet>,
    avoid_nodes: Option<BitSet>,
    accepted: Vec<Path>,
    candidates: BinaryHeap<Candidate>,
    seen: HashSet<Vec<LinkId>>,
    exhausted: bool,
}

impl<'g> KspGenerator<'g> {
    /// Creates a generator for paths from `src` to `dst`.
    ///
    /// # Panics
    /// Panics if `src == dst` — a PoP pair is always two distinct PoPs.
    pub fn new(graph: &'g Graph, src: NodeId, dst: NodeId) -> Self {
        Self::with_avoided(graph, src, dst, None, None)
    }

    /// Like [`KspGenerator::new`] but never uses links in `avoid`.
    pub fn with_avoided_links(
        graph: &'g Graph,
        src: NodeId,
        dst: NodeId,
        avoid: Option<BitSet>,
    ) -> Self {
        Self::with_avoided(graph, src, dst, avoid, None)
    }

    /// Like [`KspGenerator::new`] but never using links in `avoid` nor
    /// touching nodes in `avoid_nodes` — the failure-masked variant (see
    /// [`KspGenerator::under_mask`]). A masked `src` or `dst` yields no
    /// paths.
    pub fn with_avoided(
        graph: &'g Graph,
        src: NodeId,
        dst: NodeId,
        avoid: Option<BitSet>,
        avoid_nodes: Option<BitSet>,
    ) -> Self {
        assert!(src != dst, "k-shortest paths between a node and itself");
        KspGenerator {
            graph,
            src,
            dst,
            avoid,
            avoid_nodes,
            accepted: Vec::new(),
            candidates: BinaryHeap::new(),
            seen: HashSet::new(),
            exhausted: false,
        }
    }

    /// Paths produced so far (in order).
    pub fn produced(&self) -> &[Path] {
        &self.accepted
    }

    /// Produces the next-shortest loopless path, or `None` when no more
    /// distinct paths exist.
    pub fn next_path(&mut self) -> Option<Path> {
        if self.exhausted {
            return None;
        }
        if self.accepted.is_empty() {
            match shortest_path(
                self.graph,
                self.src,
                self.dst,
                self.avoid.as_ref(),
                self.avoid_nodes.as_ref(),
            ) {
                Some(p) => {
                    self.seen.insert(p.links().to_vec());
                    self.accepted.push(p.clone());
                    return Some(p);
                }
                None => {
                    self.exhausted = true;
                    return None;
                }
            }
        }
        self.expand_spurs();
        match self.candidates.pop() {
            Some(c) => {
                let p = Path::new(self.graph, c.links);
                self.accepted.push(p.clone());
                Some(p)
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }

    /// Ensures at least `k` paths have been attempted; returns the prefix of
    /// produced paths (may be shorter than `k` if the graph has fewer).
    pub fn take_up_to(&mut self, k: usize) -> &[Path] {
        while self.accepted.len() < k && self.next_path().is_some() {}
        &self.accepted
    }

    /// Spur expansion step of Yen's algorithm on the most recently accepted
    /// path.
    fn expand_spurs(&mut self) {
        let prev = self.accepted.last().expect("expand_spurs after first path").clone();
        let prev_nodes = prev.nodes(self.graph);
        let n_links = self.graph.link_count();
        let n_nodes = self.graph.node_count();

        for i in 0..prev.links().len() {
            let spur_node = prev_nodes[i];
            let root_links = &prev.links()[..i];

            // Mask: base avoided links + the i-th link of every accepted path
            // sharing this root, so the spur path must deviate here.
            let mut link_mask = match &self.avoid {
                Some(a) => a.clone(),
                None => BitSet::new(n_links),
            };
            for p in &self.accepted {
                if p.links().len() > i && &p.links()[..i] == root_links {
                    link_mask.insert(p.links()[i].idx());
                }
            }
            // Mask root-path nodes (except the spur node) to keep paths
            // loopless, on top of any base avoided nodes.
            let mut node_mask = match &self.avoid_nodes {
                Some(a) => a.clone(),
                None => BitSet::new(n_nodes),
            };
            for &nd in &prev_nodes[..i] {
                node_mask.insert(nd.idx());
            }

            if let Some(spur) =
                shortest_path(self.graph, spur_node, self.dst, Some(&link_mask), Some(&node_mask))
            {
                let mut links = root_links.to_vec();
                links.extend_from_slice(spur.links());
                if self.seen.insert(links.clone()) {
                    let delay_ms = self.graph.path_delay(&links);
                    self.candidates.push(Candidate { delay_ms, links });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Classic 4-node diamond: 0-1-3 (2ms), 0-2-3 (4ms), plus 1-2 crosslink.
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(3), 1.0, 10.0);
        b.add_duplex(NodeId(0), NodeId(2), 2.0, 10.0);
        b.add_duplex(NodeId(2), NodeId(3), 2.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 0.5, 10.0);
        b.build()
    }

    #[test]
    fn paths_in_nondecreasing_delay_order() {
        let g = diamond();
        let mut gen = KspGenerator::new(&g, NodeId(0), NodeId(3));
        let mut last = 0.0;
        let mut count = 0;
        while let Some(p) = gen.next_path() {
            assert!(p.delay_ms() >= last - 1e-12, "order violated");
            assert!(p.validate(&g).is_ok());
            last = p.delay_ms();
            count += 1;
            assert!(count < 100, "diamond has few paths");
        }
        // 0-1-3, 0-1-2-3, 0-2-3, 0-2-1-3: exactly 4 loopless paths.
        assert_eq!(count, 4);
    }

    #[test]
    fn first_path_is_dijkstra_shortest() {
        let g = diamond();
        let mut gen = KspGenerator::new(&g, NodeId(0), NodeId(3));
        let p = gen.next_path().unwrap();
        assert_eq!(p.delay_ms(), 2.0);
    }

    #[test]
    fn exact_path_set_on_diamond() {
        let g = diamond();
        let mut gen = KspGenerator::new(&g, NodeId(0), NodeId(3));
        let delays: Vec<f64> =
            std::iter::from_fn(|| gen.next_path().map(|p| p.delay_ms())).collect();
        // 0-1-3 = 2.0; 0-1-2-3 = 1+0.5+2 = 3.5; 0-2-3 = 4.0; 0-2-1-3 = 2+0.5+1 = 3.5
        assert_eq!(delays.len(), 4);
        assert_eq!(delays[0], 2.0);
        assert_eq!(delays[1], 3.5);
        assert_eq!(delays[2], 3.5);
        assert_eq!(delays[3], 4.0);
    }

    #[test]
    fn distinct_paths() {
        let g = diamond();
        let mut gen = KspGenerator::new(&g, NodeId(0), NodeId(3));
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = gen.next_path() {
            assert!(seen.insert(p.links().to_vec()), "duplicate path produced");
        }
    }

    #[test]
    fn avoid_mask_respected() {
        let g = diamond();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let mut avoid = BitSet::new(g.link_count());
        avoid.insert(l01.idx());
        let mut gen = KspGenerator::with_avoided_links(&g, NodeId(0), NodeId(3), Some(avoid));
        while let Some(p) = gen.next_path() {
            assert!(!p.contains_link(l01), "avoided link used");
        }
    }

    #[test]
    fn take_up_to_caps_at_available() {
        let g = diamond();
        let mut gen = KspGenerator::new(&g, NodeId(0), NodeId(3));
        assert_eq!(gen.take_up_to(2).len(), 2);
        assert_eq!(gen.take_up_to(100).len(), 4);
        // idempotent once exhausted
        assert_eq!(gen.take_up_to(100).len(), 4);
        assert!(gen.next_path().is_none());
    }

    #[test]
    fn avoided_nodes_respected() {
        let g = diamond();
        let mut avoid_nodes = BitSet::new(g.node_count());
        avoid_nodes.insert(1);
        let mut gen = KspGenerator::with_avoided(&g, NodeId(0), NodeId(3), None, Some(avoid_nodes));
        let mut count = 0;
        while let Some(p) = gen.next_path() {
            assert!(!p.nodes(&g).contains(&NodeId(1)), "avoided node used");
            count += 1;
        }
        // Only 0-2-3 survives once node 1 is gone.
        assert_eq!(count, 1);
    }

    #[test]
    fn avoided_destination_yields_nothing() {
        let g = diamond();
        let mut avoid_nodes = BitSet::new(g.node_count());
        avoid_nodes.insert(3);
        let mut gen = KspGenerator::with_avoided(&g, NodeId(0), NodeId(3), None, Some(avoid_nodes));
        assert!(gen.next_path().is_none());
    }

    #[test]
    fn disconnected_pair_yields_nothing() {
        let mut b = GraphBuilder::new(3);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 1.0);
        let g = b.build();
        let mut gen = KspGenerator::new(&g, NodeId(0), NodeId(2));
        assert!(gen.next_path().is_none());
        assert!(gen.next_path().is_none());
    }
}
