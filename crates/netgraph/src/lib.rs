//! # lowlat-netgraph
//!
//! Graph substrate for the lowlat workspace. This is a deliberately small,
//! domain-specific graph library: directed multigraphs whose links carry a
//! propagation **delay** (milliseconds) and a **capacity** (Mbps) — exactly
//! the attributes the paper's algorithms need — plus the three algorithms the
//! paper leans on:
//!
//! * [`dijkstra`] — single-source shortest paths by delay, with link masking
//!   (needed both for routing and for the APA "route around this link" probe).
//! * [`yen`] — loopless k-shortest paths ([Yen 1970], the paper's reference
//!   \[49\]), exposed as an incremental generator so callers can grow path
//!   sets lazily (Figure 13 of the paper) and cache them.
//! * [`maxflow`] — Dinic max-flow / min-cut, used to decide when a set of
//!   alternate paths has enough capacity to stand in for a congested shortest
//!   path (APA, §2 of the paper).
//! * [`failure`] — [`FailureMask`] overlays (link/node down, capacity
//!   degradation) that turn a failed topology into a *view* of the intact
//!   graph, plus masked variants of the three algorithms above.
//!
//! Everything is index-based ([`NodeId`], [`LinkId`]) and allocation-light;
//! no unsafe code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod bridges;
pub mod dijkstra;
pub mod failure;
pub mod graph;
pub mod hierarchy;
pub mod maxflow;
pub mod path;
pub mod yen;

pub use bitset::BitSet;
pub use bridges::bridges;
pub use dijkstra::{
    all_pairs_delays, reverse_shortest_path_tree, shortest_path, shortest_path_tree,
    ReverseShortestPathTree, ShortestPathTree,
};
pub use failure::{max_flow_masked, FailureMask};
pub use graph::{Graph, GraphBuilder, Link, LinkId, NodeId};
pub use hierarchy::{Cluster, DepthMetrics, Hierarchy, HierarchyConfig};
pub use maxflow::{max_flow, min_cut_of_links};
pub use path::Path;
pub use yen::KspGenerator;
