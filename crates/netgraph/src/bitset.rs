//! A tiny growable bit set used for link/node masks.
//!
//! `Vec<bool>` would work, but masks are created and cleared in the inner
//! loops of Yen's algorithm; a word-packed set keeps that cheap and gives us
//! O(words) clearing. The set grows on demand: inserting past the current
//! capacity extends the word array, so a mask built for one graph keeps
//! working when the topology grows (the §8 growth experiment adds links to
//! existing grids, and failure masks outlive individual graph builds).

/// Growable bit set over `usize` indices.
///
/// Equality is semantic — two sets are equal when they contain the same
/// indices, regardless of how much capacity each happens to have grown to.
#[derive(Clone, Debug, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set pre-sized to hold indices `0..len` without
    /// reallocating. Inserts past `len` grow the set instead of panicking.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of indices the set can hold without growing.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `idx`, growing the set if `idx` is past the current capacity.
    #[inline]
    pub fn insert(&mut self, idx: usize) {
        if idx >= self.len {
            self.len = idx + 1;
            let need = self.len.div_ceil(64);
            if need > self.words.len() {
                self.words.resize(need, 0);
            }
        }
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Removes `idx`. Indices past the capacity are trivially absent.
    #[inline]
    pub fn remove(&mut self, idx: usize) {
        if idx < self.len {
            self.words[idx / 64] &= !(1u64 << (idx % 64));
        }
    }

    /// Tests membership. Indices past the capacity are absent, not errors —
    /// a mask sized for a small graph answers correctly on a grown one.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        idx < self.len && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }
}

impl Default for BitSet {
    /// An empty zero-capacity set (it grows on first insert).
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) =
            if self.words.len() <= other.words.len() { (self, other) } else { (other, self) };
        short.words.iter().zip(&long.words).all(|(a, b)| a == b)
            && long.words[short.words.len()..].iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.count(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 9, 64, 65, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![5, 9, 64, 65, 199]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(7);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn grows_at_the_old_panic_boundary() {
        // Inserting at exactly `len` used to panic; now it grows the set.
        let mut s = BitSet::new(8);
        s.insert(8);
        assert!(s.contains(8));
        assert!(s.capacity() >= 9);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn grows_across_word_boundaries() {
        let mut s = BitSet::new(0);
        assert_eq!(s.capacity(), 0);
        s.insert(5);
        s.insert(64);
        s.insert(1000);
        assert!(s.contains(5) && s.contains(64) && s.contains(1000));
        assert!(!s.contains(999) && !s.contains(1001));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 64, 1000]);
    }

    #[test]
    fn out_of_range_queries_are_absent_not_errors() {
        let mut s = BitSet::new(8);
        assert!(!s.contains(1000));
        s.remove(1000); // no-op, not a panic
        assert!(s.is_empty());
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(500);
        a.insert(3);
        b.insert(3);
        assert_eq!(a, b);
        b.insert(400);
        assert_ne!(a, b);
        b.remove(400);
        assert_eq!(b, a);
    }
}
