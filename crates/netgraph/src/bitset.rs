//! A tiny fixed-capacity bit set used for link/node masks.
//!
//! `Vec<bool>` would work, but masks are created and cleared in the inner
//! loops of Yen's algorithm; a word-packed set keeps that cheap and gives us
//! O(words) clearing.

/// Fixed-capacity bit set over `usize` indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of indices the set can hold.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `idx`. Panics if out of range.
    #[inline]
    pub fn insert(&mut self, idx: usize) {
        assert!(idx < self.len, "BitSet index {idx} out of range {}", self.len);
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Removes `idx`.
    #[inline]
    pub fn remove(&mut self, idx: usize) {
        assert!(idx < self.len, "BitSet index {idx} out of range {}", self.len);
        self.words[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.count(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 9, 64, 65, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![5, 9, 64, 65, 199]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(7);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut s = BitSet::new(8);
        s.insert(8);
    }
}
