//! Delay-weighted hierarchical partitioning of a graph.
//!
//! Flat KSP over an Internet-scale edge list is hopeless: Yen touches the
//! whole graph per spur and the path-set caches are quadratic in node count.
//! The partitioner here builds the structure the hierarchical path engine
//! in `lowlat_core` routes over: a depth-limited tree of clusters grown by
//! **delay-ball carving** — each child is a Dijkstra ball of bounded size
//! grown over the parent's members — so every leaf is a low-diameter,
//! size-balanced neighbourhood and cluster boundaries sit on real delay
//! structure rather than arbitrary index ranges. (Farthest-point Voronoi
//! seeding, the other classic choice, collapses on small-world metrics:
//! a scale-free hub core sits at near-equal delay from every seed, so one
//! cell swallows the graph.)
//!
//! Each carve settles only the nodes of its own ball, so splitting a
//! cluster costs about one sweep of its edges and a whole 100k-node build
//! stays in seconds. When a connected component exhausts before a ball
//! fills (disconnected ingests are legal), carving continues into the same
//! ball from the next unassigned member and marks it `overflow`, so
//! membership always partitions exactly.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bitset::BitSet;
use crate::graph::{Graph, NodeId};

/// Knobs for [`Hierarchy::build`].
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// Maximum tree depth below the root (root is depth 0; its children are
    /// depth 1). A cluster at `max_depth` is never split.
    pub max_depth: usize,
    /// Clusters at or below this size become leaves regardless of depth.
    pub max_leaf: usize,
    /// Target child count when a cluster splits (farthest-point seeds).
    pub branching: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig { max_depth: 3, max_leaf: 128, branching: 8 }
    }
}

/// One cluster in the tree. Clusters are stored in a flat arena; the root
/// is always index 0.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Index of this cluster in the arena.
    pub id: usize,
    /// Parent cluster index (`None` for the root).
    pub parent: Option<usize>,
    /// Child cluster indices (empty for leaves).
    pub children: Vec<usize>,
    /// Depth in the tree (root = 0).
    pub depth: usize,
    /// Member nodes, sorted ascending. Children partition this set exactly.
    pub members: Vec<NodeId>,
    /// The seed node the cluster's ball was grown from (delay "center").
    pub seed: NodeId,
    /// Max delay (ms) from a carve seed to any member settled from it,
    /// measured inside the unassigned scope the carve ran over. 0.0 for
    /// singletons.
    pub radius_ms: f64,
    /// True when the ball spans more than one connected component of the
    /// parent scope (a component exhausted mid-carve and filling continued
    /// from the next unassigned member).
    pub overflow: bool,
}

impl Cluster {
    /// True when the cluster has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Aggregate shape of one tree depth, for logs and the `topo_ingest`
/// summary (the Snippet-2 "per-depth metrics" idiom).
#[derive(Clone, Copy, Debug)]
pub struct DepthMetrics {
    /// Depth these metrics describe (1 = the root's children).
    pub depth: usize,
    /// Number of clusters at this depth.
    pub clusters: usize,
    /// Smallest cluster size.
    pub min_size: usize,
    /// Largest cluster size.
    pub max_size: usize,
    /// Mean cluster size.
    pub mean_size: f64,
    /// Mean cluster radius (ms).
    pub mean_radius_ms: f64,
    /// Largest cluster radius (ms).
    pub max_radius_ms: f64,
    /// Nodes at this depth with at least one link leaving their cluster.
    pub boundary_nodes: usize,
}

/// A depth-limited clustering of a graph. See the module docs.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    clusters: Vec<Cluster>,
    /// `leaf_of[v]` = arena index of the leaf containing node v.
    leaf_of: Vec<usize>,
    /// `group_of[v]` = arena index of the depth-1 ancestor of node v (the
    /// node's *group*; equals the leaf index when the root is a leaf).
    group_of: Vec<usize>,
}

/// Min-heap entry for the multi-source split Dijkstra.
#[derive(PartialEq)]
struct SplitEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for SplitEntry {}
impl Ord for SplitEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for SplitEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Multi-source Dijkstra restricted to `scope` (a membership BitSet over
/// node indices). Returns `(dist, owner)` where `owner[v]` is the index of
/// the closest seed (ties to the lower seed index via ordered relaxation).
fn assign_to_seeds(
    graph: &Graph,
    scope: &BitSet,
    seeds: &[NodeId],
    dist: &mut [f64],
    owner: &mut [usize],
) {
    for i in scope.iter() {
        dist[i] = f64::INFINITY;
        owner[i] = usize::MAX;
    }
    let mut heap = BinaryHeap::new();
    for (si, &s) in seeds.iter().enumerate() {
        dist[s.idx()] = 0.0;
        owner[s.idx()] = si;
        heap.push(SplitEntry { dist: 0.0, node: s });
    }
    while let Some(SplitEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.idx()] + 1e-15 {
            continue;
        }
        for &l in graph.out_links(u) {
            let link = graph.link(l);
            let v = link.dst.idx();
            if !scope.contains(v) {
                continue;
            }
            let nd = d + link.delay_ms;
            if nd < dist[v] - 1e-15 {
                dist[v] = nd;
                owner[v] = owner[u.idx()];
                heap.push(SplitEntry { dist: nd, node: link.dst });
            }
        }
    }
}

impl Hierarchy {
    /// Builds the tree. Deterministic in `(graph, config)`.
    ///
    /// # Panics
    /// Panics if the graph is empty or `config.branching < 2`.
    pub fn build(graph: &Graph, config: &HierarchyConfig) -> Hierarchy {
        let n = graph.node_count();
        assert!(n > 0, "cannot partition an empty graph");
        assert!(config.branching >= 2, "branching must be >= 2");
        let max_leaf = config.max_leaf.max(1);

        let mut clusters = vec![Cluster {
            id: 0,
            parent: None,
            children: Vec::new(),
            depth: 0,
            members: graph.nodes().collect(),
            seed: NodeId(0),
            radius_ms: f64::INFINITY,
            overflow: false,
        }];

        // Scratch reused across splits (allocated once at |V|).
        let mut dist = vec![f64::INFINITY; n];
        let mut owner = vec![usize::MAX; n];
        let mut scope = BitSet::new(n);

        let mut work = vec![0usize];
        while let Some(cid) = work.pop() {
            let (depth, members) = {
                let c = &clusters[cid];
                (c.depth, c.members.clone())
            };
            if depth >= config.max_depth || members.len() <= max_leaf {
                continue;
            }

            scope.clear();
            for &m in &members {
                scope.insert(m.idx());
            }

            // Fan-out for this split. `branching` is the floor, but a flat
            // target would strand depth-limited splits of hub-dominated
            // graphs (scale-free delay metrics assign most nodes to the
            // seed nearest the hub) with leaves far above `max_leaf`. So
            // spread the leaf count this cluster still *needs* across its
            // remaining depth budget, and at the last level seed enough
            // cells to reach `max_leaf` outright.
            let remaining = config.max_depth - depth;
            let needed = members.len().div_ceil(max_leaf);
            let fanout = if remaining <= 1 {
                needed.max(config.branching)
            } else {
                let spread = (needed as f64).powf(1.0 / remaining as f64).ceil() as usize;
                spread.max(config.branching)
            }
            .min(members.len());

            // Ball carving: repeatedly grow a Dijkstra ball of `target`
            // members from the first unassigned member. Balanced by
            // construction — farthest-point Voronoi assignment collapses on
            // small-world metrics, where the hub core sits at near-equal
            // delay from every seed and one cell swallows the graph. Each
            // carve settles only the nodes of its own ball, so a whole
            // depth costs about one sweep of the cluster's edges. When a
            // component exhausts before the ball fills (disconnected
            // scopes are legal), carving continues from the next
            // unassigned member into the *same* ball, which is then marked
            // `overflow` — so membership always partitions exactly and
            // scraps don't shatter into singleton leaves.
            let target = members.len().div_ceil(fanout);
            for &m in &members {
                dist[m.idx()] = f64::INFINITY;
                owner[m.idx()] = usize::MAX;
            }
            let mut balls: Vec<(NodeId, Vec<NodeId>, f64, bool)> = Vec::new();
            let mut cursor = 0usize;
            loop {
                while cursor < members.len() && owner[members[cursor].idx()] != usize::MAX {
                    cursor += 1;
                }
                if cursor >= members.len() {
                    break;
                }
                let bi = balls.len();
                let mut seed = members[cursor];
                let first_seed = seed;
                let mut ball: Vec<NodeId> = Vec::with_capacity(target);
                let mut radius = 0.0f64;
                let mut components = 1usize;
                // Fresh tentative distances for the still-unassigned scope
                // (previous balls leave stale frontier values behind).
                for &m in &members[cursor..] {
                    if owner[m.idx()] == usize::MAX {
                        dist[m.idx()] = f64::INFINITY;
                    }
                }
                let mut heap = BinaryHeap::new();
                dist[seed.idx()] = 0.0;
                heap.push(SplitEntry { dist: 0.0, node: seed });
                while ball.len() < target {
                    let Some(SplitEntry { dist: d, node: u }) = heap.pop() else {
                        // Component exhausted: keep filling this ball from
                        // the next unassigned member, if any.
                        while cursor < members.len() && owner[members[cursor].idx()] != usize::MAX {
                            cursor += 1;
                        }
                        if cursor >= members.len() {
                            break;
                        }
                        seed = members[cursor];
                        components += 1;
                        dist[seed.idx()] = 0.0;
                        heap.push(SplitEntry { dist: 0.0, node: seed });
                        continue;
                    };
                    if owner[u.idx()] != usize::MAX {
                        continue; // settled by this or an earlier ball
                    }
                    owner[u.idx()] = bi;
                    ball.push(u);
                    radius = radius.max(d);
                    for &l in graph.out_links(u) {
                        let link = graph.link(l);
                        let v = link.dst.idx();
                        if !scope.contains(v) || owner[v] != usize::MAX {
                            continue;
                        }
                        let nd = d + link.delay_ms;
                        if nd < dist[v] - 1e-15 {
                            dist[v] = nd;
                            heap.push(SplitEntry { dist: nd, node: link.dst });
                        }
                    }
                }
                ball.sort();
                balls.push((first_seed, ball, radius, components > 1));
            }

            let mut children: Vec<usize> = Vec::new();
            for (seed, ball, radius, overflow) in balls {
                let id = clusters.len();
                clusters.push(Cluster {
                    id,
                    parent: Some(cid),
                    children: Vec::new(),
                    depth: depth + 1,
                    members: ball,
                    seed,
                    radius_ms: radius,
                    overflow,
                });
                children.push(id);
            }

            // A split that produced a single child (e.g. branching found no
            // second seed in a zero-diameter cluster) makes no progress;
            // keep the cluster a leaf instead of recursing forever.
            if children.len() <= 1 {
                clusters.truncate(clusters.len() - children.len());
                continue;
            }
            for &ch in &children {
                work.push(ch);
            }
            clusters[cid].children = children;
        }

        // Root radius: measured from its seed over the whole graph when it
        // stayed a leaf; otherwise it is never queried, normalise to the max
        // child radius for reporting.
        if clusters[0].is_leaf() {
            scope.clear();
            for v in 0..n {
                scope.insert(v);
            }
            assign_to_seeds(graph, &scope, &[clusters[0].seed], &mut dist, &mut owner);
            let mut r = 0.0f64;
            for (v, &d) in dist.iter().enumerate().take(n) {
                if d.is_finite() && owner[v] != usize::MAX {
                    r = r.max(d);
                }
            }
            clusters[0].radius_ms = r;
        } else {
            clusters[0].radius_ms =
                clusters[0].children.iter().map(|&c| clusters[c].radius_ms).fold(0.0, f64::max);
        }

        let mut leaf_of = vec![0usize; n];
        let mut group_of = vec![0usize; n];
        for c in &clusters {
            if c.is_leaf() {
                for &m in &c.members {
                    leaf_of[m.idx()] = c.id;
                }
            }
            if c.depth == 1 {
                for &m in &c.members {
                    group_of[m.idx()] = c.id;
                }
            }
        }
        Hierarchy { clusters, leaf_of, group_of }
    }

    /// All clusters, arena-ordered (root first).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The cluster at arena index `id`.
    pub fn cluster(&self, id: usize) -> &Cluster {
        &self.clusters[id]
    }

    /// Arena index of the leaf containing `v`.
    pub fn leaf_of(&self, v: NodeId) -> usize {
        self.leaf_of[v.idx()]
    }

    /// Arena index of the depth-1 group containing `v` (the root when the
    /// tree has no depth-1 clusters).
    pub fn group_of(&self, v: NodeId) -> usize {
        self.group_of[v.idx()]
    }

    /// Leaf cluster ids, ascending.
    pub fn leaves(&self) -> Vec<usize> {
        self.clusters.iter().filter(|c| c.is_leaf()).map(|c| c.id).collect()
    }

    /// Depth-1 cluster ids (the groups landmarks are budgeted over); falls
    /// back to `[0]` when the root never split.
    pub fn groups(&self) -> Vec<usize> {
        let g: Vec<usize> = self.clusters.iter().filter(|c| c.depth == 1).map(|c| c.id).collect();
        if g.is_empty() {
            vec![0]
        } else {
            g
        }
    }

    /// Tree depth (max cluster depth).
    pub fn depth(&self) -> usize {
        self.clusters.iter().map(|c| c.depth).max().unwrap_or(0)
    }

    /// True when `u` and `v` share a leaf.
    pub fn same_leaf(&self, u: NodeId, v: NodeId) -> bool {
        self.leaf_of[u.idx()] == self.leaf_of[v.idx()]
    }

    /// Per-depth aggregate metrics (depth 1 and below; the root row is
    /// omitted because it is always a single all-member cluster).
    pub fn depth_metrics(&self, graph: &Graph) -> Vec<DepthMetrics> {
        let max_depth = self.depth();
        let mut out = Vec::new();
        // `cluster_at_depth[v]` for the depth currently being measured.
        let mut cluster_at = vec![usize::MAX; graph.node_count()];
        for depth in 1..=max_depth {
            // A node's cluster at `depth` is its deepest ancestor cluster
            // with depth <= `depth` — for leaves shallower than `depth` the
            // leaf itself.
            for c in &self.clusters {
                if (c.depth == depth) || (c.depth < depth && c.is_leaf()) {
                    for &m in &c.members {
                        cluster_at[m.idx()] = c.id;
                    }
                }
            }
            let ids: Vec<usize> = self
                .clusters
                .iter()
                .filter(|c| c.depth == depth || (c.depth < depth && c.is_leaf()))
                .map(|c| c.id)
                .collect();
            if ids.is_empty() {
                continue;
            }
            let sizes: Vec<usize> = ids.iter().map(|&i| self.clusters[i].members.len()).collect();
            let radii: Vec<f64> = ids.iter().map(|&i| self.clusters[i].radius_ms).collect();
            let mut boundary = 0usize;
            for v in graph.nodes() {
                let home = cluster_at[v.idx()];
                if graph.out_links(v).iter().any(|&l| cluster_at[graph.link(l).dst.idx()] != home) {
                    boundary += 1;
                }
            }
            out.push(DepthMetrics {
                depth,
                clusters: ids.len(),
                min_size: *sizes.iter().min().expect("non-empty"),
                max_size: *sizes.iter().max().expect("non-empty"),
                mean_size: sizes.iter().sum::<usize>() as f64 / sizes.len() as f64,
                mean_radius_ms: radii.iter().sum::<f64>() / radii.len() as f64,
                max_radius_ms: radii.iter().fold(0.0, |a, &b| a.max(b)),
                boundary_nodes: boundary,
            });
        }
        out
    }

    /// Boundary nodes of leaf `id`: members with a link to a node outside
    /// the leaf. These are the stitch points the path engine routes through.
    pub fn leaf_boundary(&self, graph: &Graph, id: usize) -> Vec<NodeId> {
        let c = &self.clusters[id];
        c.members
            .iter()
            .copied()
            .filter(|&v| {
                graph.out_links(v).iter().any(|&l| self.leaf_of[graph.link(l).dst.idx()] != id)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Two 6-node cliques joined by one long link: the natural 2-split.
    fn barbell() -> Graph {
        let mut b = GraphBuilder::new(12);
        for base in [0u32, 6] {
            for i in 0..6u32 {
                for j in i + 1..6 {
                    b.add_duplex(NodeId(base + i), NodeId(base + j), 10.0, 1000.0);
                }
            }
        }
        b.add_duplex(NodeId(0), NodeId(6), 50.0, 1000.0);
        b.build()
    }

    fn line(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_duplex(NodeId(i), NodeId(i + 1), 1.0, 1000.0);
        }
        b.build()
    }

    #[test]
    fn members_partition_exactly() {
        let g = line(64);
        let h = Hierarchy::build(&g, &HierarchyConfig { max_depth: 3, max_leaf: 8, branching: 3 });
        let mut seen = [false; 64];
        for &leaf in &h.leaves() {
            for &m in &h.cluster(leaf).members {
                assert!(!seen[m.idx()], "node {m:?} in two leaves");
                seen[m.idx()] = true;
                assert_eq!(h.leaf_of(m), leaf);
            }
        }
        assert!(seen.iter().all(|&s| s), "every node must land in a leaf");
    }

    #[test]
    fn barbell_splits_on_the_delay_gap() {
        let g = barbell();
        let h = Hierarchy::build(&g, &HierarchyConfig { max_depth: 2, max_leaf: 6, branching: 2 });
        // The two cliques must not share a leaf.
        assert!(!h.same_leaf(NodeId(1), NodeId(7)));
        assert!(h.same_leaf(NodeId(1), NodeId(2)));
        assert!(h.same_leaf(NodeId(7), NodeId(8)));
    }

    #[test]
    fn small_graph_stays_single_leaf() {
        let g = line(5);
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        assert_eq!(h.leaves(), vec![0]);
        assert_eq!(h.depth(), 0);
        assert_eq!(h.groups(), vec![0]);
        assert!(h.cluster(0).radius_ms > 0.0);
    }

    #[test]
    fn depth_limit_is_respected() {
        let g = line(200);
        let h = Hierarchy::build(&g, &HierarchyConfig { max_depth: 2, max_leaf: 4, branching: 2 });
        assert!(h.depth() <= 2);
        for c in h.clusters() {
            assert!(c.depth <= 2);
        }
    }

    #[test]
    fn disconnected_nodes_fall_into_overflow() {
        // A 40-node line plus 3 isolated nodes. Components: {0..39} and
        // each isolated node alone.
        let mut b = GraphBuilder::new(43);
        for i in 0..39u32 {
            b.add_duplex(NodeId(i), NodeId(i + 1), 1.0, 1000.0);
        }
        let g = b.build();
        let h = Hierarchy::build(&g, &HierarchyConfig { max_depth: 2, max_leaf: 8, branching: 4 });
        // Disconnection still partitions exactly, and the isolated nodes
        // were absorbed by *some* ball rather than dropped.
        let total: usize = h.leaves().iter().map(|&l| h.cluster(l).members.len()).sum();
        assert_eq!(total, 43);
        // Any cluster spanning more than one component must carry the
        // overflow flag (and at least one such cluster must exist, since 3
        // singleton components cannot each fill a ball).
        let component = |v: NodeId| if v.0 <= 39 { 0u32 } else { v.0 };
        let mut saw_overflow = false;
        for c in h.clusters().iter().filter(|c| c.is_leaf()) {
            let mut comps: Vec<u32> = c.members.iter().map(|&m| component(m)).collect();
            comps.sort_unstable();
            comps.dedup();
            if comps.len() > 1 {
                assert!(c.overflow, "cluster {} spans {} components", c.id, comps.len());
                saw_overflow = true;
            }
        }
        assert!(saw_overflow, "isolated scraps must have merged into an overflow ball");
    }

    #[test]
    fn depth_metrics_cover_all_nodes() {
        let g = line(100);
        let h = Hierarchy::build(&g, &HierarchyConfig { max_depth: 2, max_leaf: 10, branching: 3 });
        let metrics = h.depth_metrics(&g);
        assert!(!metrics.is_empty());
        for m in &metrics {
            let total = (m.mean_size * m.clusters as f64).round() as usize;
            assert_eq!(total, 100, "depth {} must cover every node", m.depth);
            assert!(m.min_size <= m.max_size);
            assert!(m.boundary_nodes > 0, "a split line has boundaries");
            assert!(m.max_radius_ms >= m.mean_radius_ms);
        }
    }

    #[test]
    fn leaf_boundary_nodes_have_external_links() {
        let g = barbell();
        let h = Hierarchy::build(&g, &HierarchyConfig { max_depth: 2, max_leaf: 6, branching: 2 });
        for &leaf in &h.leaves() {
            for v in h.leaf_boundary(&g, leaf) {
                assert!(g.out_links(v).iter().any(|&l| h.leaf_of(g.link(l).dst) != leaf));
            }
        }
        // The barbell's bridge endpoints are the only boundary nodes.
        let b0 = h.leaf_boundary(&g, h.leaf_of(NodeId(0)));
        assert_eq!(b0, vec![NodeId(0)]);
    }

    #[test]
    fn deterministic_build() {
        let g = line(120);
        let cfg = HierarchyConfig { max_depth: 3, max_leaf: 7, branching: 3 };
        let a = Hierarchy::build(&g, &cfg);
        let b = Hierarchy::build(&g, &cfg);
        assert_eq!(a.clusters().len(), b.clusters().len());
        for (ca, cb) in a.clusters().iter().zip(b.clusters()) {
            assert_eq!(ca.members, cb.members);
            assert_eq!(ca.seed, cb.seed);
        }
    }
}
