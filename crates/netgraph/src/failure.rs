//! Failure overlays: a failed topology as a *view*, not a rebuild.
//!
//! Evaluating routing under link or node failures (the Snowcap-style
//! reconfiguration scenarios) would naively rebuild the graph per scenario
//! and recompute everything downstream — caches, LLPD, path sets. A
//! [`FailureMask`] instead overlays "down" sets and capacity degradation on
//! an immutable [`Graph`]: the masked algorithm variants
//! ([`crate::dijkstra::shortest_path`], [`KspGenerator::under_mask`],
//! [`max_flow_masked`]) see the failed topology while every structure keyed
//! to the original graph (link ids, caches, placements) stays valid, which
//! is what makes post-failure *repair* cheaper than recomputation.

use crate::bitset::BitSet;
use crate::graph::{Graph, LinkId, NodeId};
use crate::path::Path;
use crate::yen::KspGenerator;

/// A set of failed links/nodes plus per-link capacity degradation, overlaid
/// on a graph.
///
/// The mask owns growable [`BitSet`]s, so one mask works across graphs of
/// different sizes (e.g. grown grids): indices past a graph's range are
/// simply never queried, and indices past the mask's capacity read as "up".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FailureMask {
    links: BitSet,
    nodes: BitSet,
    /// `(link id, factor)` with `0 < factor < 1`: the link stays up with
    /// `factor * capacity`. Sorted by link id, deduplicated (last write
    /// wins).
    degraded: Vec<(u32, f64)>,
}

impl FailureMask {
    /// An all-up mask.
    pub fn new() -> Self {
        FailureMask { links: BitSet::new(0), nodes: BitSet::new(0), degraded: Vec::new() }
    }

    /// True when nothing is failed or degraded.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.nodes.is_empty() && self.degraded.is_empty()
    }

    /// True when the mask changes which paths exist (some link or node is
    /// down). Degradation-only masks leave routing untouched — only
    /// capacity-aware consumers see them — so path caches need not
    /// invalidate anything for them.
    pub fn affects_routing(&self) -> bool {
        !self.links.is_empty() || !self.nodes.is_empty()
    }

    /// Fails one directed link.
    pub fn fail_link(&mut self, l: LinkId) -> &mut Self {
        self.links.insert(l.idx());
        self
    }

    /// Fails both directions of a cable (the physical-failure case).
    pub fn fail_cable(&mut self, graph: &Graph, l: LinkId) -> &mut Self {
        self.fail_link(l);
        if let Some(rev) = graph.reverse_of(l) {
            self.fail_link(rev);
        }
        self
    }

    /// Fails a node: the node and implicitly every path through it.
    pub fn fail_node(&mut self, n: NodeId) -> &mut Self {
        self.nodes.insert(n.idx());
        self
    }

    /// Degrades a directed link to `factor * capacity` (`0 < factor < 1`).
    /// A degraded link stays routable; only capacity-aware consumers
    /// (max-flow, load evaluation) see the reduction.
    ///
    /// # Panics
    /// Panics unless `0 < factor < 1` — use [`FailureMask::fail_link`] for a
    /// dead link and [`FailureMask::restore_link`] for a healthy one.
    pub fn degrade_link(&mut self, l: LinkId, factor: f64) -> &mut Self {
        assert!(
            factor > 0.0 && factor < 1.0,
            "degradation factor {factor} out of (0,1); use fail_link/restore_link for 0/1"
        );
        match self.degraded.binary_search_by_key(&(l.0), |&(id, _)| id) {
            Ok(i) => self.degraded[i].1 = factor,
            Err(i) => self.degraded.insert(i, (l.0, factor)),
        }
        self
    }

    /// Degrades both directions of a cable.
    pub fn degrade_cable(&mut self, graph: &Graph, l: LinkId, factor: f64) -> &mut Self {
        self.degrade_link(l, factor);
        if let Some(rev) = graph.reverse_of(l) {
            self.degrade_link(rev, factor);
        }
        self
    }

    /// Brings a directed link back up (and clears any degradation on it).
    pub fn restore_link(&mut self, l: LinkId) -> &mut Self {
        self.links.remove(l.idx());
        if let Ok(i) = self.degraded.binary_search_by_key(&(l.0), |&(id, _)| id) {
            self.degraded.remove(i);
        }
        self
    }

    /// Brings a node back up.
    pub fn restore_node(&mut self, n: NodeId) -> &mut Self {
        self.nodes.remove(n.idx());
        self
    }

    /// True when the directed link is down (the link itself, or either
    /// endpoint node).
    pub fn link_down(&self, graph: &Graph, l: LinkId) -> bool {
        if self.links.contains(l.idx()) {
            return true;
        }
        let link = graph.link(l);
        self.nodes.contains(link.src.idx()) || self.nodes.contains(link.dst.idx())
    }

    /// True when the node is down.
    pub fn node_down(&self, n: NodeId) -> bool {
        self.nodes.contains(n.idx())
    }

    /// Capacity multiplier of a link: 0 when down, the degradation factor
    /// when degraded, 1 otherwise.
    pub fn capacity_factor(&self, graph: &Graph, l: LinkId) -> f64 {
        if self.link_down(graph, l) {
            return 0.0;
        }
        match self.degraded.binary_search_by_key(&(l.0), |&(id, _)| id) {
            Ok(i) => self.degraded[i].1,
            Err(_) => 1.0,
        }
    }

    /// The link's capacity under this mask (Mbps; 0 when down).
    pub fn effective_capacity(&self, graph: &Graph, l: LinkId) -> f64 {
        graph.link(l).capacity_mbps * self.capacity_factor(graph, l)
    }

    /// Per-link effective capacities (Mbps) under this mask, indexed by
    /// `LinkId` — the capacity-provider view the LP stack poses constraints
    /// against. Downed links read 0; degraded links `factor * capacity`;
    /// everything else the raw capacity.
    pub fn effective_capacities(&self, graph: &Graph) -> Vec<f64> {
        graph.link_ids().map(|l| self.effective_capacity(graph, l)).collect()
    }

    /// The downed-link set, for passing to the masked algorithms. `None`
    /// when no link is individually down (node failures still apply via
    /// [`FailureMask::node_mask`]).
    pub fn link_mask(&self) -> Option<&BitSet> {
        (!self.links.is_empty()).then_some(&self.links)
    }

    /// The downed-node set (see [`FailureMask::link_mask`]).
    pub fn node_mask(&self) -> Option<&BitSet> {
        (!self.nodes.is_empty()).then_some(&self.nodes)
    }

    /// Iterates over individually-failed directed links.
    pub fn links_down(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().map(|i| LinkId(i as u32))
    }

    /// Iterates over failed nodes.
    pub fn nodes_down(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|i| NodeId(i as u32))
    }

    /// True when the path crosses any failed element (downed link, downed
    /// interior node, or downed endpoint). Degradation does not "hit" a
    /// path — the path survives with less capacity.
    pub fn hits_path(&self, graph: &Graph, path: &Path) -> bool {
        if self.links.is_empty() && self.nodes.is_empty() {
            return false;
        }
        if self.nodes.contains(path.src().idx()) {
            return true;
        }
        path.links()
            .iter()
            .any(|&l| self.links.contains(l.idx()) || self.nodes.contains(graph.link(l).dst.idx()))
    }

    /// True when `s` can still reach `t` under the mask.
    pub fn connected(&self, graph: &Graph, s: NodeId, t: NodeId) -> bool {
        crate::dijkstra::shortest_path_tree(graph, s, self.link_mask(), self.node_mask())
            .reachable(t)
    }
}

impl KspGenerator<'_> {
    /// A k-shortest-paths generator that never uses elements failed in
    /// `mask` — the masked Yen variant. Capacity degradation is invisible
    /// here (Yen ranks by delay); downed links and nodes are.
    pub fn under_mask<'g>(
        graph: &'g Graph,
        src: NodeId,
        dst: NodeId,
        mask: &FailureMask,
    ) -> KspGenerator<'g> {
        KspGenerator::with_avoided(
            graph,
            src,
            dst,
            mask.link_mask().cloned(),
            mask.node_mask().cloned(),
        )
    }
}

/// Max flow (Mbps) from `s` to `t` under the mask: downed links and nodes
/// carry nothing, degraded links carry `factor * capacity`. Equals the
/// max flow of the physically rebuilt subgraph (the proptest suite holds it
/// to that).
pub fn max_flow_masked(graph: &Graph, s: NodeId, t: NodeId, mask: &FailureMask) -> f64 {
    if mask.node_down(s) || mask.node_down(t) {
        return 0.0;
    }
    let mut d = crate::maxflow::Dinic::new(graph.node_count());
    for l in graph.link_ids() {
        let factor = mask.capacity_factor(graph, l);
        if factor > 0.0 {
            let link = graph.link(l);
            d.add_arc(link.src.idx(), link.dst.idx(), link.capacity_mbps * factor);
        }
    }
    d.run(s.idx(), t.idx())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path;
    use crate::graph::GraphBuilder;
    use crate::maxflow::max_flow;

    /// 0 --1ms-- 1 --1ms-- 2 and a direct 0 --5ms-- 2, all duplex cap 10.
    fn diamondish() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0);
        b.add_duplex(NodeId(0), NodeId(2), 5.0, 10.0);
        b.build()
    }

    #[test]
    fn empty_mask_changes_nothing() {
        let g = diamondish();
        let mask = FailureMask::new();
        assert!(mask.is_empty());
        assert!(!mask.link_down(&g, LinkId(0)));
        assert_eq!(mask.capacity_factor(&g, LinkId(0)), 1.0);
        let p = shortest_path(&g, NodeId(0), NodeId(2), mask.link_mask(), mask.node_mask());
        assert_eq!(p.unwrap().delay_ms(), 2.0);
        let diff =
            max_flow_masked(&g, NodeId(0), NodeId(2), &mask) - max_flow(&g, NodeId(0), NodeId(2));
        assert!(diff.abs() < 1e-9);
    }

    #[test]
    fn cable_failure_masks_both_directions() {
        let g = diamondish();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let mut mask = FailureMask::new();
        mask.fail_cable(&g, l01);
        assert!(mask.link_down(&g, l01));
        assert!(mask.link_down(&g, g.reverse_of(l01).unwrap()));
        let p = shortest_path(&g, NodeId(0), NodeId(2), mask.link_mask(), mask.node_mask());
        assert_eq!(p.unwrap().delay_ms(), 5.0, "forced onto the direct link");
        // Restore brings the short path back.
        mask.restore_link(l01).restore_link(g.reverse_of(l01).unwrap());
        assert!(mask.is_empty());
        let p = shortest_path(&g, NodeId(0), NodeId(2), mask.link_mask(), mask.node_mask());
        assert_eq!(p.unwrap().delay_ms(), 2.0);
    }

    #[test]
    fn node_failure_downs_incident_links_and_paths() {
        let g = diamondish();
        let mut mask = FailureMask::new();
        mask.fail_node(NodeId(1));
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        assert!(mask.link_down(&g, l01), "links into a dead node are down");
        assert_eq!(mask.capacity_factor(&g, l01), 0.0);
        let via = Path::new(&g, vec![l01, g.find_link(NodeId(1), NodeId(2)).unwrap()]);
        assert!(mask.hits_path(&g, &via));
        let direct = Path::new(&g, vec![g.find_link(NodeId(0), NodeId(2)).unwrap()]);
        assert!(!mask.hits_path(&g, &direct));
        assert!(mask.connected(&g, NodeId(0), NodeId(2)));
        assert!(
            (max_flow_masked(&g, NodeId(0), NodeId(2), &mask) - 10.0).abs() < 1e-9,
            "only the direct link survives"
        );
    }

    #[test]
    fn degradation_scales_capacity_but_keeps_routing() {
        let g = diamondish();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let mut mask = FailureMask::new();
        mask.degrade_cable(&g, l01, 0.25);
        assert!(!mask.link_down(&g, l01), "degraded is not down");
        assert!((mask.effective_capacity(&g, l01) - 2.5).abs() < 1e-9);
        // Routing unchanged: Yen still takes the 2 ms path.
        let mut gen = KspGenerator::under_mask(&g, NodeId(0), NodeId(2), &mask);
        assert_eq!(gen.next_path().unwrap().delay_ms(), 2.0);
        // Max flow sees 2.5 + 10 through the two routes.
        assert!((max_flow_masked(&g, NodeId(0), NodeId(2), &mask) - 12.5).abs() < 1e-9);
        // Re-degrading overwrites, restore clears.
        mask.degrade_link(l01, 0.5);
        assert!((mask.capacity_factor(&g, l01) - 0.5).abs() < 1e-12);
        mask.restore_link(l01);
        assert_eq!(mask.capacity_factor(&g, l01), 1.0);
    }

    #[test]
    fn effective_capacities_vector_matches_per_link_queries() {
        let g = diamondish();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l02 = g.find_link(NodeId(0), NodeId(2)).unwrap();
        let mut mask = FailureMask::new();
        mask.degrade_cable(&g, l01, 0.25);
        mask.fail_cable(&g, l02);
        let caps = mask.effective_capacities(&g);
        assert_eq!(caps.len(), g.link_count());
        for l in g.link_ids() {
            assert!((caps[l.idx()] - mask.effective_capacity(&g, l)).abs() < 1e-12);
        }
        assert!((caps[l01.idx()] - 2.5).abs() < 1e-9, "degraded to a quarter");
        assert_eq!(caps[l02.idx()], 0.0, "downed link reads zero");
    }

    #[test]
    fn masked_yen_skips_failed_elements() {
        let g = diamondish();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let mut mask = FailureMask::new();
        mask.fail_cable(&g, l01);
        let mut gen = KspGenerator::under_mask(&g, NodeId(0), NodeId(2), &mask);
        let paths: Vec<Path> = std::iter::from_fn(|| gen.next_path()).collect();
        assert_eq!(paths.len(), 1, "only the direct route survives");
        assert_eq!(paths[0].delay_ms(), 5.0);
    }

    #[test]
    fn disconnection_is_reported_not_fatal() {
        let g = diamondish();
        let mut mask = FailureMask::new();
        mask.fail_node(NodeId(2));
        assert!(!mask.connected(&g, NodeId(0), NodeId(2)));
        assert_eq!(max_flow_masked(&g, NodeId(0), NodeId(2), &mask), 0.0);
        let mut gen = KspGenerator::under_mask(&g, NodeId(0), NodeId(2), &mask);
        assert!(gen.next_path().is_none());
    }

    #[test]
    fn mask_outlives_graph_growth() {
        // A mask built against the small graph answers correctly (all-up)
        // for links that only exist in a grown copy.
        let small = diamondish();
        let mut mask = FailureMask::new();
        mask.fail_link(LinkId(1));
        let mut b = GraphBuilder::new(4);
        for l in small.link_ids() {
            let link = small.link(l);
            b.add_link(link.src, link.dst, link.delay_ms, link.capacity_mbps);
        }
        b.add_duplex(NodeId(2), NodeId(3), 1.0, 10.0);
        let grown = b.build();
        let new_link = grown.find_link(NodeId(2), NodeId(3)).unwrap();
        assert!(!mask.link_down(&grown, new_link));
        assert_eq!(mask.capacity_factor(&grown, new_link), 1.0);
        assert!(mask.link_down(&grown, LinkId(1)));
    }
}
