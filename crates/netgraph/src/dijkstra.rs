//! Dijkstra shortest paths by propagation delay, with link/node masking.
//!
//! Masking is first-class because two of the paper's core procedures need it:
//! the APA probe removes one shortest-path link and asks for alternates (§2),
//! and Yen's algorithm repeatedly hides links and root-path nodes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bitset::BitSet;
use crate::graph::{Graph, LinkId, NodeId};
use crate::path::Path;

/// Heap entry ordered by (distance, node) — node id as a deterministic tie
/// break so runs are reproducible across platforms.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the min distance first.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a single-source Dijkstra run: distances and parent links.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    source: NodeId,
    /// `dist_ms[v]` = shortest delay from source to v; `f64::INFINITY` if
    /// unreachable under the mask.
    dist_ms: Vec<f64>,
    /// Parent link on the shortest path to v (None for source/unreachable).
    parent: Vec<Option<LinkId>>,
}

impl ShortestPathTree {
    /// The source node of the tree.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest delay to `v` in ms (`INFINITY` if unreachable).
    #[inline]
    pub fn dist_ms(&self, v: NodeId) -> f64 {
        self.dist_ms[v.idx()]
    }

    /// True if `v` is reachable.
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist_ms[v.idx()].is_finite()
    }

    /// Reconstructs the shortest path to `t`, or `None` if unreachable or
    /// `t == source`.
    pub fn path_to(&self, graph: &Graph, t: NodeId) -> Option<Path> {
        if t == self.source || !self.reachable(t) {
            return None;
        }
        let mut links = Vec::new();
        let mut at = t;
        while at != self.source {
            let l = self.parent[at.idx()]?;
            links.push(l);
            at = graph.link(l).src;
        }
        links.reverse();
        Some(Path::new(graph, links))
    }
}

/// Runs Dijkstra from `source` over links *not* in `link_mask` and nodes
/// *not* in `node_mask` (either mask may be `None`).
///
/// Delays are the `delay_ms` attributes; ties are broken deterministically.
pub fn shortest_path_tree(
    graph: &Graph,
    source: NodeId,
    link_mask: Option<&BitSet>,
    node_mask: Option<&BitSet>,
) -> ShortestPathTree {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    let masked_node = |v: NodeId| node_mask.is_some_and(|m| m.contains(v.idx()));
    let masked_link = |l: LinkId| link_mask.is_some_and(|m| m.contains(l.idx()));

    if !masked_node(source) {
        dist[source.idx()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, node: source });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if done[u.idx()] {
                continue;
            }
            done[u.idx()] = true;
            for &l in graph.out_links(u) {
                if masked_link(l) {
                    continue;
                }
                let link = graph.link(l);
                if masked_node(link.dst) {
                    continue;
                }
                let nd = d + link.delay_ms;
                let v = link.dst.idx();
                // Strict improvement or deterministic tie-break on link id so
                // equal-delay graphs always produce the same tree.
                if nd < dist[v] - 1e-15
                    || (nd <= dist[v] + 1e-15 && parent[v].is_some_and(|pl| l < pl) && !done[v])
                {
                    dist[v] = nd;
                    parent[v] = Some(l);
                    heap.push(HeapEntry { dist: nd, node: link.dst });
                }
            }
        }
    }
    ShortestPathTree { source, dist_ms: dist, parent }
}

/// Convenience: the shortest path from `s` to `t` under optional masks.
pub fn shortest_path(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    link_mask: Option<&BitSet>,
    node_mask: Option<&BitSet>,
) -> Option<Path> {
    shortest_path_tree(graph, s, link_mask, node_mask).path_to(graph, t)
}

/// All-pairs shortest delays (ms) via repeated Dijkstra; `INFINITY` where
/// unreachable. Row = source.
pub fn all_pairs_delays(graph: &Graph) -> Vec<Vec<f64>> {
    graph.nodes().map(|s| shortest_path_tree(graph, s, None, None).dist_ms).collect()
}

/// Result of a single-**sink** Dijkstra run: for every node, the shortest
/// delay *to* the sink and the first link of that path.
///
/// The landmark machinery of the hierarchical path engine needs shortest
/// paths **into** a landmark from everywhere; running the forward algorithm
/// per source would be quadratic, so this walks `in_links` once instead.
#[derive(Clone, Debug)]
pub struct ReverseShortestPathTree {
    sink: NodeId,
    /// `dist_ms[v]` = shortest delay from v to sink; `INFINITY` if the sink
    /// is unreachable from v under the mask.
    dist_ms: Vec<f64>,
    /// First link on the shortest v→sink path (None for sink/unreachable).
    next: Vec<Option<LinkId>>,
}

impl ReverseShortestPathTree {
    /// The sink node of the tree.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Shortest delay from `v` to the sink in ms (`INFINITY` if unreachable).
    #[inline]
    pub fn dist_ms(&self, v: NodeId) -> f64 {
        self.dist_ms[v.idx()]
    }

    /// True if the sink is reachable from `v`.
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist_ms[v.idx()].is_finite()
    }

    /// Reconstructs the shortest path from `s` to the sink, or `None` if the
    /// sink is unreachable or `s` *is* the sink.
    pub fn path_from(&self, graph: &Graph, s: NodeId) -> Option<Path> {
        if s == self.sink || !self.reachable(s) {
            return None;
        }
        let mut links = Vec::new();
        let mut at = s;
        while at != self.sink {
            let l = self.next[at.idx()]?;
            links.push(l);
            at = graph.link(l).dst;
        }
        Some(Path::new(graph, links))
    }
}

/// Runs Dijkstra *toward* `sink` by relaxing `in_links`, honouring the same
/// optional masks as [`shortest_path_tree`]. `dist_ms(v)` is the delay of
/// the shortest v→sink path (directionality matters on asymmetric graphs).
pub fn reverse_shortest_path_tree(
    graph: &Graph,
    sink: NodeId,
    link_mask: Option<&BitSet>,
    node_mask: Option<&BitSet>,
) -> ReverseShortestPathTree {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut next: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    let masked_node = |v: NodeId| node_mask.is_some_and(|m| m.contains(v.idx()));
    let masked_link = |l: LinkId| link_mask.is_some_and(|m| m.contains(l.idx()));

    if !masked_node(sink) {
        dist[sink.idx()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, node: sink });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if done[u.idx()] {
                continue;
            }
            done[u.idx()] = true;
            for &l in graph.in_links(u) {
                if masked_link(l) {
                    continue;
                }
                let link = graph.link(l);
                if masked_node(link.src) {
                    continue;
                }
                let nd = d + link.delay_ms;
                let v = link.src.idx();
                if nd < dist[v] - 1e-15
                    || (nd <= dist[v] + 1e-15 && next[v].is_some_and(|pl| l < pl) && !done[v])
                {
                    dist[v] = nd;
                    next[v] = Some(l);
                    heap.push(HeapEntry { dist: nd, node: link.src });
                }
            }
        }
    }
    ReverseShortestPathTree { sink, dist_ms: dist, next }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 --1ms-- 1 --1ms-- 2 and a direct 0 --5ms-- 2.
    fn diamondish() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0);
        b.add_duplex(NodeId(0), NodeId(2), 5.0, 10.0);
        b.build()
    }

    #[test]
    fn picks_two_hop_shorter_path() {
        let g = diamondish();
        let p = shortest_path(&g, NodeId(0), NodeId(2), None, None).unwrap();
        assert_eq!(p.delay_ms(), 2.0);
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn link_mask_forces_detour() {
        let g = diamondish();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let mut mask = BitSet::new(g.link_count());
        mask.insert(l01.idx());
        let p = shortest_path(&g, NodeId(0), NodeId(2), Some(&mask), None).unwrap();
        assert_eq!(p.delay_ms(), 5.0);
        assert_eq!(p.hop_count(), 1);
    }

    #[test]
    fn node_mask_forces_detour() {
        let g = diamondish();
        let mut mask = BitSet::new(g.node_count());
        mask.insert(1);
        let p = shortest_path(&g, NodeId(0), NodeId(2), None, Some(&mask)).unwrap();
        assert_eq!(p.delay_ms(), 5.0);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new(3);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        let g = b.build();
        assert!(shortest_path(&g, NodeId(0), NodeId(2), None, None).is_none());
        let tree = shortest_path_tree(&g, NodeId(0), None, None);
        assert!(!tree.reachable(NodeId(2)));
        assert!(tree.dist_ms(NodeId(2)).is_infinite());
    }

    #[test]
    fn source_to_source() {
        let g = diamondish();
        let tree = shortest_path_tree(&g, NodeId(0), None, None);
        assert_eq!(tree.dist_ms(NodeId(0)), 0.0);
        assert!(tree.path_to(&g, NodeId(0)).is_none());
    }

    #[test]
    fn reverse_tree_matches_forward_on_duplex() {
        let g = diamondish();
        let rev = reverse_shortest_path_tree(&g, NodeId(2), None, None);
        assert_eq!(rev.sink(), NodeId(2));
        assert_eq!(rev.dist_ms(NodeId(0)), 2.0);
        assert_eq!(rev.dist_ms(NodeId(2)), 0.0);
        let p = rev.path_from(&g, NodeId(0)).unwrap();
        assert_eq!(p.delay_ms(), 2.0);
        assert_eq!(p.hop_count(), 2);
        // Path runs forward: 0 -> 1 -> 2.
        assert_eq!(g.link(p.links()[0]).src, NodeId(0));
        assert_eq!(g.link(*p.links().last().unwrap()).dst, NodeId(2));
        assert!(rev.path_from(&g, NodeId(2)).is_none());
    }

    #[test]
    fn reverse_tree_respects_masks() {
        let g = diamondish();
        let l12 = g.find_link(NodeId(1), NodeId(2)).unwrap();
        let mut mask = BitSet::new(g.link_count());
        mask.insert(l12.idx());
        let rev = reverse_shortest_path_tree(&g, NodeId(2), Some(&mask), None);
        assert_eq!(rev.dist_ms(NodeId(0)), 5.0);
        let mut nmask = BitSet::new(g.node_count());
        nmask.insert(2);
        let dead = reverse_shortest_path_tree(&g, NodeId(2), None, Some(&nmask));
        assert!(!dead.reachable(NodeId(0)));
    }

    #[test]
    fn all_pairs_symmetric_for_duplex_graph() {
        let g = diamondish();
        let d = all_pairs_delays(&g);
        for i in 0..3 {
            for j in 0..3 {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12);
            }
        }
        assert_eq!(d[0][2], 2.0);
    }
}
