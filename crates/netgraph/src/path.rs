//! Paths as sequences of directed links.

use crate::graph::{Graph, LinkId, NodeId};

/// A loopless directed path through a [`Graph`].
///
/// Invariants (checked by [`Path::new`] in debug builds and by
/// [`Path::validate`] on demand): links are contiguous (`dst` of link *i*
/// equals `src` of link *i+1*) and no node repeats.
#[derive(Clone, Debug, PartialEq)]
pub struct Path {
    links: Vec<LinkId>,
    /// Total propagation delay in ms, cached at construction.
    delay_ms: f64,
    src: NodeId,
    dst: NodeId,
}

impl Path {
    /// Builds a path from links; caches its delay.
    ///
    /// # Panics
    /// Panics if `links` is empty. Debug builds also validate contiguity and
    /// looplessness.
    pub fn new(graph: &Graph, links: Vec<LinkId>) -> Self {
        assert!(!links.is_empty(), "a Path must have at least one link");
        let src = graph.link(links[0]).src;
        let dst = graph.link(*links.last().expect("non-empty")).dst;
        let delay_ms = graph.path_delay(&links);
        let p = Path { links, delay_ms, src, dst };
        debug_assert!(p.validate(graph).is_ok(), "invalid path: {:?}", p.validate(graph));
        p
    }

    /// The links of the path, in order.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Cached total propagation delay (ms).
    #[inline]
    pub fn delay_ms(&self) -> f64 {
        self.delay_ms
    }

    /// First node.
    #[inline]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Last node.
    #[inline]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Number of links (hops).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// The node sequence, `hop_count() + 1` long.
    pub fn nodes(&self, graph: &Graph) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.links.len() + 1);
        v.push(self.src);
        for &l in &self.links {
            v.push(graph.link(l).dst);
        }
        v
    }

    /// Minimum capacity along the path (Mbps).
    pub fn bottleneck_mbps(&self, graph: &Graph) -> f64 {
        graph.path_bottleneck(&self.links)
    }

    /// True if the path traverses the given link.
    pub fn contains_link(&self, l: LinkId) -> bool {
        self.links.contains(&l)
    }

    /// Checks contiguity and looplessness; returns a description of the first
    /// violation.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        let mut seen = vec![self.src];
        let mut at = self.src;
        for &l in &self.links {
            let link = graph.link(l);
            if link.src != at {
                return Err(format!("link {l:?} starts at {:?}, expected {at:?}", link.src));
            }
            at = link.dst;
            if seen.contains(&at) {
                return Err(format!("node {at:?} repeats"));
            }
            seen.push(at);
        }
        let cached = graph.path_delay(&self.links);
        if (cached - self.delay_ms).abs() > 1e-9 {
            return Err(format!("stale delay cache: {} vs {}", self.delay_ms, cached));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn line4() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 2.0, 20.0);
        b.add_duplex(NodeId(2), NodeId(3), 3.0, 5.0);
        b.build()
    }

    #[test]
    fn path_accessors() {
        let g = line4();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l12 = g.find_link(NodeId(1), NodeId(2)).unwrap();
        let l23 = g.find_link(NodeId(2), NodeId(3)).unwrap();
        let p = Path::new(&g, vec![l01, l12, l23]);
        assert_eq!(p.src(), NodeId(0));
        assert_eq!(p.dst(), NodeId(3));
        assert_eq!(p.delay_ms(), 6.0);
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.bottleneck_mbps(&g), 5.0);
        assert_eq!(p.nodes(&g), vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(p.contains_link(l12));
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn validate_catches_discontiguity() {
        let g = line4();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l23 = g.find_link(NodeId(2), NodeId(3)).unwrap();
        let p = Path { links: vec![l01, l23], delay_ms: 4.0, src: NodeId(0), dst: NodeId(3) };
        assert!(p.validate(&g).is_err());
    }

    #[test]
    fn validate_catches_loop() {
        let g = line4();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l10 = g.find_link(NodeId(1), NodeId(0)).unwrap();
        let p = Path { links: vec![l01, l10], delay_ms: 2.0, src: NodeId(0), dst: NodeId(0) };
        assert!(p.validate(&g).is_err());
    }
}
