//! Dinic max-flow / min-cut.
//!
//! §2 of the paper declares a set of alternate paths a *viable alternate*
//! when "their min-cut is sufficient" — i.e. the max-flow through the union
//! of those paths' links reaches the bottleneck capacity of the shortest
//! path. [`min_cut_of_links`] computes exactly that. The paper also scales
//! traffic matrices relative to the network min-cut (§3), which reuses the
//! same machinery at the whole-graph level via [`max_flow`].

use crate::graph::{Graph, LinkId, NodeId};

/// Internal arc for the Dinic residual network.
#[derive(Clone, Debug)]
struct Arc {
    to: usize,
    cap: f64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// Dinic solver over an explicit arc list. Crate-visible so the failure
/// overlay can pose masked instances without re-deriving the solver.
pub(crate) struct Dinic {
    arcs: Vec<Arc>,
    head: Vec<Vec<usize>>, // arc indices per node
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    pub(crate) fn new(n: usize) -> Self {
        Dinic { arcs: Vec::new(), head: vec![Vec::new(); n], level: vec![0; n], iter: vec![0; n] }
    }

    pub(crate) fn add_arc(&mut self, from: usize, to: usize, cap: f64) {
        let a = self.arcs.len();
        self.arcs.push(Arc { to, cap, rev: a + 1 });
        self.arcs.push(Arc { to: from, cap: 0.0, rev: a });
        self.head[from].push(a);
        self.head[to].push(a + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = std::collections::VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.head[u] {
                let arc = &self.arcs[ai];
                if arc.cap > 1e-12 && self.level[arc.to] < 0 {
                    self.level[arc.to] = self.level[u] + 1;
                    q.push_back(arc.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: f64) -> f64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.head[u].len() {
            let ai = self.head[u][self.iter[u]];
            let (to, cap) = (self.arcs[ai].to, self.arcs[ai].cap);
            if cap > 1e-12 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, f.min(cap));
                if d > 1e-12 {
                    self.arcs[ai].cap -= d;
                    let rev = self.arcs[ai].rev;
                    self.arcs[rev].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0.0
    }

    pub(crate) fn run(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= 1e-12 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Max flow (Mbps) from `s` to `t` using every link's capacity.
pub fn max_flow(graph: &Graph, s: NodeId, t: NodeId) -> f64 {
    let mut d = Dinic::new(graph.node_count());
    for l in graph.link_ids() {
        let link = graph.link(l);
        d.add_arc(link.src.idx(), link.dst.idx(), link.capacity_mbps);
    }
    d.run(s.idx(), t.idx())
}

/// Max flow (= min cut, by duality) from `s` to `t` restricted to the given
/// subset of links. Used by the APA viability test: the subset is the union
/// of candidate alternate paths.
pub fn min_cut_of_links(graph: &Graph, links: &[LinkId], s: NodeId, t: NodeId) -> f64 {
    let mut d = Dinic::new(graph.node_count());
    // Parallel links are added individually; Dinic handles multigraphs.
    let mut dedup = std::collections::HashSet::new();
    for &l in links {
        if dedup.insert(l) {
            let link = graph.link(l);
            d.add_arc(link.src.idx(), link.dst.idx(), link.capacity_mbps);
        }
    }
    d.run(s.idx(), t.idx())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn single_path_bottleneck() {
        let mut b = GraphBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), 1.0, 7.0);
        b.add_link(NodeId(1), NodeId(2), 1.0, 3.0);
        let g = b.build();
        assert!((max_flow(&g, NodeId(0), NodeId(2)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut b = GraphBuilder::new(4);
        b.add_link(NodeId(0), NodeId(1), 1.0, 5.0);
        b.add_link(NodeId(1), NodeId(3), 1.0, 5.0);
        b.add_link(NodeId(0), NodeId(2), 1.0, 4.0);
        b.add_link(NodeId(2), NodeId(3), 1.0, 6.0);
        let g = b.build();
        assert!((max_flow(&g, NodeId(0), NodeId(3)) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn classic_crosslink_network() {
        // CLRS-style example where the cross link matters.
        let mut b = GraphBuilder::new(4);
        b.add_link(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_link(NodeId(0), NodeId(2), 1.0, 10.0);
        b.add_link(NodeId(1), NodeId(2), 1.0, 1.0);
        b.add_link(NodeId(1), NodeId(3), 1.0, 4.0);
        b.add_link(NodeId(2), NodeId(3), 1.0, 9.0);
        let g = b.build();
        assert!((max_flow(&g, NodeId(0), NodeId(3)) - 13.0).abs() < 1e-9);
    }

    #[test]
    fn restricted_subset_min_cut() {
        let mut b = GraphBuilder::new(4);
        let a = b.add_link(NodeId(0), NodeId(1), 1.0, 5.0);
        let c = b.add_link(NodeId(1), NodeId(3), 1.0, 2.0);
        let d = b.add_link(NodeId(0), NodeId(2), 1.0, 4.0);
        let e = b.add_link(NodeId(2), NodeId(3), 1.0, 6.0);
        let g = b.build();
        // Only the upper path:
        assert!((min_cut_of_links(&g, &[a, c], NodeId(0), NodeId(3)) - 2.0).abs() < 1e-9);
        // Both paths:
        assert!((min_cut_of_links(&g, &[a, c, d, e], NodeId(0), NodeId(3)) - 6.0).abs() < 1e-9);
        // Duplicate link ids must not double capacity:
        assert!((min_cut_of_links(&g, &[a, c, a, c], NodeId(0), NodeId(3)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut b = GraphBuilder::new(3);
        b.add_link(NodeId(0), NodeId(1), 1.0, 5.0);
        let g = b.build();
        assert_eq!(max_flow(&g, NodeId(0), NodeId(2)), 0.0);
        assert_eq!(min_cut_of_links(&g, &[], NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn flow_bounded_by_out_capacity() {
        let mut b = GraphBuilder::new(5);
        for i in 1..4u32 {
            b.add_link(NodeId(0), NodeId(i), 1.0, 2.5);
            b.add_link(NodeId(i), NodeId(4), 1.0, 100.0);
        }
        let g = b.build();
        // Out-capacity of node 0 is 3 x 2.5.
        assert!((max_flow(&g, NodeId(0), NodeId(4)) - 7.5).abs() < 1e-9);
    }
}
