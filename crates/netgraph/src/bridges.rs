//! Bridge (cut-edge) detection on the cable-level undirected view.
//!
//! A bridge is a cable whose removal disconnects the graph — the purest
//! form of "no alternate path": any shortest path crossing a bridge can
//! never route around it, whatever the stretch budget. That makes bridges
//! both a fast necessary condition inside APA-style analyses and an
//! independent oracle for testing them (a property test in `lowlat-core`
//! cross-checks APA against this module).
//!
//! Tarjan's low-link algorithm, iterative to keep recursion off large
//! graphs, treating each duplex pair of directed links as one undirected
//! edge (parallel cables between the same PoPs are never bridges).

use crate::graph::{Graph, LinkId};

/// Returns the bridges as directed-link ids (one per duplex pair: the
/// direction with the smaller id), sorted.
pub fn bridges(graph: &Graph) -> Vec<LinkId> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    // Undirected edge list: (u, v, representative link id), deduping the
    // two directions via min(link, reverse-candidate).
    let mut edges: Vec<(usize, usize, LinkId)> = Vec::new();
    for l in graph.link_ids() {
        let link = graph.link(l);
        let (u, v) = (link.src.idx(), link.dst.idx());
        if u < v {
            edges.push((u, v, l));
        } else {
            // Keep only if no forward twin exists (pure one-way links).
            if graph.find_link(link.dst, link.src).is_none() {
                edges.push((v, u, l));
            }
        }
    }
    // Multi-edges between the same pair: group and remember multiplicity.
    edges.sort_by_key(|&(u, v, _)| (u, v));
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (other, edge idx)
    let mut uniq: Vec<(usize, usize, LinkId, usize)> = Vec::new(); // + multiplicity
    for &(u, v, l) in &edges {
        match uniq.last_mut() {
            Some(last) if last.0 == u && last.1 == v => last.3 += 1,
            _ => uniq.push((u, v, l, 1)),
        }
    }
    for (i, &(u, v, _, _)) in uniq.iter().enumerate() {
        adj[u].push((v, i));
        adj[v].push((u, i));
    }

    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut out = Vec::new();
    // Iterative DFS: stack of (node, parent edge idx, next adjacency slot).
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while !stack.is_empty() {
            let top = stack.len() - 1;
            let (u, pe, slot) = stack[top];
            if slot < adj[u].len() {
                stack[top].2 += 1;
                let (v, ei) = adj[u][slot];
                if ei == pe {
                    continue; // don't re-use the tree edge to the parent
                }
                if disc[v] == usize::MAX {
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, ei, 0));
                } else {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        // The tree edge p-u is a bridge unless multi-edge.
                        let (_, _, l, mult) = uniq[pe];
                        if mult == 1 {
                            out.push(l);
                        }
                    }
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, NodeId};

    #[test]
    fn chain_is_all_bridges() {
        let mut b = GraphBuilder::new(4);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 1.0);
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 1.0);
        b.add_duplex(NodeId(2), NodeId(3), 1.0, 1.0);
        assert_eq!(bridges(&b.build()).len(), 3);
    }

    #[test]
    fn ring_has_no_bridges() {
        let mut b = GraphBuilder::new(5);
        for i in 0..5u32 {
            b.add_duplex(NodeId(i), NodeId((i + 1) % 5), 1.0, 1.0);
        }
        assert!(bridges(&b.build()).is_empty());
    }

    #[test]
    fn barbell_bridge() {
        // Two triangles joined by one cable: exactly that cable is a bridge.
        let mut b = GraphBuilder::new(6);
        for (x, y) in [(0u32, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_duplex(NodeId(x), NodeId(y), 1.0, 1.0);
        }
        let (mid, _) = b.add_duplex(NodeId(2), NodeId(3), 1.0, 1.0);
        let g = b.build();
        assert_eq!(bridges(&g), vec![mid]);
    }

    #[test]
    fn parallel_cables_are_not_bridges() {
        let mut b = GraphBuilder::new(2);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 1.0);
        b.add_duplex(NodeId(0), NodeId(1), 2.0, 1.0);
        assert!(bridges(&b.build()).is_empty());
    }

    #[test]
    fn tree_edges_all_bridges() {
        // Star with 4 leaves.
        let mut b = GraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_duplex(NodeId(0), NodeId(i), 1.0, 1.0);
        }
        assert_eq!(bridges(&b.build()).len(), 4);
    }
}
