//! Shared fixtures for the Criterion benches.
//!
//! Each bench target regenerates the computational kernel behind one paper
//! figure (see DESIGN.md's experiment index); the fixtures here keep the
//! workloads identical across targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lowlat_core::scale::ScaleToLoad;
use lowlat_tmgen::{GravityTmGen, TmGenConfig, TrafficMatrix};
use lowlat_topology::zoo::named;
use lowlat_topology::Topology;

/// The GTS-like grid — the paper's hard-to-route running example.
pub fn gts() -> Topology {
    named::gts_like()
}

/// The Abilene backbone — the small sanity-check network.
pub fn abilene() -> Topology {
    named::abilene()
}

/// A standard-operating-point matrix: locality 1, min-cut load 0.7.
pub fn standard_tm(topo: &Topology, index: u64) -> TrafficMatrix {
    GravityTmGen::new(TmGenConfig::default()).generate(topo, index).scaled_to_load(topo, 0.7)
}

/// A lighter matrix for the headroom sweep (min-cut load 0.6, Figure 8).
pub fn light_tm(topo: &Topology, index: u64) -> TrafficMatrix {
    GravityTmGen::new(TmGenConfig::default()).generate(topo, index).scaled_to_load(topo, 0.6)
}
