//! Bench-regression gate: turns the criterion stand-in's stdout into a
//! committed `BENCH_N.json` baseline and fails when a tracked median
//! regresses against the latest committed baseline.
//!
//! Usage (reads bench output from stdin):
//!
//! ```text
//! cargo bench -p lowlat_bench --bench substrates --bench fig_schemes \
//!     --bench warmstart --bench timeline \
//!   | cargo run --release -p lowlat_bench --bin bench_report -- \
//!       --baseline auto --out BENCH_2.json --max-regress 0.25 --skip engine/
//! ```
//!
//! * `--baseline auto` (default) picks the highest-numbered `BENCH_*.json`
//!   in the working directory; `--baseline none` skips the gate.
//! * `--out auto` writes the next free `BENCH_N.json` (never overwriting
//!   the committed baseline); an explicit path writes exactly there.
//! * `--max-regress 0.25` fails the run when any overlapping bench's median
//!   is more than 25% slower than the baseline.
//! * `--skip PREFIX` exempts benches from the gate (repeatable). The
//!   `engine/*` benches are meaningless on 1-CPU runners — BENCH_1.json's
//!   host note — so CI passes `--skip engine/`.
//! * `--min-us 20` ignores sub-threshold medians: micro-benches jitter far
//!   beyond 25% on shared runners.
//!
//! Exit codes: 0 ok, 1 regression(s), 2 usage/parse error.

use std::collections::BTreeMap;
use std::io::Read;

fn fail(msg: &str) -> ! {
    eprintln!("bench_report: error: {msg}");
    std::process::exit(2);
}

/// Parses a Rust `Duration` debug rendering ("693ns", "4.071µs",
/// "234.989595ms", "2.01s") into microseconds.
fn parse_duration_us(s: &str) -> Option<f64> {
    let (num, scale) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1e-3)
    } else if let Some(v) = s.strip_suffix("µs").or_else(|| s.strip_suffix("μs")) {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1e3)
    } else if let Some(v) = s.strip_suffix("s") {
        (v, 1e6)
    } else {
        return None;
    };
    num.parse::<f64>().ok().map(|v| v * scale)
}

/// Extracts `name -> median_us` from bench stdout lines of the form
/// `<id>  median <duration>   (<n> samples, total <duration>)`.
fn parse_bench_output(text: &str) -> BTreeMap<String, (f64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some(pos) = tokens.iter().position(|&t| t == "median") else {
            continue;
        };
        if pos == 0 || pos + 1 >= tokens.len() {
            continue;
        }
        let Some(median_us) = parse_duration_us(tokens[pos + 1]) else {
            continue;
        };
        let samples: u64 =
            tokens.get(pos + 2).and_then(|t| t.trim_start_matches('(').parse().ok()).unwrap_or(0);
        out.insert(tokens[0].to_string(), (median_us, samples));
    }
    out
}

/// Pulls `"<name>": { "median_us": <v> }` pairs out of a committed
/// `BENCH_*.json` without a JSON dependency: scans for quoted keys whose
/// object opens with a `median_us` field, which only bench entries do.
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    let read_string = |i: &mut usize| -> Option<String> {
        while *i < bytes.len() && bytes[*i] != b'"' {
            *i += 1;
        }
        if *i >= bytes.len() {
            return None;
        }
        let start = *i + 1;
        let mut end = start;
        while end < bytes.len() && bytes[end] != b'"' {
            end += 1;
        }
        *i = end + 1;
        Some(text[start..end].to_string())
    };
    while i < bytes.len() {
        let Some(key) = read_string(&mut i) else { break };
        // Expect `: {` then `"median_us"` as the first quoted token.
        let mut j = i;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b':') {
            continue;
        }
        j += 1;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'{') {
            continue;
        }
        let mut k = j + 1;
        let Some(field) = read_string(&mut k) else { break };
        if field != "median_us" {
            continue;
        }
        while k < bytes.len() && bytes[k] != b':' {
            k += 1;
        }
        k += 1;
        let start = k;
        while k < bytes.len() && !matches!(bytes[k], b',' | b'}' | b'\n') {
            k += 1;
        }
        if let Ok(v) = text[start..k].trim().parse::<f64>() {
            out.insert(key, v);
        }
        i = k;
    }
    out
}

/// Latest committed baseline: the highest N among `BENCH_N.json`.
fn find_latest_baseline() -> Option<(u32, String)> {
    let mut best: Option<(u32, String)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = name.strip_prefix("BENCH_").and_then(|r| r.strip_suffix(".json")) {
            if let Ok(n) = n.parse::<u32>() {
                if best.as_ref().is_none_or(|(b, _)| n > *b) {
                    best = Some((n, name));
                }
            }
        }
    }
    best
}

/// Days-since-epoch to (year, month, day) — Howard Hinnant's civil-from-days.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(secs / 86_400);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_arg = "auto".to_string();
    let mut out_path: Option<String> = None;
    let mut max_regress = 0.25f64;
    let mut min_us = 20.0f64;
    let mut skips: Vec<String> = Vec::new();
    let mut command: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> String {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| fail(&format!("{} expects a value", args[i])))
        };
        match args[i].as_str() {
            "--baseline" => {
                baseline_arg = value(i);
                i += 1;
            }
            "--out" => {
                out_path = Some(value(i));
                i += 1;
            }
            "--max-regress" => {
                max_regress = value(i).parse().unwrap_or_else(|_| fail("bad --max-regress"));
                i += 1;
            }
            "--min-us" => {
                min_us = value(i).parse().unwrap_or_else(|_| fail("bad --min-us"));
                i += 1;
            }
            "--skip" => {
                skips.push(value(i));
                i += 1;
            }
            "--command" => {
                command = Some(value(i));
                i += 1;
            }
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let mut input = String::new();
    std::io::stdin().read_to_string(&mut input).unwrap_or_else(|e| fail(&format!("stdin: {e}")));
    let current = parse_bench_output(&input);
    if current.is_empty() {
        fail("no bench medians found on stdin (pipe `cargo bench` output in)");
    }
    eprintln!("bench_report: parsed {} bench medians", current.len());

    // Gate against the latest committed baseline.
    let baseline: Option<(String, BTreeMap<String, f64>)> = match baseline_arg.as_str() {
        "none" => None,
        "auto" => find_latest_baseline().map(|(_, name)| {
            let text = std::fs::read_to_string(&name)
                .unwrap_or_else(|e| fail(&format!("read {name}: {e}")));
            (name, parse_baseline(&text))
        }),
        path => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
            Some((path.to_string(), parse_baseline(&text)))
        }
    };

    let mut regressions: Vec<String> = Vec::new();
    if let Some((name, base)) = &baseline {
        eprintln!(
            "bench_report: gating against {name} ({} entries, +{:.0}% budget)",
            base.len(),
            max_regress * 100.0
        );
        for (bench, (cur_us, _)) in &current {
            let Some(&base_us) = base.get(bench) else {
                eprintln!("  new      {bench}: {cur_us:.1}us (no baseline)");
                continue;
            };
            let delta = cur_us / base_us - 1.0;
            if skips.iter().any(|s| bench.starts_with(s.as_str())) {
                eprintln!(
                    "  skipped  {bench}: {base_us:.1} -> {cur_us:.1}us ({delta:+.1}%)",
                    delta = delta * 100.0
                );
                continue;
            }
            if base_us < min_us {
                eprintln!(
                    "  tiny     {bench}: {base_us:.1} -> {cur_us:.1}us (below {min_us}us floor)"
                );
                continue;
            }
            if delta > max_regress {
                eprintln!(
                    "  REGRESS  {bench}: {base_us:.1} -> {cur_us:.1}us ({:+.1}%)",
                    delta * 100.0
                );
                regressions.push(format!("{bench} ({:+.1}%)", delta * 100.0));
            } else {
                eprintln!(
                    "  ok       {bench}: {base_us:.1} -> {cur_us:.1}us ({:+.1}%)",
                    delta * 100.0
                );
            }
        }
    } else {
        eprintln!("bench_report: no baseline — recording only");
    }

    // `--out auto` writes the *next* free BENCH_N.json so a casual run can
    // never clobber the committed baseline the gate compares against.
    let out_path = out_path.map(|p| {
        if p == "auto" {
            let next = find_latest_baseline().map_or(1, |(n, _)| n + 1);
            format!("BENCH_{next}.json")
        } else {
            p
        }
    });
    if let Some(path) = &out_path {
        let n: u32 = std::path::Path::new(path)
            .file_name()
            .and_then(|f| f.to_str())
            .and_then(|f| f.strip_prefix("BENCH_"))
            .and_then(|f| f.strip_suffix(".json"))
            .and_then(|f| f.parse().ok())
            .unwrap_or(0);
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str(&format!("  \"baseline\": {n},\n"));
        json.push_str(&format!("  \"date\": \"{}\",\n", today()));
        json.push_str(&format!(
            "  \"command\": \"{}\",\n",
            command.as_deref().unwrap_or("cargo bench -p lowlat_bench | bench_report")
        ));
        json.push_str("  \"host\": {\n    \"os\": \"");
        json.push_str(std::env::consts::OS);
        json.push_str(&format!(
            "\",\n    \"cpus\": {cpus},\n    \"arch\": \"{}\",\n",
            std::env::consts::ARCH
        ));
        json.push_str(
            "    \"note\": \"engine/* medians are worker-count-bound; compare them only \
             across hosts with the same CPU count (see BENCH_1.json)\"\n  },\n",
        );
        json.push_str("  \"benches\": {\n");
        let entries: Vec<String> = current
            .iter()
            .map(|(name, (us, samples))| {
                format!(
                    "    \"{name}\": {{\n      \"median_us\": {us:.3},\n      \
                     \"samples\": {samples}\n    }}"
                )
            })
            .collect();
        json.push_str(&entries.join(",\n"));
        json.push_str("\n  }\n}\n");
        std::fs::write(path, json).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("bench_report: wrote {path}");
    }

    if !regressions.is_empty() {
        eprintln!("bench_report: {} regression(s): {}", regressions.len(), regressions.join(", "));
        std::process::exit(1);
    }
}
