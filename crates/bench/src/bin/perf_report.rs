//! Perf-regression gate over telemetry metrics snapshots: diffs two
//! `--metrics-out` JSON files (see `lowlat_telemetry::write_metrics`) and
//! fails when a tracked histogram's p50 regresses past the budget.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p lowlat_bench --bin perf_report -- \
//!     baseline.json current.json [--max-regress 0.25] [--min-ms 0.05] \
//!     [--skip PREFIX]
//! ```
//!
//! * Histograms present in both snapshots are gated on their p50 (nearest
//!   rank): more than `--max-regress` (default +25%) slower fails the run.
//! * `--min-ms 0.05` ignores sub-threshold baselines — micro-spans jitter
//!   far beyond 25% on shared runners (the `bench_report --min-us` rule).
//!   Histograms with fewer than 5 baseline samples are likewise skipped:
//!   nearest-rank p50 over a handful of observations is noise.
//! * `--skip PREFIX` exempts histogram families from the gate (repeatable).
//! * Counters are compared informationally: a large count drift usually
//!   means the two snapshots came from different workloads, which makes
//!   the latency comparison meaningless — so it is printed, not gated.
//!
//! Exit codes: 0 ok, 1 regression(s), 2 usage/parse error. The scanner is
//! hand-rolled against the writer's line-oriented layout, matching the
//! workspace's no-serde idiom (`bench_report`).

use std::collections::BTreeMap;

fn fail(msg: &str) -> ! {
    eprintln!("perf_report: error: {msg}");
    std::process::exit(2);
}

/// One parsed histogram row: (count, sum, p50, p90, p99).
#[derive(Clone, Copy)]
struct Hist {
    count: u64,
    p50: f64,
    p90: f64,
    p99: f64,
}

/// A parsed metrics snapshot: counters plus histogram summaries.
struct Snapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Hist>,
}

/// Pulls the quoted key off a snapshot line (`    "name": rest`) and
/// returns `(name, rest)`; `None` for structural lines.
fn split_entry(line: &str) -> Option<(&str, &str)> {
    let t = line.trim();
    let t = t.strip_prefix('"')?;
    let close = t.find('"')?;
    let (name, rest) = t.split_at(close);
    let rest = rest.strip_prefix('"')?.trim_start().strip_prefix(':')?;
    Some((name, rest.trim()))
}

/// Extracts a numeric field (`"p50": 1.25`) out of a one-line histogram
/// object.
fn field(obj: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let at = obj.find(&key)? + key.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses a `write_metrics` JSON snapshot. The writer emits one entry per
/// line inside each section, which is all the structure the scanner needs.
fn parse_snapshot(text: &str, path: &str) -> Snapshot {
    #[derive(PartialEq)]
    enum Section {
        None,
        Counters,
        Gauges,
        Histograms,
    }
    let mut section = Section::None;
    let mut snap = Snapshot { counters: BTreeMap::new(), histograms: BTreeMap::new() };
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"counters\"") {
            section = Section::Counters;
            continue;
        }
        if t.starts_with("\"gauges\"") {
            section = Section::Gauges;
            continue;
        }
        if t.starts_with("\"histograms\"") {
            section = Section::Histograms;
            continue;
        }
        let Some((name, rest)) = split_entry(line) else { continue };
        match section {
            Section::Counters => {
                let v = rest.trim_end_matches(',').trim();
                let v = v.parse().unwrap_or_else(|_| {
                    fail(&format!("{path}: bad counter value for {name}: {v}"))
                });
                snap.counters.insert(name.to_string(), v);
            }
            Section::Histograms => {
                let hist = Hist {
                    count: field(rest, "count")
                        .unwrap_or_else(|| fail(&format!("{path}: histogram {name} missing count")))
                        as u64,
                    p50: field(rest, "p50")
                        .unwrap_or_else(|| fail(&format!("{path}: histogram {name} missing p50"))),
                    p90: field(rest, "p90").unwrap_or(0.0),
                    p99: field(rest, "p99").unwrap_or(0.0),
                };
                snap.histograms.insert(name.to_string(), hist);
            }
            Section::Gauges | Section::None => {}
        }
    }
    if snap.counters.is_empty() && snap.histograms.is_empty() {
        fail(&format!("{path}: no counters or histograms found — is this a --metrics-out JSON?"));
    }
    snap
}

fn read_snapshot(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    parse_snapshot(&text, path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut max_regress = 0.25f64;
    let mut min_ms = 0.05f64;
    let mut skips: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> String {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| fail(&format!("{} expects a value", args[i])))
        };
        match args[i].as_str() {
            "--max-regress" => {
                max_regress = value(i).parse().unwrap_or_else(|_| fail("bad --max-regress"));
                i += 1;
            }
            "--min-ms" => {
                min_ms = value(i).parse().unwrap_or_else(|_| fail("bad --min-ms"));
                i += 1;
            }
            "--skip" => {
                skips.push(value(i));
                i += 1;
            }
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        fail("expected exactly two snapshot paths: perf_report BASELINE.json CURRENT.json");
    }
    let base = read_snapshot(&paths[0]);
    let cur = read_snapshot(&paths[1]);
    eprintln!(
        "perf_report: {} ({} histograms) -> {} ({} histograms), +{:.0}% budget",
        paths[0],
        base.histograms.len(),
        paths[1],
        cur.histograms.len(),
        max_regress * 100.0
    );

    // Latency gate: histogram p50s present in both snapshots.
    let mut regressions: Vec<String> = Vec::new();
    for (name, c) in &cur.histograms {
        let Some(b) = base.histograms.get(name) else {
            eprintln!("  new      {name}: p50 {:.3}ms (no baseline)", c.p50);
            continue;
        };
        let delta = if b.p50 > 0.0 { c.p50 / b.p50 - 1.0 } else { 0.0 };
        if skips.iter().any(|s| name.starts_with(s.as_str())) {
            eprintln!(
                "  skipped  {name}: p50 {:.3} -> {:.3}ms ({:+.1}%)",
                b.p50,
                c.p50,
                delta * 100.0
            );
            continue;
        }
        if b.p50 < min_ms {
            eprintln!(
                "  tiny     {name}: p50 {:.3} -> {:.3}ms (below {min_ms}ms floor)",
                b.p50, c.p50
            );
            continue;
        }
        if b.count < 5 {
            eprintln!(
                "  sparse   {name}: only {} baseline sample(s) — nearest-rank p50 too noisy",
                b.count
            );
            continue;
        }
        if delta > max_regress {
            eprintln!(
                "  REGRESS  {name}: p50 {:.3} -> {:.3}ms ({:+.1}%), p90 {:.3} -> {:.3}, \
                 p99 {:.3} -> {:.3}",
                b.p50,
                c.p50,
                delta * 100.0,
                b.p90,
                c.p90,
                b.p99,
                c.p99
            );
            regressions.push(format!("{name} ({:+.1}%)", delta * 100.0));
        } else {
            eprintln!(
                "  ok       {name}: p50 {:.3} -> {:.3}ms ({:+.1}%)",
                b.p50,
                c.p50,
                delta * 100.0
            );
        }
    }
    for name in base.histograms.keys() {
        if !cur.histograms.contains_key(name) {
            eprintln!("  dropped  {name}: present in baseline only");
        }
    }

    // Workload sanity: counter drift is printed, not gated — it tells the
    // reader whether the latency comparison above was apples-to-apples.
    let mut drifted = 0usize;
    for (name, c) in &cur.counters {
        let b = base.counters.get(name).copied().unwrap_or(0);
        if b == *c {
            continue;
        }
        let rel = if b > 0 { *c as f64 / b as f64 - 1.0 } else { f64::INFINITY };
        if rel.abs() > max_regress {
            eprintln!("  drift    {name}: {b} -> {c} ({rel:+.1}%)", rel = rel * 100.0);
            drifted += 1;
        }
    }
    if drifted > 0 {
        eprintln!(
            "perf_report: {drifted} counter(s) drifted >{:.0}% — check the workloads match",
            max_regress * 100.0
        );
    }

    if !regressions.is_empty() {
        eprintln!("perf_report: {} regression(s): {}", regressions.len(), regressions.join(", "));
        std::process::exit(1);
    }
    eprintln!("perf_report: ok");
}
