//! Timeline-controller benchmarks: one full §5 deployment-cycle run
//! (measure → optimize → install → replay) per iteration, LDR's full
//! Figure-14 loop against the placed-once baseline. The spread between the
//! two is the cost of adaptivity; `warmstart.rs` measures how much of that
//! cost the basis reuse claws back.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_bench::abilene;
use lowlat_core::scale::ScaleToLoad;
use lowlat_sim::timeline::{simulate, Controller, TimelineConfig};
use lowlat_tmgen::{GravityTmGen, TmGenConfig};

fn bench_timeline(c: &mut Criterion) {
    let topo = abilene();
    let tm =
        GravityTmGen::new(TmGenConfig::default()).generate(&topo, 0).scaled_to_load(&topo, 0.7);
    let cfg =
        TimelineConfig { minutes: 3, warmup_minutes: 2, cv: 0.3, seed: 7, ..Default::default() };
    let mut group = c.benchmark_group("timeline/abilene-3min");
    group.sample_size(10);
    for controller in [Controller::ldr(), Controller::static_sp()] {
        let name = controller.name();
        group.bench_function(name, |b| {
            b.iter(|| simulate(black_box(&topo), &tm, &controller, &cfg).worst_queue_ms())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timeline);
criterion_main!(benches);
