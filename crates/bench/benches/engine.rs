//! The experiment engine itself: Std-scale `run_grid` over the named
//! corpus, the acceptance benchmark for the work-stealing executor.
//!
//! Three configurations:
//! * `workers1_seed_caches` — the seed engine's behavior: one worker and a
//!   *separate* path cache for the min-cut scaling solve (recreated here by
//!   routing through the replay path with cloned donor topologies).
//! * `workers1_shared_cache` — one worker, scaling and schemes sharing each
//!   network's cache: the single-core win.
//! * `workers_all` — the full work-stealing engine at
//!   `available_parallelism`; on a multi-core host this is where the
//!   (network × matrix × scheme) item granularity pays.
//!
//! BENCH_1.json records the measured medians per host.

use criterion::{criterion_group, criterion_main, Criterion};

use lowlat_sim::runner::{
    default_workers, run_grid_replay_with_workers, run_grid_with_workers, RunGrid, Scale,
};
use lowlat_topology::zoo::named;
use lowlat_topology::Topology;

fn named_corpus() -> Vec<Topology> {
    vec![
        named::abilene(),
        named::nsfnet(),
        named::geant_like(),
        named::gts_like(),
        named::cogent_like(),
        named::google_like(),
    ]
}

fn std_grid() -> RunGrid {
    RunGrid::with_schemes(
        0.7,
        1.0,
        Scale::Std.tms_per_network(),
        lowlat_core::schemes::registry::DEFAULT_SPECS,
    )
}

fn bench_engine(c: &mut Criterion) {
    let nets = named_corpus();
    let donors = nets.clone(); // distinct addresses force separate scale caches
    let grid = std_grid();
    let mut g = c.benchmark_group("engine/run_grid/std_named");
    g.sample_size(2);
    g.bench_function("workers1_seed_caches", |b| {
        b.iter(|| run_grid_replay_with_workers(&nets, &donors, &grid, 1).len())
    });
    g.bench_function("workers1_shared_cache", |b| {
        b.iter(|| run_grid_with_workers(&nets, &grid, 1).len())
    });
    g.bench_function("workers_all", |b| {
        b.iter(|| run_grid_with_workers(&nets, &grid, default_workers()).len())
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
