//! Ablations of LDR's design choices (DESIGN.md §1, paper §8 "Generality
//! of building blocks"):
//!
//! * **growth step** — how many next-shortest paths to add per overloaded
//!   aggregate per round (paper: "generating shortest paths for an
//!   increasing k"); bigger steps mean fewer LP solves but larger LPs.
//! * **refinement rounds** — the Figure-6 rebalancing passes; 0 disables.
//! * **path-set seeding** — starting MinMax from k=1 with growth versus
//!   seeding everyone with k=10 up front (the TeXCP approach).

use criterion::{criterion_group, criterion_main, Criterion};

use lowlat_bench::{gts, standard_tm};
use lowlat_core::pathgrow::{GrowRequest, GrowthConfig};
use lowlat_core::pathset::PathCache;

fn bench_growth_step(c: &mut Criterion) {
    let topo = gts();
    let tm = standard_tm(&topo, 0);
    let mut g = c.benchmark_group("ablation_growth_step");
    g.sample_size(10);
    for step in [1usize, 2, 4, 8] {
        g.bench_function(format!("step{step}"), |b| {
            b.iter(|| {
                let cache = PathCache::new(topo.graph());
                let cfg = GrowthConfig { growth_step: step, ..Default::default() };
                GrowRequest::new(&cache, &tm).config(&cfg).solve().expect("latopt").omax
            })
        });
    }
    g.finish();
}

fn bench_refine_rounds(c: &mut Criterion) {
    let topo = gts();
    let tm = standard_tm(&topo, 1);
    let mut g = c.benchmark_group("ablation_refine_rounds");
    g.sample_size(10);
    for rounds in [0usize, 2, 4] {
        g.bench_function(format!("refine{rounds}"), |b| {
            b.iter(|| {
                let cache = PathCache::new(topo.graph());
                let cfg = GrowthConfig { refine_rounds: rounds, ..Default::default() };
                GrowRequest::new(&cache, &tm).config(&cfg).solve().expect("latopt").omax
            })
        });
    }
    g.finish();
}

fn bench_minmax_seeding(c: &mut Criterion) {
    let topo = gts();
    let tm = standard_tm(&topo, 0);
    let mut g = c.benchmark_group("ablation_minmax_seeding");
    g.sample_size(10);
    g.bench_function("grow_from_k1", |b| {
        b.iter(|| {
            let cache = PathCache::new(topo.graph());
            GrowRequest::new(&cache, &tm).minmax(None).solve().expect("minmax").omax
        })
    });
    g.bench_function("seed_k10", |b| {
        b.iter(|| {
            let cache = PathCache::new(topo.graph());
            GrowRequest::new(&cache, &tm).minmax(Some(10)).solve().expect("minmax").omax
        })
    });
    g.finish();
}

criterion_group!(benches, bench_growth_step, bench_refine_rounds, bench_minmax_seeding);
criterion_main!(benches);
