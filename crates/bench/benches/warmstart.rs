//! Warm-start benchmarks: the §5 deployment cycle re-solves nearly
//! identical LPs minute after minute; these measure how much restarting
//! from the previous minute's basis buys over solving cold, first at the
//! raw simplex level, then through the full LDR solve path
//! (the latency-optimal `GrowRequest` with the static-headroom dial).
//!
//! The `warm` variants are the tentpole's acceptance metric: they must
//! beat their `cold` twins on successive timeline minutes (target ≥2x for
//! the LDR chain).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_bench::{gts, standard_tm};
use lowlat_core::pathgrow::{GrowRequest, GrowthConfig, SolveContext};
use lowlat_core::pathset::PathCache;
use lowlat_core::schemes::predict_volumes;
use lowlat_linprog::{Basis, Problem, Relation};
use lowlat_traffic::{spread_seed, synthesize, AggregateTrace, TraceGenConfig};

const MINUTES: usize = 8;

/// The minute-t transport LP: fixed shape, demand drifting a few percent
/// per minute — the simplex-level shape of the deployment cycle.
fn transport_minute(minute: u64) -> Problem {
    let (ns, nd) = (12usize, 15usize);
    let mut p = Problem::minimize(ns * nd);
    for i in 0..ns {
        for j in 0..nd {
            p.set_objective(i * nd + j, ((i * 7 + j * 3) % 11) as f64 + 1.0);
        }
    }
    let drift = |k: u64| 1.0 + 0.03 * (((minute * 13 + k * 7) % 5) as f64 - 2.0);
    let supplies: Vec<f64> = (0..ns as u64).map(|i| (10.0 + i as f64) * drift(i)).collect();
    let total: f64 = supplies.iter().sum();
    for (i, s) in supplies.iter().enumerate() {
        let coeffs: Vec<(usize, f64)> = (0..nd).map(|j| (i * nd + j, 1.0)).collect();
        p.add_row(Relation::Le, *s, &coeffs);
    }
    for j in 0..nd {
        let coeffs: Vec<(usize, f64)> = (0..ns).map(|i| (i * nd + j, 1.0)).collect();
        p.add_row(Relation::Ge, 0.85 * total / nd as f64, &coeffs);
    }
    p
}

fn bench_simplex_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("warmstart/simplex_chain");
    group.sample_size(20);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for minute in 0..MINUTES as u64 {
                let p = transport_minute(black_box(minute));
                acc += p.solve().expect("feasible").objective();
            }
            acc
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut basis = Basis::new();
            let mut acc = 0.0;
            for minute in 0..MINUTES as u64 {
                let p = transport_minute(black_box(minute));
                acc += p.solve_warm(&mut basis).expect("feasible").objective();
            }
            acc
        })
    });
    group.finish();
}

/// Per-minute demand vectors for the LDR chain: Algorithm-1 predictions
/// over an evolving cv-0.3 trace — the deployment cycle's real workload.
fn minute_volumes(tm: &lowlat_tmgen::TrafficMatrix) -> Vec<Vec<f64>> {
    let total = 3 + MINUTES;
    let traces: Vec<AggregateTrace> = tm
        .aggregates()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            synthesize(&TraceGenConfig {
                mean_mbps: a.volume_mbps,
                cv: 0.3,
                minutes: total,
                seed: spread_seed(99, i as u64),
                ..Default::default()
            })
        })
        .collect();
    (3..total)
        .map(|t| {
            let history: Vec<AggregateTrace> = traces.iter().map(|tr| tr.truncated(t)).collect();
            predict_volumes(&history)
        })
        .collect()
}

fn bench_ldr_minutes(c: &mut Criterion) {
    let topo = gts();
    let tm = standard_tm(&topo, 0);
    let cache = PathCache::new(topo.graph());
    let volumes = minute_volumes(&tm);
    // LDR's trace-free solve path: latency-optimal under the 10% static
    // headroom dial.
    let cfg = GrowthConfig { headroom: 0.1, ..Default::default() };
    let mut group = c.benchmark_group("warmstart/ldr_minutes");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut pivots = 0usize;
            for vols in &volumes {
                // A fresh context per minute: every LP solves cold.
                let mut ctx = SolveContext::new();
                pivots += GrowRequest::new(&cache, &tm)
                    .volumes(black_box(vols))
                    .config(&cfg)
                    .solve_with(&mut ctx)
                    .expect("solvable")
                    .lp_pivots;
            }
            pivots
        })
    });
    group.bench_function("warm", |b| {
        // One context for the whole controller lifetime: minute t restarts
        // from minute t-1. Seeded outside the measurement so the bench
        // reports the steady-state per-minute cost the §5 cycle pays.
        let mut ctx = SolveContext::new();
        for vols in &volumes {
            GrowRequest::new(&cache, &tm)
                .volumes(vols)
                .config(&cfg)
                .solve_with(&mut ctx)
                .expect("solvable");
        }
        b.iter(|| {
            let mut pivots = 0usize;
            for vols in &volumes {
                pivots += GrowRequest::new(&cache, &tm)
                    .volumes(black_box(vols))
                    .config(&cfg)
                    .solve_with(&mut ctx)
                    .expect("solvable")
                    .lp_pivots;
            }
            pivots
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simplex_chain, bench_ldr_minutes);
criterion_main!(benches);
