//! Flat vs partitioned path queries at Internet scale — the claim behind
//! the hierarchical engine: above ~1k nodes, whole-graph Yen per pair
//! stops being viable, while landmark stitching stays flat per query.
//!
//! * `build` — one-time engine construction (hierarchy + per-leaf caches +
//!   landmark trees) at 1k and 10k nodes.
//! * `query/*` — a fixed seeded batch of pairs, k=3 each: `flat_yen` runs a
//!   fresh whole-graph Yen generator per pair (the stateless cost a flat
//!   [`PathCache`](lowlat_core::pathset::PathCache) pays on first touch);
//!   `partitioned` asks a pre-built engine, where almost every random pair
//!   at these sizes is cross-leaf and therefore materializes no per-pair
//!   state at all.
//!
//! BENCH_6.json records the measured medians per host.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_core::{EngineConfig, PartitionedPathEngine};
use lowlat_netgraph::{Graph, KspGenerator, NodeId};
use lowlat_topology::synth::{generate, SynthConfig, SynthModel};

const K: usize = 3;
const PAIRS: usize = 8;

fn ba(nodes: usize) -> lowlat_topology::ingest::IngestedGraph {
    generate(SynthModel::BarabasiAlbert, &SynthConfig { nodes, seed: 42, ..Default::default() })
}

/// A deterministic pair batch spread over the node space (no two equal).
fn pair_batch(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let n = g.node_count() as u32;
    (0..PAIRS as u32)
        .map(|i| {
            let s = (i * 997) % n;
            let mut d = (i * 313 + n / 2) % n;
            if d == s {
                d = (d + 1) % n;
            }
            (NodeId(s), NodeId(d))
        })
        .collect()
}

fn flat_yen_batch(g: &Graph, pairs: &[(NodeId, NodeId)]) -> usize {
    let mut total = 0;
    for &(s, d) in pairs {
        let mut gen = KspGenerator::new(g, s, d);
        for _ in 0..K {
            if gen.next_path().is_none() {
                break;
            }
            total += 1;
        }
    }
    total
}

fn bench_hierarchy(c: &mut Criterion) {
    for nodes in [1_000usize, 10_000] {
        let ingested = ba(nodes);
        let g = ingested.graph();
        let cfg = EngineConfig::default();
        let tag = format!("ba{}k", nodes / 1_000);

        let mut build = c.benchmark_group("hierarchy/build");
        build.sample_size(10);
        build.bench_function(&tag, |b| {
            b.iter(|| PartitionedPathEngine::build(black_box(g), &cfg).landmark_count())
        });
        build.finish();

        let engine = PartitionedPathEngine::build(g, &cfg);
        let pairs = pair_batch(g);
        let mut query = c.benchmark_group(format!("hierarchy/query/{tag}"));
        query.sample_size(10);
        query.bench_function("flat_yen", |b| b.iter(|| flat_yen_batch(g, black_box(&pairs))));
        query.bench_function("partitioned", |b| {
            b.iter(|| {
                let mut total = 0;
                for &(s, d) in black_box(&pairs) {
                    total += engine.paths(s, d, K).len();
                }
                total
            })
        });
        query.finish();
    }
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
