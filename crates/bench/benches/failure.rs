//! Failure-subsystem benchmarks: the two claims the recovery path makes.
//!
//! * **repair vs rebuild** — after a cable failure, repairing the shared
//!   [`PathCache`] (regrow only the crossing pairs; steady-state
//!   re-application of the mask) must beat constructing a fresh cache and
//!   re-materializing the same path sets under the mask, because a single
//!   failure leaves most pairs' Yen state untouched.
//! * **warm vs cold re-place** — the post-failure LDR solve restarted from
//!   the pre-failure LP bases (the [`SolveContext`] carried across the
//!   event) vs the same solve from scratch.
//! * **brown-out re-place** — the same warm/cold comparison under a
//!   degradation-only mask (every cable dimmed, nothing down): no paths
//!   change, only the LP's effective capacities, so this isolates the
//!   capacity-row update cost the brown-out reaction pays each minute.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_bench::{abilene, gts, standard_tm};
use lowlat_core::failure::{partition_routable, single_link_failures};
use lowlat_core::pathset::PathCache;
use lowlat_core::schemes::{registry, SolveContext};
use lowlat_netgraph::{FailureMask, NodeId};

fn bench_repair_vs_rebuild(c: &mut Criterion) {
    let topo = gts();
    let graph = topo.graph();
    let tm = standard_tm(&topo, 0);
    let cache = PathCache::new(graph);
    // Warm the cache the way an experiment run would: one LDR placement.
    let scheme = registry::build("LDR").expect("registry spec");
    scheme.place(&cache, &tm).expect("baseline placement");
    // A mid-corpus cable failure (deterministic pick).
    let scenarios = single_link_failures(&topo);
    let mask = scenarios[scenarios.len() / 2].mask(&topo);
    // The materialized workload a rebuild has to reproduce.
    let mut workload: Vec<(NodeId, NodeId, usize)> = Vec::new();
    for s in 0..topo.pop_count() as u32 {
        for d in 0..topo.pop_count() as u32 {
            if s != d {
                let k = cache.cached_count(NodeId(s), NodeId(d));
                if k > 0 {
                    workload.push((NodeId(s), NodeId(d), k));
                }
            }
        }
    }
    assert!(!workload.is_empty());

    // Prime the failed state once: steady-state iterations then measure
    // the per-event repair cost (re-masking the crossing pairs only).
    cache.apply_failure(&mask);
    let mut group = c.benchmark_group("failure/gts-cache");
    group.sample_size(10);
    group.bench_function("repair", |b| {
        b.iter(|| cache.apply_failure(black_box(&mask)).repaired_pairs)
    });
    group.bench_function("rebuild", |b| {
        b.iter(|| {
            let fresh = PathCache::new(graph);
            fresh.apply_failure(black_box(&mask));
            for &(s, d, k) in &workload {
                black_box(fresh.paths(s, d, k).len());
            }
            fresh.cached_pairs()
        })
    });
    group.finish();
    cache.clear_failure();
}

fn bench_warm_vs_cold_replace(c: &mut Criterion) {
    let topo = abilene();
    let tm = standard_tm(&topo, 0);
    let cache = PathCache::new(topo.graph());
    let scheme = registry::build("LDR").expect("registry spec");
    let mut ctx = SolveContext::new();
    scheme.place_with_context(&cache, &tm, &mut ctx).expect("baseline placement");
    let scenarios = single_link_failures(&topo);
    let mask = scenarios[0].mask(&topo);
    cache.apply_failure(&mask);
    let part = partition_routable(topo.graph(), &tm, &mask);
    // Prime the warm context with one post-failure solve so the bench
    // measures steady-state recovery minutes.
    scheme.place_with_context(&cache, &part.tm, &mut ctx).expect("recovery placement");

    let mut group = c.benchmark_group("failure/abilene-replace");
    group.sample_size(10);
    group.bench_function("warm", |b| {
        b.iter(|| scheme.place_with_context(&cache, black_box(&part.tm), &mut ctx).unwrap())
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut cold = SolveContext::new();
            scheme.place_with_context(&cache, black_box(&part.tm), &mut cold).unwrap()
        })
    });
    group.finish();
    cache.clear_failure();
}

fn bench_brownout_replace(c: &mut Criterion) {
    // The brown-out reaction on the GTS-like mesh: every cable degraded to
    // half capacity (a degradation-only mask — repair is free, the path
    // sets are untouched) and the demand re-placed against the effective
    // capacities. Warm restarts from the pre-brown-out LP bases.
    let topo = gts();
    let graph = topo.graph();
    let tm = standard_tm(&topo, 0).scaled(0.5);
    let cache = PathCache::new(graph);
    let scheme = registry::build("LDR").expect("registry spec");
    let mut ctx = SolveContext::new();
    scheme.place_with_context(&cache, &tm, &mut ctx).expect("baseline placement");
    let mut mask = FailureMask::new();
    for cable in topo.cables() {
        mask.degrade_cable(graph, cable, 0.5);
    }
    let stats = cache.apply_failure(&mask);
    assert_eq!(stats.repaired_pairs, 0, "degradation-only repair regrows nothing");
    // Prime the warm context with one post-brown-out solve.
    scheme.place_with_context(&cache, &tm, &mut ctx).expect("brown-out placement");

    let mut group = c.benchmark_group("failure/gts-brownout-replace");
    group.sample_size(10);
    group.bench_function("warm", |b| {
        b.iter(|| scheme.place_with_context(&cache, black_box(&tm), &mut ctx).unwrap())
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut cold = SolveContext::new();
            scheme.place_with_context(&cache, black_box(&tm), &mut cold).unwrap()
        })
    });
    group.finish();
    cache.clear_failure();
}

criterion_group!(
    benches,
    bench_repair_vs_rebuild,
    bench_warm_vs_cold_replace,
    bench_brownout_replace
);
criterion_main!(benches);
