//! The literal Figure-15 measurement: LDR with a warm path cache vs a cold
//! cache vs the link-based MCF formulation, on a hard (high-LLPD) network.
//! The paper reports the link-based route about two orders of magnitude
//! slower; Criterion's report shows our gap.

use criterion::{criterion_group, criterion_main, Criterion};

use lowlat_bench::{gts, standard_tm};
use lowlat_core::pathset::PathCache;
use lowlat_core::schemes::ldr::Ldr;
use lowlat_core::schemes::linkbased::LinkBasedOptimal;
use lowlat_core::schemes::RoutingScheme;

fn bench_fig15(c: &mut Criterion) {
    let topo = gts();
    let tm = standard_tm(&topo, 0);
    let mut g = c.benchmark_group("fig15_runtime");
    g.sample_size(10);

    // Warm: one persistent cache across iterations — the deployment mode.
    let warm_cache = PathCache::new(topo.graph());
    let _ = Ldr::default().place(&warm_cache, &tm); // prime
    g.bench_function("ldr_warm_cache", |b| {
        b.iter(|| Ldr::default().place(&warm_cache, &tm).expect("ldr"))
    });

    // Cold: a fresh cache every iteration — the first-run cost.
    g.bench_function("ldr_cold_cache", |b| {
        b.iter(|| {
            let cache = PathCache::new(topo.graph());
            Ldr::default().place(&cache, &tm).expect("ldr")
        })
    });

    g.bench_function("link_based_mcf", |b| {
        b.iter(|| LinkBasedOptimal::default().place_on(&topo, &tm).expect("link-based"))
    });
    g.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
