//! Benchmarks behind Figures 1/3/19 — the APA/LLPD computation and
//! shortest-path placement+evaluation over a network.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_bench::{abilene, gts, standard_tm};
use lowlat_core::eval::PlacementEval;
use lowlat_core::llpd::{LlpdAnalysis, LlpdConfig};
use lowlat_core::schemes::sp::ShortestPathRouting;
use lowlat_core::schemes::RoutingScheme;

fn bench_llpd(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_llpd");
    g.sample_size(10);
    let cfg = LlpdConfig::default();
    let small = abilene();
    g.bench_function("abilene", |b| {
        b.iter(|| LlpdAnalysis::compute(black_box(&small), &cfg).llpd())
    });
    let grid = gts();
    g.bench_function("gts-like", |b| {
        b.iter(|| LlpdAnalysis::compute(black_box(&grid), &cfg).llpd())
    });
    g.finish();
}

fn bench_sp_grid_point(c: &mut Criterion) {
    // One Figure-3 datapoint: SP placement + congestion evaluation.
    let topo = gts();
    let tm = standard_tm(&topo, 0);
    c.bench_function("fig03_sp_place_and_eval/gts", |b| {
        b.iter(|| {
            let placement = ShortestPathRouting.place_on(&topo, &tm).expect("sp");
            PlacementEval::evaluate(&topo, &tm, &placement).congested_pair_fraction()
        })
    });
}

criterion_group!(benches, bench_llpd, bench_sp_grid_point);
criterion_main!(benches);
