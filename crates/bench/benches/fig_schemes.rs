//! Benchmarks behind Figures 4, 7, 8, 16, 17, 18 — one placement per
//! scheme on the GTS-like grid at the standard operating point, plus the
//! headroom sweep of Figure 8.

use criterion::{criterion_group, criterion_main, Criterion};

use lowlat_bench::{gts, light_tm, standard_tm};
use lowlat_core::schemes::b4::B4Routing;
use lowlat_core::schemes::latopt::LatencyOptimal;
use lowlat_core::schemes::ldr::Ldr;
use lowlat_core::schemes::minmax::MinMaxRouting;
use lowlat_core::schemes::RoutingScheme;

fn bench_schemes(c: &mut Criterion) {
    let topo = gts();
    let tm = standard_tm(&topo, 0);
    let mut g = c.benchmark_group("fig04_schemes_on_gts");
    g.sample_size(10);
    g.bench_function("B4", |b| b.iter(|| B4Routing::default().place_on(&topo, &tm).expect("b4")));
    g.bench_function("MinMax", |b| {
        b.iter(|| MinMaxRouting::unrestricted().place_on(&topo, &tm).expect("minmax"))
    });
    g.bench_function("MinMaxK10", |b| {
        b.iter(|| MinMaxRouting::with_k(10).place_on(&topo, &tm).expect("minmaxk"))
    });
    g.bench_function("LatOpt", |b| {
        b.iter(|| LatencyOptimal::default().place_on(&topo, &tm).expect("latopt"))
    });
    g.bench_function("LDR", |b| b.iter(|| Ldr::default().place_on(&topo, &tm).expect("ldr")));
    g.finish();
}

fn bench_headroom_dial(c: &mut Criterion) {
    let topo = gts();
    let tm = light_tm(&topo, 0);
    let mut g = c.benchmark_group("fig08_headroom_on_gts");
    g.sample_size(10);
    for h in [0.0, 0.11, 0.23, 0.40] {
        g.bench_function(format!("h{:02}", (h * 100.0) as u32), |b| {
            b.iter(|| LatencyOptimal::with_headroom(h).place_on(&topo, &tm).expect("latopt"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes, bench_headroom_dial);
criterion_main!(benches);
