//! Flat-cache vs column-generated LP placement — the pricing-oracle claim
//! behind the [`PathSource`] API: the Figure-12/13 growth loop costs the
//! same whether it prices against the materialized flat corpus or against
//! the hierarchical engine that grows columns on demand.
//!
//! * `pricing/place/1k` — a full LatOpt solve over a seeded pair batch on a
//!   1k-node Barabási–Albert graph, demand scaled so shortest-path routing
//!   would overload its worst link 3x (the loop must price columns in).
//!   `flat` builds a fresh [`PathCache`] per iteration; `partitioned`
//!   builds a fresh [`PartitionedPathEngine`] per iteration, so each run
//!   pays its backend's true cold-start pricing cost.
//! * `pricing/place/10k` — the same solve at Internet scale, where the
//!   flat corpus would be ~10^8 pairs. Placements here are whole seconds
//!   (the LP rows scale with the 30k links), so the group runs a minimal
//!   sample count and a smaller pair batch.
//!
//! BENCH_7.json records the measured medians per host.
//!
//! [`PathSource`]: lowlat_core::PathSource
//! [`PathCache`]: lowlat_core::pathset::PathCache
//! [`PartitionedPathEngine`]: lowlat_core::PartitionedPathEngine

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_core::pathgrow::GrowRequest;
use lowlat_core::pathset::PathCache;
use lowlat_core::schemes::registry;
use lowlat_core::{EngineConfig, PartitionedPathEngine};
use lowlat_netgraph::{Graph, NodeId};
use lowlat_tmgen::{Aggregate, TrafficMatrix};
use lowlat_topology::synth::{generate, SynthConfig, SynthModel};

const OVERLOAD: f64 = 3.0;

fn ba(nodes: usize) -> lowlat_topology::ingest::IngestedGraph {
    generate(SynthModel::BarabasiAlbert, &SynthConfig { nodes, seed: 42, ..Default::default() })
}

/// The seeded aggregate batch every scale bench shares, scaled so pure
/// shortest-path routing would hit `OVERLOAD`x on its worst link.
fn overloaded_tm(g: &Graph, pairs: usize) -> TrafficMatrix {
    let n = g.node_count() as u32;
    let aggs: Vec<Aggregate> = (0..pairs as u32)
        .map(|i| {
            let s = (i * 997) % n;
            let mut d = (i * 313 + n / 2) % n;
            if d == s {
                d = (d + 1) % n;
            }
            Aggregate {
                src: NodeId(s),
                dst: NodeId(d),
                volume_mbps: 100.0 + (i % 7) as f64 * 30.0,
                flow_count: 10,
            }
        })
        .collect();
    let tm = TrafficMatrix::new(aggs);

    let cache = PathCache::new(g);
    let sp = registry::build("SP").expect("SP in registry");
    let baseline = sp.place(&cache, &tm).expect("SP placement");
    let loads = baseline.link_loads(g, &tm);
    let u = g.link_ids().map(|l| loads[l.idx()] / g.link(l).capacity_mbps).fold(0.0, f64::max);
    assert!(u > 0.0, "matrix places no load");
    tm.scaled(OVERLOAD / u)
}

fn bench_pricing(c: &mut Criterion) {
    // (tag, nodes, pairs, samples): placements are whole seconds each, so
    // both groups run far fewer samples than the harness default.
    for (tag, nodes, pairs, samples) in
        [("1k", 1_000usize, 16usize, 5usize), ("10k", 10_000, 12, 3)]
    {
        let ingested = ba(nodes);
        let g = ingested.graph();
        let tm = overloaded_tm(g, pairs);
        let cfg = EngineConfig::default();

        let mut group = c.benchmark_group(format!("pricing/place/{tag}"));
        group.sample_size(samples);
        group.bench_function("flat", |b| {
            b.iter(|| {
                let cache = PathCache::new(g);
                let out = GrowRequest::new(&cache, black_box(&tm)).solve().expect("LatOpt");
                out.omax
            })
        });
        group.bench_function("partitioned", |b| {
            b.iter(|| {
                let engine = PartitionedPathEngine::build(g, &cfg);
                let out = GrowRequest::new(&engine, black_box(&tm)).solve().expect("LatOpt");
                assert!(engine.cached_pairs() <= tm.aggregates().len());
                out.omax
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_pricing);
criterion_main!(benches);
