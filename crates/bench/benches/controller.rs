//! Bounded-churn controller benchmarks: the service axes of the §5 loop.
//!
//! Two cells per controller. The diurnal cell is the long-horizon steady
//! state — a 20-minute run with the minute means swinging ±30% — where the
//! bounded controller's whole point is skipping re-installs the traffic
//! doesn't pay for. The storm cell is the worst minute of an operator's
//! week: a two-cable failure burst landing exactly on the diurnal peak, so
//! repair, re-partition and re-placement all happen inside one decision
//! minute. Medians here are end-to-end run wall-clock; regressions mean
//! the per-minute decision work (repair + partition + place + merge) got
//! slower, which is the §5 viability claim itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_bench::{abilene, standard_tm};
use lowlat_netgraph::FailureMask;
use lowlat_sim::timeline::{
    simulate, simulate_with_events, Controller, TimelineConfig, TimelineEvent,
};

fn controllers() -> Vec<Controller> {
    ["LDR", "bounded:LDR"]
        .into_iter()
        .map(|s| Controller::parse(s).expect("registry specs"))
        .collect()
}

fn bench_diurnal(c: &mut Criterion) {
    let topo = abilene();
    let tm = standard_tm(&topo, 0);
    let cfg = TimelineConfig {
        minutes: 20,
        warmup_minutes: 3,
        cv: 0.3,
        seed: 7,
        diurnal_amplitude: 0.3,
        diurnal_period: 20,
    };
    let mut group = c.benchmark_group("controller/abilene-20min-diurnal");
    group.sample_size(10);
    for controller in controllers() {
        let name = controller.name();
        group.bench_function(name, |b| {
            b.iter(|| simulate(black_box(&topo), &tm, &controller, &cfg).worst_queue_ms())
        });
    }
    group.finish();
}

fn bench_event_storm(c: &mut Criterion) {
    let topo = abilene();
    let tm = standard_tm(&topo, 0);
    let graph = topo.graph();
    // Diurnal peak of a 12-minute cycle lands at absolute minute 3 =
    // decision minute 1 — the same minute the two-cable burst hits.
    let cfg = TimelineConfig {
        minutes: 10,
        warmup_minutes: 2,
        cv: 0.3,
        seed: 11,
        diurnal_amplitude: 0.3,
        diurnal_period: 12,
    };
    let mut burst = FailureMask::new();
    for &cable in topo.cables().iter().take(2) {
        burst.fail_cable(graph, cable);
    }
    let events = vec![
        TimelineEvent { at_minute: 1, mask: burst },
        TimelineEvent { at_minute: 6, mask: FailureMask::new() },
    ];
    let mut group = c.benchmark_group("controller/abilene-10min-storm");
    group.sample_size(10);
    for controller in controllers() {
        let name = controller.name();
        group.bench_function(name, |b| {
            b.iter(|| {
                simulate_with_events(black_box(&topo), &tm, &controller, &cfg, &events)
                    .worst_queue_ms()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diurnal, bench_event_storm);
criterion_main!(benches);
