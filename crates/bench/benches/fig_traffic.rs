//! Benchmarks behind Figures 9, 10 and the Figure-14 loop: trace synthesis,
//! Algorithm-1 prediction, and the statistical-multiplexing checks
//! (including the FFT convolution path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_traffic::multiplex::{MultiplexCheck, MultiplexConfig};
use lowlat_traffic::predictor::prediction_ratios;
use lowlat_traffic::trace::{synthesize, TraceGenConfig};

fn bench_trace_synthesis(c: &mut Criterion) {
    c.bench_function("fig09_trace_synthesis/1h", |b| {
        b.iter(|| synthesize(&TraceGenConfig { seed: 9, ..Default::default() }))
    });
}

fn bench_prediction(c: &mut Criterion) {
    let trace = synthesize(&TraceGenConfig::default());
    let means = trace.minute_means();
    c.bench_function("fig09_algorithm1/60min", |b| b.iter(|| prediction_ratios(black_box(&means))));
}

fn bench_multiplex_check(c: &mut Criterion) {
    // Ten bursty aggregates on one link, forcing both test B and test C.
    let traces: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            synthesize(&TraceGenConfig {
                mean_mbps: 900.0,
                cv: 0.5,
                minutes: 1,
                seed: 100 + i,
                ..Default::default()
            })
            .samples(0)
            .to_vec()
        })
        .collect();
    let refs: Vec<&[f64]> = traces.iter().map(|t| t.as_slice()).collect();
    let check = MultiplexCheck::new(MultiplexConfig::default());
    c.bench_function("fig14_multiplex_check/10agg", |b| {
        b.iter(|| check.check_link(black_box(9_000.0), &refs))
    });
}

criterion_group!(benches, bench_trace_synthesis, bench_prediction, bench_multiplex_check);
criterion_main!(benches);
