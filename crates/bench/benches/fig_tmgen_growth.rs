//! Benchmarks behind the workload generator (Figures 3-18 all consume it)
//! and the Figure-20 growth step.

use criterion::{criterion_group, criterion_main, Criterion};

use lowlat_bench::abilene;
use lowlat_core::growth::{grow_by_llpd, GrowthPlanConfig};
use lowlat_core::scale::min_cut_load;
use lowlat_tmgen::{GravityTmGen, TmGenConfig};

fn bench_tmgen(c: &mut Criterion) {
    let topo = abilene();
    let mut g = c.benchmark_group("tmgen");
    g.bench_function("gravity_locality0", |b| {
        let gen = GravityTmGen::new(TmGenConfig { locality: 0.0, ..Default::default() });
        b.iter(|| gen.generate(&topo, 0))
    });
    g.bench_function("gravity_locality1_lp", |b| {
        let gen = GravityTmGen::new(TmGenConfig::default());
        b.iter(|| gen.generate(&topo, 0))
    });
    g.sample_size(10);
    g.bench_function("scale_to_load", |b| {
        let gen = GravityTmGen::new(TmGenConfig::default());
        let tm = gen.generate(&topo, 0);
        b.iter(|| min_cut_load(&topo, &tm).expect("minmax"))
    });
    g.finish();
}

fn bench_growth(c: &mut Criterion) {
    let topo = abilene();
    let mut g = c.benchmark_group("fig20_growth");
    g.sample_size(10);
    g.bench_function("one_llpd_guided_cable", |b| {
        b.iter(|| {
            grow_by_llpd(
                &topo,
                &GrowthPlanConfig {
                    link_increase: 0.01, // exactly one cable
                    candidate_limit: 8,
                    ..Default::default()
                },
            )
            .added
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tmgen, bench_growth);
criterion_main!(benches);
