//! Micro-benchmarks of the substrates every experiment leans on:
//! Dijkstra, Yen k-shortest paths, Dinic max-flow, the simplex LP solver,
//! and the FFT convolution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowlat_bench::gts;
use lowlat_linprog::{Problem, Relation};
use lowlat_netgraph::{max_flow, shortest_path_tree, KspGenerator, NodeId};
use lowlat_traffic::fft::convolve;

fn bench_dijkstra(c: &mut Criterion) {
    let topo = gts();
    let g = topo.graph();
    c.bench_function("dijkstra/gts/sssp", |b| {
        b.iter(|| shortest_path_tree(g, black_box(NodeId(0)), None, None))
    });
}

fn bench_yen(c: &mut Criterion) {
    let topo = gts();
    let g = topo.graph();
    let far = NodeId((topo.pop_count() - 1) as u32);
    c.bench_function("yen/gts/k10", |b| {
        b.iter(|| {
            let mut gen = KspGenerator::new(g, black_box(NodeId(0)), far);
            gen.take_up_to(10).len()
        })
    });
}

fn bench_dinic(c: &mut Criterion) {
    let topo = gts();
    let g = topo.graph();
    let far = NodeId((topo.pop_count() - 1) as u32);
    c.bench_function("dinic/gts/maxflow", |b| b.iter(|| max_flow(g, black_box(NodeId(0)), far)));
}

fn bench_simplex(c: &mut Criterion) {
    // 12x15 transportation LP, the solver's bread and butter.
    c.bench_function("simplex/transport-12x15", |b| {
        b.iter(|| {
            let (ns, nd) = (12usize, 15usize);
            let mut p = Problem::minimize(ns * nd);
            for i in 0..ns {
                for j in 0..nd {
                    p.set_objective(i * nd + j, ((i * 7 + j * 3) % 11) as f64 + 1.0);
                }
            }
            for i in 0..ns {
                let coeffs: Vec<(usize, f64)> = (0..nd).map(|j| (i * nd + j, 1.0)).collect();
                p.add_row(Relation::Eq, 10.0 + i as f64, &coeffs);
            }
            let total: f64 = (0..ns).map(|i| 10.0 + i as f64).sum();
            for j in 0..nd {
                let coeffs: Vec<(usize, f64)> = (0..ns).map(|i| (i * nd + j, 1.0)).collect();
                p.add_row(Relation::Eq, total / nd as f64, &coeffs);
            }
            p.solve().expect("feasible").objective()
        })
    });
}

fn bench_fft(c: &mut Criterion) {
    let a: Vec<f64> = (0..1024).map(|i| ((i * 37) % 101) as f64 / 101.0 / 1024.0).collect();
    let bb: Vec<f64> = (0..1024).map(|i| ((i * 53) % 97) as f64 / 97.0 / 1024.0).collect();
    c.bench_function("fft/convolve-1024", |b| b.iter(|| convolve(black_box(&a), black_box(&bb))));
}

criterion_group!(benches, bench_dijkstra, bench_yen, bench_dinic, bench_simplex, bench_fft);
criterion_main!(benches);
