//! Property tests over the whole synthetic corpus and random builders.

use proptest::prelude::*;

use lowlat_topology::zoo::{self, synthetic_zoo};
use lowlat_topology::{GeoPoint, TopologyBuilder};

/// Corpus-wide invariants (not proptest: the corpus is deterministic, but
/// the checks are property-shaped).
#[test]
fn corpus_invariants() {
    for t in synthetic_zoo() {
        // Duplex pairing is an involution with mirrored attributes.
        for l in t.graph().link_ids() {
            let r = t.reverse_link(l);
            assert_eq!(t.reverse_link(r), l, "{}", t.name());
            let (a, b) = (t.graph().link(l), t.graph().link(r));
            assert_eq!(a.src, b.dst);
            assert_eq!(a.dst, b.src);
            assert_eq!(a.delay_ms, b.delay_ms);
            assert_eq!(a.capacity_mbps, b.capacity_mbps);
        }
        // Cables are exactly half the directed links.
        assert_eq!(t.cables().len() * 2, t.link_count(), "{}", t.name());
        // Capacities come from the published tiers.
        for l in t.graph().link_ids() {
            let c = t.graph().link(l).capacity_mbps;
            assert!(zoo::CAPACITY_TIERS.contains(&c), "{}: capacity {c} not in tiers", t.name());
        }
        // Delays consistent with geography: no link faster than light in
        // fibre between its endpoints (floor tolerated).
        for l in t.graph().link_ids() {
            let link = t.graph().link(l);
            let geo = t.location(link.src).delay_ms_to(&t.location(link.dst));
            assert!(
                link.delay_ms >= geo * 0.999 - 1e-9 || link.delay_ms >= 0.05 - 1e-12,
                "{}: superluminal link {geo} vs {}",
                t.name(),
                link.delay_ms
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// graph_with_headroom scales capacity only, never delay or shape.
    #[test]
    fn headroom_graph_scales_capacity(h in 0.0f64..0.95) {
        let t = lowlat_topology::zoo::named::abilene();
        let g = t.graph_with_headroom(h);
        prop_assert_eq!(g.node_count(), t.graph().node_count());
        prop_assert_eq!(g.link_count(), t.graph().link_count());
        for l in g.link_ids() {
            let (a, b) = (g.link(l), t.graph().link(l));
            prop_assert!((a.capacity_mbps - b.capacity_mbps * (1.0 - h)).abs() < 1e-9);
            prop_assert_eq!(a.delay_ms, b.delay_ms);
        }
    }

    /// Random geometric builders always produce valid, connected graphs.
    #[test]
    fn mesh_generator_connected(n in 4usize..30, seed in any::<u64>()) {
        let t = zoo::mesh(n, 700.0, zoo::EUROPE, seed);
        prop_assert_eq!(t.pop_count(), n);
        prop_assert!(t.graph().is_strongly_connected());
    }

    /// Adding a cable preserves all existing attributes.
    #[test]
    fn with_added_cable_preserves(seed in any::<u64>()) {
        let t = zoo::ring(8, 1, zoo::USA, seed);
        // Find an absent pair.
        let pairs = t.unordered_pairs();
        let absent = pairs
            .iter()
            .find(|&&(a, b)| t.graph().find_link(a, b).is_none());
        if let Some(&(a, b)) = absent {
            let grown = t.with_added_cable(a, b, 10_000.0);
            prop_assert_eq!(grown.cables().len(), t.cables().len() + 1);
            prop_assert!(grown.graph().find_link(a, b).is_some());
            // Old cables intact (same delay set).
            let mut old: Vec<f64> =
                t.cables().iter().map(|&l| t.graph().link(l).delay_ms).collect();
            let mut new: Vec<f64> =
                grown.cables().iter().map(|&l| grown.graph().link(l).delay_ms).collect();
            old.sort_by(|x, y| x.partial_cmp(y).unwrap());
            new.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for d in old {
                let pos = new.iter().position(|&x| (x - d).abs() < 1e-9);
                prop_assert!(pos.is_some(), "cable with delay {d} lost");
                new.remove(pos.unwrap());
            }
        }
    }

    /// Builder panics are the only invalid states: every successful build
    /// satisfies diameter > 0 and pop lookups round-trip.
    #[test]
    fn builder_roundtrip(n in 3usize..12, seed in any::<u64>()) {
        let t = zoo::tree(n, 0.5, zoo::EUROPE, seed);
        for p in t.graph().nodes() {
            let name = t.pop_name(p).to_string();
            prop_assert_eq!(t.pop_by_name(&name), Some(p));
        }
        prop_assert!(t.diameter_ms() > 0.0);
    }

    /// Geo distance is a metric (symmetry + triangle inequality on random
    /// triples).
    #[test]
    fn geo_metric_properties(
        lat1 in -80.0f64..80.0, lon1 in -170.0f64..170.0,
        lat2 in -80.0f64..80.0, lon2 in -170.0f64..170.0,
        lat3 in -80.0f64..80.0, lon3 in -170.0f64..170.0,
    ) {
        let (a, b, c) = (
            GeoPoint::new(lat1, lon1),
            GeoPoint::new(lat2, lon2),
            GeoPoint::new(lat3, lon3),
        );
        prop_assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-6);
        prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
        prop_assert!(a.distance_km(&b) >= 0.0);
    }
}

/// The builder rejects nonsense; successful topologies always validate.
#[test]
fn builder_panics_are_contained() {
    let mut b = TopologyBuilder::new("x");
    let p0 = b.add_pop("a", GeoPoint::new(0.0, 0.0));
    let p1 = b.add_pop("b", GeoPoint::new(1.0, 1.0));
    b.connect(p0, p1, 100.0);
    let t = b.build();
    assert_eq!(t.pop_count(), 2);
}
