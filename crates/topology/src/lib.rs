//! # lowlat-topology
//!
//! PoP-level backbone topology model plus a **synthetic substitute for the
//! Internet Topology Zoo** corpus the paper evaluates on.
//!
//! A [`Topology`] is a set of named PoPs with geographic coordinates and a
//! set of duplex links; propagation delays default to great-circle distance
//! at 2/3 the speed of light (200 km/ms), matching how REPETITA augments the
//! Zoo with computed latencies (paper reference \[16\]).
//!
//! ## The zoo substitute
//!
//! The real Topology Zoo files are not redistributable here, so
//! [`zoo::synthetic_zoo`] deterministically generates 116 networks spanning
//! the structural classes the paper identifies — trees (LLPD ≈ 0), wide
//! rings (mid LLPD), grids and meshes (high LLPD, GTS-like), multi-continent
//! networks (Cogent-like), and cliques (overlay networks) — with diameters
//! above 10 ms like the paper's filtered corpus. [`zoo::named`] additionally
//! provides hand-built Abilene, GTS-like, Cogent-like and Google-B4-like
//! networks used by the figure reproductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod geo;
pub mod ingest;
pub mod model;
pub mod synth;
pub mod zoo;

pub use format::{from_text, to_text, ParseError};
pub use geo::{corridor_distance_km, GeoPoint};
pub use ingest::{EdgeListConfig, IngestError, IngestErrorKind, IngestedGraph};
pub use model::{PopId, Topology, TopologyBuilder};
pub use synth::{generate, SynthConfig, SynthModel};
