//! Internet-scale graph ingestion: edge lists and GraphML.
//!
//! The named/zoo corpus tops out at tens of PoPs; real measurement data
//! (CAIDA AS-REL2 is 78k nodes / 723k edges) arrives as flat edge lists
//! with no geography and no guarantee of connectivity. [`IngestedGraph`]
//! is the container for that shape: interned string node names over a
//! duplex [`Graph`], connected or not, built by
//!
//! * [`from_edge_list`] — whitespace- and/or `|`-separated
//!   `A B [capacity_mbps] [delay_ms]` lines, `#` comments, malformed lines
//!   rejected with their 1-based line number;
//! * [`from_graphml`] — a minimal GraphML reader (`<node id=…>`,
//!   `<edge source=… target=…>`, with `<data>` values resolved through
//!   `<key>` declarations for capacity/delay);
//! * [`crate::synth::generate`] — seeded synthetic models
//!   (Barabási–Albert, Watts–Strogatz, grid, random), so CI exercises
//!   this scale without a network fetch.
//!
//! Node interning is deterministic: ids are assigned in first-seen order,
//! so the same file always produces the same [`NodeId`] mapping, and
//! [`to_edge_list`] round-trips through [`from_edge_list`] bit-for-bit at
//! the graph level.

use std::collections::HashMap;
use std::fmt;

use lowlat_netgraph::{Graph, GraphBuilder, LinkId, NodeId};

/// Defaults applied to edge-list lines that omit capacity and/or delay.
#[derive(Clone, Copy, Debug)]
pub struct EdgeListConfig {
    /// Capacity (Mbps) for lines without a third field.
    pub default_capacity_mbps: f64,
    /// Delay (ms) for lines without a fourth field.
    pub default_delay_ms: f64,
}

impl Default for EdgeListConfig {
    fn default() -> Self {
        EdgeListConfig { default_capacity_mbps: 1_000.0, default_delay_ms: 1.0 }
    }
}

/// A parsed (or generated) graph with interned node names.
///
/// Unlike [`crate::Topology`], an ingested graph has no geography and is
/// **not required to be connected** — real AS-level edge lists are not,
/// and the experiment shape (Snippet 1) measures that as success rate
/// rather than treating it as fatal. Every undirected input edge appears
/// as two directed links with identical attributes.
#[derive(Clone, Debug)]
pub struct IngestedGraph {
    name: String,
    node_names: Vec<String>,
    graph: Graph,
    cable_count: usize,
}

impl IngestedGraph {
    /// Builds an ingested graph from interned names and undirected edges
    /// `(a, b, capacity_mbps, delay_ms)` (each added duplex).
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or invalid attributes (construction
    /// bugs — the parsers validate first and report line numbers).
    pub fn new(
        name: impl Into<String>,
        node_names: Vec<String>,
        edges: &[(u32, u32, f64, f64)],
    ) -> Self {
        let mut b = GraphBuilder::new(node_names.len());
        for &(a, z, cap, delay) in edges {
            b.add_duplex(NodeId(a), NodeId(z), delay, cap);
        }
        IngestedGraph { name: name.into(), node_names, graph: b.build(), cable_count: edges.len() }
    }

    /// The graph's name (file stem or synthetic model label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (including any isolated ones).
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of undirected input edges (half the directed link count).
    pub fn cable_count(&self) -> usize {
        self.cable_count
    }

    /// The underlying directed graph (duplex links).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The interned name of a node.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n.idx()]
    }

    /// Looks a node up by its interned name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(|i| NodeId(i as u32))
    }

    /// The reverse direction of a directed link (every ingested edge is
    /// duplex, so this always exists).
    pub fn reverse_link(&self, l: LinkId) -> LinkId {
        // Duplex pairs are adjacent: forward at even index, reverse at odd.
        LinkId(l.0 ^ 1)
    }
}

/// A parse failure with its 1-based line number (0 for whole-file errors).
#[derive(Clone, Debug, PartialEq)]
pub struct IngestError {
    /// 1-based line the error was found on; 0 for end-of-input errors.
    pub line: usize,
    /// What went wrong.
    pub kind: IngestErrorKind,
}

/// The kinds of ingestion failure.
#[derive(Clone, Debug, PartialEq)]
pub enum IngestErrorKind {
    /// Wrong number of fields on an edge-list line (expects 2–4).
    FieldCount {
        /// Fields actually present on the line.
        got: usize,
    },
    /// A numeric field failed to parse or was out of range.
    BadNumber(String),
    /// Both endpoints of an edge are the same node.
    SelfLoop(String),
    /// The input contained no edges at all.
    NoEdges,
    /// A malformed GraphML element (unterminated tag, missing attribute).
    BadElement(String),
    /// A GraphML edge references an undeclared node.
    UnknownNode(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            IngestErrorKind::FieldCount { got } => {
                write!(f, "expected 'A B [capacity_mbps] [delay_ms]' (2-4 fields), got {got}")
            }
            IngestErrorKind::BadNumber(s) => write!(f, "bad number '{s}'"),
            IngestErrorKind::SelfLoop(n) => write!(f, "self-loop on node '{n}'"),
            IngestErrorKind::NoEdges => write!(f, "input contains no edges"),
            IngestErrorKind::BadElement(what) => write!(f, "malformed element: {what}"),
            IngestErrorKind::UnknownNode(n) => write!(f, "edge references undeclared node '{n}'"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Parses a whitespace- and/or `|`-separated edge list.
///
/// Line grammar (after stripping `#` comments and blank lines):
///
/// ```text
/// A B                    # default capacity + delay
/// A B 10000              # explicit capacity (Mbps)
/// A B 10000 2.5          # explicit capacity + delay (ms)
/// A|B|10000|2.5          # '|' works anywhere whitespace does
/// ```
///
/// Node names are arbitrary non-separator tokens, interned in first-seen
/// order. Duplicate undirected edges (including the reverse orientation a
/// CAIDA-style listing repeats) are ignored after the first occurrence.
/// Malformed lines — wrong field count, non-positive capacity, negative
/// delay, self-loops — are rejected with their line number.
pub fn from_edge_list(
    name: impl Into<String>,
    text: &str,
    config: &EdgeListConfig,
) -> Result<IngestedGraph, IngestError> {
    let mut names: Vec<String> = Vec::new();
    let mut ids: HashMap<String, u32> = HashMap::new();
    let mut edges: Vec<(u32, u32, f64, f64)> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = Default::default();

    let mut intern = |token: &str| -> u32 {
        if let Some(&id) = ids.get(token) {
            return id;
        }
        let id = names.len() as u32;
        names.push(token.to_string());
        ids.insert(token.to_string(), id);
        id
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> =
            line.split(|c: char| c.is_whitespace() || c == '|').filter(|f| !f.is_empty()).collect();
        if !(2..=4).contains(&fields.len()) {
            return Err(IngestError {
                line: line_no,
                kind: IngestErrorKind::FieldCount { got: fields.len() },
            });
        }
        if fields[0] == fields[1] {
            return Err(IngestError {
                line: line_no,
                kind: IngestErrorKind::SelfLoop(fields[0].to_string()),
            });
        }
        let num = |s: &str| -> Result<f64, IngestError> {
            s.parse::<f64>().ok().filter(|v| v.is_finite()).ok_or(IngestError {
                line: line_no,
                kind: IngestErrorKind::BadNumber(s.to_string()),
            })
        };
        let cap = match fields.get(2) {
            Some(s) => {
                let v = num(s)?;
                if v <= 0.0 {
                    return Err(IngestError {
                        line: line_no,
                        kind: IngestErrorKind::BadNumber((*s).to_string()),
                    });
                }
                v
            }
            None => config.default_capacity_mbps,
        };
        let delay = match fields.get(3) {
            Some(s) => {
                let v = num(s)?;
                if v < 0.0 {
                    return Err(IngestError {
                        line: line_no,
                        kind: IngestErrorKind::BadNumber((*s).to_string()),
                    });
                }
                v.max(0.05)
            }
            None => config.default_delay_ms,
        };
        let a = intern(fields[0]);
        let z = intern(fields[1]);
        if seen.insert((a.min(z), a.max(z))) {
            edges.push((a, z, cap, delay));
        }
    }

    if edges.is_empty() {
        return Err(IngestError { line: 0, kind: IngestErrorKind::NoEdges });
    }
    Ok(IngestedGraph::new(name, names, &edges))
}

/// Serializes an ingested graph back to the edge-list format (one
/// `A B capacity delay` line per cable; round-trips through
/// [`from_edge_list`]).
pub fn to_edge_list(g: &IngestedGraph) -> String {
    let mut out = String::with_capacity(g.cable_count() * 24);
    out.push_str(&format!(
        "# {} : {} nodes, {} edges\n",
        g.name(),
        g.node_count(),
        g.cable_count()
    ));
    let graph = g.graph();
    for l in graph.link_ids() {
        // One line per duplex pair: emit the even (forward) direction only.
        if l.idx() % 2 != 0 {
            continue;
        }
        let link = graph.link(l);
        out.push_str(&format!(
            "{} {} {} {:.6}\n",
            g.node_name(link.src),
            g.node_name(link.dst),
            link.capacity_mbps,
            link.delay_ms
        ));
    }
    out
}

/// One scanned `<...>` element: its tag name, attributes, inner text (for
/// `<data>` values) and the line it starts on.
struct XmlElement<'a> {
    tag: &'a str,
    attrs: Vec<(&'a str, &'a str)>,
    text: &'a str,
    line: usize,
}

impl XmlElement<'_> {
    fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
    }
}

/// Scans the opening tags of a (well-formed-enough) XML document. This is
/// not a general XML parser: it handles the GraphML subset — elements,
/// double- or single-quoted attributes, comments — and reports malformed
/// tags with line numbers, which is all the reader needs.
fn scan_elements(text: &str) -> Result<Vec<XmlElement<'_>>, IngestError> {
    let bytes = text.as_bytes();
    let mut line = 1usize;
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        let start_line = line;
        // Comments and declarations: skip to their terminator.
        if text[i..].starts_with("<!--") {
            match text[i..].find("-->") {
                Some(off) => {
                    line += text[i..i + off].matches('\n').count();
                    i += off + 3;
                    continue;
                }
                None => {
                    return Err(IngestError {
                        line: start_line,
                        kind: IngestErrorKind::BadElement("unterminated comment".into()),
                    })
                }
            }
        }
        let Some(close) = text[i..].find('>') else {
            return Err(IngestError {
                line: start_line,
                kind: IngestErrorKind::BadElement("unterminated tag".into()),
            });
        };
        let inner = &text[i + 1..i + close];
        line += inner.matches('\n').count();
        let after_tag = i + close + 1;
        i = after_tag;
        if inner.starts_with('/') || inner.starts_with('?') || inner.starts_with('!') {
            continue; // closing tag or declaration
        }
        let self_closing = inner.ends_with('/');
        let inner = inner.strip_suffix('/').unwrap_or(inner);
        let tag_end = inner.find(|c: char| c.is_whitespace()).unwrap_or(inner.len());
        let tag = &inner[..tag_end];
        if tag.is_empty() {
            return Err(IngestError {
                line: start_line,
                kind: IngestErrorKind::BadElement("empty tag".into()),
            });
        }
        // Attribute scan: name="value" or name='value'.
        let mut attrs = Vec::new();
        let mut rest = inner[tag_end..].trim_start();
        while !rest.is_empty() {
            let Some(eq) = rest.find('=') else {
                return Err(IngestError {
                    line: start_line,
                    kind: IngestErrorKind::BadElement(format!("attribute without '=' in <{tag}>")),
                });
            };
            let key = rest[..eq].trim();
            let after = rest[eq + 1..].trim_start();
            let Some(quote) = after.chars().next().filter(|&q| q == '"' || q == '\'') else {
                return Err(IngestError {
                    line: start_line,
                    kind: IngestErrorKind::BadElement(format!("unquoted attribute in <{tag}>")),
                });
            };
            let Some(end) = after[1..].find(quote) else {
                return Err(IngestError {
                    line: start_line,
                    kind: IngestErrorKind::BadElement(format!("unterminated attribute in <{tag}>")),
                });
            };
            attrs.push((key, &after[1..1 + end]));
            rest = after[1 + end + 1..].trim_start();
        }
        // Inner text up to the next '<' (the `<data key=…>value</data>` case).
        let elem_text = if self_closing {
            ""
        } else {
            let next = text[after_tag..].find('<').map(|o| after_tag + o).unwrap_or(text.len());
            text[after_tag..next].trim()
        };
        out.push(XmlElement { tag, attrs, text: elem_text, line: start_line });
    }
    Ok(out)
}

/// Parses the GraphML subset topologies are distributed in (Topology Zoo,
/// yEd exports): `<node id=…>` declarations, `<edge source=… target=…>`
/// with optional capacity/delay carried either as edge attributes or as
/// `<data key=…>` children resolved through `<key … attr.name=…>`
/// declarations (key names matched case-insensitively against
/// capacity/bandwidth/linkspeed and delay/latency). Errors carry the line
/// number of the offending element.
pub fn from_graphml(
    name: impl Into<String>,
    text: &str,
    config: &EdgeListConfig,
) -> Result<IngestedGraph, IngestError> {
    let elements = scan_elements(text)?;
    // <key id="d3" attr.name="capacity"> declarations: id -> semantic.
    #[derive(Clone, Copy, PartialEq)]
    enum Semantic {
        Capacity,
        Delay,
    }
    let classify = |attr_name: &str| -> Option<Semantic> {
        let n = attr_name.to_ascii_lowercase();
        if n.contains("capacity") || n.contains("bandwidth") || n.contains("linkspeed") {
            Some(Semantic::Capacity)
        } else if n.contains("delay") || n.contains("latency") {
            Some(Semantic::Delay)
        } else {
            None
        }
    };
    let mut key_map: HashMap<String, Semantic> = HashMap::new();
    for e in elements.iter().filter(|e| e.tag == "key") {
        if let (Some(id), Some(attr_name)) = (e.attr("id"), e.attr("attr.name")) {
            if let Some(sem) = classify(attr_name) {
                key_map.insert(id.to_string(), sem);
            }
        }
    }

    let mut names: Vec<String> = Vec::new();
    let mut ids: HashMap<String, u32> = HashMap::new();
    let mut edges: Vec<(u32, u32, f64, f64)> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = Default::default();
    // The edge whose <data> children are currently being collected.
    let mut pending: Option<(u32, u32, f64, f64, usize)> = None;

    let flush = |pending: &mut Option<(u32, u32, f64, f64, usize)>,
                 edges: &mut Vec<(u32, u32, f64, f64)>,
                 seen: &mut std::collections::HashSet<(u32, u32)>| {
        if let Some((a, z, cap, delay, _)) = pending.take() {
            if seen.insert((a.min(z), a.max(z))) {
                edges.push((a, z, cap, delay));
            }
        }
    };

    for e in &elements {
        match e.tag {
            "node" => {
                flush(&mut pending, &mut edges, &mut seen);
                let Some(id) = e.attr("id") else {
                    return Err(IngestError {
                        line: e.line,
                        kind: IngestErrorKind::BadElement("<node> without id".into()),
                    });
                };
                if !ids.contains_key(id) {
                    ids.insert(id.to_string(), names.len() as u32);
                    names.push(id.to_string());
                }
            }
            "edge" => {
                flush(&mut pending, &mut edges, &mut seen);
                let (Some(src), Some(dst)) = (e.attr("source"), e.attr("target")) else {
                    return Err(IngestError {
                        line: e.line,
                        kind: IngestErrorKind::BadElement("<edge> without source/target".into()),
                    });
                };
                let lookup = |n: &str| -> Result<u32, IngestError> {
                    ids.get(n).copied().ok_or(IngestError {
                        line: e.line,
                        kind: IngestErrorKind::UnknownNode(n.to_string()),
                    })
                };
                let (a, z) = (lookup(src)?, lookup(dst)?);
                if a == z {
                    return Err(IngestError {
                        line: e.line,
                        kind: IngestErrorKind::SelfLoop(src.to_string()),
                    });
                }
                let mut cap = config.default_capacity_mbps;
                let mut delay = config.default_delay_ms;
                let num = |s: &str| -> Result<f64, IngestError> {
                    s.parse::<f64>().ok().filter(|v| v.is_finite()).ok_or(IngestError {
                        line: e.line,
                        kind: IngestErrorKind::BadNumber(s.to_string()),
                    })
                };
                if let Some(v) = e.attr("capacity") {
                    cap = num(v)?;
                }
                if let Some(v) = e.attr("delay") {
                    delay = num(v)?;
                }
                pending = Some((a, z, cap, delay, e.line));
            }
            "data" => {
                if let Some((_, _, cap, delay, _)) = pending.as_mut() {
                    let sem =
                        e.attr("key").and_then(|k| key_map.get(k).copied().or_else(|| classify(k)));
                    if let Some(sem) = sem {
                        let v: f64 = e.text.parse().ok().filter(|v: &f64| v.is_finite()).ok_or(
                            IngestError {
                                line: e.line,
                                kind: IngestErrorKind::BadNumber(e.text.to_string()),
                            },
                        )?;
                        match sem {
                            Semantic::Capacity => *cap = v,
                            Semantic::Delay => *delay = v,
                        }
                    }
                }
            }
            _ => {}
        }
    }
    flush(&mut pending, &mut edges, &mut seen);

    // Validate the collected attributes once (so errors above keep their
    // precise element lines, and defaults are never re-checked).
    for &(a, _, cap, delay) in &edges {
        if cap <= 0.0 || delay < 0.0 {
            return Err(IngestError {
                line: 0,
                kind: IngestErrorKind::BadNumber(format!(
                    "capacity {cap} / delay {delay} on edge at node '{}'",
                    names[a as usize]
                )),
            });
        }
    }
    if edges.is_empty() {
        return Err(IngestError { line: 0, kind: IngestErrorKind::NoEdges });
    }
    let edges: Vec<(u32, u32, f64, f64)> =
        edges.into_iter().map(|(a, z, c, d)| (a, z, c, d.max(0.05))).collect();
    Ok(IngestedGraph::new(name, names, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_first_seen_order() {
        let g = from_edge_list("t", "b a\nc a\n", &EdgeListConfig::default()).unwrap();
        assert_eq!(g.node_name(NodeId(0)), "b");
        assert_eq!(g.node_name(NodeId(1)), "a");
        assert_eq!(g.node_name(NodeId(2)), "c");
        assert_eq!(g.node_by_name("c"), Some(NodeId(2)));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.cable_count(), 2);
        assert_eq!(g.graph().link_count(), 4);
    }

    #[test]
    fn pipe_and_whitespace_separators_mix() {
        let g = from_edge_list("t", "a|b|500|2.5\nb c 700\n", &EdgeListConfig::default()).unwrap();
        assert_eq!(g.cable_count(), 2);
        let l = g.graph().find_link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.graph().link(l).capacity_mbps, 500.0);
        assert_eq!(g.graph().link(l).delay_ms, 2.5);
        let l = g.graph().find_link(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(g.graph().link(l).capacity_mbps, 700.0);
        assert_eq!(g.graph().link(l).delay_ms, 1.0, "default delay");
    }

    #[test]
    fn duplicate_and_reverse_edges_deduped() {
        let g = from_edge_list("t", "a b\nb a\na b 99\n", &EdgeListConfig::default()).unwrap();
        assert_eq!(g.cable_count(), 1);
        // First occurrence wins.
        let l = g.graph().find_link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.graph().link(l).capacity_mbps, 1000.0);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# CAIDA-style header\n\na b # trailing\n";
        let g = from_edge_list("t", text, &EdgeListConfig::default()).unwrap();
        assert_eq!(g.cable_count(), 1);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let cases: Vec<(&str, usize)> = vec![
            ("a b\nc\n", 2),         // one field
            ("a b\nc d e f g\n", 2), // five fields
            ("a b\nc d ten\n", 2),   // bad capacity
            ("a b\nc d 5 -1\n", 2),  // negative delay
            ("a b\nc d 0\n", 2),     // zero capacity
            ("a b\nc c\n", 2),       // self-loop
            ("a b\nc d nan\n", 2),   // non-finite
            ("x x\n", 1),            // self-loop on line 1
        ];
        for (text, line) in cases {
            let e = from_edge_list("t", text, &EdgeListConfig::default()).unwrap_err();
            assert_eq!(e.line, line, "wrong line for {text:?}: {e}");
            assert!(format!("{e}").contains(&format!("line {line}")));
        }
    }

    #[test]
    fn empty_input_is_no_edges() {
        let e = from_edge_list("t", "# nothing\n", &EdgeListConfig::default()).unwrap_err();
        assert_eq!(e.kind, IngestErrorKind::NoEdges);
    }

    #[test]
    fn round_trips_through_edge_list() {
        let text = "a b 500 2.5\nb c 700 1\nc a 900 3.25\nd a 100 0.5\n";
        let g = from_edge_list("t", text, &EdgeListConfig::default()).unwrap();
        let again = from_edge_list("t", &to_edge_list(&g), &EdgeListConfig::default()).unwrap();
        assert_eq!(again.node_count(), g.node_count());
        assert_eq!(again.cable_count(), g.cable_count());
        for l in g.graph().link_ids() {
            let (a, b) = (g.graph().link(l), again.graph().link(l));
            assert_eq!(g.node_name(a.src), again.node_name(b.src));
            assert_eq!(g.node_name(a.dst), again.node_name(b.dst));
            assert!((a.delay_ms - b.delay_ms).abs() < 1e-9);
            assert_eq!(a.capacity_mbps, b.capacity_mbps);
        }
    }

    #[test]
    fn reverse_link_pairs_up() {
        let g = from_edge_list("t", "a b\nb c\n", &EdgeListConfig::default()).unwrap();
        for l in g.graph().link_ids() {
            let r = g.reverse_link(l);
            assert_eq!(g.graph().link(l).src, g.graph().link(r).dst);
            assert_eq!(g.reverse_link(r), l);
        }
    }

    #[test]
    fn disconnected_graphs_are_accepted() {
        let g = from_edge_list("t", "a b\nc d\n", &EdgeListConfig::default()).unwrap();
        assert_eq!(g.node_count(), 4);
        assert!(!g.graph().is_strongly_connected());
    }

    const GRAPHML: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="d7" for="edge" attr.name="LinkSpeedRaw" attr.type="double"/>
  <key id="d8" for="edge" attr.name="latency" attr.type="double"/>
  <graph edgedefault="undirected">
    <node id="Vienna"/>
    <node id="Prague"/>
    <node id="Graz"/>
    <edge source="Vienna" target="Prague">
      <data key="d7">2000</data>
      <data key="d8">3.5</data>
    </edge>
    <edge source="Prague" target="Graz"/>
  </graph>
</graphml>
"#;

    #[test]
    fn graphml_basics() {
        let g = from_graphml("t", GRAPHML, &EdgeListConfig::default()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.cable_count(), 2);
        let vp = g
            .graph()
            .find_link(g.node_by_name("Vienna").unwrap(), g.node_by_name("Prague").unwrap())
            .unwrap();
        assert_eq!(g.graph().link(vp).capacity_mbps, 2000.0);
        assert_eq!(g.graph().link(vp).delay_ms, 3.5);
        let pg = g
            .graph()
            .find_link(g.node_by_name("Prague").unwrap(), g.node_by_name("Graz").unwrap())
            .unwrap();
        assert_eq!(g.graph().link(pg).capacity_mbps, 1000.0, "default capacity");
    }

    #[test]
    fn graphml_errors_carry_line_numbers() {
        let missing_id = "<graphml>\n<node/>\n</graphml>\n";
        let e = from_graphml("t", missing_id, &EdgeListConfig::default()).unwrap_err();
        assert_eq!(e.line, 2);
        let unknown =
            "<graphml>\n<node id=\"a\"/>\n<edge source=\"a\" target=\"zz\"/>\n</graphml>\n";
        let e = from_graphml("t", unknown, &EdgeListConfig::default()).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(format!("{e}").contains("zz"));
        let unterminated = "<graphml>\n<node id=\"a\"\n";
        let e = from_graphml("t", unterminated, &EdgeListConfig::default()).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn graphml_edge_attributes_inline() {
        let doc = "<graphml>\n<node id=\"a\"/>\n<node id=\"b\"/>\n\
                   <edge source=\"a\" target=\"b\" capacity=\"123\" delay=\"4.5\"/>\n</graphml>\n";
        let g = from_graphml("t", doc, &EdgeListConfig::default()).unwrap();
        let l = g.graph().find_link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.graph().link(l).capacity_mbps, 123.0);
        assert_eq!(g.graph().link(l).delay_ms, 4.5);
    }
}
