//! The [`Topology`] type: named PoPs + duplex links + the underlying
//! directed graph.

use lowlat_netgraph::{Graph, GraphBuilder, LinkId, NodeId};

use crate::geo::GeoPoint;

/// Index of a PoP; identical to the underlying graph's [`NodeId`].
pub type PopId = NodeId;

/// A PoP-level backbone topology.
///
/// Immutable once built. Every physical cable appears as **two directed
/// links** with identical delay/capacity; [`Topology::reverse_link`] maps
/// between the two directions in O(1), which the APA computation uses to
/// remove a cable in both directions.
#[derive(Clone, Debug)]
pub struct Topology {
    name: String,
    pop_names: Vec<String>,
    locations: Vec<GeoPoint>,
    graph: Graph,
    /// `reverse[l]` = the opposite direction of directed link `l`.
    reverse: Vec<LinkId>,
}

impl Topology {
    /// The network's name (e.g. `"grid-6x5-s3"` or `"Abilene"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of PoPs.
    pub fn pop_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed links (twice the cable count).
    pub fn link_count(&self) -> usize {
        self.graph.link_count()
    }

    /// The underlying directed graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Name of a PoP.
    pub fn pop_name(&self, p: PopId) -> &str {
        &self.pop_names[p.idx()]
    }

    /// Looks a PoP up by name.
    pub fn pop_by_name(&self, name: &str) -> Option<PopId> {
        self.pop_names.iter().position(|n| n == name).map(|i| NodeId(i as u32))
    }

    /// Geographic location of a PoP.
    pub fn location(&self, p: PopId) -> GeoPoint {
        self.locations[p.idx()]
    }

    /// The reverse direction of a directed link.
    pub fn reverse_link(&self, l: LinkId) -> LinkId {
        self.reverse[l.idx()]
    }

    /// All ordered PoP pairs (src != dst) — the aggregates of a full mesh
    /// traffic matrix.
    pub fn ordered_pairs(&self) -> Vec<(PopId, PopId)> {
        let n = self.pop_count() as u32;
        let mut v = Vec::with_capacity((n as usize) * (n as usize - 1));
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    v.push((NodeId(s), NodeId(d)));
                }
            }
        }
        v
    }

    /// All unordered PoP pairs, `s < d`.
    pub fn unordered_pairs(&self) -> Vec<(PopId, PopId)> {
        let n = self.pop_count() as u32;
        let mut v = Vec::with_capacity((n as usize) * (n as usize - 1) / 2);
        for s in 0..n {
            for d in s + 1..n {
                v.push((NodeId(s), NodeId(d)));
            }
        }
        v
    }

    /// Network diameter: maximum over PoP pairs of the shortest-path delay
    /// (ms). The paper filters its corpus to diameters above 10 ms.
    pub fn diameter_ms(&self) -> f64 {
        lowlat_netgraph::all_pairs_delays(&self.graph)
            .iter()
            .flat_map(|row| row.iter().copied())
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// A copy of the graph with every capacity multiplied by
    /// `1.0 - headroom` — the paper's "headroom dial" (§4): reserving
    /// headroom is exactly routing over a capacity-scaled topology.
    ///
    /// # Panics
    /// Panics unless `0.0 <= headroom < 1.0`.
    pub fn graph_with_headroom(&self, headroom: f64) -> Graph {
        assert!((0.0..1.0).contains(&headroom), "headroom {headroom} out of [0,1)");
        let mut b = GraphBuilder::new(self.graph.node_count());
        for l in self.graph.link_ids() {
            let link = self.graph.link(l);
            b.add_link(link.src, link.dst, link.delay_ms, link.capacity_mbps * (1.0 - headroom));
        }
        b.build()
    }

    /// Returns a new topology with one additional duplex link between `a`
    /// and `b` (delay from geography, given capacity). Used by the §8
    /// topology-growth experiment (Figure 20).
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn with_added_cable(&self, a: PopId, b: PopId, capacity_mbps: f64) -> Topology {
        assert!(a != b);
        let mut builder = TopologyBuilder::new(format!("{}+{}-{}", self.name, a.idx(), b.idx()));
        for i in 0..self.pop_count() {
            builder.add_pop(self.pop_names[i].clone(), self.locations[i]);
        }
        let mut seen = std::collections::HashSet::new();
        for l in self.graph.link_ids() {
            let rev = self.reverse_link(l);
            if seen.contains(&rev) {
                continue;
            }
            seen.insert(l);
            let link = self.graph.link(l);
            builder.connect_with_delay(link.src, link.dst, link.delay_ms, link.capacity_mbps);
        }
        builder.connect(a, b, capacity_mbps);
        builder.build()
    }

    /// Cable-level view: one entry per duplex pair, represented by the
    /// direction with the smaller link id.
    pub fn cables(&self) -> Vec<LinkId> {
        self.graph.link_ids().filter(|&l| l.idx() <= self.reverse[l.idx()].idx()).collect()
    }

    /// Sum of capacity over directed links (Mbps).
    pub fn total_capacity_mbps(&self) -> f64 {
        self.graph.link_ids().map(|l| self.graph.link(l).capacity_mbps).sum()
    }
}

/// Builder for [`Topology`].
pub struct TopologyBuilder {
    name: String,
    pop_names: Vec<String>,
    locations: Vec<GeoPoint>,
    /// (a, b, delay_ms, capacity_mbps)
    cables: Vec<(PopId, PopId, f64, f64)>,
}

impl TopologyBuilder {
    /// Starts a topology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            pop_names: Vec::new(),
            locations: Vec::new(),
            cables: Vec::new(),
        }
    }

    /// Adds a PoP and returns its id.
    pub fn add_pop(&mut self, name: impl Into<String>, location: GeoPoint) -> PopId {
        let id = NodeId(self.pop_names.len() as u32);
        self.pop_names.push(name.into());
        self.locations.push(location);
        id
    }

    /// Number of PoPs added so far.
    pub fn pop_count(&self) -> usize {
        self.pop_names.len()
    }

    /// Connects two PoPs with a duplex cable whose delay follows from their
    /// geographic distance.
    pub fn connect(&mut self, a: PopId, b: PopId, capacity_mbps: f64) {
        let delay = self.locations[a.idx()].delay_ms_to(&self.locations[b.idx()]);
        // Terrestrial fibre never follows the great circle exactly; minimum
        // floor keeps co-located PoPs from having zero-delay links.
        self.connect_with_delay(a, b, delay.max(0.05), capacity_mbps);
    }

    /// Connects two PoPs with an explicit delay (for cables that detour, or
    /// for reproducing published latencies).
    pub fn connect_with_delay(&mut self, a: PopId, b: PopId, delay_ms: f64, capacity_mbps: f64) {
        assert!(a != b, "cable endpoints must differ");
        assert!(a.idx() < self.pop_names.len() && b.idx() < self.pop_names.len());
        self.cables.push((a, b, delay_ms, capacity_mbps));
    }

    /// True if a cable between the two PoPs (either orientation) exists.
    pub fn connected(&self, a: PopId, b: PopId) -> bool {
        self.cables.iter().any(|&(x, y, _, _)| (x == a && y == b) || (x == b && y == a))
    }

    /// Location of an already-added PoP.
    pub fn location_of(&self, p: PopId) -> GeoPoint {
        self.locations[p.idx()]
    }

    /// Endpoints of every cable added so far.
    pub fn cable_endpoints(&self) -> Vec<(PopId, PopId)> {
        self.cables.iter().map(|&(a, b, _, _)| (a, b)).collect()
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    /// Panics if the topology is not strongly connected — the paper's
    /// networks always are, and every algorithm here assumes it.
    pub fn build(self) -> Topology {
        let mut gb = GraphBuilder::new(self.pop_names.len());
        let mut reverse = Vec::with_capacity(self.cables.len() * 2);
        for &(a, b, delay, cap) in &self.cables {
            let (f, r) = gb.add_duplex(a, b, delay, cap);
            debug_assert_eq!(f.idx(), reverse.len());
            reverse.push(r);
            reverse.push(f);
        }
        let graph = gb.build();
        assert!(
            graph.is_strongly_connected(),
            "topology '{}' is not connected ({} pops, {} cables)",
            self.name,
            self.pop_names.len(),
            self.cables.len()
        );
        Topology {
            name: self.name,
            pop_names: self.pop_names,
            locations: self.locations,
            graph,
            reverse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Topology {
        let mut b = TopologyBuilder::new("tri");
        let v = b.add_pop("Vienna", GeoPoint::new(48.21, 16.37));
        let bud = b.add_pop("Budapest", GeoPoint::new(47.50, 19.04));
        let pr = b.add_pop("Prague", GeoPoint::new(50.08, 14.44));
        b.connect(v, bud, 10_000.0);
        b.connect(bud, pr, 10_000.0);
        b.connect(pr, v, 10_000.0);
        b.build()
    }

    #[test]
    fn builds_duplex_graph() {
        let t = tri();
        assert_eq!(t.pop_count(), 3);
        assert_eq!(t.link_count(), 6);
        assert_eq!(t.cables().len(), 3);
    }

    #[test]
    fn reverse_mapping_is_involution() {
        let t = tri();
        for l in t.graph().link_ids() {
            let r = t.reverse_link(l);
            assert_eq!(t.reverse_link(r), l);
            assert_eq!(t.graph().link(l).src, t.graph().link(r).dst);
            assert_eq!(t.graph().link(l).delay_ms, t.graph().link(r).delay_ms);
        }
    }

    #[test]
    fn geographic_delays() {
        let t = tri();
        let l = t
            .graph()
            .find_link(t.pop_by_name("Vienna").unwrap(), t.pop_by_name("Budapest").unwrap())
            .unwrap();
        // Vienna-Budapest ~215 km => ~1.08 ms.
        let d = t.graph().link(l).delay_ms;
        assert!((d - 1.08).abs() < 0.1, "got {d}");
    }

    #[test]
    fn headroom_scales_capacity_not_delay() {
        let t = tri();
        let g = t.graph_with_headroom(0.25);
        for l in g.link_ids() {
            assert!((g.link(l).capacity_mbps - 7500.0).abs() < 1e-9);
            assert_eq!(g.link(l).delay_ms, t.graph().link(l).delay_ms);
        }
    }

    #[test]
    fn added_cable_shows_up() {
        let mut b = TopologyBuilder::new("line");
        let x = b.add_pop("X", GeoPoint::new(40.0, -100.0));
        let y = b.add_pop("Y", GeoPoint::new(41.0, -95.0));
        let z = b.add_pop("Z", GeoPoint::new(42.0, -90.0));
        b.connect(x, y, 1000.0);
        b.connect(y, z, 1000.0);
        let t = b.build();
        assert_eq!(t.cables().len(), 2);
        let t2 = t.with_added_cable(x, z, 2500.0);
        assert_eq!(t2.cables().len(), 3);
        assert_eq!(t2.pop_count(), 3);
        // Direct X-Z link now exists.
        assert!(t2.graph().find_link(x, z).is_some());
    }

    #[test]
    fn pairs_enumeration() {
        let t = tri();
        assert_eq!(t.ordered_pairs().len(), 6);
        assert_eq!(t.unordered_pairs().len(), 3);
    }

    #[test]
    fn diameter_positive() {
        let t = tri();
        assert!(t.diameter_ms() > 1.0);
    }

    #[test]
    #[should_panic]
    fn disconnected_rejected() {
        let mut b = TopologyBuilder::new("disc");
        b.add_pop("A", GeoPoint::new(0.0, 0.0));
        b.add_pop("B", GeoPoint::new(1.0, 1.0));
        b.build();
    }
}
