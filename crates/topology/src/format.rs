//! A minimal line-oriented text format for topologies, so users can load
//! their own networks (e.g. converted from Topology Zoo GraphML) without
//! this crate growing a serialization dependency.
//!
//! ```text
//! # lowlat topology v1
//! name Abilene
//! pop Seattle 47.61 -122.33
//! pop Denver 39.74 -104.99
//! cable Seattle Denver 10000          # delay derived from geography
//! cable Seattle Denver 10000 8.25     # explicit delay in ms
//! ```
//!
//! Blank lines and `#` comments are ignored. PoP names may not contain
//! whitespace. Every error carries its line number.

use std::fmt;

use crate::geo::GeoPoint;
use crate::model::{Topology, TopologyBuilder};

/// A parse failure, with its 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line the error was found on (0 for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of parse failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseErrorKind {
    /// Line does not start with a known keyword.
    UnknownDirective(String),
    /// Wrong number of fields for the directive.
    FieldCount {
        /// The directive's expected shape.
        expected: &'static str,
        /// Fields actually present.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A cable references an undeclared PoP.
    UnknownPop(String),
    /// The same PoP name declared twice.
    DuplicatePop(String),
    /// No `name` directive, or no PoPs/cables at all.
    Incomplete(&'static str),
    /// The finished topology is not connected (builder would panic).
    Disconnected,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::UnknownDirective(d) => write!(f, "unknown directive '{d}'"),
            ParseErrorKind::FieldCount { expected, got } => {
                write!(f, "expected {expected} fields, got {got}")
            }
            ParseErrorKind::BadNumber(s) => write!(f, "bad number '{s}'"),
            ParseErrorKind::UnknownPop(p) => write!(f, "unknown pop '{p}'"),
            ParseErrorKind::DuplicatePop(p) => write!(f, "duplicate pop '{p}'"),
            ParseErrorKind::Incomplete(what) => write!(f, "incomplete topology: missing {what}"),
            ParseErrorKind::Disconnected => write!(f, "topology is not connected"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a topology to the text format (round-trips through
/// [`from_text`]).
pub fn to_text(topology: &Topology) -> String {
    let mut out = String::from("# lowlat topology v1\n");
    out.push_str(&format!("name {}\n", topology.name()));
    for p in topology.graph().nodes() {
        let loc = topology.location(p);
        out.push_str(&format!(
            "pop {} {:.6} {:.6}\n",
            topology.pop_name(p),
            loc.lat_deg,
            loc.lon_deg
        ));
    }
    for &cable in &topology.cables() {
        let link = topology.graph().link(cable);
        out.push_str(&format!(
            "cable {} {} {} {:.6}\n",
            topology.pop_name(link.src),
            topology.pop_name(link.dst),
            link.capacity_mbps,
            link.delay_ms
        ));
    }
    out
}

/// Parses the text format.
pub fn from_text(text: &str) -> Result<Topology, ParseError> {
    let mut name: Option<String> = None;
    let mut builder: Option<TopologyBuilder> = None;
    let mut pops: std::collections::HashMap<String, crate::model::PopId> = Default::default();
    let mut cable_count = 0usize;

    let err = |line: usize, kind: ParseErrorKind| ParseError { line, kind };
    let num = |line: usize, s: &str| -> Result<f64, ParseError> {
        s.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .ok_or_else(|| err(line, ParseErrorKind::BadNumber(s.to_string())))
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields[0] {
            "name" => {
                if fields.len() != 2 {
                    return Err(err(
                        line_no,
                        ParseErrorKind::FieldCount { expected: "name <id>", got: fields.len() },
                    ));
                }
                name = Some(fields[1].to_string());
                builder = Some(TopologyBuilder::new(fields[1]));
            }
            "pop" => {
                if fields.len() != 4 {
                    return Err(err(
                        line_no,
                        ParseErrorKind::FieldCount {
                            expected: "pop <id> <lat> <lon>",
                            got: fields.len(),
                        },
                    ));
                }
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, ParseErrorKind::Incomplete("name before pops")))?;
                let (lat, lon) = (num(line_no, fields[2])?, num(line_no, fields[3])?);
                if !(-90.0..=90.0).contains(&lat) || !(-180.0..=360.0).contains(&lon) {
                    return Err(err(line_no, ParseErrorKind::BadNumber(format!("{lat} {lon}"))));
                }
                let id = b.add_pop(fields[1], GeoPoint::new(lat, lon));
                if pops.insert(fields[1].to_string(), id).is_some() {
                    return Err(err(line_no, ParseErrorKind::DuplicatePop(fields[1].into())));
                }
            }
            "cable" => {
                if !(4..=5).contains(&fields.len()) {
                    return Err(err(
                        line_no,
                        ParseErrorKind::FieldCount {
                            expected: "cable <a> <b> <mbps> [delay_ms]",
                            got: fields.len(),
                        },
                    ));
                }
                let b = builder.as_mut().ok_or_else(|| {
                    err(line_no, ParseErrorKind::Incomplete("name before cables"))
                })?;
                let a = *pops
                    .get(fields[1])
                    .ok_or_else(|| err(line_no, ParseErrorKind::UnknownPop(fields[1].into())))?;
                let z = *pops
                    .get(fields[2])
                    .ok_or_else(|| err(line_no, ParseErrorKind::UnknownPop(fields[2].into())))?;
                let cap = num(line_no, fields[3])?;
                if cap <= 0.0 {
                    return Err(err(line_no, ParseErrorKind::BadNumber(fields[3].into())));
                }
                if let Some(d) = fields.get(4) {
                    let delay = num(line_no, d)?;
                    if delay < 0.0 {
                        return Err(err(line_no, ParseErrorKind::BadNumber((*d).into())));
                    }
                    b.connect_with_delay(a, z, delay.max(0.05), cap);
                } else {
                    b.connect(a, z, cap);
                }
                cable_count += 1;
            }
            other => return Err(err(line_no, ParseErrorKind::UnknownDirective(other.into()))),
        }
    }

    let builder = builder.ok_or_else(|| err(0, ParseErrorKind::Incomplete("name")))?;
    let _ = name;
    if pops.is_empty() {
        return Err(err(0, ParseErrorKind::Incomplete("pops")));
    }
    if cable_count == 0 {
        return Err(err(0, ParseErrorKind::Incomplete("cables")));
    }
    // Check connectivity before build() so the caller gets an error, not a
    // panic, on untrusted input.
    {
        let endpoints = builder.cable_endpoints();
        let n = pops.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in endpoints {
            adj[a.idx()].push(b.idx());
            adj[b.idx()].push(a.idx());
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut cnt = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    cnt += 1;
                    stack.push(v);
                }
            }
        }
        if cnt != n {
            return Err(err(0, ParseErrorKind::Disconnected));
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn round_trip_named_networks() {
        for original in [
            zoo::named::abilene(),
            zoo::named::gts_like(),
            zoo::named::cogent_like(),
            zoo::named::google_like(),
        ] {
            let text = to_text(&original);
            let parsed = from_text(&text).expect("round trip");
            assert_eq!(parsed.name(), original.name());
            assert_eq!(parsed.pop_count(), original.pop_count());
            assert_eq!(parsed.link_count(), original.link_count());
            for l in original.graph().link_ids() {
                let (a, b) = (original.graph().link(l), parsed.graph().link(l));
                assert_eq!(a.src, b.src);
                assert_eq!(a.dst, b.dst);
                assert!((a.delay_ms - b.delay_ms).abs() < 1e-5);
                assert_eq!(a.capacity_mbps, b.capacity_mbps);
            }
        }
    }

    #[test]
    fn round_trip_whole_zoo_spot_check() {
        for t in zoo::synthetic_zoo().into_iter().step_by(9) {
            let parsed = from_text(&to_text(&t)).expect("round trip");
            assert_eq!(parsed.pop_count(), t.pop_count());
            assert_eq!(parsed.cables().len(), t.cables().len());
            assert!((parsed.diameter_ms() - t.diameter_ms()).abs() < 1e-4);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nname t\npop A 10 20 # inline\n\npop B 11 21\ncable A B 1000\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.pop_count(), 2);
        assert_eq!(t.cables().len(), 1);
    }

    #[test]
    fn explicit_delay_honored() {
        let text = "name t\npop A 10 20\npop B 11 21\ncable A B 1000 7.5\n";
        let t = from_text(text).unwrap();
        let l = t.cables()[0];
        assert_eq!(t.graph().link(l).delay_ms, 7.5);
    }

    #[test]
    fn error_reporting() {
        let cases: Vec<(&str, usize)> = vec![
            ("name t\nfrob A\n", 2),                                // unknown directive
            ("name t\npop A 10\n", 2),                              // field count
            ("name t\npop A ten 20\n", 2),                          // bad number
            ("name t\npop A 10 20\ncable A B 100\n", 3),            // unknown pop
            ("name t\npop A 10 20\npop A 11 21\n", 3),              // duplicate pop
            ("pop A 10 20\n", 1),                                   // pops before name
            ("name t\npop A 99 20\n", 2),                           // latitude range
            ("name t\npop A 10 20\npop B 11 21\ncable A B 0\n", 4), // zero capacity
        ];
        for (text, line) in cases {
            let e = from_text(text).unwrap_err();
            assert_eq!(e.line, line, "wrong line for {text:?}: {e}");
        }
    }

    #[test]
    fn incomplete_and_disconnected() {
        assert!(matches!(from_text("").unwrap_err().kind, ParseErrorKind::Incomplete(_)));
        assert!(matches!(
            from_text("name t\npop A 10 20\npop B 11 21\n").unwrap_err().kind,
            ParseErrorKind::Incomplete(_)
        ));
        let disconnected =
            "name t\npop A 10 20\npop B 11 21\npop C 12 22\npop D 13 23\ncable A B 100\ncable C D 100\n";
        assert_eq!(from_text(disconnected).unwrap_err().kind, ParseErrorKind::Disconnected);
    }

    #[test]
    fn display_messages_are_informative() {
        let e = from_text("name t\npop A ten 20\n").unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains("line 2"));
        assert!(msg.contains("ten"));
    }
}
