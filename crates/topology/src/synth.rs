//! Seeded synthetic graph models at Internet scale.
//!
//! The Snippet-1 experiment shape compares a real edge list against
//! per-seed synthetic topologies: Barabási–Albert, Watts–Strogatz, grid
//! and random (Erdős–Rényi). These generators reproduce that corpus
//! deterministically — same model, node count and seed always yield the
//! same [`IngestedGraph`] — so CI can exercise ingestion and the
//! hierarchical path engine at tens of thousands of nodes without a
//! network fetch.
//!
//! Every node gets a planar position (km), and link delays follow from
//! euclidean distance at 200 km/ms with the usual 0.05 ms floor, so
//! delay-weighted hierarchical clustering has real structure to find.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ingest::IngestedGraph;

/// The synthetic models of the Snippet-1 corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthModel {
    /// Preferential attachment (scale-free degree distribution). Connected
    /// by construction.
    BarabasiAlbert,
    /// Ring lattice with rewired chords (small world). The underlying ring
    /// is never rewired here, so the graph stays connected by construction.
    WattsStrogatz,
    /// Two-dimensional 4-neighbour lattice. Connected by construction.
    Grid,
    /// Erdős–Rényi `G(n, p)` at a target mean degree. **Not** guaranteed
    /// connected — isolated nodes and small components occur, which is
    /// exactly what the success-rate metric measures.
    Random,
}

impl SynthModel {
    /// Parses a model spec (`ba`, `ws`, `grid`, `random` and the long
    /// names used in the Snippet-1 summaries).
    pub fn parse(s: &str) -> Option<SynthModel> {
        match s.to_ascii_lowercase().as_str() {
            "ba" | "barabasialbert" | "barabasi-albert" => Some(SynthModel::BarabasiAlbert),
            "ws" | "wattsstrogatz" | "watts-strogatz" => Some(SynthModel::WattsStrogatz),
            "grid" => Some(SynthModel::Grid),
            "random" | "er" => Some(SynthModel::Random),
            _ => None,
        }
    }

    /// The Snippet-1 summary label.
    pub fn label(&self) -> &'static str {
        match self {
            SynthModel::BarabasiAlbert => "BarabasiAlbert",
            SynthModel::WattsStrogatz => "WattsStrogatz",
            SynthModel::Grid => "Grid",
            SynthModel::Random => "Random",
        }
    }

    /// True when the generator guarantees a connected graph (the models CI
    /// gates success-rate on).
    pub fn connected_by_construction(&self) -> bool {
        !matches!(self, SynthModel::Random)
    }

    /// All four models, in summary order.
    pub const ALL: [SynthModel; 4] = [
        SynthModel::BarabasiAlbert,
        SynthModel::WattsStrogatz,
        SynthModel::Grid,
        SynthModel::Random,
    ];
}

/// Generator parameters. Model-specific knobs are ignored by the other
/// models.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Seed; every draw derives from it deterministically.
    pub seed: u64,
    /// Barabási–Albert: edges attached per new node.
    pub ba_attach: usize,
    /// Watts–Strogatz: ring-lattice neighbours per node (even, >= 2).
    pub ws_neighbors: usize,
    /// Watts–Strogatz: chord rewiring probability.
    pub ws_rewire: f64,
    /// Random: target mean degree (`p = degree / (n - 1)`).
    pub random_mean_degree: f64,
    /// Uniform link capacity (Mbps).
    pub capacity_mbps: f64,
    /// Side of the placement square (km); delays follow from distance.
    pub area_km: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            nodes: 1000,
            seed: 42,
            ba_attach: 3,
            ws_neighbors: 4,
            ws_rewire: 0.1,
            random_mean_degree: 6.0,
            capacity_mbps: 10_000.0,
            area_km: 4_000.0,
        }
    }
}

/// Delay (ms) between two planar positions: distance at 200 km/ms, floored
/// like geographic topologies.
fn delay_between(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (dx, dy) = (a.0 - b.0, a.1 - b.1);
    ((dx * dx + dy * dy).sqrt() / 200.0).max(0.05)
}

/// Generates one synthetic graph. Deterministic in `(model, config)`.
///
/// # Panics
/// Panics on degenerate configurations (fewer than 4 nodes, zero attach
/// degree, odd `ws_neighbors`, …) — these are driver bugs, not data.
pub fn generate(model: SynthModel, config: &SynthConfig) -> IngestedGraph {
    let n = config.nodes;
    assert!(n >= 4, "synthetic models need at least 4 nodes, got {n}");
    let mut rng = StdRng::seed_from_u64(config.seed ^ (model.label().len() as u64) << 32);
    let name = format!("{}-n{}-s{}", model.label(), n, config.seed);
    let node_names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();

    // Placement: positions drive delays.
    let positions: Vec<(f64, f64)> = match model {
        SynthModel::Grid => {
            let cols = (n as f64).sqrt().ceil() as usize;
            let spacing = config.area_km / cols as f64;
            (0..n).map(|i| ((i % cols) as f64 * spacing, (i / cols) as f64 * spacing)).collect()
        }
        SynthModel::WattsStrogatz => {
            let r = config.area_km / 2.0;
            (0..n)
                .map(|i| {
                    let theta = i as f64 / n as f64 * std::f64::consts::TAU;
                    (r + r * theta.cos(), r + r * theta.sin())
                })
                .collect()
        }
        _ => (0..n)
            .map(|_| (rng.gen_range(0.0..config.area_km), rng.gen_range(0.0..config.area_km)))
            .collect(),
    };

    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = Default::default();
    let push = |edges: &mut Vec<(u32, u32)>,
                seen: &mut std::collections::HashSet<(u32, u32)>,
                a: u32,
                b: u32|
     -> bool {
        debug_assert!(a != b);
        if seen.insert((a.min(b), a.max(b))) {
            edges.push((a, b));
            true
        } else {
            false
        }
    };

    match model {
        SynthModel::BarabasiAlbert => {
            let m = config.ba_attach;
            assert!(m >= 1, "ba_attach must be >= 1");
            let m0 = (m + 1).min(n);
            // Seed clique, then preferential attachment: sample an endpoint
            // of a uniformly random existing edge (endpoint frequency is
            // proportional to degree).
            for a in 0..m0 as u32 {
                for b in a + 1..m0 as u32 {
                    push(&mut edges, &mut seen, a, b);
                }
            }
            let mut endpoints: Vec<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
            for v in m0 as u32..n as u32 {
                let mut added = 0usize;
                let mut tries = 0usize;
                while added < m && tries < 64 * m {
                    tries += 1;
                    let t = endpoints[rng.gen_range(0..endpoints.len())];
                    if t != v && push(&mut edges, &mut seen, v, t) {
                        endpoints.push(v);
                        endpoints.push(t);
                        added += 1;
                    }
                }
                if added == 0 {
                    // Degenerate fallback (tiny graphs): attach to v-1.
                    push(&mut edges, &mut seen, v, v - 1);
                    endpoints.push(v);
                    endpoints.push(v - 1);
                }
            }
        }
        SynthModel::WattsStrogatz => {
            let k = config.ws_neighbors;
            assert!(k >= 2 && k.is_multiple_of(2), "ws_neighbors must be even and >= 2, got {k}");
            for i in 0..n as u32 {
                for j in 1..=(k / 2) as u32 {
                    let t = (i + j) % n as u32;
                    if i == t {
                        continue;
                    }
                    // The j == 1 ring is the connectivity backbone: never
                    // rewired. Longer chords rewire with probability beta.
                    if j > 1 && rng.gen_bool(config.ws_rewire) {
                        let mut placed = false;
                        for _ in 0..32 {
                            let r = rng.gen_range(0..n as u32);
                            if r != i && push(&mut edges, &mut seen, i, r) {
                                placed = true;
                                break;
                            }
                        }
                        if !placed {
                            push(&mut edges, &mut seen, i, t);
                        }
                    } else {
                        push(&mut edges, &mut seen, i, t);
                    }
                }
            }
        }
        SynthModel::Grid => {
            let cols = (n as f64).sqrt().ceil() as usize;
            for i in 0..n {
                if (i + 1) % cols != 0 && i + 1 < n {
                    push(&mut edges, &mut seen, i as u32, (i + 1) as u32);
                }
                if i + cols < n {
                    push(&mut edges, &mut seen, i as u32, (i + cols) as u32);
                }
            }
        }
        SynthModel::Random => {
            let p = (config.random_mean_degree / (n as f64 - 1.0)).clamp(1e-12, 1.0);
            // Geometric skip sampling over the n*(n-1)/2 pair indices:
            // O(edges), which is what makes 100k-node draws instant.
            let total: u64 = (n as u64) * (n as u64 - 1) / 2;
            let ln_q = (1.0 - p).ln();
            let mut t: u64 = 0;
            loop {
                let u = rng.next_f64().max(1e-18);
                let skip = if ln_q == 0.0 { 0 } else { (u.ln() / ln_q).floor() as u64 };
                t = t.saturating_add(skip);
                if t >= total {
                    break;
                }
                // Pair index -> (i, j), row-major over i < j.
                let i = {
                    // Solve i: first index whose row still contains t.
                    let tf = t as f64;
                    let nf = n as f64;
                    let mut i = ((2.0 * nf
                        - 1.0
                        - ((2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * tf).max(0.0).sqrt())
                        / 2.0)
                        .floor() as u64;
                    // Guard float error.
                    while (i + 1) * (2 * n as u64 - i - 2) / 2 <= t {
                        i += 1;
                    }
                    while i > 0 && i * (2 * n as u64 - i - 1) / 2 > t {
                        i -= 1;
                    }
                    i
                };
                let row_start = i * (2 * n as u64 - i - 1) / 2;
                let j = i + 1 + (t - row_start);
                push(&mut edges, &mut seen, i as u32, j as u32);
                t = t.saturating_add(1);
                if t >= total {
                    break;
                }
            }
        }
    }

    let attributed: Vec<(u32, u32, f64, f64)> = edges
        .iter()
        .map(|&(a, b)| {
            (
                a,
                b,
                config.capacity_mbps,
                delay_between(positions[a as usize], positions[b as usize]),
            )
        })
        .collect();
    IngestedGraph::new(name, node_names, &attributed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize, seed: u64) -> SynthConfig {
        SynthConfig { nodes, seed, ..Default::default() }
    }

    #[test]
    fn deterministic_per_seed() {
        for model in SynthModel::ALL {
            let a = generate(model, &cfg(200, 7));
            let b = generate(model, &cfg(200, 7));
            assert_eq!(a.cable_count(), b.cable_count(), "{model:?}");
            for l in a.graph().link_ids() {
                assert_eq!(a.graph().link(l), b.graph().link(l), "{model:?}");
            }
            let c = generate(model, &cfg(200, 8));
            if model != SynthModel::Grid {
                // Grid ignores the seed (lattice is deterministic anyway).
                let sum = |g: &IngestedGraph| -> f64 {
                    g.graph().link_ids().map(|l| g.graph().link(l).delay_ms).sum()
                };
                assert_ne!(
                    (a.cable_count(), sum(&a).to_bits()),
                    (c.cable_count(), sum(&c).to_bits()),
                    "{model:?} seed must matter"
                );
            }
        }
    }

    #[test]
    fn connected_models_are_connected() {
        for model in SynthModel::ALL {
            if !model.connected_by_construction() {
                continue;
            }
            for seed in [1, 42] {
                let g = generate(model, &cfg(300, seed));
                assert!(
                    g.graph().is_strongly_connected(),
                    "{model:?} seed {seed} must be connected"
                );
            }
        }
    }

    #[test]
    fn node_counts_exact() {
        for model in SynthModel::ALL {
            let g = generate(model, &cfg(137, 3));
            assert_eq!(g.node_count(), 137, "{model:?}");
            assert!(g.cable_count() > 0);
        }
    }

    #[test]
    fn ba_mean_degree_near_2m() {
        let g = generate(SynthModel::BarabasiAlbert, &cfg(2000, 5));
        let mean = 2.0 * g.cable_count() as f64 / g.node_count() as f64;
        assert!((mean - 6.0).abs() < 0.5, "mean degree {mean} (expected ~2m = 6)");
    }

    #[test]
    fn er_mean_degree_near_target() {
        let g = generate(SynthModel::Random, &cfg(5000, 11));
        let mean = 2.0 * g.cable_count() as f64 / g.node_count() as f64;
        assert!((mean - 6.0).abs() < 0.6, "mean degree {mean} (target 6)");
    }

    #[test]
    fn grid_is_a_lattice() {
        let g = generate(SynthModel::Grid, &cfg(25, 0));
        // 5x5 lattice: 2 * 5 * 4 = 40 edges.
        assert_eq!(g.cable_count(), 40);
    }

    #[test]
    fn delays_are_positive_and_finite() {
        for model in SynthModel::ALL {
            let g = generate(model, &cfg(150, 2));
            for l in g.graph().link_ids() {
                let d = g.graph().link(l).delay_ms;
                assert!(d.is_finite() && d >= 0.05, "{model:?}: delay {d}");
            }
        }
    }

    #[test]
    fn model_parse_round_trip() {
        assert_eq!(SynthModel::parse("ba"), Some(SynthModel::BarabasiAlbert));
        assert_eq!(SynthModel::parse("BarabasiAlbert"), Some(SynthModel::BarabasiAlbert));
        assert_eq!(SynthModel::parse("ws"), Some(SynthModel::WattsStrogatz));
        assert_eq!(SynthModel::parse("grid"), Some(SynthModel::Grid));
        assert_eq!(SynthModel::parse("er"), Some(SynthModel::Random));
        assert_eq!(SynthModel::parse("frob"), None);
    }
}
