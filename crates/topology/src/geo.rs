//! Geographic coordinates and propagation-delay modelling.

/// Speed of light in fibre, expressed in km per millisecond (~2/3 c).
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// Mean Earth radius in km.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the Earth's surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point, validating ranges.
    ///
    /// # Panics
    /// Panics if latitude is outside [-90, 90] or longitude outside
    /// [-180, 360] (the slack above 180 tolerates unnormalized inputs).
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat_deg), "bad latitude {lat_deg}");
        assert!((-180.0..=360.0).contains(&lon_deg), "bad longitude {lon_deg}");
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle distance to `other` in km (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }

    /// Propagation delay to `other` in ms along a great-circle fibre run.
    pub fn delay_ms_to(&self, other: &GeoPoint) -> f64 {
        self.distance_km(other) / FIBRE_KM_PER_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(48.2, 16.37); // Vienna
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn london_new_york_roughly_5570_km() {
        let lon = GeoPoint::new(51.5074, -0.1278);
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let d = lon.distance_km(&nyc);
        assert!((d - 5570.0).abs() < 60.0, "got {d}");
        // ~28 ms one-way in fibre.
        let delay = lon.delay_ms_to(&nyc);
        assert!((delay - 27.85).abs() < 0.5, "got {delay}");
    }

    #[test]
    fn symmetric() {
        let a = GeoPoint::new(52.52, 13.405); // Berlin
        let b = GeoPoint::new(47.4979, 19.0402); // Budapest
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn bad_latitude_rejected() {
        GeoPoint::new(91.0, 0.0);
    }
}
