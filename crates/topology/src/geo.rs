//! Geographic coordinates and propagation-delay modelling.

/// Speed of light in fibre, expressed in km per millisecond (~2/3 c).
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// Mean Earth radius in km.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the Earth's surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point, validating ranges.
    ///
    /// # Panics
    /// Panics if latitude is outside [-90, 90] or longitude outside
    /// [-180, 360] (the slack above 180 tolerates unnormalized inputs).
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat_deg), "bad latitude {lat_deg}");
        assert!((-180.0..=360.0).contains(&lon_deg), "bad longitude {lon_deg}");
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle distance to `other` in km (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }

    /// Propagation delay to `other` in ms along a great-circle fibre run.
    pub fn delay_ms_to(&self, other: &GeoPoint) -> f64 {
        self.distance_km(other) / FIBRE_KM_PER_MS
    }

    /// Unit vector on the sphere (x toward lat 0/lon 0, z toward the pole).
    fn to_unit(self) -> [f64; 3] {
        let (lat, lon) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        [lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin()]
    }

    /// The point a fraction `f` (in `[0, 1]`) of the way along the great
    /// circle from `self` to `other` — spherical linear interpolation, the
    /// path a fibre run between the two endpoints is modelled to follow.
    /// Degenerate inputs (coincident or antipodal endpoints) return `self`.
    pub fn interpolate(&self, other: &GeoPoint, f: f64) -> GeoPoint {
        let a = self.to_unit();
        let b = other.to_unit();
        let dot = (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]).clamp(-1.0, 1.0);
        let omega = dot.acos();
        if omega.sin() < 1e-9 {
            return *self;
        }
        let (wa, wb) = (((1.0 - f) * omega).sin() / omega.sin(), (f * omega).sin() / omega.sin());
        let p = [wa * a[0] + wb * b[0], wa * a[1] + wb * b[1], wa * a[2] + wb * b[2]];
        let norm = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        GeoPoint {
            lat_deg: (p[2] / norm).asin().to_degrees(),
            lon_deg: p[1].atan2(p[0]).to_degrees(),
        }
    }
}

/// Sample points per segment when approximating corridor distance.
const CORRIDOR_SAMPLES: usize = 17;

/// Minimum distance (km) between the great-circle corridors `a0—a1` and
/// `b0—b1`, approximated by sampling each segment at [`CORRIDOR_SAMPLES`]
/// points. Good to a few km at continental scale — plenty for deciding
/// whether two fibre runs plausibly share a conduit corridor.
pub fn corridor_distance_km(a0: &GeoPoint, a1: &GeoPoint, b0: &GeoPoint, b1: &GeoPoint) -> f64 {
    let sample = |p: &GeoPoint, q: &GeoPoint, i: usize| {
        p.interpolate(q, i as f64 / (CORRIDOR_SAMPLES - 1) as f64)
    };
    let mut min = f64::INFINITY;
    for i in 0..CORRIDOR_SAMPLES {
        let pa = sample(a0, a1, i);
        for j in 0..CORRIDOR_SAMPLES {
            min = min.min(pa.distance_km(&sample(b0, b1, j)));
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(48.2, 16.37); // Vienna
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn london_new_york_roughly_5570_km() {
        let lon = GeoPoint::new(51.5074, -0.1278);
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let d = lon.distance_km(&nyc);
        assert!((d - 5570.0).abs() < 60.0, "got {d}");
        // ~28 ms one-way in fibre.
        let delay = lon.delay_ms_to(&nyc);
        assert!((delay - 27.85).abs() < 0.5, "got {delay}");
    }

    #[test]
    fn symmetric() {
        let a = GeoPoint::new(52.52, 13.405); // Berlin
        let b = GeoPoint::new(47.4979, 19.0402); // Budapest
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn bad_latitude_rejected() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    fn interpolation_endpoints_and_midpoint() {
        let lon = GeoPoint::new(51.5074, -0.1278);
        let nyc = GeoPoint::new(40.7128, -74.0060);
        assert!(lon.interpolate(&nyc, 0.0).distance_km(&lon) < 1e-6);
        assert!(lon.interpolate(&nyc, 1.0).distance_km(&nyc) < 1e-6);
        let mid = lon.interpolate(&nyc, 0.5);
        let (d0, d1) = (mid.distance_km(&lon), mid.distance_km(&nyc));
        assert!((d0 - d1).abs() < 1.0, "midpoint equidistant: {d0} vs {d1}");
        assert!((d0 + d1 - lon.distance_km(&nyc)).abs() < 1.0, "midpoint on the great circle");
        // Great-circle LON-NYC arcs north of the rhumb line.
        assert!(mid.lat_deg > 51.5, "arc peaks above both endpoints, got {}", mid.lat_deg);
    }

    #[test]
    fn interpolation_degenerate_pairs_return_start() {
        let p = GeoPoint::new(10.0, 20.0);
        assert_eq!(p.interpolate(&p, 0.5), p);
        let anti = GeoPoint::new(-10.0, 200.0);
        assert_eq!(p.interpolate(&anti, 0.5), p);
    }

    #[test]
    fn corridor_distance_of_crossing_and_parallel_segments() {
        // Two segments crossing near (45, 10): distance ~0.
        let x = corridor_distance_km(
            &GeoPoint::new(44.0, 10.0),
            &GeoPoint::new(46.0, 10.0),
            &GeoPoint::new(45.0, 9.0),
            &GeoPoint::new(45.0, 11.0),
        );
        assert!(x < 20.0, "crossing segments nearly touch, got {x}");
        // Parallel east-west segments one degree of latitude apart:
        // ~111 km everywhere.
        let p = corridor_distance_km(
            &GeoPoint::new(45.0, 5.0),
            &GeoPoint::new(45.0, 8.0),
            &GeoPoint::new(46.0, 5.0),
            &GeoPoint::new(46.0, 8.0),
        );
        assert!((p - 111.0).abs() < 10.0, "parallel corridors ~111 km apart, got {p}");
        // Distance is symmetric in the segments.
        let q = corridor_distance_km(
            &GeoPoint::new(46.0, 5.0),
            &GeoPoint::new(46.0, 8.0),
            &GeoPoint::new(45.0, 5.0),
            &GeoPoint::new(45.0, 8.0),
        );
        assert!((p - q).abs() < 1e-9);
    }
}
