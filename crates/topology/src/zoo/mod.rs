//! Synthetic substitute for the Internet Topology Zoo corpus.
//!
//! The paper evaluates on 116 real backbone topologies with diameter above
//! 10 ms. Those files are not redistributable here, so this module
//! deterministically generates a corpus spanning the same structural classes
//! the paper identifies (§2):
//!
//! * **trees / stars** — no alternate paths, LLPD ≈ 0;
//! * **chains** — degenerate trees, common for early national backbones;
//! * **wide rings** — path diversity exists but the "wrong way around the
//!   ring" costs a lot of delay, mid-range LLPD;
//! * **grids** — GTS-Central-Europe-like two-dimensional meshes, high LLPD;
//! * **meshes** — random geometric graphs, LLPD rising with density;
//! * **continental** — Cogent-like multi-continent networks whose long
//!   latency baseline makes stretch limits easier to meet;
//! * **cliques** — overlay networks; the paper's horizontal CDF lines.
//!
//! Every generator takes a seed and is fully deterministic, so experiments
//! are reproducible bit-for-bit.

pub mod named;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::geo::GeoPoint;
use crate::model::{PopId, Topology, TopologyBuilder};

/// Structural class of a zoo network (recorded in its name).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ZooClass {
    /// Random tree (includes stars and chains).
    Tree,
    /// Ring with optional chords.
    Ring,
    /// Two-dimensional lattice with shortcuts.
    Grid,
    /// Random geometric mesh.
    Mesh,
    /// Multi-continent network.
    Continental,
    /// Full mesh (overlay).
    Clique,
    /// Hand-built named network.
    Named,
}

impl ZooClass {
    /// Recovers the class from a network name produced by this module.
    pub fn of(topology: &Topology) -> ZooClass {
        let n = topology.name();
        if n.starts_with("tree") || n.starts_with("chain") || n.starts_with("star") {
            ZooClass::Tree
        } else if n.starts_with("ring") {
            ZooClass::Ring
        } else if n.starts_with("grid") {
            ZooClass::Grid
        } else if n.starts_with("mesh") {
            ZooClass::Mesh
        } else if n.starts_with("cont") {
            ZooClass::Continental
        } else if n.starts_with("clique") {
            ZooClass::Clique
        } else {
            ZooClass::Named
        }
    }
}

/// A rectangular geographic footprint to scatter PoPs over.
#[derive(Clone, Copy, Debug)]
pub struct Region {
    /// Minimum/maximum latitude.
    pub lat: (f64, f64),
    /// Minimum/maximum longitude.
    pub lon: (f64, f64),
}

/// Wide-Europe footprint (Lisbon to Helsinki), ~3400 km across.
pub const EUROPE: Region = Region { lat: (37.0, 60.5), lon: (-9.0, 26.0) };
/// Continental-US footprint, ~4200 km across.
pub const USA: Region = Region { lat: (30.0, 47.5), lon: (-122.0, -72.0) };
/// East-Asia footprint.
pub const ASIA: Region = Region { lat: (1.0, 38.0), lon: (100.0, 140.0) };

impl Region {
    fn sample(&self, rng: &mut StdRng) -> GeoPoint {
        GeoPoint::new(rng.gen_range(self.lat.0..self.lat.1), rng.gen_range(self.lon.0..self.lon.1))
    }
}

/// Capacity tiers in Mbps: 1G, 2.5G, 10G, 40G, 100G.
pub const CAPACITY_TIERS: [f64; 5] = [1_000.0, 2_500.0, 10_000.0, 40_000.0, 100_000.0];

/// Draws a plausible capacity for a cable of the given length: longer
/// cables are backbone trunks and trend fatter, short cables are regional
/// spurs.
fn capacity_for(dist_km: f64, rng: &mut StdRng) -> f64 {
    let choices: &[f64] = if dist_km > 2500.0 {
        &[40_000.0, 100_000.0]
    } else if dist_km > 800.0 {
        &[10_000.0, 40_000.0]
    } else {
        &[2_500.0, 10_000.0, 10_000.0]
    };
    choices[rng.gen_range(0..choices.len())]
}

/// Random tree over `n` PoPs. `chain_bias` in [0,1]: 0 attaches uniformly
/// (bushy trees), 1 always extends the most recent node (a chain).
pub fn tree(n: usize, chain_bias: f64, region: Region, seed: u64) -> Topology {
    assert!(n >= 3);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7265_6531);
    let mut b =
        TopologyBuilder::new(format!("tree-{n}-b{:02}-s{seed}", (chain_bias * 10.0) as u32));
    let pops: Vec<PopId> =
        (0..n).map(|i| b.add_pop(format!("p{i}"), region.sample(&mut rng))).collect();
    for i in 1..n {
        let parent = if rng.gen_bool(chain_bias) { i - 1 } else { rng.gen_range(0..i) };
        let d = dist(&b, pops[parent], pops[i]);
        let cap = capacity_for(d, &mut rng);
        b.connect(pops[parent], pops[i], cap);
    }
    b.build()
}

/// Ring of `n` PoPs laid around the region's perimeter, plus `chords`
/// random cross-ring cables.
pub fn ring(n: usize, chords: usize, region: Region, seed: u64) -> Topology {
    assert!(n >= 4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7269_6e67);
    let mut b = TopologyBuilder::new(format!("ring-{n}-c{chords}-s{seed}"));
    let (clat, clon) = ((region.lat.0 + region.lat.1) / 2.0, (region.lon.0 + region.lon.1) / 2.0);
    let (rlat, rlon) = ((region.lat.1 - region.lat.0) / 2.0, (region.lon.1 - region.lon.0) / 2.0);
    let pops: Vec<PopId> = (0..n)
        .map(|i| {
            let ang = 2.0 * std::f64::consts::PI * (i as f64) / (n as f64);
            let jitter = rng.gen_range(0.85..1.0);
            b.add_pop(
                format!("p{i}"),
                GeoPoint::new(clat + rlat * jitter * ang.sin(), clon + rlon * jitter * ang.cos()),
            )
        })
        .collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let d = dist(&b, pops[i], pops[j]);
        let cap = capacity_for(d, &mut rng);
        b.connect(pops[i], pops[j], cap);
    }
    let mut added = 0;
    let mut guard = 0;
    while added < chords && guard < 100 {
        guard += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j && !b.connected(pops[i], pops[j]) {
            let d = dist(&b, pops[i], pops[j]);
            let cap = capacity_for(d, &mut rng);
            b.connect(pops[i], pops[j], cap);
            added += 1;
        }
    }
    b.build()
}

/// `w x h` lattice over the region with jittered positions; every lattice
/// edge is a cable and each diagonal is added with probability
/// `shortcut_prob` — the GTS-like "two-dimensional grid" class.
pub fn grid(w: usize, h: usize, shortcut_prob: f64, region: Region, seed: u64) -> Topology {
    assert!(w >= 2 && h >= 2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6772_6964);
    let mut b = TopologyBuilder::new(format!(
        "grid-{w}x{h}-p{:02}-s{seed}",
        (shortcut_prob * 100.0) as u32
    ));
    let mut pops = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let lat = region.lat.0
                + (region.lat.1 - region.lat.0) * (y as f64 + rng.gen_range(-0.2..0.2))
                    / (h - 1).max(1) as f64;
            let lon = region.lon.0
                + (region.lon.1 - region.lon.0) * (x as f64 + rng.gen_range(-0.2..0.2))
                    / (w - 1).max(1) as f64;
            pops.push(b.add_pop(format!("g{x}-{y}"), GeoPoint::new(lat.clamp(-89.0, 89.0), lon)));
        }
    }
    let at = |x: usize, y: usize| pops[y * w + x];
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                let d = dist(&b, at(x, y), at(x + 1, y));
                let cap = capacity_for(d, &mut rng);
                b.connect(at(x, y), at(x + 1, y), cap);
            }
            if y + 1 < h {
                let d = dist(&b, at(x, y), at(x, y + 1));
                let cap = capacity_for(d, &mut rng);
                b.connect(at(x, y), at(x, y + 1), cap);
            }
            if x + 1 < w && y + 1 < h && rng.gen_bool(shortcut_prob) {
                let d = dist(&b, at(x, y), at(x + 1, y + 1));
                let cap = capacity_for(d, &mut rng);
                b.connect(at(x, y), at(x + 1, y + 1), cap);
            }
        }
    }
    b.build()
}

/// Random geometric mesh: `n` PoPs scattered over the region, cables between
/// all pairs closer than `radius_km`, then stitched to connectivity by
/// joining nearest components.
pub fn mesh(n: usize, radius_km: f64, region: Region, seed: u64) -> Topology {
    assert!(n >= 4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d65_7368);
    let mut b = TopologyBuilder::new(format!("mesh-{n}-r{}-s{seed}", radius_km as u32));
    let pops: Vec<PopId> =
        (0..n).map(|i| b.add_pop(format!("p{i}"), region.sample(&mut rng))).collect();
    for i in 0..n {
        for j in i + 1..n {
            let d = dist(&b, pops[i], pops[j]);
            if d <= radius_km {
                let cap = capacity_for(d, &mut rng);
                b.connect(pops[i], pops[j], cap);
            }
        }
    }
    stitch_components(&mut b, &pops, &mut rng);
    b.build()
}

/// Multi-continent network: a mesh per continent plus `inter_links` cables
/// between consecutive continents — the Cogent-like class.
pub fn continental(
    per_continent: usize,
    continents: &[Region],
    radius_km: f64,
    inter_links: usize,
    seed: u64,
) -> Topology {
    assert!(continents.len() >= 2 && per_continent >= 3 && inter_links >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x636f_6e74);
    let mut b = TopologyBuilder::new(format!(
        "cont-{}x{per_continent}-i{inter_links}-s{seed}",
        continents.len()
    ));
    let mut clusters: Vec<Vec<PopId>> = Vec::new();
    for (ci, region) in continents.iter().enumerate() {
        let pops: Vec<PopId> = (0..per_continent)
            .map(|i| b.add_pop(format!("c{ci}p{i}"), region.sample(&mut rng)))
            .collect();
        for i in 0..pops.len() {
            for j in i + 1..pops.len() {
                let d = dist(&b, pops[i], pops[j]);
                if d <= radius_km {
                    let cap = capacity_for(d, &mut rng);
                    b.connect(pops[i], pops[j], cap);
                }
            }
        }
        let cluster = pops.clone();
        stitch_components(&mut b, &cluster, &mut rng);
        clusters.push(pops);
    }
    // Submarine cables between consecutive continents (and wrap-around when
    // more than two), fat pipes.
    for w in 0..clusters.len() {
        let next = (w + 1) % clusters.len();
        if clusters.len() == 2 && w == 1 {
            break;
        }
        for k in 0..inter_links {
            let a = clusters[w][k * 7 % clusters[w].len()];
            let c = clusters[next][k * 5 % clusters[next].len()];
            if !b.connected(a, c) {
                b.connect(a, c, 100_000.0);
            }
        }
    }
    b.build()
}

/// Full mesh over `n` PoPs — the overlay/clique class.
pub fn clique(n: usize, region: Region, seed: u64) -> Topology {
    assert!(n >= 3);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x636c_6971);
    let mut b = TopologyBuilder::new(format!("clique-{n}-s{seed}"));
    let pops: Vec<PopId> =
        (0..n).map(|i| b.add_pop(format!("p{i}"), region.sample(&mut rng))).collect();
    for i in 0..n {
        for j in i + 1..n {
            let d = dist(&b, pops[i], pops[j]);
            let cap = capacity_for(d, &mut rng);
            b.connect(pops[i], pops[j], cap);
        }
    }
    b.build()
}

fn dist(b: &TopologyBuilder, x: PopId, y: PopId) -> f64 {
    // TopologyBuilder doesn't expose locations; recompute through a tiny
    // accessor instead of duplicating state.
    b.location_of(x).distance_km(&b.location_of(y))
}

/// Connects the connected components of a partially built topology by
/// repeatedly cabling the geographically closest cross-component pair.
fn stitch_components(b: &mut TopologyBuilder, pops: &[PopId], rng: &mut StdRng) {
    loop {
        let comps = components(b, pops);
        if comps.len() <= 1 {
            return;
        }
        // Closest pair between component 0 and any other.
        let mut best: Option<(PopId, PopId, f64)> = None;
        for &a in &comps[0] {
            for comp in &comps[1..] {
                for &c in comp {
                    let d = dist(b, a, c);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((a, c, d));
                    }
                }
            }
        }
        let (a, c, d) = best.expect("at least two components");
        let cap = capacity_for(d, rng);
        b.connect(a, c, cap);
    }
}

/// Union-find components over the builder's cables restricted to `pops`.
fn components(b: &TopologyBuilder, pops: &[PopId]) -> Vec<Vec<PopId>> {
    let mut parent: std::collections::HashMap<PopId, PopId> =
        pops.iter().map(|&p| (p, p)).collect();
    fn find(parent: &mut std::collections::HashMap<PopId, PopId>, x: PopId) -> PopId {
        let p = parent[&x];
        if p == x {
            x
        } else {
            let r = find(parent, p);
            parent.insert(x, r);
            r
        }
    }
    for &(a, c) in b.cable_endpoints().iter() {
        if parent.contains_key(&a) && parent.contains_key(&c) {
            let (ra, rc) = (find(&mut parent, a), find(&mut parent, c));
            if ra != rc {
                parent.insert(ra, rc);
            }
        }
    }
    let mut groups: std::collections::HashMap<PopId, Vec<PopId>> = std::collections::HashMap::new();
    for &p in pops {
        let r = find(&mut parent, p);
        groups.entry(r).or_default().push(p);
    }
    let mut out: Vec<Vec<PopId>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// The paper keeps only networks with diameter above 10 ms; random PoP
/// placement occasionally lands a small network below that bar, so retry
/// with a deterministically bumped seed until the filter passes.
fn wide(make: impl Fn(u64) -> Topology, seed: u64) -> Topology {
    let mut seed = seed;
    loop {
        let t = make(seed);
        if t.diameter_ms() > 10.0 {
            return t;
        }
        seed += 100_000;
    }
}

/// The full 116-network synthetic corpus (deterministic).
///
/// Sizes and class mix chosen to mirror the paper's corpus: most networks
/// have 10–60 PoPs (90th percentile of the paper's hard subset is 74 nodes)
/// and all have diameter above 10 ms.
pub fn synthetic_zoo() -> Vec<Topology> {
    let mut nets = Vec::with_capacity(116);
    // 20 trees: bushy to chain-like.
    for i in 0..20u64 {
        let n = 8 + (i as usize % 7) * 4; // 8..32
        let bias = (i % 5) as f64 / 5.0;
        let region = if i % 2 == 0 { EUROPE } else { USA };
        nets.push(wide(|s| tree(n, bias, region, s), 1000 + i));
    }
    // 22 rings: plain and chorded.
    for i in 0..22u64 {
        let n = 6 + (i as usize % 8) * 4; // 6..34
        let chords = (i % 4) as usize;
        let region = if i % 2 == 0 { EUROPE } else { USA };
        nets.push(wide(|s| ring(n, chords, region, s), 2000 + i));
    }
    // 26 grids: the GTS-like class.
    for i in 0..26u64 {
        let w = 3 + (i as usize % 5); // 3..7
        let h = 3 + (i as usize / 5 % 4); // 3..6
        let p = [0.0, 0.1, 0.25][i as usize % 3];
        let region = if i % 2 == 0 { EUROPE } else { USA };
        nets.push(wide(|s| grid(w, h, p, region, s), 3000 + i));
    }
    // 22 meshes with rising density.
    for i in 0..22u64 {
        let n = 10 + (i as usize % 6) * 6; // 10..40
        let radius = 500.0 + 250.0 * (i % 5) as f64;
        let region = if i % 2 == 0 { EUROPE } else { USA };
        nets.push(wide(|s| mesh(n, radius, region, s), 4000 + i));
    }
    // 14 continental networks.
    for i in 0..14u64 {
        let per = 6 + (i as usize % 4) * 3; // 6..15
        let regions: &[Region] = if i % 3 == 0 { &[USA, EUROPE, ASIA] } else { &[USA, EUROPE] };
        let inter = 2 + (i % 3) as usize;
        nets.push(wide(
            |s| continental(per, regions, 900.0 + 200.0 * (i % 3) as f64, inter, s),
            5000 + i,
        ));
    }
    // 8 cliques (overlays).
    for i in 0..8u64 {
        let n = 5 + (i as usize % 4) * 3; // 5..14
        let region = if i % 2 == 0 { EUROPE } else { USA };
        nets.push(wide(|s| clique(n, region, s), 6000 + i));
    }
    // 4 named, hand-built networks.
    nets.push(named::abilene());
    nets.push(named::gts_like());
    nets.push(named::cogent_like());
    nets.push(named::google_like());
    assert_eq!(nets.len(), 116, "corpus size drifted");
    nets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_116_networks() {
        let zoo = synthetic_zoo();
        assert_eq!(zoo.len(), 116);
    }

    #[test]
    fn corpus_names_unique() {
        let zoo = synthetic_zoo();
        let mut names: Vec<&str> = zoo.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 116, "duplicate network names");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = synthetic_zoo();
        let b = synthetic_zoo();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.link_count(), y.link_count());
            assert_eq!(x.diameter_ms(), y.diameter_ms());
        }
    }

    #[test]
    fn all_networks_connected_and_wide() {
        for t in synthetic_zoo() {
            assert!(t.graph().is_strongly_connected(), "{} disconnected", t.name());
            assert!(
                t.diameter_ms() > 10.0,
                "{} diameter {:.1} ms below the paper's 10 ms filter",
                t.name(),
                t.diameter_ms()
            );
        }
    }

    #[test]
    fn classes_present() {
        use std::collections::HashSet;
        let classes: HashSet<ZooClass> = synthetic_zoo().iter().map(ZooClass::of).collect();
        for c in [
            ZooClass::Tree,
            ZooClass::Ring,
            ZooClass::Grid,
            ZooClass::Mesh,
            ZooClass::Continental,
            ZooClass::Clique,
            ZooClass::Named,
        ] {
            assert!(classes.contains(&c), "missing class {c:?}");
        }
    }

    #[test]
    fn tree_has_no_cycles() {
        let t = tree(15, 0.3, EUROPE, 7);
        assert_eq!(t.cables().len(), 14, "a tree has n-1 cables");
    }

    #[test]
    fn clique_is_complete() {
        let t = clique(6, EUROPE, 7);
        assert_eq!(t.cables().len(), 15);
    }

    #[test]
    fn grid_cable_count() {
        let t = grid(4, 3, 0.0, EUROPE, 7);
        // 4x3 lattice: 3*3 horizontal + 4*2 vertical = 17.
        assert_eq!(t.cables().len(), 17);
    }
}
