//! Hand-built named networks used throughout the figure reproductions.
//!
//! * [`abilene`] — the real Abilene/Internet2 research backbone (11 PoPs),
//!   a staple sanity-check topology.
//! * [`gts_like`] — a central-European grid in the spirit of GTS CE, the
//!   paper's running example of a high-LLPD network that greedy routing
//!   congests (Figures 2, 5, 6, 7).
//! * [`cogent_like`] — a two-continent network in the spirit of Cogent, the
//!   paper's example of intercontinental path diversity.
//! * [`google_like`] — a global mesh standing in for Google's WAN
//!   (Figure 19), tuned for the highest LLPD in the corpus.
//!
//! "Like" is doing honest work in these names: PoP cities are real and link
//! delays geographic, but adjacency is our reconstruction, designed to
//! reproduce each network's *structural role* in the paper rather than its
//! exact link list.

use crate::geo::GeoPoint;
use crate::model::{PopId, Topology, TopologyBuilder};

fn pop(b: &mut TopologyBuilder, name: &str, lat: f64, lon: f64) -> PopId {
    b.add_pop(name, GeoPoint::new(lat, lon))
}

/// The Abilene research backbone (11 PoPs, 14 cables), 10 Gb/s throughout.
pub fn abilene() -> Topology {
    let mut b = TopologyBuilder::new("Abilene");
    let sea = pop(&mut b, "Seattle", 47.61, -122.33);
    let sun = pop(&mut b, "Sunnyvale", 37.37, -122.04);
    let lax = pop(&mut b, "LosAngeles", 34.05, -118.24);
    let den = pop(&mut b, "Denver", 39.74, -104.99);
    let kan = pop(&mut b, "KansasCity", 39.10, -94.58);
    let hou = pop(&mut b, "Houston", 29.76, -95.37);
    let chi = pop(&mut b, "Chicago", 41.88, -87.63);
    let ind = pop(&mut b, "Indianapolis", 39.77, -86.16);
    let atl = pop(&mut b, "Atlanta", 33.75, -84.39);
    let was = pop(&mut b, "WashingtonDC", 38.91, -77.04);
    let nyc = pop(&mut b, "NewYork", 40.71, -74.01);
    const C: f64 = 10_000.0;
    for (a, z) in [
        (sea, sun),
        (sea, den),
        (sun, lax),
        (sun, den),
        (lax, hou),
        (den, kan),
        (kan, hou),
        (kan, ind),
        (hou, atl),
        (chi, ind),
        (chi, nyc),
        (ind, atl),
        (atl, was),
        (was, nyc),
    ] {
        b.connect(a, z, C);
    }
    b.build()
}

/// GTS-like central-European grid: 22 PoPs with the Vienna–Bratislava–
/// Győr–Veszprém–Budapest core of the paper's Figure 5.
pub fn gts_like() -> Topology {
    let mut b = TopologyBuilder::new("GtsCe-like");
    let prague = pop(&mut b, "Prague", 50.08, 14.44);
    let brno = pop(&mut b, "Brno", 49.20, 16.61);
    let ostrava = pop(&mut b, "Ostrava", 49.82, 18.26);
    let plzen = pop(&mut b, "Plzen", 49.75, 13.38);
    let berlin = pop(&mut b, "Berlin", 52.52, 13.40);
    let dresden = pop(&mut b, "Dresden", 51.05, 13.74);
    let munich = pop(&mut b, "Munich", 48.14, 11.58);
    let nuremberg = pop(&mut b, "Nuremberg", 49.45, 11.08);
    let vienna = pop(&mut b, "Vienna", 48.21, 16.37);
    let linz = pop(&mut b, "Linz", 48.31, 14.29);
    let graz = pop(&mut b, "Graz", 47.07, 15.44);
    let bratislava = pop(&mut b, "Bratislava", 48.15, 17.11);
    let gyor = pop(&mut b, "Gyor", 47.69, 17.63);
    let veszprem = pop(&mut b, "Veszprem", 47.09, 17.91);
    let budapest = pop(&mut b, "Budapest", 47.50, 19.04);
    let szeged = pop(&mut b, "Szeged", 46.25, 20.15);
    let krakow = pop(&mut b, "Krakow", 50.06, 19.94);
    let katowice = pop(&mut b, "Katowice", 50.26, 19.02);
    let wroclaw = pop(&mut b, "Wroclaw", 51.11, 17.04);
    let warsaw = pop(&mut b, "Warsaw", 52.23, 21.01);
    let zagreb = pop(&mut b, "Zagreb", 45.82, 15.98);
    let ljubljana = pop(&mut b, "Ljubljana", 46.06, 14.51);
    // Western and south-eastern extensions push the diameter past the
    // paper's 10 ms corpus filter while keeping the grid character.
    let frankfurt = pop(&mut b, "Frankfurt", 50.11, 8.68);
    let amsterdam = pop(&mut b, "Amsterdam", 52.37, 4.90);
    let bucharest = pop(&mut b, "Bucharest", 44.43, 26.10);
    let sofia = pop(&mut b, "Sofia", 42.70, 23.32);
    const TRUNK: f64 = 10_000.0;
    const SPUR: f64 = 2_500.0;
    for (a, z, c) in [
        // Czech core
        (prague, brno, TRUNK),
        (prague, plzen, SPUR),
        (plzen, nuremberg, SPUR),
        (prague, dresden, TRUNK),
        (brno, ostrava, TRUNK),
        (brno, vienna, TRUNK),
        (ostrava, katowice, TRUNK),
        // German flank
        (berlin, dresden, TRUNK),
        (berlin, warsaw, TRUNK),
        (dresden, wroclaw, TRUNK),
        (munich, nuremberg, SPUR),
        (nuremberg, prague, TRUNK),
        (munich, linz, TRUNK),
        (munich, vienna, TRUNK),
        // Austrian core
        (linz, vienna, TRUNK),
        (linz, graz, SPUR),
        (graz, vienna, TRUNK),
        (graz, zagreb, TRUNK),
        (graz, ljubljana, SPUR),
        // The Figure-5 neighbourhood: Vienna-Bratislava-Gyor-Veszprem-Budapest
        (vienna, bratislava, TRUNK),
        (bratislava, gyor, TRUNK),
        (gyor, budapest, TRUNK),
        (gyor, veszprem, SPUR),
        (veszprem, budapest, SPUR),
        (vienna, gyor, TRUNK),
        // Hungarian + southern ring
        (budapest, szeged, SPUR),
        (szeged, zagreb, TRUNK),
        (zagreb, ljubljana, TRUNK),
        (ljubljana, vienna, TRUNK),
        (budapest, krakow, TRUNK),
        // Polish mesh
        (krakow, katowice, SPUR),
        (katowice, wroclaw, TRUNK),
        (wroclaw, warsaw, TRUNK),
        (krakow, warsaw, TRUNK),
        (bratislava, budapest, TRUNK),
        // Western extension
        (frankfurt, nuremberg, SPUR),
        (frankfurt, munich, TRUNK),
        (amsterdam, frankfurt, TRUNK),
        (amsterdam, berlin, TRUNK),
        // South-eastern extension
        (bucharest, budapest, TRUNK),
        (bucharest, szeged, SPUR),
        (sofia, bucharest, TRUNK),
        (sofia, szeged, TRUNK),
    ] {
        // Terrestrial fibre in central Europe detours well above the great
        // circle (REPETITA's computed latencies show the same); 1.35 is a
        // typical route factor and keeps the diameter above the paper's
        // 10 ms corpus filter.
        let delay = b.location_of(a).delay_ms_to(&b.location_of(z)) * 1.35;
        b.connect_with_delay(a, z, delay.max(0.05), c);
    }
    b.build()
}

/// Cogent-like two-continent backbone: 26 PoPs, dense meshes on both sides
/// of the Atlantic plus four 100 Gb/s submarine cables.
pub fn cogent_like() -> Topology {
    let mut b = TopologyBuilder::new("Cogent-like");
    // US side.
    let sea = pop(&mut b, "Seattle", 47.61, -122.33);
    let sfo = pop(&mut b, "SanFrancisco", 37.77, -122.42);
    let lax = pop(&mut b, "LosAngeles", 34.05, -118.24);
    let phx = pop(&mut b, "Phoenix", 33.45, -112.07);
    let den = pop(&mut b, "Denver", 39.74, -104.99);
    let dal = pop(&mut b, "Dallas", 32.78, -96.80);
    let hou = pop(&mut b, "Houston", 29.76, -95.37);
    let chi = pop(&mut b, "Chicago", 41.88, -87.63);
    let atl = pop(&mut b, "Atlanta", 33.75, -84.39);
    let mia = pop(&mut b, "Miami", 25.76, -80.19);
    let was = pop(&mut b, "WashingtonDC", 38.91, -77.04);
    let nyc = pop(&mut b, "NewYork", 40.71, -74.01);
    let bos = pop(&mut b, "Boston", 42.36, -71.06);
    // EU side.
    let lon = pop(&mut b, "London", 51.51, -0.13);
    let par = pop(&mut b, "Paris", 48.86, 2.35);
    let ams = pop(&mut b, "Amsterdam", 52.37, 4.90);
    let bru = pop(&mut b, "Brussels", 50.85, 4.35);
    let fra = pop(&mut b, "Frankfurt", 50.11, 8.68);
    let zur = pop(&mut b, "Zurich", 47.38, 8.54);
    let mil = pop(&mut b, "Milan", 45.46, 9.19);
    let mad = pop(&mut b, "Madrid", 40.42, -3.70);
    let bar = pop(&mut b, "Barcelona", 41.39, 2.17);
    let mun = pop(&mut b, "Munich", 48.14, 11.58);
    let vie = pop(&mut b, "Vienna", 48.21, 16.37);
    let pra = pop(&mut b, "Prague", 50.08, 14.44);
    let ham = pop(&mut b, "Hamburg", 53.55, 9.99);
    const T: f64 = 40_000.0; // continental trunk
    const S: f64 = 10_000.0; // regional
    for (a, z, c) in [
        // US mesh
        (sea, sfo, T),
        (sea, den, T),
        (sea, chi, T),
        (sfo, lax, T),
        (sfo, den, T),
        (lax, phx, S),
        (phx, dal, S),
        (lax, dal, T),
        (den, dal, S),
        (den, chi, T),
        (dal, hou, S),
        (hou, atl, S),
        (dal, atl, T),
        (chi, nyc, T),
        (chi, was, T),
        (atl, was, T),
        (atl, mia, S),
        (mia, was, S),
        (was, nyc, T),
        (nyc, bos, S),
        (chi, bos, S),
        // EU mesh
        (lon, par, T),
        (lon, ams, T),
        (lon, bru, S),
        (par, bru, S),
        (bru, ams, S),
        (ams, fra, T),
        (ams, ham, S),
        (ham, fra, S),
        (par, fra, T),
        (par, mad, T),
        (mad, bar, S),
        (bar, mil, S),
        (par, zur, S),
        (zur, fra, S),
        (zur, mil, S),
        (mil, mun, S),
        (fra, mun, S),
        (mun, vie, S),
        (vie, pra, S),
        (pra, fra, S),
        (ham, pra, S),
        // Transatlantic
        (nyc, lon, 100_000.0),
        (bos, ams, 100_000.0),
        (was, par, 100_000.0),
        (mia, mad, 100_000.0),
    ] {
        b.connect(a, z, c);
    }
    b.build()
}

/// Google-B4-like global WAN: 18 PoPs on five continents, every PoP with
/// degree >= 3 and rich shortcut structure. This is the Figure-19 datapoint
/// (the paper measures LLPD = 0.875 on Google's real topology).
pub fn google_like() -> Topology {
    let mut b = TopologyBuilder::new("GoogleB4-like");
    let sea = pop(&mut b, "Seattle", 47.61, -122.33);
    let sfo = pop(&mut b, "SanFrancisco", 37.77, -122.42);
    let lax = pop(&mut b, "LosAngeles", 34.05, -118.24);
    let dal = pop(&mut b, "Dallas", 32.78, -96.80);
    let chi = pop(&mut b, "Chicago", 41.88, -87.63);
    let nyc = pop(&mut b, "NewYork", 40.71, -74.01);
    let sao = pop(&mut b, "SaoPaulo", -23.55, -46.63);
    let lon = pop(&mut b, "London", 51.51, -0.13);
    let par = pop(&mut b, "Paris", 48.86, 2.35);
    let fra = pop(&mut b, "Frankfurt", 50.11, 8.68);
    let sto = pop(&mut b, "Stockholm", 59.33, 18.07);
    let mum = pop(&mut b, "Mumbai", 19.08, 72.88);
    let sin = pop(&mut b, "Singapore", 1.35, 103.82);
    let hkg = pop(&mut b, "HongKong", 22.32, 114.17);
    let tpe = pop(&mut b, "Taipei", 25.03, 121.57);
    let tok = pop(&mut b, "Tokyo", 35.68, 139.65);
    let syd = pop(&mut b, "Sydney", -33.87, 151.21);
    let jnb = pop(&mut b, "Johannesburg", -26.20, 28.05);
    const C: f64 = 100_000.0;
    for (a, z) in [
        // North America ring + chords
        (sea, sfo),
        (sfo, lax),
        (lax, dal),
        (dal, chi),
        (chi, nyc),
        (sea, chi),
        (sfo, dal),
        (lax, chi),
        (dal, nyc),
        // South America
        (sao, nyc),
        (sao, lax),
        (sao, jnb),
        // Atlantic
        (nyc, lon),
        (nyc, par),
        (chi, lon),
        // Europe mesh
        (lon, par),
        (par, fra),
        (lon, fra),
        (fra, sto),
        (lon, sto),
        (par, sto),
        // Europe - Asia / Africa
        (fra, mum),
        (par, jnb),
        (lon, mum),
        // Asia mesh
        (mum, sin),
        (sin, hkg),
        (hkg, tpe),
        (tpe, tok),
        (sin, tpe),
        (hkg, tok),
        (mum, hkg),
        // Pacific
        (tok, sea),
        (tok, sfo),
        (tpe, lax),
        (sin, syd),
        (syd, lax),
        (syd, tok),
        (jnb, mum),
    ] {
        b.connect(a, z, C);
    }
    b.build()
}

/// GÉANT-like European research backbone: 24 PoPs, the ring-with-chords
/// shape typical of NREN networks — mid-range LLPD, between the rings and
/// the grids of the corpus.
pub fn geant_like() -> Topology {
    let mut b = TopologyBuilder::new("Geant-like");
    let lis = pop(&mut b, "Lisbon", 38.72, -9.14);
    let mad = pop(&mut b, "Madrid", 40.42, -3.70);
    let par = pop(&mut b, "Paris", 48.86, 2.35);
    let lon = pop(&mut b, "London", 51.51, -0.13);
    let bru = pop(&mut b, "Brussels", 50.85, 4.35);
    let ams = pop(&mut b, "Amsterdam", 52.37, 4.90);
    let ham = pop(&mut b, "Hamburg", 53.55, 9.99);
    let cop = pop(&mut b, "Copenhagen", 55.68, 12.57);
    let sto = pop(&mut b, "Stockholm", 59.33, 18.07);
    let hel = pop(&mut b, "Helsinki", 60.17, 24.94);
    let tal = pop(&mut b, "Tallinn", 59.44, 24.75);
    let rig = pop(&mut b, "Riga", 56.95, 24.11);
    let war = pop(&mut b, "Warsaw", 52.23, 21.01);
    let pra = pop(&mut b, "Prague", 50.08, 14.44);
    let vie = pop(&mut b, "Vienna", 48.21, 16.37);
    let bud = pop(&mut b, "Budapest", 47.50, 19.04);
    let buc = pop(&mut b, "Bucharest", 44.43, 26.10);
    let sof = pop(&mut b, "Sofia", 42.70, 23.32);
    let ath = pop(&mut b, "Athens", 37.98, 23.73);
    let mil = pop(&mut b, "Milan", 45.46, 9.19);
    let mar = pop(&mut b, "Marseille", 43.30, 5.37);
    let gen = pop(&mut b, "Geneva", 46.20, 6.14);
    let fra = pop(&mut b, "Frankfurt", 50.11, 8.68);
    let dub = pop(&mut b, "Dublin", 53.35, -6.26);
    const T: f64 = 100_000.0;
    const S: f64 = 10_000.0;
    for (a, z, c) in [
        // Western ring
        (lis, mad, S),
        (mad, mar, T),
        (mar, mil, T),
        (mad, par, T),
        (par, lon, T),
        (lon, dub, S),
        (dub, ams, S),
        (par, bru, S),
        (bru, ams, S),
        (ams, ham, T),
        (ams, fra, T),
        (par, gen, T),
        (gen, mil, T),
        (gen, fra, T),
        // Northern arc
        (ham, cop, S),
        (cop, sto, T),
        (sto, hel, T),
        (hel, tal, S),
        (tal, rig, S),
        (rig, war, S),
        // Central / eastern
        (fra, pra, T),
        (ham, war, T),
        (war, pra, S),
        (pra, vie, S),
        (fra, vie, T),
        (vie, bud, S),
        (bud, buc, S),
        (buc, sof, S),
        (sof, ath, S),
        (mil, vie, S),
        (ath, mil, T), // submarine
        (lis, lon, T), // Atlantic coastal
    ] {
        b.connect(a, z, c);
    }
    b.build()
}

/// NSFNET T3 backbone (1992): 14 PoPs, the canonical research topology —
/// sparse, almost tree-like with a few cross-country loops (low LLPD).
pub fn nsfnet() -> Topology {
    let mut b = TopologyBuilder::new("NSFNET");
    let sea = pop(&mut b, "Seattle", 47.61, -122.33);
    let pal = pop(&mut b, "PaloAlto", 37.44, -122.14);
    let sd = pop(&mut b, "SanDiego", 32.72, -117.16);
    let slc = pop(&mut b, "SaltLake", 40.76, -111.89);
    let bou = pop(&mut b, "Boulder", 40.01, -105.27);
    let hou = pop(&mut b, "Houston", 29.76, -95.37);
    let lin = pop(&mut b, "Lincoln", 40.81, -96.68);
    let cha = pop(&mut b, "Champaign", 40.12, -88.24);
    let ann = pop(&mut b, "AnnArbor", 42.28, -83.74);
    let pit = pop(&mut b, "Pittsburgh", 40.44, -79.996);
    let atl = pop(&mut b, "Atlanta", 33.75, -84.39);
    let cp = pop(&mut b, "CollegePark", 38.99, -76.94);
    let pri = pop(&mut b, "Princeton", 40.36, -74.66);
    let ith = pop(&mut b, "Ithaca", 42.44, -76.50);
    const C: f64 = 2_500.0; // T3-era scaled up to stay meaningful
    for (a, z) in [
        (sea, pal),
        (sea, slc),
        (pal, sd),
        (pal, slc),
        (sd, hou),
        (slc, bou),
        (bou, lin),
        (bou, hou),
        (lin, cha),
        (hou, atl),
        (cha, ann),
        (cha, atl),
        (ann, ith),
        (ann, pit),
        (pit, cp),
        (pit, ith),
        (atl, cp),
        (cp, pri),
        (pri, ith),
    ] {
        b.connect(a, z, C);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ZooClass;

    #[test]
    fn all_named_build_and_connect() {
        for t in [abilene(), gts_like(), cogent_like(), google_like(), geant_like(), nsfnet()] {
            assert!(t.graph().is_strongly_connected(), "{}", t.name());
            assert_eq!(ZooClass::of(&t), ZooClass::Named);
        }
    }

    #[test]
    fn geant_like_shape() {
        let t = geant_like();
        assert_eq!(t.pop_count(), 24);
        assert!(t.diameter_ms() > 10.0, "Lisbon-Helsinki spans Europe");
        // Ring-with-chords: mean cable-degree between tree (2(n-1)/n) and grid.
        let mean_degree = t.link_count() as f64 / t.pop_count() as f64;
        assert!(mean_degree > 2.2 && mean_degree < 3.5, "got {mean_degree}");
    }

    #[test]
    fn nsfnet_shape() {
        let t = nsfnet();
        assert_eq!(t.pop_count(), 14);
        assert_eq!(t.cables().len(), 19);
        assert!(t.diameter_ms() > 10.0, "coast to coast");
    }

    #[test]
    fn abilene_shape() {
        let t = abilene();
        assert_eq!(t.pop_count(), 11);
        assert_eq!(t.cables().len(), 14);
        // Coast-to-coast delay is continental scale.
        assert!(t.diameter_ms() > 10.0);
    }

    #[test]
    fn gts_contains_figure5_neighbourhood() {
        let t = gts_like();
        for name in ["Vienna", "Bratislava", "Gyor", "Veszprem", "Budapest"] {
            assert!(t.pop_by_name(name).is_some(), "missing {name}");
        }
        let v = t.pop_by_name("Veszprem").unwrap();
        let g = t.pop_by_name("Gyor").unwrap();
        assert!(t.graph().find_link(v, g).is_some(), "Figure-5 V-G link missing");
    }

    #[test]
    fn cogent_has_transatlantic_cables() {
        let t = cogent_like();
        let nyc = t.pop_by_name("NewYork").unwrap();
        let lon = t.pop_by_name("London").unwrap();
        let l = t.graph().find_link(nyc, lon).unwrap();
        assert_eq!(t.graph().link(l).capacity_mbps, 100_000.0);
        assert!(t.graph().link(l).delay_ms > 25.0, "transatlantic delay");
    }

    #[test]
    fn google_like_is_dense_and_global() {
        let t = google_like();
        assert!(t.diameter_ms() > 80.0, "global reach");
        // Every PoP should have degree >= 3 (cable-level).
        for p in t.graph().nodes() {
            assert!(t.graph().out_links(p).len() >= 3, "{} has degree < 3", t.pop_name(p));
        }
    }
}
