//! Traffic-matrix load scaling (§3).
//!
//! The paper scales each matrix "so that with optimal routing it is still
//! (just) possible to route the network without congestion if all traffic
//! increases by 30%", i.e. the min-cut (MinMax-optimal maximum utilization)
//! sits at 1/1.3 ≈ 0.77. Because utilization is linear in volume, one
//! MinMax solve gives the scale factor: `target / U*(tm)`.

use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::Topology;

use crate::pathgrow::GrowRequest;
use crate::pathset::PathCache;
use crate::schemes::SchemeError;
use crate::source::PathSource;

/// Maximum-utilization level of `tm` on `topology` under (pure) MinMax
/// routing — the paper's "min-cut load" of a traffic matrix.
pub fn min_cut_load(topology: &Topology, tm: &TrafficMatrix) -> Result<f64, SchemeError> {
    let cache = PathCache::new(topology.graph());
    min_cut_load_with_cache(&cache, tm)
}

/// As [`min_cut_load`], reusing any [`PathSource`].
pub fn min_cut_load_with_cache(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
) -> Result<f64, SchemeError> {
    let out = GrowRequest::new(source, tm).minmax(None).solve()?;
    // MinMax reports omax = max(U-1, 0); recover U from the placement.
    let graph = source.graph();
    let loads = out.placement.link_loads(graph, tm);
    let u =
        graph.link_ids().map(|l| loads[l.idx()] / graph.link(l).capacity_mbps).fold(0.0, f64::max);
    Ok(u)
}

/// Extension: scale a matrix so its min-cut load hits `target` (0.7 in most
/// of the paper's figures, 0.6 in Figure 8).
pub trait ScaleToLoad {
    /// Returns a scaled copy with MinMax-optimal max utilization ≈ `target`.
    ///
    /// # Panics
    /// Panics if `target` is not in (0, 1] or the LP fails (the synthetic
    /// corpus never triggers the latter).
    fn scaled_to_load(&self, topology: &Topology, target: f64) -> TrafficMatrix;
}

impl ScaleToLoad for TrafficMatrix {
    fn scaled_to_load(&self, topology: &Topology, target: f64) -> TrafficMatrix {
        assert!(target > 0.0 && target <= 1.0, "target load {target}");
        let u = min_cut_load(topology, self).expect("MinMax LP failed during scaling");
        assert!(u > 0.0, "matrix has no load");
        self.scaled(target / u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_tmgen::{GravityTmGen, TmGenConfig};
    use lowlat_topology::zoo::named;

    #[test]
    fn scaling_hits_target_utilization() {
        let topo = named::abilene();
        let gen = GravityTmGen::new(TmGenConfig::default());
        let tm = gen.generate(&topo, 0).scaled_to_load(&topo, 0.7);
        let u = min_cut_load(&topo, &tm).unwrap();
        assert!((u - 0.7).abs() < 0.02, "min-cut load {u}");
    }

    #[test]
    fn linear_in_volume() {
        let topo = named::abilene();
        let gen = GravityTmGen::new(TmGenConfig::default());
        let tm = gen.generate(&topo, 1);
        let u1 = min_cut_load(&topo, &tm).unwrap();
        let u2 = min_cut_load(&topo, &tm.scaled(2.0)).unwrap();
        assert!((u2 - 2.0 * u1).abs() < 0.02 * u2.max(1.0), "{u1} vs {u2}");
    }
}
