//! Differentiated traffic classes — the §8 extension the paper sketches:
//! "split aggregates according to priority, and modify the LP constraints
//! and weights so as to prioritize giving low latency paths to flows that
//! will benefit most."
//!
//! Mechanically, a class is a multiplier on an aggregate's weight in the
//! Figure-12 delay objective: when two aggregates compete for a short path
//! and one must detour, the LP detours the one whose delay counts less.
//! Capacity constraints are untouched — priority buys *latency*, not
//! bandwidth.

use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::Topology;

use crate::pathgrow::{GrowOutcome, GrowRequest, GrowthConfig};
use crate::pathset::PathCache;
use crate::schemes::SchemeError;

/// Priority of an aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Telephony/gaming-grade: delay weighted `sensitive_weight`×.
    LatencySensitive,
    /// Bulk transfer: weight 1.
    BestEffort,
}

/// Configuration for [`place_with_classes`].
#[derive(Clone, Debug)]
pub struct ClassConfig {
    /// Objective multiplier for latency-sensitive aggregates (>= 1).
    pub sensitive_weight: f64,
    /// LP/growth knobs (headroom etc.).
    pub growth: GrowthConfig,
}

impl Default for ClassConfig {
    fn default() -> Self {
        ClassConfig { sensitive_weight: 50.0, growth: GrowthConfig::default() }
    }
}

/// Latency-optimal placement with per-aggregate priorities. `classes` is
/// aligned with `tm.aggregates()`.
///
/// # Panics
/// Panics on misaligned input or a weight below 1.
pub fn place_with_classes(
    topology: &Topology,
    tm: &TrafficMatrix,
    classes: &[TrafficClass],
    config: &ClassConfig,
) -> Result<GrowOutcome, SchemeError> {
    assert_eq!(classes.len(), tm.aggregates().len(), "one class per aggregate");
    assert!(config.sensitive_weight >= 1.0);
    let cache = PathCache::new(topology.graph());
    let weights: Vec<f64> = classes
        .iter()
        .map(|c| match c {
            TrafficClass::LatencySensitive => config.sensitive_weight,
            TrafficClass::BestEffort => 1.0,
        })
        .collect();
    Ok(GrowRequest::new(&cache, tm).class_weights(&weights).config(&config.growth).solve()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, TopologyBuilder};

    /// Two aggregates share a bottleneck; exactly one can stay on the short
    /// path. Priority must decide which.
    fn contested() -> (Topology, TrafficMatrix) {
        let mut b = TopologyBuilder::new("contest");
        let s1 = b.add_pop("S1", GeoPoint::new(40.0, -100.0));
        let s2 = b.add_pop("S2", GeoPoint::new(42.0, -100.0));
        let j1 = b.add_pop("J1", GeoPoint::new(41.0, -99.0));
        let j2 = b.add_pop("J2", GeoPoint::new(41.0, -96.0));
        let t1 = b.add_pop("T1", GeoPoint::new(40.0, -95.0));
        let t2 = b.add_pop("T2", GeoPoint::new(42.0, -95.0));
        b.connect_with_delay(s1, j1, 1.0, 200.0);
        b.connect_with_delay(s2, j1, 1.0, 200.0);
        b.connect_with_delay(j1, j2, 1.0, 100.0); // bottleneck
        b.connect_with_delay(j2, t1, 1.0, 200.0);
        b.connect_with_delay(j2, t2, 1.0, 200.0);
        // Both detours cost the same (+7 ms), so only priority can break
        // the tie... almost: identical detour costs mean the plain LP is
        // indifferent; weights make it decisive.
        b.connect_with_delay(s1, t1, 10.0, 200.0);
        b.connect_with_delay(s2, t2, 10.0, 200.0);
        let topo = b.build();
        let tm = TrafficMatrix::new(vec![
            Aggregate { src: s1, dst: t1, volume_mbps: 80.0, flow_count: 16 },
            Aggregate { src: s2, dst: t2, volume_mbps: 80.0, flow_count: 16 },
        ]);
        (topo, tm)
    }

    #[test]
    fn sensitive_aggregate_keeps_the_short_path() {
        let (topo, tm) = contested();
        // Mark aggregate 1 (S2->T2) latency-sensitive.
        let classes = [TrafficClass::BestEffort, TrafficClass::LatencySensitive];
        let out = place_with_classes(&topo, &tm, &classes, &ClassConfig::default()).unwrap();
        assert!(out.omax <= 1e-7, "fits: 100 through bottleneck + detours");
        let sensitive = out.placement.aggregate(1).mean_delay_ms();
        let best_effort = out.placement.aggregate(0).mean_delay_ms();
        assert!(
            sensitive < best_effort,
            "priority must win the short path: sensitive {sensitive} vs BE {best_effort}"
        );
        assert!((sensitive - 3.0).abs() < 0.2, "sensitive stays at ~3 ms, got {sensitive}");
    }

    #[test]
    fn flipping_the_classes_flips_the_outcome() {
        let (topo, tm) = contested();
        let classes = [TrafficClass::LatencySensitive, TrafficClass::BestEffort];
        let out = place_with_classes(&topo, &tm, &classes, &ClassConfig::default()).unwrap();
        let sensitive = out.placement.aggregate(0).mean_delay_ms();
        let best_effort = out.placement.aggregate(1).mean_delay_ms();
        assert!(sensitive < best_effort);
    }

    #[test]
    fn priority_buys_latency_not_bandwidth() {
        // Everything still has to fit: capacity rows are class-blind.
        let (topo, tm) = contested();
        let classes = [TrafficClass::LatencySensitive, TrafficClass::LatencySensitive];
        let out = place_with_classes(&topo, &tm, &classes, &ClassConfig::default()).unwrap();
        assert!(out.omax <= 1e-7);
        let loads = out.placement.link_loads(topo.graph(), &tm);
        for l in topo.graph().link_ids() {
            assert!(loads[l.idx()] <= topo.graph().link(l).capacity_mbps * (1.0 + 1e-6));
        }
    }

    #[test]
    fn equal_weights_reduce_to_plain_latopt() {
        let (topo, tm) = contested();
        let classes = [TrafficClass::BestEffort, TrafficClass::BestEffort];
        let weighted = place_with_classes(&topo, &tm, &classes, &ClassConfig::default()).unwrap();
        let cache = PathCache::new(topo.graph());
        let plain = GrowRequest::new(&cache, &tm).solve().unwrap();
        let total = |o: &GrowOutcome| -> f64 {
            o.placement.per_aggregate().iter().map(|p| p.mean_delay_ms()).sum()
        };
        assert!((total(&weighted) - total(&plain)).abs() < 1e-6);
    }
}
