//! Topology growth guided by LLPD (§8, Figure 20).
//!
//! "Of all the links to be possibly added, we add the one that gives the
//! greatest increase in LLPD. We then repeat this process until the number
//! of links has increased by 5%." Candidate enumeration over all O(n²)
//! absent cables is priced down by scoring pairs first: a cable is only
//! worth evaluating when today's shortest path detours far above the
//! geographic direct line, so we evaluate the top `candidate_limit` by
//! detour ratio.

use lowlat_netgraph::all_pairs_delays;
use lowlat_topology::{PopId, Topology};

use crate::llpd::{LlpdAnalysis, LlpdConfig};

/// Configuration for [`grow_by_llpd`].
#[derive(Clone, Debug)]
pub struct GrowthPlanConfig {
    /// Target relative increase in cable count (paper: 0.05).
    pub link_increase: f64,
    /// Candidates (by detour-ratio score) evaluated per added cable.
    pub candidate_limit: usize,
    /// Capacity assigned to new cables (Mbps).
    pub new_cable_capacity: f64,
    /// LLPD evaluation parameters.
    pub llpd: LlpdConfig,
}

impl Default for GrowthPlanConfig {
    fn default() -> Self {
        GrowthPlanConfig {
            link_increase: 0.05,
            candidate_limit: 24,
            new_cable_capacity: 40_000.0,
            llpd: LlpdConfig::default(),
        }
    }
}

/// Result of the growth procedure.
#[derive(Clone, Debug)]
pub struct GrowthPlan {
    /// The grown topology.
    pub topology: Topology,
    /// Cables added, in order, with the LLPD after each addition.
    pub added: Vec<((PopId, PopId), f64)>,
    /// LLPD before any addition.
    pub initial_llpd: f64,
}

/// Greedily adds the cables that increase LLPD the most until the cable
/// count grew by `config.link_increase` (at least one cable).
pub fn grow_by_llpd(topology: &Topology, config: &GrowthPlanConfig) -> GrowthPlan {
    let initial_llpd = LlpdAnalysis::compute(topology, &config.llpd).llpd();
    let target_new =
        ((topology.cables().len() as f64 * config.link_increase).ceil() as usize).max(1);

    let mut current = topology.clone();
    let mut added = Vec::new();
    for _ in 0..target_new {
        let Some((pair, llpd)) = best_addition(&current, config) else {
            break; // graph is complete
        };
        current = current.with_added_cable(pair.0, pair.1, config.new_cable_capacity);
        added.push((pair, llpd));
    }
    GrowthPlan { topology: current, added, initial_llpd }
}

/// Evaluates the most promising absent cables and returns the best by LLPD.
fn best_addition(topology: &Topology, config: &GrowthPlanConfig) -> Option<((PopId, PopId), f64)> {
    let graph = topology.graph();
    let delays = all_pairs_delays(graph);
    // Score absent pairs by detour ratio: current shortest delay over the
    // would-be direct cable delay.
    let mut candidates: Vec<(f64, (PopId, PopId))> = Vec::new();
    for (s, d) in topology.unordered_pairs() {
        if graph.find_link(s, d).is_some() {
            continue;
        }
        let direct = topology.location(s).delay_ms_to(&topology.location(d)).max(0.05);
        let via_network = delays[s.idx()][d.idx()];
        candidates.push((via_network / direct, (s, d)));
    }
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    candidates.truncate(config.candidate_limit);

    let mut best: Option<((PopId, PopId), f64)> = None;
    for (_, pair) in candidates {
        let grown = topology.with_added_cable(pair.0, pair.1, config.new_cable_capacity);
        let llpd = LlpdAnalysis::compute(&grown, &config.llpd).llpd();
        if best.as_ref().is_none_or(|&(_, b)| llpd > b) {
            best = Some((pair, llpd));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_topology::zoo::named;
    use lowlat_topology::{GeoPoint, TopologyBuilder};

    #[test]
    fn growing_a_chain_helps_llpd() {
        // A zig-zag 5-node chain has LLPD 0; added chords create viable
        // alternates (matched capacity, modest geometric stretch).
        let mut b = TopologyBuilder::new("chain5");
        let mut prev = b.add_pop("p0", GeoPoint::new(45.0, 5.0));
        for i in 1..5 {
            let lat = if i % 2 == 0 { 45.0 } else { 46.5 };
            let p = b.add_pop(format!("p{i}"), GeoPoint::new(lat, 5.0 + 3.0 * i as f64));
            b.connect(prev, p, 10_000.0);
            prev = p;
        }
        let topo = b.build();
        let plan = grow_by_llpd(
            &topo,
            &GrowthPlanConfig {
                link_increase: 0.5,
                new_cable_capacity: 10_000.0,
                ..Default::default()
            },
        );
        assert_eq!(plan.initial_llpd, 0.0);
        assert_eq!(plan.added.len(), 2, "ceil(4 * 0.5) = 2 cables");
        let final_llpd = plan.added.last().unwrap().1;
        assert!(final_llpd > 0.0, "additions must raise LLPD");
        assert_eq!(plan.topology.cables().len(), 6);
    }

    #[test]
    fn llpd_never_decreases_along_plan() {
        let topo = named::abilene();
        let plan = grow_by_llpd(
            &topo,
            &GrowthPlanConfig { link_increase: 0.15, candidate_limit: 12, ..Default::default() },
        );
        let mut last = plan.initial_llpd;
        for &(_, llpd) in &plan.added {
            assert!(llpd >= last - 1e-9, "greedy choice dropped LLPD: {last} -> {llpd}");
            last = llpd;
        }
    }

    #[test]
    fn clique_cannot_grow() {
        let mut b = TopologyBuilder::new("k3");
        let p0 = b.add_pop("a", GeoPoint::new(40.0, 0.0));
        let p1 = b.add_pop("b", GeoPoint::new(41.0, 1.0));
        let p2 = b.add_pop("c", GeoPoint::new(42.0, 0.0));
        b.connect(p0, p1, 1000.0);
        b.connect(p1, p2, 1000.0);
        b.connect(p0, p2, 1000.0);
        let topo = b.build();
        let plan = grow_by_llpd(&topo, &GrowthPlanConfig::default());
        assert!(plan.added.is_empty(), "no absent cables in a clique");
    }
}
