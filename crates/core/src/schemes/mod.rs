//! The routing schemes the paper evaluates (§3, §5, §6).
//!
//! All schemes implement [`RoutingScheme`] and produce a best-effort
//! [`Placement`] even when the traffic cannot fit — congestion is a property
//! the evaluator measures (as in the paper's figures), not an error. Errors
//! are reserved for genuine solver failures.
//!
//! | scheme | paper role |
//! |---|---|
//! | [`sp::ShortestPathRouting`] | OSPF/IS-IS with delay-proportional costs (Figure 3) |
//! | [`ecmp::EcmpRouting`] | deployed OSPF/IS-IS: even splits over equal-cost shortest paths |
//! | [`b4::B4Routing`] | greedy progressive filling à la B4 (Figure 4b) |
//! | [`mpls::MplsAutoBandwidth`] | sequential MPLS-TE auto-bandwidth, the §3 "one aggregate at a time" greedy |
//! | [`minmax::MinMaxRouting`] | MinMax utilization, latency tie-break; optional k-shortest limit (Figures 4c, 4d) |
//! | [`latopt::LatencyOptimal`] | the Figure-12 LP with Figure-13 path growth (Figure 4a) |
//! | [`ldr::Ldr`] | LDR: latency-optimal + automatic headroom via Figure 14 |
//! | [`linkbased::LinkBasedOptimal`] | link-based MCF formulation (the slow baseline of Figure 15) |

pub mod b4;
pub mod ecmp;
pub mod latopt;
pub mod ldr;
pub mod linkbased;
pub mod minmax;
pub mod mpls;
pub mod registry;
pub mod sp;

use lowlat_linprog::LpError;
use lowlat_tmgen::{Aggregate, TrafficMatrix};
use lowlat_topology::Topology;
use lowlat_traffic::{AggregateTrace, Predictor};

use crate::pathset::PathCache;
use crate::placement::Placement;
use crate::source::PathSource;

pub use crate::pathgrow::SolveContext;

/// Algorithm-1 next-minute demand predictions, one per trace (aligned with
/// the matrix aggregates). The conservative estimator feeds both LDR's
/// Figure-14 loop and the default history-driven re-placement of every
/// other scheme in the timeline controller.
pub fn predict_volumes(history: &[AggregateTrace]) -> Vec<f64> {
    history
        .iter()
        .map(|tr| {
            let means = tr.minute_means();
            let mut p = Predictor::new(means[0]);
            for &m in &means[1..] {
                p.observe(m);
            }
            p.prediction()
        })
        .collect()
}

/// The matrix with each aggregate's volume replaced by its prediction.
fn predicted_matrix(tm: &TrafficMatrix, history: &[AggregateTrace]) -> TrafficMatrix {
    assert_eq!(history.len(), tm.aggregates().len(), "one trace per aggregate");
    let volumes = predict_volumes(history);
    TrafficMatrix::new(
        tm.aggregates()
            .iter()
            .zip(&volumes)
            // Floor keeps the aggregate list aligned with the traces:
            // `TrafficMatrix::new` drops zero-volume entries.
            .map(|(a, &v)| Aggregate { volume_mbps: v.max(1e-6), ..*a })
            .collect(),
    )
}

/// Why a scheme failed outright (congestion is *not* a failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeError {
    /// The underlying LP solver failed.
    Solver(LpError),
    /// The link-based formulation was infeasible (demand exceeds capacity);
    /// unlike the path-based schemes it has no overload variables.
    Infeasible,
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::Solver(e) => write!(f, "LP solver: {e}"),
            SchemeError::Infeasible => write!(f, "demand exceeds capacity"),
        }
    }
}

impl std::error::Error for SchemeError {}

impl From<LpError> for SchemeError {
    fn from(e: LpError) -> Self {
        SchemeError::Solver(e)
    }
}

/// A traffic-placement algorithm.
///
/// The trait is object-safe and source-first: the experiment engine hands
/// every scheme the *shared* per-network [`PathSource`] — the flat
/// [`PathCache`] for PoP backbones, the
/// [`PartitionedPathEngine`](crate::hier::PartitionedPathEngine) at
/// Internet scale — so k-shortest-path work done by one scheme (or by the
/// min-cut scaling solve) is reused by every other scheme and matrix on
/// that network: the §5 "readily cached" observation turned into the API.
/// Schemes are requested by name string through [`registry`].
pub trait RoutingScheme: Send + Sync {
    /// Display name matching the paper's legends, parameterization
    /// included ("SP", "B4-h10", "MinMaxK10", "LatOpt", "LDR",
    /// "LinkBased"). Round-trips through [`registry::build`].
    fn name(&self) -> String;

    /// Computes a placement for `tm` on the graph `source` serves, growing
    /// (and reusing) the source's path sets as needed.
    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError>;

    /// As [`RoutingScheme::place`], warm-starting any LPs from `ctx` — the
    /// §5 deployment-cycle hot path. Long-running controllers keep one
    /// [`SolveContext`] per scheme so successive minutes restart from each
    /// other's bases; schemes without an LP core ignore the context.
    fn place_with_context(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        ctx: &mut SolveContext,
    ) -> Result<Placement, SchemeError> {
        let _ = ctx;
        self.place(source, tm)
    }

    /// Places using the measured history: the timeline controller's
    /// per-minute entry point. The default predicts each aggregate's
    /// next-minute demand (Algorithm 1) and re-places the predicted matrix;
    /// LDR overrides this with its full trace-driven Figure-14 loop.
    ///
    /// `history[i]` is the measured trace of `tm.aggregates()[i]` so far.
    ///
    /// # Panics
    /// Panics if `history` is not aligned with the matrix.
    fn place_with_history(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        history: &[AggregateTrace],
        ctx: &mut SolveContext,
    ) -> Result<Placement, SchemeError> {
        if history.is_empty() || history.iter().any(|tr| tr.minutes() == 0) {
            return self.place_with_context(source, tm, ctx);
        }
        self.place_with_context(source, &predicted_matrix(tm, history), ctx)
    }

    /// Convenience for one-shot use: places on `topology` through a fresh,
    /// private flat cache. Experiment loops should build one [`PathSource`]
    /// per network and call [`RoutingScheme::place`] instead.
    fn place_on(&self, topology: &Topology, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        self.place(&PathCache::new(topology.graph()), tm)
    }
}
