//! Link-based multicommodity-flow formulation of latency-optimal routing —
//! the *slow baseline* of Figure 15.
//!
//! The paper notes a link-based model "scales with the product of number of
//! aggregates and number of links" and measures it about two orders of
//! magnitude slower than LDR's path-based iteration. We implement the
//! standard destination-aggregated form (one commodity per destination,
//! flow conservation at every other node): exact for total-delay objectives
//! when flow counts are proportional to volumes — which our tm-gen
//! guarantees — and still dramatically slower than the path-based loop, so
//! the Figure-15 comparison carries over. Unlike the Figure-12 LP it has no
//! overload variables: infeasible demand is an error, not a placement.

use std::collections::HashMap;

use lowlat_linprog::{LpError, Problem, Relation};
use lowlat_netgraph::{FailureMask, Graph, LinkId, NodeId, Path};
use lowlat_tmgen::TrafficMatrix;

use crate::placement::{AggregatePlacement, Placement};
use crate::schemes::{RoutingScheme, SchemeError};
use crate::source::PathSource;

/// How commodities are formed in the MCF model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommodityForm {
    /// One commodity per *destination* — the standard aggregation, exact
    /// for total-delay objectives with `n_a ∝ B_a`, and the form our
    /// Figure-15 numbers use.
    #[default]
    PerDestination,
    /// One commodity per *aggregate* — the paper's literal formulation,
    /// whose size is O(aggregates × links). Only viable on small networks;
    /// provided so the equivalence of the two forms can be tested.
    PerAggregate,
}

/// Latency-optimal routing via a link-based MCF LP.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkBasedOptimal {
    /// Capacity fraction reserved as headroom.
    pub headroom: f64,
    /// Commodity aggregation.
    pub form: CommodityForm,
}

impl LinkBasedOptimal {
    /// Creates the scheme with a headroom fraction (destination-aggregated).
    ///
    /// # Panics
    /// Panics when headroom is outside `[0, 1)`.
    pub fn new(headroom: f64) -> Self {
        assert!((0.0..1.0).contains(&headroom));
        LinkBasedOptimal { headroom, form: CommodityForm::PerDestination }
    }

    /// The paper's literal per-aggregate form (small networks only).
    pub fn per_aggregate(headroom: f64) -> Self {
        assert!((0.0..1.0).contains(&headroom));
        LinkBasedOptimal { headroom, form: CommodityForm::PerAggregate }
    }

    fn solve(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        mask: Option<&FailureMask>,
    ) -> Result<Placement, SchemeError> {
        match self.form {
            CommodityForm::PerDestination => self.solve_per_destination(graph, tm, mask),
            CommodityForm::PerAggregate => self.solve_per_aggregate(graph, tm, mask),
        }
    }

    /// Per-link capacity under the failure overlay: 0 for downed links
    /// (forcing their flow to zero — the MCF sees the failed topology),
    /// the degraded value otherwise.
    fn effective_cap(graph: &Graph, mask: Option<&FailureMask>, l: usize) -> f64 {
        let id = LinkId(l as u32);
        match mask {
            Some(m) => m.effective_capacity(graph, id),
            None => graph.link(id).capacity_mbps,
        }
    }

    /// One commodity per aggregate: variables f[a][l], conservation at
    /// every node per aggregate. O(aggregates × links) variables — the
    /// scaling the paper warns about.
    fn solve_per_aggregate(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        mask: Option<&FailureMask>,
    ) -> Result<Placement, SchemeError> {
        let nl = graph.link_count();
        let na = tm.aggregates().len();
        let mut p = Problem::minimize(na * nl);
        let var = |a: usize, l: usize| a * nl + l;
        for (a, agg) in tm.aggregates().iter().enumerate() {
            // Objective: n_a/B_a * Σ d_l f_al, matching Figure 12's
            // flow-count weighting exactly (no proportionality assumption).
            let w = agg.flow_count as f64 / agg.volume_mbps;
            for l in 0..nl {
                p.set_objective(var(a, l), w * graph.link(LinkId(l as u32)).delay_ms);
            }
            for v in graph.nodes() {
                if v == agg.dst {
                    continue;
                }
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for &l in graph.out_links(v) {
                    coeffs.push((var(a, l.idx()), 1.0));
                }
                for &l in graph.in_links(v) {
                    coeffs.push((var(a, l.idx()), -1.0));
                }
                let supply = if v == agg.src { agg.volume_mbps } else { 0.0 };
                p.add_row(Relation::Eq, supply, &coeffs);
            }
        }
        let cap_scale = 1.0 - self.headroom;
        for l in 0..nl {
            let coeffs: Vec<(usize, f64)> = (0..na).map(|a| (var(a, l), 1.0)).collect();
            p.add_row(Relation::Le, Self::effective_cap(graph, mask, l) * cap_scale, &coeffs);
        }
        let sol = match p.solve() {
            Ok(s) => s,
            Err(LpError::Infeasible) => return Err(SchemeError::Infeasible),
            Err(e) => return Err(SchemeError::Solver(e)),
        };
        let mut per_aggregate = Vec::with_capacity(na);
        for (a, agg) in tm.aggregates().iter().enumerate() {
            let mut flow: Vec<f64> = (0..nl).map(|l| sol.value(var(a, l))).collect();
            let splits = decompose(graph, &mut flow, agg.src, agg.dst, agg.volume_mbps, mask);
            per_aggregate.push(AggregatePlacement { splits });
        }
        Ok(Placement::new(per_aggregate))
    }

    fn solve_per_destination(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        mask: Option<&FailureMask>,
    ) -> Result<Placement, SchemeError> {
        let nl = graph.link_count();

        // Destinations with demand, and demand per (src, dst).
        let mut dests: Vec<NodeId> = tm.aggregates().iter().map(|a| a.dst).collect();
        dests.sort();
        dests.dedup();
        let dest_index: HashMap<NodeId, usize> =
            dests.iter().enumerate().map(|(i, &d)| (d, i)).collect();

        // Variable layout: f[t][l] = var t * nl + l.
        let num_vars = dests.len() * nl;
        let mut p = Problem::minimize(num_vars);
        let var = |t: usize, l: usize| t * nl + l;

        // Objective: total propagation delay = Σ d_l * flow_l (exact for
        // n_a ∝ B_a).
        for (t, _) in dests.iter().enumerate() {
            for l in 0..nl {
                p.set_objective(var(t, l), graph.link(LinkId(l as u32)).delay_ms);
            }
        }
        // Conservation at every node v != t: out - in = supply(v -> t).
        for (t, &dst) in dests.iter().enumerate() {
            for v in graph.nodes() {
                if v == dst {
                    continue;
                }
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for &l in graph.out_links(v) {
                    coeffs.push((var(t, l.idx()), 1.0));
                }
                for &l in graph.in_links(v) {
                    coeffs.push((var(t, l.idx()), -1.0));
                }
                let supply = tm.volume_between(v, dst);
                p.add_row(Relation::Eq, supply, &coeffs);
            }
        }
        // Capacity per link across commodities (0 for failed links: the
        // MCF routes on the failed topology).
        let cap_scale = 1.0 - self.headroom;
        for l in 0..nl {
            let coeffs: Vec<(usize, f64)> = (0..dests.len()).map(|t| (var(t, l), 1.0)).collect();
            p.add_row(Relation::Le, Self::effective_cap(graph, mask, l) * cap_scale, &coeffs);
        }

        let sol = match p.solve() {
            Ok(s) => s,
            Err(LpError::Infeasible) => return Err(SchemeError::Infeasible),
            Err(e) => return Err(SchemeError::Solver(e)),
        };

        // Flow decomposition: per destination, peel paths off the flow
        // support for each source, shortest-delay-first.
        let mut per_aggregate: Vec<AggregatePlacement> = Vec::with_capacity(tm.aggregates().len());
        let mut flows: Vec<Vec<f64>> = dests
            .iter()
            .enumerate()
            .map(|(t, _)| (0..nl).map(|l| sol.value(var(t, l))).collect())
            .collect();
        for agg in tm.aggregates() {
            let t = dest_index[&agg.dst];
            let splits = decompose(graph, &mut flows[t], agg.src, agg.dst, agg.volume_mbps, mask);
            per_aggregate.push(AggregatePlacement { splits });
        }
        Ok(Placement::new(per_aggregate))
    }
}

/// Peels `volume` worth of s->t paths out of a per-link flow vector,
/// lowest-delay paths first. Leftover round-off is assigned to the last
/// path found.
fn decompose(
    graph: &Graph,
    flow: &mut [f64],
    s: NodeId,
    t: NodeId,
    volume: f64,
    failure: Option<&FailureMask>,
) -> Vec<(Path, f64)> {
    let mut remaining = volume;
    let mut out: Vec<(Path, f64)> = Vec::new();
    let eps = volume.max(1.0) * 1e-9;
    while remaining > eps {
        // Shortest path within the flow support.
        let mut mask = lowlat_netgraph::BitSet::new(graph.link_count());
        for l in 0..graph.link_count() {
            if flow[l] <= eps {
                mask.insert(l);
            }
        }
        let Some(path) = lowlat_netgraph::shortest_path(graph, s, t, Some(&mask), None) else {
            break;
        };
        let bottleneck = path.links().iter().map(|&l| flow[l.idx()]).fold(f64::INFINITY, f64::min);
        let take = bottleneck.min(remaining);
        for &l in path.links() {
            flow[l.idx()] -= take;
        }
        out.push((path, take));
        remaining -= take;
    }
    if remaining > eps && !out.is_empty() {
        // Round-off leftovers ride the last peeled path.
        let last = out.len() - 1;
        out[last].1 += remaining;
    } else if out.is_empty() {
        // Degenerate: no flow found (should not happen on feasible LPs);
        // fall back to the (masked) shortest path.
        let path = lowlat_netgraph::shortest_path(
            graph,
            s,
            t,
            failure.and_then(|m| m.link_mask()),
            failure.and_then(|m| m.node_mask()),
        )
        .expect("connected");
        out.push((path, volume));
    }
    let total: f64 = out.iter().map(|(_, v)| v).sum();
    out.into_iter().map(|(p, v)| (p, v / total)).collect()
}

impl RoutingScheme for LinkBasedOptimal {
    fn name(&self) -> String {
        "LinkBased".into()
    }

    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        // The link-based MCF works on raw link flows; it only borrows the
        // source's graph (and failure overlay), never its path sets.
        self.solve(source.graph(), tm, source.failure_mask().as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PlacementEval;
    use crate::schemes::latopt::LatencyOptimal;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{zoo::named, GeoPoint, Topology, TopologyBuilder};

    fn two_path() -> Topology {
        let mut b = TopologyBuilder::new("two");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect_with_delay(a, m, 1.0, 100.0);
        b.connect_with_delay(m, z, 1.0, 100.0);
        b.connect_with_delay(a, n, 3.0, 100.0);
        b.connect_with_delay(n, z, 3.0, 100.0);
        b.build()
    }

    #[test]
    fn matches_path_based_optimum() {
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(3),
            volume_mbps: 150.0,
            flow_count: 30,
        }]);
        let lb = LinkBasedOptimal::default().place_on(&topo, &tm).unwrap();
        let pb = LatencyOptimal::default().place_on(&topo, &tm).unwrap();
        let ev_lb = PlacementEval::evaluate(&topo, &tm, &lb);
        let ev_pb = PlacementEval::evaluate(&topo, &tm, &pb);
        assert!(lb.validate(topo.graph(), &tm).is_ok());
        assert!(
            (ev_lb.latency_stretch() - ev_pb.latency_stretch()).abs() < 1e-4,
            "link-based {} vs path-based {}",
            ev_lb.latency_stretch(),
            ev_pb.latency_stretch()
        );
    }

    #[test]
    fn infeasible_demand_is_an_error() {
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(3),
            volume_mbps: 500.0,
            flow_count: 100,
        }]);
        assert_eq!(
            LinkBasedOptimal::default().place_on(&topo, &tm).unwrap_err(),
            SchemeError::Infeasible
        );
    }

    #[test]
    fn per_aggregate_form_matches_destination_form() {
        // The paper's literal formulation and the aggregated one must find
        // the same optimum when flow counts are proportional to volumes.
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![
            Aggregate { src: NodeId(0), dst: NodeId(3), volume_mbps: 150.0, flow_count: 30 },
            Aggregate { src: NodeId(1), dst: NodeId(3), volume_mbps: 40.0, flow_count: 8 },
        ]);
        let agg_form = LinkBasedOptimal::per_aggregate(0.0).place_on(&topo, &tm).unwrap();
        let dst_form = LinkBasedOptimal::default().place_on(&topo, &tm).unwrap();
        let (e1, e2) = (
            PlacementEval::evaluate(&topo, &tm, &agg_form),
            PlacementEval::evaluate(&topo, &tm, &dst_form),
        );
        assert!(
            (e1.latency_stretch() - e2.latency_stretch()).abs() < 1e-6,
            "per-aggregate {} vs per-destination {}",
            e1.latency_stretch(),
            e2.latency_stretch()
        );
        assert!(agg_form.validate(topo.graph(), &tm).is_ok());
    }

    #[test]
    fn per_aggregate_form_matches_pathgrow_with_unequal_flow_weights() {
        // Where flow counts are NOT proportional to volume, the
        // per-aggregate form keeps the exact Figure-12 objective; check it
        // against the path-based LP, which also weights by flows.
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![
            Aggregate { src: NodeId(0), dst: NodeId(3), volume_mbps: 80.0, flow_count: 100 },
            Aggregate { src: NodeId(0), dst: NodeId(2), volume_mbps: 80.0, flow_count: 1 },
        ]);
        let lb = LinkBasedOptimal::per_aggregate(0.0).place_on(&topo, &tm).unwrap();
        let pb = LatencyOptimal::default().place_on(&topo, &tm).unwrap();
        let (e1, e2) =
            (PlacementEval::evaluate(&topo, &tm, &lb), PlacementEval::evaluate(&topo, &tm, &pb));
        assert!(
            (e1.latency_stretch() - e2.latency_stretch()).abs() < 1e-4,
            "link {} vs path {}",
            e1.latency_stretch(),
            e2.latency_stretch()
        );
    }

    #[test]
    fn abilene_small_matrix_agrees_with_path_based() {
        let topo = named::abilene();
        let gen = lowlat_tmgen::GravityTmGen::new(lowlat_tmgen::TmGenConfig {
            total_volume_mbps: 50_000.0,
            ..Default::default()
        });
        let tm = gen.generate(&topo, 0);
        let lb = LinkBasedOptimal::default().place_on(&topo, &tm).unwrap();
        let pb = LatencyOptimal::default().place_on(&topo, &tm).unwrap();
        let ev_lb = PlacementEval::evaluate(&topo, &tm, &lb);
        let ev_pb = PlacementEval::evaluate(&topo, &tm, &pb);
        assert!(
            (ev_lb.latency_stretch() - ev_pb.latency_stretch()).abs() < 5e-3,
            "link {} vs path {}",
            ev_lb.latency_stretch(),
            ev_pb.latency_stretch()
        );
    }
}
