//! B4-style greedy traffic engineering (§3 "Greedy low latency routing").
//!
//! The paper's description, reproduced here as an event-driven continuous
//! fill: all aggregates place traffic onto their shortest paths *in
//! parallel* (each at a rate proportional to its demand, so absent blocking
//! they all finish together); when a link saturates, every aggregate whose
//! current path crosses it hops to its next-shortest path with spare
//! capacity on every hop. An aggregate that runs out of alternatives dumps
//! its remainder onto its shortest path — that is precisely how B4's greedy
//! choices "become locked into local minima" and congest high-LLPD networks
//! like GTS (Figure 5), which the tests below reproduce.
//!
//! §6 notes that B4 in an ISP needs headroom and that reserved headroom
//! interacts with it gracefully: traffic that failed to place may still fit
//! inside the reserve. [`B4Config::headroom`] implements that two-pass
//! behaviour.

use lowlat_netgraph::Path;
use lowlat_tmgen::TrafficMatrix;

use crate::placement::{AggregatePlacement, Placement};
use crate::schemes::{RoutingScheme, SchemeError};
use crate::source::PathSource;

/// Tunables for [`B4Routing`].
#[derive(Clone, Debug)]
pub struct B4Config {
    /// Fraction of capacity reserved during the first pass; stragglers may
    /// use it in the second pass (§6). 0 = the paper's §3 configuration.
    pub headroom: f64,
    /// Cap on next-shortest paths tried per aggregate before giving up.
    pub max_paths: usize,
}

impl Default for B4Config {
    fn default() -> Self {
        B4Config { headroom: 0.0, max_paths: 24 }
    }
}

/// Greedy progressive-filling TE.
#[derive(Clone, Debug, Default)]
pub struct B4Routing {
    config: B4Config,
}

impl B4Routing {
    /// Creates the scheme.
    ///
    /// # Panics
    /// Panics on headroom outside `[0, 1)` or zero `max_paths`.
    pub fn new(config: B4Config) -> Self {
        assert!((0.0..1.0).contains(&config.headroom));
        assert!(config.max_paths >= 1);
        B4Routing { config }
    }

    /// Placement through the shared path cache (the trait entry point).
    fn place_cached(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
    ) -> Result<Placement, SchemeError> {
        let graph = source.graph();
        let n = tm.aggregates().len();

        // Pass 1 fills *effective* (mask-aware) capacities scaled down by
        // the headroom reserve: a browned-out link offers only its degraded
        // capacity to the greedy fill.
        let caps = source.effective_capacities();
        let mut residual: Vec<f64> =
            caps.iter().map(|&c| c * (1.0 - self.config.headroom)).collect();
        let mut allocations: Vec<Vec<(Path, f64)>> = vec![Vec::new(); n];
        let mut remaining: Vec<f64> = tm.aggregates().iter().map(|a| a.volume_mbps).collect();
        let stuck = self.fill(source, tm, &mut residual, &mut allocations, &mut remaining);

        // Pass 2 (§6): stragglers may eat into the reserve.
        let stuck = if self.config.headroom > 0.0 && !stuck.is_empty() {
            let loads = current_loads(graph.link_count(), &allocations);
            let mut full_residual: Vec<f64> =
                graph.link_ids().map(|l| (caps[l.idx()] - loads[l.idx()]).max(0.0)).collect();
            self.fill(source, tm, &mut full_residual, &mut allocations, &mut remaining)
        } else {
            stuck
        };

        // Whatever still remains is dumped on the shortest path — B4 sends
        // the traffic anyway and the link saturates (the paper's congested
        // pairs).
        for a in stuck {
            if remaining[a] > 1e-9 {
                let sp = source
                    .shortest(tm.aggregates()[a].src, tm.aggregates()[a].dst)
                    .expect("connected");
                push_allocation(&mut allocations[a], sp, remaining[a]);
                remaining[a] = 0.0;
            }
        }

        let per_aggregate = tm
            .aggregates()
            .iter()
            .zip(allocations)
            .map(|(_agg, allocs)| {
                debug_assert!(!allocs.is_empty());
                let total: f64 = allocs.iter().map(|(_, v)| v).sum();
                AggregatePlacement {
                    splits: allocs.into_iter().map(|(p, v)| (p, v / total.max(1e-12))).collect(),
                }
            })
            .collect();
        let placement = Placement::new(per_aggregate);
        debug_assert!(placement.validate(graph, tm).is_ok());
        Ok(placement)
    }

    /// Event-driven progressive fill. Returns the aggregates that ran out of
    /// usable paths with demand left.
    fn fill(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        residual: &mut [f64],
        allocations: &mut [Vec<(Path, f64)>],
        remaining: &mut [f64],
    ) -> Vec<usize> {
        let graph = source.graph();
        let n = tm.aggregates().len();
        let eps = 1e-9;
        let has_room = |p: &Path, residual: &[f64]| -> bool {
            p.links().iter().all(|&l| residual[l.idx()] > eps)
        };

        // Current path per active aggregate.
        let mut current: Vec<Option<Path>> = vec![None; n];
        let mut path_rank: Vec<usize> = vec![0; n];
        let mut stuck: Vec<usize> = Vec::new();
        for (a, agg) in tm.aggregates().iter().enumerate() {
            if remaining[a] <= eps {
                current[a] = None;
                continue;
            }
            match self.next_usable_path(
                source,
                agg.src,
                agg.dst,
                &mut path_rank[a],
                residual,
                &has_room,
            ) {
                Some(p) => current[a] = Some(p),
                None => {
                    stuck.push(a);
                    current[a] = None;
                }
            }
        }

        // Each loop iteration advances to the next event: a link saturates
        // or an aggregate finishes. Bounded by (finishes + saturations +
        // path switches), all finite.
        let max_events = 4 * n * self.config.max_paths + 4 * graph.link_count() + 16;
        for _ in 0..max_events {
            // Aggregate fill rate = its demand (proportional fill).
            let mut link_rate = vec![0.0; graph.link_count()];
            let mut dt_finish = f64::INFINITY;
            let mut any_active = false;
            for a in 0..n {
                if let Some(p) = &current[a] {
                    any_active = true;
                    let rate = tm.aggregates()[a].volume_mbps;
                    dt_finish = dt_finish.min(remaining[a] / rate);
                    for &l in p.links() {
                        link_rate[l.idx()] += rate;
                    }
                }
            }
            if !any_active {
                break;
            }
            let mut dt_sat = f64::INFINITY;
            for l in 0..link_rate.len() {
                if link_rate[l] > eps {
                    dt_sat = dt_sat.min(residual[l] / link_rate[l]);
                }
            }
            let dt = dt_finish.min(dt_sat).max(0.0);

            // Advance time by dt: allocate proportionally.
            for a in 0..n {
                if let Some(p) = current[a].clone() {
                    let vol = (tm.aggregates()[a].volume_mbps * dt).min(remaining[a]);
                    if vol > 0.0 {
                        push_allocation(&mut allocations[a], p.clone(), vol);
                        remaining[a] -= vol;
                        for &l in p.links() {
                            residual[l.idx()] = (residual[l.idx()] - vol).max(0.0);
                        }
                    }
                }
            }

            // Process events: finished aggregates retire; aggregates whose
            // path saturated hop to their next usable path.
            for a in 0..n {
                let Some(p) = current[a].clone() else { continue };
                if remaining[a] <= eps {
                    current[a] = None;
                    continue;
                }
                if !has_room(&p, residual) {
                    let agg = &tm.aggregates()[a];
                    match self.next_usable_path(
                        source,
                        agg.src,
                        agg.dst,
                        &mut path_rank[a],
                        residual,
                        &has_room,
                    ) {
                        Some(np) => current[a] = Some(np),
                        None => {
                            stuck.push(a);
                            current[a] = None;
                        }
                    }
                }
            }
        }
        // Anything still active when the event budget ran out is stuck too.
        for a in 0..n {
            if current[a].is_some() && remaining[a] > eps {
                stuck.push(a);
            }
        }
        stuck.sort_unstable();
        stuck.dedup();
        stuck
    }

    /// Scans forward through the aggregate's k-shortest list from
    /// `*rank` for the first path with room on every link.
    fn next_usable_path(
        &self,
        source: &dyn PathSource,
        src: lowlat_topology::PopId,
        dst: lowlat_topology::PopId,
        rank: &mut usize,
        residual: &[f64],
        has_room: &dyn Fn(&Path, &[f64]) -> bool,
    ) -> Option<Path> {
        while *rank < self.config.max_paths {
            let paths = source.paths(src, dst, *rank + 1);
            if paths.len() <= *rank {
                return None; // graph exhausted
            }
            let p = paths[*rank].clone();
            if has_room(&p, residual) {
                return Some(p);
            }
            *rank += 1;
        }
        None
    }
}

fn push_allocation(allocs: &mut Vec<(Path, f64)>, path: Path, volume: f64) {
    for (p, v) in allocs.iter_mut() {
        if p.links() == path.links() {
            *v += volume;
            return;
        }
    }
    allocs.push((path, volume));
}

fn current_loads(nl: usize, allocations: &[Vec<(Path, f64)>]) -> Vec<f64> {
    let mut loads = vec![0.0; nl];
    for allocs in allocations {
        for (p, v) in allocs {
            for &l in p.links() {
                loads[l.idx()] += v;
            }
        }
    }
    loads
}

impl RoutingScheme for B4Routing {
    fn name(&self) -> String {
        if self.config.headroom == 0.0 {
            "B4".into()
        } else {
            format!("B4-h{:02}", (self.config.headroom * 100.0).round() as u32)
        }
    }

    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        self.place_cached(source, tm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PlacementEval;
    use lowlat_netgraph::NodeId;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, Topology, TopologyBuilder};

    /// Two-path network: fast (2 ms, 100) and slow (6 ms, 100).
    fn two_path() -> Topology {
        let mut b = TopologyBuilder::new("two");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let nn = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect_with_delay(a, m, 1.0, 100.0);
        b.connect_with_delay(m, z, 1.0, 100.0);
        b.connect_with_delay(a, nn, 3.0, 100.0);
        b.connect_with_delay(nn, z, 3.0, 100.0);
        b.build()
    }

    fn one(volume: f64) -> TrafficMatrix {
        TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(3),
            volume_mbps: volume,
            flow_count: 10,
        }])
    }

    #[test]
    fn light_load_stays_on_shortest() {
        let topo = two_path();
        let pl = B4Routing::default().place_on(&topo, &one(80.0)).unwrap();
        let ev = PlacementEval::evaluate(&topo, &one(80.0), &pl);
        assert!((ev.latency_stretch() - 1.0).abs() < 1e-9);
        assert!(ev.fits());
    }

    #[test]
    fn overflow_spills_to_next_shortest() {
        let topo = two_path();
        let tm = one(150.0);
        let pl = B4Routing::default().place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        assert!(ev.fits(), "150 fits across 100+100");
        // 100 on fast, 50 on slow.
        let mean = pl.aggregate(0).mean_delay_ms();
        let expect = (100.0 / 150.0) * 2.0 + (50.0 / 150.0) * 6.0;
        assert!((mean - expect).abs() < 1e-6, "{mean} vs {expect}");
    }

    #[test]
    fn genuine_overload_congests_shortest_path() {
        let topo = two_path();
        let tm = one(250.0);
        let pl = B4Routing::default().place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        assert!(!ev.fits());
        assert_eq!(ev.congested_pair_fraction(), 1.0);
    }

    /// The Figure-5 local minimum: greedy filling strands the V->G
    /// aggregate even though an optimal placement fits everything.
    #[test]
    fn figure5_local_minimum() {
        // Recreate the paper's sketch: V has exactly two ways out, link 1
        // (via G's direction, eastbound) and link 2 (westbound); red and
        // blue aggregates fill both before green (V->G) gets a chance.
        let mut b = TopologyBuilder::new("fig5");
        let v = b.add_pop("V", GeoPoint::new(47.09, 17.91));
        let g = b.add_pop("G", GeoPoint::new(47.69, 17.63));
        let e = b.add_pop("E", GeoPoint::new(47.50, 19.04)); // east hub
        let w = b.add_pop("W", GeoPoint::new(48.15, 17.11)); // west hub

        // V's only two links:
        b.connect_with_delay(v, e, 1.0, 100.0); // link 1
        b.connect_with_delay(v, w, 1.0, 100.0); // link 2

        // G reachable from both hubs; also a long southern detour E-W.
        b.connect_with_delay(g, e, 1.2, 1000.0);
        b.connect_with_delay(g, w, 1.2, 1000.0);
        b.connect_with_delay(e, w, 5.0, 1000.0);
        let topo = b.build();
        // Blue: V->E fills link 1. Red: V->W fills link 2. Green: V->G.
        let tm = TrafficMatrix::new(vec![
            Aggregate { src: v, dst: e, volume_mbps: 95.0, flow_count: 19 },
            Aggregate { src: v, dst: w, volume_mbps: 95.0, flow_count: 19 },
            Aggregate { src: v, dst: g, volume_mbps: 20.0, flow_count: 4 },
        ]);
        let b4 = B4Routing::default().place_on(&topo, &tm).unwrap();
        let ev_b4 = PlacementEval::evaluate(&topo, &tm, &b4);
        assert!(!ev_b4.fits(), "B4 must congest: both of V's links are full");
        // The optimal scheme fits it (there is 190+20 = 210 < 200?! no:
        // V's total egress is 210 > 200, so *nothing* fits).
        // Scale down so the optimal fits but greedy still congests:
        let tm2 = TrafficMatrix::new(vec![
            Aggregate { src: v, dst: e, volume_mbps: 95.0, flow_count: 19 },
            Aggregate { src: v, dst: w, volume_mbps: 85.0, flow_count: 17 },
            Aggregate { src: v, dst: g, volume_mbps: 18.0, flow_count: 4 },
        ]);
        let b4 = B4Routing::default().place_on(&topo, &tm2).unwrap();
        let ev_b4 = PlacementEval::evaluate(&topo, &tm2, &b4);
        let opt =
            crate::pathgrow::GrowRequest::new(&crate::pathset::PathCache::new(topo.graph()), &tm2)
                .solve()
                .unwrap();
        let ev_opt = PlacementEval::evaluate(&topo, &tm2, &opt.placement);
        assert!(ev_opt.fits(), "optimal fits (198 <= 200 with rebalancing)");
        assert!(
            ev_b4.congested_pair_fraction() >= ev_opt.congested_pair_fraction(),
            "greedy can only be worse"
        );
    }

    #[test]
    fn headroom_second_pass_rescues_stragglers() {
        let topo = two_path();
        // 190 with 10% headroom: pass 1 caps at 90+90 = 180, leaving 10
        // stuck; pass 2 places the remainder into the reserve.
        let tm = one(190.0);
        let with =
            B4Routing::new(B4Config { headroom: 0.1, max_paths: 24 }).place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &with);
        assert!(ev.fits(), "second pass uses the reserve, no congestion");
    }
}
