//! MPLS-TE auto-bandwidth (§3): "considers one aggregate at a time, and
//! places each aggregate on its shortest non-congested path".
//!
//! Unlike B4's parallel progressive fill, auto-bandwidth is *sequential*:
//! each LSP is (re)signalled on the shortest path with enough residual
//! capacity for its whole reservation, in some order. That makes it even
//! greedier than B4 — an unlucky order wastes short paths on aggregates
//! that had alternatives — and order-dependence is itself a pathology the
//! tests demonstrate. The paper states its B4 observations "also hold for
//! MPLS-TE"; this implementation lets the harness verify that.

use lowlat_netgraph::Path;
use lowlat_tmgen::TrafficMatrix;

use crate::placement::{AggregatePlacement, Placement};
use crate::schemes::{RoutingScheme, SchemeError};
use crate::source::PathSource;

/// In which order auto-bandwidth signals the LSPs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalOrder {
    /// Largest reservation first (common operator practice: big LSPs find
    /// room while it exists).
    LargestFirst,
    /// Smallest first (worst for fragmentation).
    SmallestFirst,
    /// The traffic matrix's (src, dst) order — arbitrary but deterministic.
    MatrixOrder,
}

/// Configuration for [`MplsAutoBandwidth`].
#[derive(Clone, Debug)]
pub struct MplsConfig {
    /// LSP signalling order.
    pub order: SignalOrder,
    /// Reserved capacity fraction (as for B4, §6).
    pub headroom: f64,
    /// Paths tried per LSP before giving up.
    pub max_paths: usize,
}

impl Default for MplsConfig {
    fn default() -> Self {
        MplsConfig { order: SignalOrder::LargestFirst, headroom: 0.0, max_paths: 24 }
    }
}

/// Sequential shortest-non-congested-path placement.
#[derive(Clone, Debug, Default)]
pub struct MplsAutoBandwidth {
    config: MplsConfig,
}

impl MplsAutoBandwidth {
    /// Creates the scheme.
    ///
    /// # Panics
    /// Panics on headroom outside `[0, 1)` or zero `max_paths`.
    pub fn new(config: MplsConfig) -> Self {
        assert!((0.0..1.0).contains(&config.headroom));
        assert!(config.max_paths >= 1);
        MplsAutoBandwidth { config }
    }

    /// Placement through the shared path cache (the trait entry point).
    fn place_cached(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
    ) -> Result<Placement, SchemeError> {
        // Reservations admit against *effective* (mask-aware) capacities: a
        // browned-out link only offers its degraded capacity to new LSPs.
        let mut residual: Vec<f64> = source
            .effective_capacities()
            .into_iter()
            .map(|c| c * (1.0 - self.config.headroom))
            .collect();

        // Signalling order.
        let mut order: Vec<usize> = (0..tm.aggregates().len()).collect();
        match self.config.order {
            SignalOrder::LargestFirst => order.sort_by(|&a, &b| {
                tm.aggregates()[b]
                    .volume_mbps
                    .partial_cmp(&tm.aggregates()[a].volume_mbps)
                    .expect("finite")
                    .then(a.cmp(&b))
            }),
            SignalOrder::SmallestFirst => order.sort_by(|&a, &b| {
                tm.aggregates()[a]
                    .volume_mbps
                    .partial_cmp(&tm.aggregates()[b].volume_mbps)
                    .expect("finite")
                    .then(a.cmp(&b))
            }),
            SignalOrder::MatrixOrder => {}
        }

        let mut placements: Vec<Option<AggregatePlacement>> = vec![None; tm.aggregates().len()];
        for &i in &order {
            let agg = &tm.aggregates()[i];
            let volume = agg.volume_mbps;
            // Shortest path whose every link holds the whole reservation.
            let mut chosen: Option<Path> = None;
            for k in 1..=self.config.max_paths {
                let paths = source.paths(agg.src, agg.dst, k);
                if paths.len() < k {
                    break;
                }
                let p = &paths[k - 1];
                if p.links().iter().all(|&l| residual[l.idx()] >= volume - 1e-9) {
                    chosen = Some(p.clone());
                    break;
                }
            }
            // No path fits the whole LSP: signal it on the shortest path
            // anyway (the congestion the paper measures).
            let path = chosen
                .unwrap_or_else(|| source.shortest(agg.src, agg.dst).expect("connected topology"));
            for &l in path.links() {
                residual[l.idx()] -= volume; // may go negative: congestion
            }
            placements[i] = Some(AggregatePlacement { splits: vec![(path, 1.0)] });
        }
        Ok(Placement::new(placements.into_iter().map(|p| p.expect("all placed")).collect()))
    }
}

impl RoutingScheme for MplsAutoBandwidth {
    fn name(&self) -> String {
        "MPLS-TE".into()
    }

    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        self.place_cached(source, tm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PlacementEval;
    use lowlat_netgraph::NodeId;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, Topology, TopologyBuilder};

    fn two_path() -> Topology {
        let mut b = TopologyBuilder::new("two");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect_with_delay(a, m, 1.0, 100.0);
        b.connect_with_delay(m, z, 1.0, 100.0);
        b.connect_with_delay(a, n, 3.0, 100.0);
        b.connect_with_delay(n, z, 3.0, 100.0);
        b.build()
    }

    fn agg(s: u32, d: u32, v: f64) -> Aggregate {
        Aggregate {
            src: NodeId(s),
            dst: NodeId(d),
            volume_mbps: v,
            flow_count: (v / 5.0) as u64 + 1,
        }
    }

    #[test]
    fn single_lsp_rides_shortest() {
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![agg(0, 3, 80.0)]);
        let pl = MplsAutoBandwidth::default().place_on(&topo, &tm).unwrap();
        assert_eq!(pl.aggregate(0).splits.len(), 1);
        assert!((pl.aggregate(0).mean_delay_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn whole_lsp_moves_when_shortest_lacks_room() {
        // Unlike B4, auto-bandwidth cannot split: a 60 after a 60 must take
        // the slow path entirely.
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![agg(0, 3, 60.0), agg(3, 0, 1.0), agg(0, 2, 60.0)]);
        let pl = MplsAutoBandwidth::default().place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        assert!(ev.fits(), "both fit, one detours");
        // One of the two 60s pays the detour in full.
        let delays: Vec<f64> = pl.per_aggregate().iter().map(|p| p.mean_delay_ms()).collect();
        assert!(delays.iter().any(|&d| d > 2.5), "someone took the slow path: {delays:?}");
    }

    #[test]
    fn order_dependence_is_real() {
        // Largest-first fits; smallest-first wastes the fast path on the
        // small LSP... both still fit here, but the *latency* differs.
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![agg(0, 3, 90.0), agg(0, 2, 30.0)]);
        let largest = MplsAutoBandwidth::new(MplsConfig {
            order: SignalOrder::LargestFirst,
            ..Default::default()
        })
        .place_on(&topo, &tm)
        .unwrap();
        let smallest = MplsAutoBandwidth::new(MplsConfig {
            order: SignalOrder::SmallestFirst,
            ..Default::default()
        })
        .place_on(&topo, &tm)
        .unwrap();
        let ev_l = PlacementEval::evaluate(&topo, &tm, &largest);
        let ev_s = PlacementEval::evaluate(&topo, &tm, &smallest);
        // agg(0,3) shortest = A-M-Z (needs 90); agg(0,2) shortest = A-N
        // (the slow leg), so smallest-first still leaves room: outcomes tie
        // here — but largest-first can never be worse.
        assert!(ev_l.latency_stretch() <= ev_s.latency_stretch() + 1e-9);
    }

    #[test]
    fn congests_when_nothing_fits() {
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![agg(0, 3, 150.0), agg(0, 1, 60.0), agg(0, 2, 60.0)]);
        let pl = MplsAutoBandwidth::default().place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        // 150 cannot fit any single path of capacity 100: congestion.
        assert!(!ev.fits());
        assert!(ev.congested_pair_fraction() > 0.0);
    }

    #[test]
    fn greedier_than_b4() {
        // B4 splits the 150 across both paths and fits; MPLS-TE cannot.
        let topo = two_path();
        let tm = TrafficMatrix::new(vec![agg(0, 3, 150.0)]);
        let mpls = MplsAutoBandwidth::default().place_on(&topo, &tm).unwrap();
        let b4 = crate::schemes::b4::B4Routing::default().place_on(&topo, &tm).unwrap();
        let ev_mpls = PlacementEval::evaluate(&topo, &tm, &mpls);
        let ev_b4 = PlacementEval::evaluate(&topo, &tm, &b4);
        assert!(!ev_mpls.fits());
        assert!(ev_b4.fits());
    }
}
