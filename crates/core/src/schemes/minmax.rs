//! MinMax traffic engineering (TeXCP/MATE-style): minimize the maximum link
//! utilization, tie-break on latency (§3 "MinMax based routing").

use lowlat_tmgen::TrafficMatrix;

use crate::pathgrow::{GrowOutcome, GrowRequest, GrowthConfig, SolveContext};
use crate::placement::Placement;
use crate::schemes::{RoutingScheme, SchemeError};
use crate::source::PathSource;

/// Configuration for [`MinMaxRouting`].
#[derive(Clone, Debug, Default)]
pub struct MinMaxConfig {
    /// Cap each aggregate's path set at the k lowest-delay paths, as TeXCP
    /// suggests with k = 10 (Figure 4d). `None` is pure MinMax (Figure 4c).
    pub k_limit: Option<usize>,
    /// LP machinery knobs (headroom is ignored: MinMax *is* the maximal
    /// headroom extreme of the §4 dial).
    pub growth: GrowthConfig,
}

/// MinMax utilization with latency tie-break.
#[derive(Clone, Debug, Default)]
pub struct MinMaxRouting {
    config: MinMaxConfig,
}

impl MinMaxRouting {
    /// Pure MinMax over all paths.
    pub fn unrestricted() -> Self {
        MinMaxRouting::default()
    }

    /// TeXCP-style MinMax restricted to the k shortest paths.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn with_k(k: usize) -> Self {
        assert!(k >= 1);
        MinMaxRouting { config: MinMaxConfig { k_limit: Some(k), ..Default::default() } }
    }

    /// Creates the scheme with explicit configuration.
    pub fn new(config: MinMaxConfig) -> Self {
        MinMaxRouting { config }
    }

    /// Full outcome with source reuse.
    pub fn solve_with_cache(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
    ) -> Result<GrowOutcome, SchemeError> {
        self.solve_with_cache_ctx(source, tm, &mut SolveContext::new())
    }

    /// As [`MinMaxRouting::solve_with_cache`], warm-starting the LPs from
    /// `ctx` (kept across successive calls by timeline controllers).
    pub fn solve_with_cache_ctx(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        ctx: &mut SolveContext,
    ) -> Result<GrowOutcome, SchemeError> {
        Ok(GrowRequest::new(source, tm)
            .minmax(self.config.k_limit)
            .config(&self.config.growth)
            .solve_with(ctx)?)
    }
}

impl RoutingScheme for MinMaxRouting {
    fn name(&self) -> String {
        match self.config.k_limit {
            Some(k) => format!("MinMaxK{k}"),
            None => "MinMax".into(),
        }
    }

    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        Ok(self.solve_with_cache(source, tm)?.placement)
    }

    fn place_with_context(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        ctx: &mut SolveContext,
    ) -> Result<Placement, SchemeError> {
        Ok(self.solve_with_cache_ctx(source, tm, ctx)?.placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PlacementEval;
    use crate::schemes::latopt::LatencyOptimal;
    use lowlat_tmgen::{GravityTmGen, TmGenConfig};
    use lowlat_topology::zoo::named;

    #[test]
    fn minmax_never_congests_when_traffic_fits() {
        let topo = named::gts_like();
        let gen =
            GravityTmGen::new(TmGenConfig { total_volume_mbps: 30_000.0, ..Default::default() });
        let tm = gen.generate(&topo, 0);
        let pl = MinMaxRouting::unrestricted().place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        // Figure 4c: MinMax shows no congestion (when the traffic fits).
        assert!(ev.fits(), "max util {}", ev.max_utilization());
    }

    #[test]
    fn minmax_trades_latency_for_headroom() {
        let topo = named::gts_like();
        let gen =
            GravityTmGen::new(TmGenConfig { total_volume_mbps: 30_000.0, ..Default::default() });
        let tm = gen.generate(&topo, 0);
        let mm = MinMaxRouting::unrestricted().place_on(&topo, &tm).unwrap();
        let opt = LatencyOptimal::default().place_on(&topo, &tm).unwrap();
        let ev_mm = PlacementEval::evaluate(&topo, &tm, &mm);
        let ev_opt = PlacementEval::evaluate(&topo, &tm, &opt);
        // MinMax leaves more headroom...
        assert!(ev_mm.max_utilization() <= ev_opt.max_utilization() + 1e-6);
        // ...at equal or worse latency (§3's point, Figure 4c vs 4a).
        assert!(ev_mm.latency_stretch() >= ev_opt.latency_stretch() - 1e-6);
    }

    #[test]
    fn k_limit_bounds_path_choice() {
        let topo = named::abilene();
        let gen =
            GravityTmGen::new(TmGenConfig { total_volume_mbps: 40_000.0, ..Default::default() });
        let tm = gen.generate(&topo, 2);
        let pl = MinMaxRouting::with_k(2).place_on(&topo, &tm).unwrap();
        for agg in pl.per_aggregate() {
            assert!(agg.splits.len() <= 2);
        }
        assert_eq!(MinMaxRouting::with_k(10).name(), "MinMaxK10");
        assert_eq!(MinMaxRouting::unrestricted().name(), "MinMax");
    }
}
