//! Name-string registry over the routing schemes.
//!
//! Experiment drivers, sweep binaries and figure modules request schemes by
//! the names the paper's legends use; the registry turns a spec like
//! `"LatOpt-h23"` into a boxed [`RoutingScheme`]. This is the single point
//! where scheme names are interpreted — adding a scheme here makes it
//! available to every sweep binary and to the cross-scheme invariant tests
//! at once.
//!
//! # Spec grammar
//!
//! | spec | scheme |
//! |---|---|
//! | `SP` | [`ShortestPathRouting`] |
//! | `ECMP` | [`EcmpRouting`] |
//! | `B4`, `B4-hNN` | [`B4Routing`], NN% reserved headroom (default 0) |
//! | `MPLS` / `MPLS-TE` | [`MplsAutoBandwidth`] |
//! | `MinMax` | [`MinMaxRouting`] over all paths |
//! | `MinMaxK<k>` | [`MinMaxRouting`] over the k shortest paths |
//! | `LatOpt`, `LatOpt-hNN` | [`LatencyOptimal`], NN% headroom (default 0) |
//! | `LDR`, `LDR-hNN` | [`Ldr`], NN% static headroom (default 10) |
//! | `LinkBased` | [`LinkBasedOptimal`] |
//!
//! Every built scheme's [`RoutingScheme::name`] round-trips: building that
//! name again yields an identically configured scheme.

use std::sync::Arc;

use super::b4::{B4Config, B4Routing};
use super::ecmp::EcmpRouting;
use super::latopt::LatencyOptimal;
use super::ldr::{Ldr, LdrConfig};
use super::linkbased::LinkBasedOptimal;
use super::minmax::MinMaxRouting;
use super::mpls::MplsAutoBandwidth;
use super::sp::ShortestPathRouting;
use super::RoutingScheme;

/// A scheme spec the registry could not interpret.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownScheme {
    spec: String,
}

impl UnknownScheme {
    /// The offending spec string.
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl std::fmt::Display for UnknownScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheme '{}' (expected one of SP, ECMP, B4[-hNN], MPLS, MinMax, \
             MinMaxK<k>, LatOpt[-hNN], LDR[-hNN], LinkBased)",
            self.spec
        )
    }
}

impl std::error::Error for UnknownScheme {}

/// The spec strings of the paper's six headline schemes (Figure 4 plus the
/// SP baseline and LDR) — the default set for sweep binaries.
pub const DEFAULT_SPECS: &[&str] = &["SP", "B4", "MinMax", "MinMaxK10", "LatOpt", "LDR"];

/// Every scheme family the registry knows, one canonical spec each — what
/// the cross-scheme invariant suite iterates.
pub const ALL_SPECS: &[&str] =
    &["SP", "ECMP", "B4", "MPLS", "MinMax", "MinMaxK10", "LatOpt", "LDR", "LinkBased"];

/// Parses the headroom fraction out of `"<base>-hNN"`.
fn headroom_suffix(spec: &str, base: &str) -> Option<f64> {
    let rest = spec.strip_prefix(base)?.strip_prefix("-h")?;
    let percent: u32 = rest.parse().ok()?;
    if percent >= 100 {
        return None;
    }
    Some(percent as f64 / 100.0)
}

/// Builds the scheme a spec names.
pub fn build(spec: &str) -> Result<Arc<dyn RoutingScheme>, UnknownScheme> {
    let spec = spec.trim();
    match spec {
        "SP" => return Ok(Arc::new(ShortestPathRouting)),
        "ECMP" => return Ok(Arc::new(EcmpRouting)),
        "B4" => return Ok(Arc::new(B4Routing::default())),
        "MPLS" | "MPLS-TE" => return Ok(Arc::new(MplsAutoBandwidth::default())),
        "MinMax" => return Ok(Arc::new(MinMaxRouting::unrestricted())),
        "LatOpt" => return Ok(Arc::new(LatencyOptimal::default())),
        "LDR" => return Ok(Arc::new(Ldr::default())),
        "LinkBased" => return Ok(Arc::new(LinkBasedOptimal::default())),
        _ => {}
    }
    if let Some(k) = spec.strip_prefix("MinMaxK") {
        if let Ok(k) = k.parse::<usize>() {
            if k >= 1 {
                return Ok(Arc::new(MinMaxRouting::with_k(k)));
            }
        }
    }
    if let Some(h) = headroom_suffix(spec, "B4") {
        return Ok(Arc::new(B4Routing::new(B4Config { headroom: h, ..Default::default() })));
    }
    if let Some(h) = headroom_suffix(spec, "LatOpt") {
        return Ok(Arc::new(LatencyOptimal::with_headroom(h)));
    }
    if let Some(h) = headroom_suffix(spec, "LDR") {
        return Ok(Arc::new(Ldr::new(LdrConfig { static_headroom: h, ..Default::default() })));
    }
    Err(UnknownScheme { spec: spec.to_string() })
}

/// Builds every spec in the list, failing on the first unknown one.
pub fn build_list(specs: &[&str]) -> Result<Vec<Arc<dyn RoutingScheme>>, UnknownScheme> {
    specs.iter().map(|s| build(s)).collect()
}

/// Builds a comma-separated spec list (`"SP,B4-h10,MinMaxK5"`).
pub fn parse_csv(list: &str) -> Result<Vec<Arc<dyn RoutingScheme>>, UnknownScheme> {
    list.split(',').filter(|s| !s.trim().is_empty()).map(build).collect()
}

/// Builds a known-good spec list, panicking on typos — for the static
/// scheme sets inside figure modules.
///
/// # Panics
/// Panics when a spec is unknown.
pub fn schemes(specs: &[&str]) -> Vec<Arc<dyn RoutingScheme>> {
    build_list(specs).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_specs_build_and_roundtrip() {
        for &spec in ALL_SPECS {
            let scheme = build(spec).unwrap_or_else(|e| panic!("{e}"));
            let name = scheme.name();
            let again = build(&name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(again.name(), name, "{spec} does not round-trip");
        }
    }

    #[test]
    fn parameterized_specs() {
        assert_eq!(build("B4-h10").unwrap().name(), "B4-h10");
        assert_eq!(build("LatOpt-h23").unwrap().name(), "LatOpt-h23");
        assert_eq!(build("LatOpt-h00").unwrap().name(), "LatOpt");
        assert_eq!(build("MinMaxK5").unwrap().name(), "MinMaxK5");
        assert_eq!(build("LDR-h05").unwrap().name(), "LDR-h05");
        assert_eq!(build("LDR-h10").unwrap().name(), "LDR", "default headroom canonicalizes");
        assert_eq!(build("MPLS").unwrap().name(), "MPLS-TE");
        assert_eq!(build(" SP ").unwrap().name(), "SP");
    }

    #[test]
    fn unknown_specs_error() {
        for bad in ["", "sp", "B5", "MinMaxK0", "MinMaxK-3", "B4-h120", "LatOpt-hx", "LDR+h10"] {
            assert!(build(bad).is_err(), "spec '{bad}' should be rejected");
        }
        assert!(parse_csv("SP,nope").is_err());
        assert_eq!(parse_csv("SP, B4 ,MinMax").unwrap().len(), 3);
    }

    #[test]
    fn default_specs_are_known() {
        assert_eq!(build_list(DEFAULT_SPECS).unwrap().len(), DEFAULT_SPECS.len());
    }
}
