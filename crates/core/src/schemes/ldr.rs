//! LDR — Low Delay Routing (§5): the paper's practical scheme.
//!
//! LDR composes three pieces this crate already has:
//!
//! 1. **Prediction** (Algorithm 1): each aggregate's demand estimate `Ba`
//!    starts from the conservative next-minute prediction of its measured
//!    mean rate.
//! 2. **Latency-optimal placement** (Figures 12/13): the iterative LP
//!    places the predicted demands on the lowest-delay paths that avoid
//!    congestion.
//! 3. **Multiplexing appraisal** (Figure 14): for every link the proposed
//!    solution loads near capacity, the temporal (B) and convolution (C)
//!    tests check whether the aggregates sharing it statistically multiplex
//!    within the queueing allowance. Where they don't, the offending
//!    aggregates' `Ba` are scaled up — adding headroom *only where needed*,
//!    which the paper argues beats scaling down link capacities — and the
//!    optimizer runs again.
//!
//! Without traces (pure traffic-matrix input) LDR falls back to a static
//! headroom fraction, which §4 suggests is ~10% for ISP backbones.

use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::Topology;
use lowlat_traffic::{AggregateTrace, MultiplexCheck, MultiplexConfig};

use crate::pathgrow::{GrowRequest, GrowthConfig, SolveContext};
use crate::pathset::PathCache;
use crate::placement::Placement;
use crate::schemes::{predict_volumes, RoutingScheme, SchemeError};
use crate::source::PathSource;

/// Configuration for [`Ldr`].
#[derive(Clone, Debug)]
pub struct LdrConfig {
    /// LP/growth knobs. `growth.headroom` stays 0 when traces drive
    /// per-aggregate headroom; see `static_headroom`.
    pub growth: GrowthConfig,
    /// Headroom used when no traces are available (the paper's §4 analysis
    /// of the CAIDA data suggests ~10%).
    pub static_headroom: f64,
    /// Queueing allowance and quantization for the Figure-14 tests.
    pub multiplex: MultiplexConfig,
    /// Factor applied to `Ba` of aggregates on a failing link per iteration.
    pub ba_inflation: f64,
    /// Outer measure-check-tweak iterations.
    pub max_iterations: usize,
}

impl Default for LdrConfig {
    fn default() -> Self {
        LdrConfig {
            growth: GrowthConfig::default(),
            static_headroom: 0.1,
            multiplex: MultiplexConfig::default(),
            ba_inflation: 1.1,
            max_iterations: 8,
        }
    }
}

/// Diagnostics of a trace-driven LDR run.
#[derive(Clone, Debug)]
pub struct LdrOutcome {
    /// The final placement.
    pub placement: Placement,
    /// Outer iterations executed (1 = multiplexing passed immediately).
    pub iterations: usize,
    /// Final per-aggregate demand estimates (after inflation).
    pub ba: Vec<f64>,
    /// Final max overload from the LP (0 = fits).
    pub omax: f64,
    /// True when every link passed the multiplexing tests.
    pub multiplexing_ok: bool,
}

/// The LDR scheme.
#[derive(Clone, Debug, Default)]
pub struct Ldr {
    config: LdrConfig,
}

impl Ldr {
    /// Creates LDR.
    ///
    /// # Panics
    /// Panics on nonsensical parameters.
    pub fn new(config: LdrConfig) -> Self {
        assert!((0.0..1.0).contains(&config.static_headroom));
        assert!(config.ba_inflation > 1.0);
        assert!(config.max_iterations >= 1);
        Ldr { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LdrConfig {
        &self.config
    }

    /// Trace-free placement through the shared path cache: latency-optimal
    /// under the static headroom (the trait entry point).
    fn place_cached(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        ctx: &mut SolveContext,
    ) -> Result<Placement, SchemeError> {
        let cfg =
            GrowthConfig { headroom: self.config.static_headroom, ..self.config.growth.clone() };
        Ok(GrowRequest::new(source, tm).config(&cfg).solve_with(ctx)?.placement)
    }

    /// The full Figure-14 loop through a fresh private cache — one-shot
    /// convenience over [`Ldr::place_with_traces_ctx`].
    ///
    /// # Panics
    /// Panics if `traces` is not aligned with the matrix.
    pub fn place_with_traces(
        &self,
        topology: &Topology,
        tm: &TrafficMatrix,
        traces: &[AggregateTrace],
    ) -> Result<LdrOutcome, SchemeError> {
        self.place_with_traces_ctx(
            &PathCache::new(topology.graph()),
            tm,
            traces,
            &mut SolveContext::new(),
        )
    }

    /// The full Figure-14 loop. `traces[i]` is the measured history of
    /// aggregate `i` (aligned with `tm.aggregates()`); the last minute's
    /// 100 ms samples feed the multiplexing tests and the minute means feed
    /// Algorithm 1. Every LP warm-starts from `ctx` — both across the
    /// inner tweak iterations and, when the caller keeps the context,
    /// across successive minutes of the deployment cycle.
    ///
    /// # Panics
    /// Panics if `traces` is not aligned with the matrix.
    pub fn place_with_traces_ctx(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        traces: &[AggregateTrace],
        ctx: &mut SolveContext,
    ) -> Result<LdrOutcome, SchemeError> {
        assert_eq!(traces.len(), tm.aggregates().len(), "one trace per aggregate");
        let graph = source.graph();
        let check = MultiplexCheck::new(self.config.multiplex.clone());
        // Appraise multiplexing against what the links can carry *now*: a
        // browned-out link must pass the B/C tests at its degraded capacity.
        let caps = source.effective_capacities();

        // Step 1: Algorithm-1 prediction of each aggregate's mean rate.
        let mut ba: Vec<f64> = predict_volumes(traces);
        let last_minute: Vec<&[f64]> =
            traces.iter().map(|tr| tr.samples(tr.minutes() - 1)).collect();

        let mut iterations = 0;
        loop {
            iterations += 1;
            let out = GrowRequest::new(source, tm)
                .volumes(&ba)
                .config(&self.config.growth)
                .solve_with(ctx)?;

            // Step 2: appraise multiplexing per link.
            let mut failing_links: Vec<usize> = Vec::new();
            // Gather per-link (aggregate, fraction) incidence.
            let mut per_link: Vec<Vec<(usize, f64)>> = vec![Vec::new(); graph.link_count()];
            for a in 0..tm.aggregates().len() {
                for (l, x) in out.placement.link_fractions_of(a) {
                    per_link[l as usize].push((a, x));
                }
            }
            let mut scaled_samples: Vec<Vec<f64>> = Vec::new();
            for l in graph.link_ids() {
                let members = &per_link[l.idx()];
                if members.is_empty() {
                    continue;
                }
                scaled_samples.clear();
                for &(a, x) in members {
                    scaled_samples.push(last_minute[a].iter().map(|s| s * x).collect());
                }
                let refs: Vec<&[f64]> = scaled_samples.iter().map(|v| v.as_slice()).collect();
                let verdict = check.check_link(caps[l.idx()], &refs);
                if !verdict.passed() {
                    failing_links.push(l.idx());
                }
            }

            if failing_links.is_empty() {
                return Ok(LdrOutcome {
                    placement: out.placement,
                    iterations,
                    ba,
                    omax: out.omax,
                    multiplexing_ok: true,
                });
            }
            if iterations >= self.config.max_iterations {
                return Ok(LdrOutcome {
                    placement: out.placement,
                    iterations,
                    ba,
                    omax: out.omax,
                    multiplexing_ok: false,
                });
            }
            // Step 3: tweak — inflate Ba of aggregates on failing links
            // (adds headroom exactly where multiplexing is unsatisfactory).
            let mut inflate = vec![false; ba.len()];
            for &l in &failing_links {
                for &(a, x) in &per_link[l] {
                    if x > 1e-9 {
                        inflate[a] = true;
                    }
                }
            }
            for (a, f) in inflate.iter().enumerate() {
                if *f {
                    ba[a] *= self.config.ba_inflation;
                }
            }
        }
    }
}

impl RoutingScheme for Ldr {
    fn name(&self) -> String {
        // 0.1 is the paper's default static headroom; non-default dials are
        // encoded so registry names round-trip and sweep rows stay
        // distinguishable.
        if self.config.static_headroom == 0.1 {
            "LDR".into()
        } else {
            format!("LDR-h{:02}", (self.config.static_headroom * 100.0).round() as u32)
        }
    }

    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        self.place_cached(source, tm, &mut SolveContext::new())
    }

    fn place_with_context(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        ctx: &mut SolveContext,
    ) -> Result<Placement, SchemeError> {
        self.place_cached(source, tm, ctx)
    }

    /// LDR's history entry point is the genuine article: prediction plus
    /// the multiplexing appraisal loop, not just re-placement of predicted
    /// volumes.
    fn place_with_history(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        history: &[AggregateTrace],
        ctx: &mut SolveContext,
    ) -> Result<Placement, SchemeError> {
        if history.is_empty() || history.iter().any(|tr| tr.minutes() == 0) {
            return self.place_with_context(source, tm, ctx);
        }
        Ok(self.place_with_traces_ctx(source, tm, history, ctx)?.placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PlacementEval;
    use lowlat_netgraph::NodeId;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, TopologyBuilder};
    use lowlat_traffic::{synthesize, TraceGenConfig};

    fn two_path() -> Topology {
        let mut b = TopologyBuilder::new("two");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect_with_delay(a, m, 1.0, 1000.0);
        b.connect_with_delay(m, z, 1.0, 1000.0);
        b.connect_with_delay(a, n, 3.0, 1000.0);
        b.connect_with_delay(n, z, 3.0, 1000.0);
        b.build()
    }

    fn tm_pair(v1: f64, v2: f64) -> TrafficMatrix {
        TrafficMatrix::new(vec![
            Aggregate { src: NodeId(0), dst: NodeId(3), volume_mbps: v1, flow_count: 10 },
            Aggregate { src: NodeId(3), dst: NodeId(0), volume_mbps: v2, flow_count: 10 },
        ])
    }

    #[test]
    fn trace_free_uses_static_headroom() {
        let topo = two_path();
        let tm = tm_pair(950.0, 100.0);
        // 950 with 10% headroom (effective 900) must split across paths.
        let pl = Ldr::default().place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        assert!(ev.fits());
        assert!(
            pl.aggregate(0).splits.len() >= 2,
            "the 950 aggregate cannot fit in 900 effective on one path"
        );
    }

    #[test]
    fn smooth_traffic_passes_first_iteration() {
        let topo = two_path();
        let tm = tm_pair(400.0, 300.0);
        let traces: Vec<AggregateTrace> = [400.0, 300.0]
            .iter()
            .enumerate()
            .map(|(i, &mean)| {
                synthesize(&TraceGenConfig {
                    mean_mbps: mean,
                    cv: 0.05,
                    minutes: 10,
                    bins_per_minute: 600,
                    seed: 100 + i as u64,
                    ..Default::default()
                })
            })
            .collect();
        let out = Ldr::default().place_with_traces(&topo, &tm, &traces).unwrap();
        assert!(out.multiplexing_ok);
        assert_eq!(out.iterations, 1);
        // Predictions hedge 10% above means.
        assert!(out.ba[0] > 400.0 && out.ba[0] < 520.0, "ba {}", out.ba[0]);
    }

    #[test]
    fn bursty_traffic_forces_inflation() {
        let topo = two_path();
        // Two aggregates whose means fit one path but whose bursts don't.
        let tm = tm_pair(450.0, 440.0);
        let traces: Vec<AggregateTrace> = [450.0, 440.0]
            .iter()
            .enumerate()
            .map(|(i, &mean)| {
                synthesize(&TraceGenConfig {
                    mean_mbps: mean,
                    cv: 0.6, // violent bursts
                    minutes: 10,
                    seed: 7 + i as u64,
                    ..Default::default()
                })
            })
            .collect();
        // Same-direction aggregates sharing the fast path would burst over
        // 1000; LDR should inflate and/or split.
        let tm_same = TrafficMatrix::new(vec![
            Aggregate { src: NodeId(0), dst: NodeId(3), volume_mbps: 450.0, flow_count: 10 },
            Aggregate { src: NodeId(0), dst: NodeId(2), volume_mbps: 440.0, flow_count: 10 },
        ]);
        let out = Ldr::default().place_with_traces(&topo, &tm_same, &traces).unwrap();
        let _ = tm;
        assert!(out.iterations > 1, "bursty aggregates must trigger the tweak loop");
        let inflated = out.ba.iter().zip([450.0, 440.0]).any(|(b, m)| *b > m * 1.2);
        assert!(inflated, "some Ba must have been scaled up: {:?}", out.ba);
    }
}
