//! Equal-cost multi-path shortest-path routing — OSPF/IS-IS as actually
//! deployed, splitting traffic evenly across *all* tied lowest-delay paths.
//!
//! The paper's SP baseline (Figure 3) is single-path; ECMP is the variant
//! every ISP runs in practice, and comparing the two quantifies how much of
//! SP's congestion problem mere tie-splitting can absorb (spoiler: only the
//! part caused by exact delay ties, which geographic delays make rare —
//! high-LLPD networks stay hard). Splitting is per-aggregate over the
//! shortest-path DAG with even next-hop division at each node, matching
//! per-flow ECMP hashing in expectation.

use std::collections::HashMap;

use lowlat_netgraph::{shortest_path_tree, FailureMask, Graph, LinkId, NodeId, Path};
use lowlat_tmgen::TrafficMatrix;

use crate::placement::{AggregatePlacement, Placement};
use crate::schemes::{RoutingScheme, SchemeError};
use crate::source::PathSource;

/// Relative tolerance for "equal cost".
const TIE_TOL: f64 = 1e-9;

/// ECMP over delay-weighted shortest paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct EcmpRouting;

impl EcmpRouting {
    /// Enumerates the equal-cost path set from `src` to `dst` with the
    /// fraction of traffic each receives under even per-hop splitting.
    ///
    /// Walks the shortest-path DAG (links `(u,v)` with
    /// `dist(u) + delay(u,v) = dist(v)`), dividing each node's incoming
    /// share evenly among its outgoing DAG links. Exponential path counts
    /// cannot occur in backbone-sized graphs with geographic delays (ties
    /// need exactly equal sums), but a cap guards pathological inputs.
    fn ecmp_paths(
        graph: &Graph,
        src: NodeId,
        dst: NodeId,
        mask: Option<&FailureMask>,
    ) -> Vec<(Path, f64)> {
        // Distances *to* dst: run the tree from dst over reversed edges by
        // using dist from src and checking the forward condition instead.
        // Failed elements are excluded both here and from the DAG below, so
        // ECMP reroutes like a re-converged IGP.
        let tree = shortest_path_tree(
            graph,
            src,
            mask.and_then(|m| m.link_mask()),
            mask.and_then(|m| m.node_mask()),
        );
        let dist_to = |v: NodeId| tree.dist_ms(v);
        debug_assert!(dist_to(dst).is_finite());

        // A link (u -> v) is on some shortest src->dst path iff it is
        // *tight* (dist(u) + d(u,v) == dist(v)) and dst is reachable from v
        // through tight links. Reverse BFS from dst over tight in-links
        // discovers exactly those edges.
        let mut dag_out: HashMap<NodeId, Vec<LinkId>> = HashMap::new();
        let mut stack = vec![dst];
        let mut reach = vec![false; graph.node_count()];
        reach[dst.idx()] = true;
        while let Some(v) = stack.pop() {
            for &l in graph.in_links(v) {
                if mask.is_some_and(|m| m.link_down(graph, l)) {
                    continue;
                }
                let link = graph.link(l);
                let u = link.src;
                if dist_to(u).is_finite()
                    && (dist_to(u) + link.delay_ms - dist_to(v)).abs()
                        <= TIE_TOL * (1.0 + dist_to(v))
                {
                    dag_out.entry(u).or_default().push(l);
                    if !reach[u.idx()] {
                        reach[u.idx()] = true;
                        stack.push(u);
                    }
                }
            }
        }
        for v in dag_out.values_mut() {
            v.sort();
            v.dedup();
        }

        // Path enumeration with per-hop share division.
        const MAX_PATHS: usize = 64;
        let mut out: Vec<(Path, f64)> = Vec::new();
        let mut frontier: Vec<(NodeId, Vec<LinkId>, f64)> = vec![(src, Vec::new(), 1.0)];
        while let Some((at, links, share)) = frontier.pop() {
            if at == dst {
                out.push((Path::new(graph, links), share));
                continue;
            }
            let nexts = dag_out.get(&at).map(Vec::as_slice).unwrap_or(&[]);
            debug_assert!(!nexts.is_empty(), "DAG dead end");
            let split = share / nexts.len() as f64;
            for &l in nexts {
                if out.len() + frontier.len() >= MAX_PATHS {
                    // Guard: merge remainder onto the first DAG choice.
                    let mut ls = links.clone();
                    ls.push(l);
                    let mut v = graph.link(l).dst;
                    while v != dst {
                        let n = dag_out[&v][0];
                        ls.push(n);
                        v = graph.link(n).dst;
                    }
                    out.push((Path::new(graph, ls), split));
                    continue;
                }
                let mut ls = links.clone();
                ls.push(l);
                frontier.push((graph.link(l).dst, ls, split));
            }
        }
        // Merge duplicate paths (possible via the cap fallback).
        let mut merged: Vec<(Path, f64)> = Vec::new();
        for (p, x) in out {
            if let Some(e) = merged.iter_mut().find(|(q, _)| q.links() == p.links()) {
                e.1 += x;
            } else {
                merged.push((p, x));
            }
        }
        merged
    }
}

impl RoutingScheme for EcmpRouting {
    fn name(&self) -> String {
        "ECMP".into()
    }

    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        let graph = source.graph();
        let mask = source.failure_mask();
        let per_aggregate = tm
            .aggregates()
            .iter()
            .map(|a| AggregatePlacement {
                splits: Self::ecmp_paths(graph, a.src, a.dst, mask.as_deref()),
            })
            .collect();
        let placement = Placement::new(per_aggregate);
        debug_assert!(placement.validate(graph, tm).is_ok());
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PlacementEval;
    use crate::schemes::sp::ShortestPathRouting;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, Topology, TopologyBuilder};

    /// Two exactly-tied 2 ms paths A->Z plus a longer third.
    fn tied() -> Topology {
        let mut b = TopologyBuilder::new("tied");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect_with_delay(a, m, 1.0, 100.0);
        b.connect_with_delay(m, z, 1.0, 100.0);
        b.connect_with_delay(a, n, 1.0, 100.0);
        b.connect_with_delay(n, z, 1.0, 100.0);
        b.connect_with_delay(a, z, 5.0, 100.0);
        b.build()
    }

    fn tm(v: f64) -> TrafficMatrix {
        TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(3),
            volume_mbps: v,
            flow_count: 10,
        }])
    }

    #[test]
    fn splits_ties_evenly() {
        let topo = tied();
        let pl = EcmpRouting.place_on(&topo, &tm(100.0)).unwrap();
        let splits = &pl.aggregate(0).splits;
        assert_eq!(splits.len(), 2, "two tied paths, direct 5 ms not used");
        for (p, x) in splits {
            assert!((x - 0.5).abs() < 1e-12);
            assert!((p.delay_ms() - 2.0).abs() < 1e-12);
        }
        let ev = PlacementEval::evaluate(&topo, &tm(100.0), &pl);
        assert!((ev.latency_stretch() - 1.0).abs() < 1e-12, "ties cost nothing");
    }

    #[test]
    fn ecmp_fits_what_single_path_sp_congests() {
        let topo = tied();
        let t = tm(150.0);
        let sp = ShortestPathRouting.place_on(&topo, &t).unwrap();
        let ecmp = EcmpRouting.place_on(&topo, &t).unwrap();
        assert!(!PlacementEval::evaluate(&topo, &t, &sp).fits(), "150 on one 100 path");
        assert!(PlacementEval::evaluate(&topo, &t, &ecmp).fits(), "75+75 across the tie");
    }

    #[test]
    fn no_ties_means_identical_to_sp() {
        // Geographic delays: ties are measure-zero, ECMP == SP.
        let topo = lowlat_topology::zoo::named::abilene();
        let t = TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(10),
            volume_mbps: 100.0,
            flow_count: 20,
        }]);
        let sp = ShortestPathRouting.place_on(&topo, &t).unwrap();
        let ecmp = EcmpRouting.place_on(&topo, &t).unwrap();
        assert_eq!(ecmp.aggregate(0).splits.len(), 1);
        assert_eq!(ecmp.aggregate(0).splits[0].0.links(), sp.aggregate(0).splits[0].0.links());
    }

    #[test]
    fn shares_sum_to_one_on_zoo_networks() {
        let topo = lowlat_topology::zoo::grid(4, 4, 0.2, lowlat_topology::zoo::EUROPE, 11);
        let aggs: Vec<Aggregate> = topo
            .ordered_pairs()
            .into_iter()
            .take(40)
            .map(|(s, d)| Aggregate { src: s, dst: d, volume_mbps: 10.0, flow_count: 2 })
            .collect();
        let t = TrafficMatrix::new(aggs);
        let pl = EcmpRouting.place_on(&topo, &t).unwrap();
        assert!(pl.validate(topo.graph(), &t).is_ok());
    }
}
