//! The latency-optimal scheme: Figure 12's LP driven by Figure 13's lazy
//! path generation, with the §4 headroom dial.

use lowlat_tmgen::TrafficMatrix;

use crate::pathgrow::{GrowOutcome, GrowRequest, GrowthConfig, SolveContext};
use crate::placement::Placement;
use crate::schemes::{RoutingScheme, SchemeError};
use crate::source::PathSource;

/// Configuration for [`LatencyOptimal`].
#[derive(Clone, Debug, Default)]
pub struct LatOptConfig {
    /// LP/growth machinery knobs, including the headroom fraction.
    pub growth: GrowthConfig,
}

/// Latency-optimal routing (the paper's "Optimal latency" curves).
#[derive(Clone, Debug, Default)]
pub struct LatencyOptimal {
    config: LatOptConfig,
}

impl LatencyOptimal {
    /// Creates the scheme.
    pub fn new(config: LatOptConfig) -> Self {
        LatencyOptimal { config }
    }

    /// Creates the scheme with a given headroom fraction (§4's dial),
    /// everything else default.
    pub fn with_headroom(headroom: f64) -> Self {
        LatencyOptimal {
            config: LatOptConfig { growth: GrowthConfig { headroom, ..Default::default() } },
        }
    }

    /// Full outcome (placement + overload + LP stats) with source reuse.
    pub fn solve_with_cache(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
    ) -> Result<GrowOutcome, SchemeError> {
        self.solve_with_cache_ctx(source, tm, &mut SolveContext::new())
    }

    /// As [`LatencyOptimal::solve_with_cache`], warm-starting the LPs from
    /// `ctx` (kept across successive calls by timeline controllers).
    pub fn solve_with_cache_ctx(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        ctx: &mut SolveContext,
    ) -> Result<GrowOutcome, SchemeError> {
        Ok(GrowRequest::new(source, tm).config(&self.config.growth).solve_with(ctx)?)
    }
}

impl RoutingScheme for LatencyOptimal {
    fn name(&self) -> String {
        let h = self.config.growth.headroom;
        if h == 0.0 {
            "LatOpt".into()
        } else {
            format!("LatOpt-h{:02}", (h * 100.0).round() as u32)
        }
    }

    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        Ok(self.solve_with_cache(source, tm)?.placement)
    }

    fn place_with_context(
        &self,
        source: &dyn PathSource,
        tm: &TrafficMatrix,
        ctx: &mut SolveContext,
    ) -> Result<Placement, SchemeError> {
        Ok(self.solve_with_cache_ctx(source, tm, ctx)?.placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PlacementEval;
    use crate::schemes::sp::ShortestPathRouting;
    use lowlat_tmgen::{GravityTmGen, TmGenConfig};
    use lowlat_topology::zoo::named;

    #[test]
    fn never_worse_than_sp_on_congestion() {
        let topo = named::abilene();
        let gen =
            GravityTmGen::new(TmGenConfig { total_volume_mbps: 60_000.0, ..Default::default() });
        let tm = gen.generate(&topo, 0);
        let sp = ShortestPathRouting.place_on(&topo, &tm).unwrap();
        let opt = LatencyOptimal::default().place_on(&topo, &tm).unwrap();
        let ev_sp = PlacementEval::evaluate(&topo, &tm, &sp);
        let ev_opt = PlacementEval::evaluate(&topo, &tm, &opt);
        assert!(ev_opt.max_utilization() <= ev_sp.max_utilization() + 1e-6);
        assert!(opt.validate(topo.graph(), &tm).is_ok());
    }

    #[test]
    fn headroom_dial_raises_latency_monotonically() {
        let topo = named::gts_like();
        let gen =
            GravityTmGen::new(TmGenConfig { total_volume_mbps: 40_000.0, ..Default::default() });
        let tm = gen.generate(&topo, 1);
        let mut last_stretch = 0.0;
        for h in [0.0, 0.23, 0.4] {
            let pl = LatencyOptimal::with_headroom(h).place_on(&topo, &tm).unwrap();
            let ev = PlacementEval::evaluate(&topo, &tm, &pl);
            assert!(
                ev.latency_stretch() >= last_stretch - 1e-6,
                "headroom {h}: stretch {} under previous {last_stretch}",
                ev.latency_stretch()
            );
            last_stretch = ev.latency_stretch();
        }
    }
}
