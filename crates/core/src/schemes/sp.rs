//! Shortest-path routing with delay-proportional link costs — OSPF/IS-IS as
//! an ISP chasing latency would configure them (§3 "Shortest path routing").

use lowlat_tmgen::TrafficMatrix;

use crate::placement::{AggregatePlacement, Placement};
use crate::schemes::{RoutingScheme, SchemeError};
use crate::source::PathSource;

/// Every aggregate rides its single lowest-delay path, demand-oblivious.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShortestPathRouting;

impl RoutingScheme for ShortestPathRouting {
    fn name(&self) -> String {
        "SP".into()
    }

    fn place(&self, source: &dyn PathSource, tm: &TrafficMatrix) -> Result<Placement, SchemeError> {
        let per_aggregate = tm
            .aggregates()
            .iter()
            .map(|a| AggregatePlacement {
                splits: vec![(
                    source.shortest(a.src, a.dst).expect("topologies are connected"),
                    1.0,
                )],
            })
            .collect();
        Ok(Placement::new(per_aggregate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PlacementEval;
    use lowlat_netgraph::NodeId;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::zoo::named;

    #[test]
    fn rides_shortest_and_reports_stretch_one() {
        let topo = named::abilene();
        let tm = TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(10),
            volume_mbps: 100.0,
            flow_count: 20,
        }]);
        let pl = ShortestPathRouting.place_on(&topo, &tm).unwrap();
        assert!(pl.validate(topo.graph(), &tm).is_ok());
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        assert!((ev.latency_stretch() - 1.0).abs() < 1e-9);
        assert!((ev.max_flow_stretch() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concentrates_traffic_when_demands_collide() {
        // Everyone sends to PoP 0: the links into 0 carry everything.
        let topo = named::abilene();
        let aggs: Vec<Aggregate> = (1..11)
            .map(|i| Aggregate {
                src: NodeId(i),
                dst: NodeId(0),
                volume_mbps: 9_000.0,
                flow_count: 10,
            })
            .collect();
        let tm = TrafficMatrix::new(aggs);
        let pl = ShortestPathRouting.place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        // 90 Gb/s into a node with ~2 x 10G links: heavy congestion.
        assert!(ev.congested_pair_fraction() > 0.5);
        assert!(!ev.fits());
    }
}
