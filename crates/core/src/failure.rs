//! Failure scenarios and post-failure evaluation — the topology-dynamics
//! axis of the experiment surface.
//!
//! The paper's claim is that low-latency routing stays *capable* when the
//! topology degrades; the related Snowcap work evaluates entire
//! reconfiguration orderings. This module supplies the building blocks for
//! both directions:
//!
//! * **scenario generators** — exhaustive single-cable failures, random
//!   k-cable failures, node (PoP) failures, and SRLG sets (cables sharing a
//!   risk group, e.g. a conduit out of one PoP) — each a declarative
//!   [`FailureScenario`] that compiles to a [`FailureMask`];
//! * **routable partitioning** — which demand survives a failure at all
//!   ([`partition_routable`]), since a disconnected aggregate is a fact to
//!   measure, not an error to crash on;
//! * **post-failure metrics** — unroutable demand fraction, path stretch
//!   *relative to the intact topology*, and overload against effective
//!   (degraded) capacities ([`FailureImpact`]);
//! * **the recovery drill** — [`replace_under_failure`] runs the §5
//!   reaction end to end: repair the shared
//!   [`PathSource`](crate::source::PathSource) under the mask, drop
//!   disconnected demand, re-place through the scheme's warm
//!   [`SolveContext`], and report both the repair and the LP telemetry.

use lowlat_netgraph::{all_pairs_delays, FailureMask, Graph, LinkId, NodeId};
use lowlat_telemetry as telemetry;
use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::{PopId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pathset::RepairStats;
use crate::placement::Placement;
use crate::schemes::{RoutingScheme, SchemeError, SolveContext};
use crate::source::PathSource;

/// A declarative failure: which cables/nodes go down and which cables
/// degrade, independent of any graph. Compiled to a [`FailureMask`] against
/// a concrete topology with [`FailureScenario::mask`].
#[derive(Clone, Debug)]
pub struct FailureScenario {
    /// Human-readable scenario id (one TSV cell in the sweeps).
    pub name: String,
    /// Cables taken down (canonical directed link id; both directions fail).
    pub cables: Vec<LinkId>,
    /// PoPs taken down entirely.
    pub nodes: Vec<PopId>,
    /// Cables degraded to `factor * capacity` (`0 < factor < 1`), both
    /// directions.
    pub degradations: Vec<(LinkId, f64)>,
}

impl FailureScenario {
    /// The all-up scenario.
    pub fn none() -> Self {
        FailureScenario {
            name: "none".to_string(),
            cables: Vec::new(),
            nodes: Vec::new(),
            degradations: Vec::new(),
        }
    }

    /// Number of failed elements.
    pub fn failed_elements(&self) -> usize {
        self.cables.len() + self.nodes.len()
    }

    /// Compiles the scenario to a mask over `topology`'s graph.
    pub fn mask(&self, topology: &Topology) -> FailureMask {
        let graph = topology.graph();
        let mut mask = FailureMask::new();
        for &c in &self.cables {
            mask.fail_cable(graph, c);
        }
        for &n in &self.nodes {
            mask.fail_node(n);
        }
        for &(c, f) in &self.degradations {
            mask.degrade_cable(graph, c, f);
        }
        mask
    }
}

/// Cable endpoints as `"A-B"` for scenario names.
fn cable_label(topology: &Topology, cable: LinkId) -> String {
    let link = topology.graph().link(cable);
    format!("{}-{}", topology.pop_name(link.src), topology.pop_name(link.dst))
}

/// Exhaustive single-cable failures: one scenario per physical cable (both
/// directions down) — the classic survivability sweep.
pub fn single_link_failures(topology: &Topology) -> Vec<FailureScenario> {
    topology
        .cables()
        .into_iter()
        .map(|c| FailureScenario {
            name: format!("link:{}", cable_label(topology, c)),
            cables: vec![c],
            nodes: Vec::new(),
            degradations: Vec::new(),
        })
        .collect()
}

/// One scenario per PoP going down (its demand becomes unroutable; transit
/// through it reroutes).
pub fn node_failures(topology: &Topology) -> Vec<FailureScenario> {
    (0..topology.pop_count() as u32)
        .map(|n| FailureScenario {
            name: format!("node:{}", topology.pop_name(NodeId(n))),
            cables: Vec::new(),
            nodes: vec![NodeId(n)],
            degradations: Vec::new(),
        })
        .collect()
}

/// `count` random scenarios of `k` simultaneous distinct cable failures,
/// deterministic in `seed` — the correlated-failure axis.
///
/// # Panics
/// Panics when `k` is 0 or exceeds the cable count.
pub fn random_k_link_failures(
    topology: &Topology,
    k: usize,
    count: usize,
    seed: u64,
) -> Vec<FailureScenario> {
    let cables = topology.cables();
    assert!(k >= 1 && k <= cables.len(), "k {} out of 1..={}", k, cables.len());
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            // Floyd's distinct-sampling algorithm: exactly k draws, no
            // rejection loop, uniform over k-subsets — well-behaved even
            // when k approaches the cable count.
            let mut picked: Vec<usize> = Vec::with_capacity(k);
            for j in cables.len() - k..cables.len() {
                let c = rng.gen_range(0..=j);
                picked.push(if picked.contains(&c) { j } else { c });
            }
            picked.sort_unstable();
            FailureScenario {
                name: format!("rand{k}:{i}"),
                cables: picked.into_iter().map(|c| cables[c]).collect(),
                nodes: Vec::new(),
                degradations: Vec::new(),
            }
        })
        .collect()
}

/// SRLG scenarios from explicit risk groups: each `(name, cables)` group
/// fails together (fiber conduits, shared ducts, amplifier sites).
pub fn srlg_failures(
    groups: impl IntoIterator<Item = (String, Vec<LinkId>)>,
) -> Vec<FailureScenario> {
    groups
        .into_iter()
        .map(|(name, cables)| FailureScenario {
            name: format!("srlg:{name}"),
            cables,
            nodes: Vec::new(),
            degradations: Vec::new(),
        })
        .collect()
}

/// A default SRLG corpus: for every PoP, the "conduit" group of all cables
/// incident to it — the canonical shared-duct risk. (The PoP itself stays
/// up: unlike a node failure, traffic *from* the PoP is cut off but the
/// router is alive, the distinction Snowcap's soft reconfigurations need.)
pub fn pop_conduit_srlgs(topology: &Topology) -> Vec<FailureScenario> {
    let graph = topology.graph();
    (0..topology.pop_count() as u32)
        .map(|n| {
            let pop = NodeId(n);
            let cables: Vec<LinkId> = topology
                .cables()
                .into_iter()
                .filter(|&c| {
                    let l = graph.link(c);
                    l.src == pop || l.dst == pop
                })
                .collect();
            FailureScenario {
                name: format!("srlg:conduit-{}", topology.pop_name(pop)),
                cables,
                nodes: Vec::new(),
                degradations: Vec::new(),
            }
        })
        .collect()
}

/// Exhaustive single-cable brown-outs: one degradation-only scenario per
/// physical cable, each dimming both directions to `factor * capacity`.
/// Nothing goes down, so path caches keep every pair — the scenarios
/// exercise exactly the effective-capacity path through the LP stack.
///
/// # Panics
/// Panics unless `0 < factor < 1` (use [`single_link_failures`] for 0).
pub fn brownout_failures(topology: &Topology, factor: f64) -> Vec<FailureScenario> {
    assert!(factor > 0.0 && factor < 1.0, "brown-out factor {factor} out of (0,1)");
    topology
        .cables()
        .into_iter()
        .map(|c| FailureScenario {
            name: format!("brownout:{}@{factor}", cable_label(topology, c)),
            cables: Vec::new(),
            nodes: Vec::new(),
            degradations: vec![(c, factor)],
        })
        .collect()
}

/// Geographic SRLGs from PoP coordinates: for each cable, the group of
/// cables whose great-circle corridors pass within `corridor_km` of its own
/// — fibre runs plausibly trenched along the same right-of-way, which real
/// outages (backhoes, floods) take out together. Cables sharing an endpoint
/// are excluded (the [`pop_conduit_srlgs`] corpus already covers shared
/// exits); groups with no non-adjacent neighbour are dropped, and duplicate
/// groups are emitted once.
pub fn geo_corridor_srlgs(topology: &Topology, corridor_km: f64) -> Vec<FailureScenario> {
    let graph = topology.graph();
    let cables = topology.cables();
    let segments: Vec<(lowlat_topology::GeoPoint, lowlat_topology::GeoPoint)> = cables
        .iter()
        .map(|&c| {
            let l = graph.link(c);
            (topology.location(l.src), topology.location(l.dst))
        })
        .collect();
    let mut seen: Vec<Vec<u32>> = Vec::new();
    let mut out = Vec::new();
    for (i, &c) in cables.iter().enumerate() {
        let li = graph.link(c);
        let mut group = vec![c];
        for (j, &d) in cables.iter().enumerate() {
            if i == j {
                continue;
            }
            let lj = graph.link(d);
            let adjacent =
                li.src == lj.src || li.src == lj.dst || li.dst == lj.src || li.dst == lj.dst;
            if adjacent {
                continue;
            }
            let dist = lowlat_topology::corridor_distance_km(
                &segments[i].0,
                &segments[i].1,
                &segments[j].0,
                &segments[j].1,
            );
            if dist <= corridor_km {
                group.push(d);
            }
        }
        if group.len() < 2 {
            continue;
        }
        group.sort_unstable_by_key(|l| l.0);
        let key: Vec<u32> = group.iter().map(|l| l.0).collect();
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        out.push(FailureScenario {
            name: format!("srlg:geo-{}", cable_label(topology, c)),
            cables: group,
            nodes: Vec::new(),
            degradations: Vec::new(),
        });
    }
    out
}

/// The demand that survives a failure, and how much did not.
#[derive(Clone, Debug)]
pub struct RoutablePartition {
    /// The routable aggregates (a sub-matrix of the original, same order).
    pub tm: TrafficMatrix,
    /// For each aggregate of `tm`, its index in the original matrix.
    pub kept: Vec<usize>,
    /// Volume-weighted fraction of demand with no surviving path.
    pub unroutable_fraction: f64,
}

/// Splits `tm` into the aggregates that still have a path under `mask` and
/// the unroutable remainder. One masked Dijkstra per distinct source.
pub fn partition_routable(
    graph: &Graph,
    tm: &TrafficMatrix,
    mask: &FailureMask,
) -> RoutablePartition {
    let mut kept = Vec::with_capacity(tm.aggregates().len());
    let mut kept_aggs = Vec::with_capacity(tm.aggregates().len());
    let mut dropped_volume = 0.0;
    let mut total_volume = 0.0;
    let mut tree_src = None;
    let mut tree = None;
    for (i, a) in tm.aggregates().iter().enumerate() {
        total_volume += a.volume_mbps;
        if tree_src != Some(a.src) {
            tree_src = Some(a.src);
            tree = Some(lowlat_netgraph::shortest_path_tree(
                graph,
                a.src,
                mask.link_mask(),
                mask.node_mask(),
            ));
        }
        let reachable = !mask.node_down(a.src)
            && !mask.node_down(a.dst)
            && tree.as_ref().expect("tree built above").reachable(a.dst);
        if reachable {
            kept.push(i);
            kept_aggs.push(*a);
        } else {
            dropped_volume += a.volume_mbps;
        }
    }
    RoutablePartition {
        tm: TrafficMatrix::new(kept_aggs),
        kept,
        unroutable_fraction: if total_volume > 0.0 { dropped_volume / total_volume } else { 0.0 },
    }
}

/// Post-failure metrics of one placement, judged against the *intact*
/// topology's shortest paths (so stretch includes the failure detour) and
/// the *effective* (masked) capacities.
#[derive(Clone, Debug)]
pub struct FailureImpact {
    /// Volume fraction of the original demand with no surviving path.
    pub unroutable_fraction: f64,
    /// Flow-weighted mean placed delay over intact-topology shortest delay,
    /// across routable aggregates (1.0 when nothing detours).
    pub latency_stretch: f64,
    /// Worst used-path delay over intact shortest delay, over routable
    /// aggregates.
    pub max_path_stretch: f64,
    /// `max_l load_l / effective_cap_l - 1` clamped at 0;
    /// [`FailureImpact::INFINITE_OVERLOAD`] when traffic is placed on a
    /// downed link (static placements do this).
    pub max_overload: f64,
    /// Highest link utilization against effective capacity (same sentinel).
    pub max_utilization: f64,
}

impl FailureImpact {
    /// The sentinel `max_utilization`/`max_overload` take when positive load
    /// sits on a link with zero effective capacity: any amount of traffic on
    /// a dead link is unboundedly overloaded. Always `+∞`, never NaN —
    /// zero-load links are skipped before the division, so the 0/0 case
    /// cannot arise. Test with `is_infinite()`; the value orders correctly
    /// against every finite overload.
    pub const INFINITE_OVERLOAD: f64 = f64::INFINITY;

    /// Evaluates `placement` (over `partition.tm`) under `mask`.
    pub fn evaluate(
        topology: &Topology,
        partition: &RoutablePartition,
        mask: &FailureMask,
        placement: &Placement,
    ) -> FailureImpact {
        Self::evaluate_with_delays(
            topology,
            partition,
            mask,
            placement,
            &all_pairs_delays(topology.graph()),
        )
    }

    /// As [`FailureImpact::evaluate`], with the *intact* topology's
    /// all-pairs delays precomputed — sweeps evaluating many scenarios of
    /// one network compute them once instead of per row.
    pub fn evaluate_with_delays(
        topology: &Topology,
        partition: &RoutablePartition,
        mask: &FailureMask,
        placement: &Placement,
        sp: &[Vec<f64>],
    ) -> FailureImpact {
        let graph = topology.graph();
        let loads = placement.link_loads(graph, &partition.tm);
        let mut max_utilization = 0.0f64;
        for l in graph.link_ids() {
            // Skipping zero-load links first keeps the arithmetic NaN-free:
            // a downed link (cap 0) only matters when something is placed
            // on it, and then the documented sentinel applies.
            if loads[l.idx()] <= 0.0 {
                continue;
            }
            let cap = mask.effective_capacity(graph, l);
            let util = if cap > 0.0 { loads[l.idx()] / cap } else { Self::INFINITE_OVERLOAD };
            max_utilization = max_utilization.max(util);
        }
        let mut weighted_delay = 0.0;
        let mut weighted_sp = 0.0;
        let mut max_path_stretch = 1.0f64;
        for (agg, pl) in partition.tm.aggregates().iter().zip(placement.per_aggregate()) {
            let base = sp[agg.src.idx()][agg.dst.idx()];
            debug_assert!(base.is_finite() && base > 0.0);
            let n = agg.flow_count as f64;
            weighted_delay += n * pl.mean_delay_ms();
            weighted_sp += n * base;
            max_path_stretch = max_path_stretch.max(pl.max_delay_ms() / base);
        }
        FailureImpact {
            unroutable_fraction: partition.unroutable_fraction,
            latency_stretch: if weighted_sp > 0.0 { weighted_delay / weighted_sp } else { 1.0 },
            max_path_stretch,
            max_overload: (max_utilization - 1.0).max(0.0),
            max_utilization,
        }
    }
}

/// Everything that happened during one failure-recovery drill.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// What cache repair kept vs rebuilt.
    pub repair: RepairStats,
    /// Which demand survived.
    pub partition: RoutablePartition,
    /// The post-failure placement (over `partition.tm`).
    pub placement: Placement,
    /// Post-failure metrics.
    pub impact: FailureImpact,
    /// LP solves issued while re-placing.
    pub lp_solves: usize,
    /// Of those, solves that warm-started from a carried basis — recovery
    /// is warm when this is positive.
    pub lp_warm_hits: usize,
}

/// The §5 failure reaction, end to end: repair `source` under `mask`, drop
/// unroutable demand, re-place the survivors through `ctx` (so LP schemes
/// warm-start from the pre-failure bases), and measure the outcome.
///
/// `intact_delays` are the intact topology's all-pairs delays when the
/// caller already has them (sweeps evaluate many scenarios per network);
/// `None` computes them here.
///
/// The source is left with the mask applied; callers iterating scenarios
/// re-apply the next mask (repairing incrementally) or
/// [`PathSource::clear_failure`] at the end. Works against any
/// [`PathSource`] — the flat [`PathCache`](crate::pathset::PathCache) or
/// the partitioned engine.
pub fn replace_under_failure(
    scheme: &dyn RoutingScheme,
    topology: &Topology,
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    mask: &FailureMask,
    ctx: &mut SolveContext,
    intact_delays: Option<&[Vec<f64>]>,
) -> Result<RecoveryOutcome, SchemeError> {
    let _span = telemetry::span("failure.replace", "failure");
    let repair = source.apply_failure(mask);
    let partition = partition_routable(topology.graph(), tm, mask);
    let solves0 = ctx.solves();
    let hits0 = ctx.warm_hits();
    let placement = {
        let _replace = telemetry::span("failure.replace.solve", "failure");
        scheme.place_with_context(source, &partition.tm, ctx)?
    };
    let impact = match intact_delays {
        Some(sp) => FailureImpact::evaluate_with_delays(topology, &partition, mask, &placement, sp),
        None => FailureImpact::evaluate(topology, &partition, mask, &placement),
    };
    Ok(RecoveryOutcome {
        repair,
        partition,
        placement,
        impact,
        lp_solves: ctx.solves() - solves0,
        lp_warm_hits: ctx.warm_hits() - hits0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathset::PathCache;
    use crate::scale::ScaleToLoad;
    use crate::schemes::registry;
    use lowlat_tmgen::{Aggregate, GravityTmGen, TmGenConfig};
    use lowlat_topology::zoo::named;
    use lowlat_topology::{GeoPoint, TopologyBuilder};

    fn abilene_tm(topo: &Topology) -> TrafficMatrix {
        GravityTmGen::new(TmGenConfig::default()).generate(topo, 0).scaled_to_load(topo, 0.7)
    }

    #[test]
    fn generators_cover_the_axes() {
        let topo = named::abilene();
        let singles = single_link_failures(&topo);
        assert_eq!(singles.len(), topo.cables().len());
        assert!(singles.iter().all(|s| s.cables.len() == 1 && s.name.starts_with("link:")));
        let nodes = node_failures(&topo);
        assert_eq!(nodes.len(), topo.pop_count());
        let rand2 = random_k_link_failures(&topo, 2, 5, 42);
        assert_eq!(rand2.len(), 5);
        assert!(rand2.iter().all(|s| s.cables.len() == 2 && s.cables[0] != s.cables[1]));
        // Deterministic in the seed.
        let again = random_k_link_failures(&topo, 2, 5, 42);
        for (a, b) in rand2.iter().zip(&again) {
            assert_eq!(a.cables, b.cables);
        }
        let srlgs = pop_conduit_srlgs(&topo);
        assert_eq!(srlgs.len(), topo.pop_count());
        assert!(srlgs.iter().all(|s| !s.cables.is_empty()));
    }

    #[test]
    fn scenario_masks_fail_both_directions() {
        let topo = named::abilene();
        let s = &single_link_failures(&topo)[0];
        let mask = s.mask(&topo);
        let g = topo.graph();
        assert!(mask.link_down(g, s.cables[0]));
        assert!(mask.link_down(g, topo.reverse_link(s.cables[0])));
    }

    #[test]
    fn partition_keeps_everything_on_survivable_failures() {
        // Abilene is 2-connected: no single cable failure disconnects it.
        let topo = named::abilene();
        let tm = abilene_tm(&topo);
        for s in single_link_failures(&topo) {
            let part = partition_routable(topo.graph(), &tm, &s.mask(&topo));
            assert_eq!(part.unroutable_fraction, 0.0, "{}", s.name);
            assert_eq!(part.kept.len(), tm.aggregates().len());
        }
    }

    #[test]
    fn partition_drops_disconnected_demand() {
        // A line A-B-C: failing cable B-C strands every aggregate touching C.
        let mut b = TopologyBuilder::new("line");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("B", GeoPoint::new(40.0, -97.0));
        let c = b.add_pop("C", GeoPoint::new(40.0, -94.0));
        b.connect(a, m, 100.0);
        b.connect(m, c, 100.0);
        let topo = b.build();
        let tm = TrafficMatrix::new(vec![
            Aggregate { src: a, dst: m, volume_mbps: 30.0, flow_count: 3 },
            Aggregate { src: a, dst: c, volume_mbps: 30.0, flow_count: 3 },
            Aggregate { src: c, dst: a, volume_mbps: 40.0, flow_count: 4 },
        ]);
        let bc = topo.graph().find_link(m, c).unwrap();
        let mut scenario = FailureScenario::none();
        scenario.cables.push(bc);
        let part = partition_routable(topo.graph(), &tm, &scenario.mask(&topo));
        assert_eq!(part.kept, vec![0], "only A->B survives");
        assert!((part.unroutable_fraction - 0.7).abs() < 1e-9);
        assert_eq!(part.tm.aggregates().len(), 1);
    }

    #[test]
    fn recovery_drill_reroutes_with_warm_lps_and_repaired_cache() {
        let topo = named::abilene();
        let tm = abilene_tm(&topo);
        let cache = PathCache::new(topo.graph());
        let mut ctx = SolveContext::new();
        let scheme = registry::build("LDR").unwrap();
        // Pre-failure placement warms the cache and the LP bases.
        let baseline =
            scheme.place_with_context(&cache, &tm, &mut ctx).expect("baseline placement");
        assert!(baseline.validate(topo.graph(), &tm).is_ok());
        let scenario = &single_link_failures(&topo)[0];
        let mask = scenario.mask(&topo);
        let out = replace_under_failure(scheme.as_ref(), &topo, &cache, &tm, &mask, &mut ctx, None)
            .expect("recovery");
        assert!(out.repair.kept_pairs > 0, "repair must keep untouched pairs");
        assert!(out.repair.repaired_pairs > 0, "the failed cable crossed some pairs");
        assert_eq!(out.impact.unroutable_fraction, 0.0);
        assert!(out.lp_solves > 0);
        assert!(
            out.lp_warm_hits > 0,
            "recovery must warm-start: {} hits / {} solves",
            out.lp_warm_hits,
            out.lp_solves
        );
        // The placement never uses a failed element.
        let g = topo.graph();
        for pl in out.placement.per_aggregate() {
            for (path, x) in &pl.splits {
                if *x > 1e-9 {
                    assert!(!mask.hits_path(g, path));
                }
            }
        }
        assert!(out.impact.latency_stretch >= 1.0 - 1e-6);
        assert!(out.impact.max_path_stretch >= 1.0 - 1e-6);
        cache.clear_failure();
    }

    #[test]
    fn impact_flags_static_placement_on_downed_link() {
        // A placement computed before the failure keeps using the dead
        // cable: max_overload must go infinite, not panic.
        let topo = named::abilene();
        let tm = abilene_tm(&topo);
        let cache = PathCache::new(topo.graph());
        let scheme = registry::build("SP").unwrap();
        let placement = scheme.place(&cache, &tm).expect("SP placement");
        // Find a cable the placement actually uses.
        let g = topo.graph();
        let loads = placement.link_loads(g, &tm);
        let used = g.link_ids().find(|&l| loads[l.idx()] > 1e-9).expect("some link is used");
        let mut mask = FailureMask::new();
        mask.fail_cable(g, used);
        let partition = RoutablePartition {
            tm: tm.clone(),
            kept: (0..tm.aggregates().len()).collect(),
            unroutable_fraction: 0.0,
        };
        let impact = FailureImpact::evaluate(&topo, &partition, &mask, &placement);
        assert!(impact.max_overload.is_infinite());
        assert!(impact.max_utilization.is_infinite());
    }

    #[test]
    fn infinite_overload_sentinel_is_never_nan() {
        // Load on a downed link yields the documented sentinel — +inf, not
        // NaN — and idle downed links (the 0/0 case) are skipped entirely.
        let mut b = TopologyBuilder::new("line");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("B", GeoPoint::new(40.0, -97.0));
        let c = b.add_pop("C", GeoPoint::new(40.0, -94.0));
        b.connect(a, m, 100.0);
        b.connect(m, c, 100.0);
        let topo = b.build();
        let tm = TrafficMatrix::new(vec![Aggregate {
            src: a,
            dst: m,
            volume_mbps: 30.0,
            flow_count: 3,
        }]);
        let cache = PathCache::new(topo.graph());
        let placement = registry::build("SP").unwrap().place(&cache, &tm).unwrap();
        let partition =
            RoutablePartition { tm: tm.clone(), kept: vec![0], unroutable_fraction: 0.0 };
        // Down both cables: A-B carries 30 (sentinel), B-C idles (skipped).
        let mut mask = FailureMask::new();
        let g = topo.graph();
        mask.fail_cable(g, g.find_link(a, m).unwrap());
        mask.fail_cable(g, g.find_link(m, c).unwrap());
        let impact = FailureImpact::evaluate(&topo, &partition, &mask, &placement);
        assert_eq!(impact.max_utilization, FailureImpact::INFINITE_OVERLOAD);
        assert_eq!(impact.max_overload, FailureImpact::INFINITE_OVERLOAD);
        assert!(!impact.max_overload.is_nan() && !impact.max_utilization.is_nan());
        assert!(impact.max_overload > 1e12, "sentinel orders above any finite overload");
    }

    #[test]
    fn brownout_scenarios_degrade_without_downing() {
        let topo = named::abilene();
        let scenarios = brownout_failures(&topo, 0.5);
        assert_eq!(scenarios.len(), topo.cables().len());
        let g = topo.graph();
        for s in &scenarios {
            assert!(s.name.starts_with("brownout:"), "{}", s.name);
            assert_eq!(s.failed_elements(), 0, "nothing goes down in a brown-out");
            let mask = s.mask(&topo);
            assert!(!mask.affects_routing(), "degradation-only mask");
            let (c, f) = s.degradations[0];
            assert!((mask.effective_capacity(g, c) - g.link(c).capacity_mbps * f).abs() < 1e-9);
            assert!(
                (mask.effective_capacity(g, topo.reverse_link(c))
                    - g.link(topo.reverse_link(c)).capacity_mbps * f)
                    .abs()
                    < 1e-9,
                "both directions dim"
            );
        }
    }

    #[test]
    fn geo_corridor_srlgs_group_nearby_non_adjacent_cables() {
        // A tall, narrow rectangular ring. The two vertical edges run ~39 km
        // apart (0.5° of longitude at lat 44–45); the two horizontal edges
        // run 111 km apart (1° of latitude). A 60 km corridor groups exactly
        // the vertical pair — every other non-adjacent pair is too far, and
        // adjacent pairs are excluded by construction.
        let mut b = TopologyBuilder::new("corridors");
        let a1 = b.add_pop("A1", GeoPoint::new(45.0, 5.0));
        let a2 = b.add_pop("A2", GeoPoint::new(45.0, 5.5));
        let b1 = b.add_pop("B1", GeoPoint::new(44.0, 5.0));
        let b2 = b.add_pop("B2", GeoPoint::new(44.0, 5.5));
        b.connect(a1, a2, 100.0); // top
        b.connect(b1, b2, 100.0); // bottom
        b.connect(a1, b1, 100.0); // left
        b.connect(a2, b2, 100.0); // right
        let topo = b.build();
        let srlgs = geo_corridor_srlgs(&topo, 60.0);
        assert_eq!(srlgs.len(), 1, "exactly the left/right corridor pair: {srlgs:?}");
        let s = &srlgs[0];
        assert!(s.name.starts_with("srlg:geo-"));
        assert_eq!(s.cables.len(), 2);
        let g = topo.graph();
        let left = g.find_link(a1, b1).unwrap();
        let right = g.find_link(a2, b2).unwrap();
        let mut got = s.cables.clone();
        got.sort_unstable_by_key(|l| l.0);
        let mut want = vec![left, right];
        want.sort_unstable_by_key(|l| l.0);
        assert_eq!(got, want, "the two parallel runs share fate; the far edges do not");
        // A generous corridor still never groups adjacent cables.
        for s in geo_corridor_srlgs(&topo, 10_000.0) {
            for (x, &cx) in s.cables.iter().enumerate() {
                for &cy in &s.cables[x + 1..] {
                    let (lx, ly) = (g.link(cx), g.link(cy));
                    assert!(
                        lx.src != ly.src
                            && lx.src != ly.dst
                            && lx.dst != ly.src
                            && lx.dst != ly.dst,
                        "adjacent cables belong to conduit SRLGs, not geo ones"
                    );
                }
            }
        }
    }
}
