//! Traffic placements: the output of every routing scheme.

use lowlat_netgraph::{Graph, Path};
use lowlat_tmgen::TrafficMatrix;

/// How one aggregate's traffic is split over paths.
#[derive(Clone, Debug)]
pub struct AggregatePlacement {
    /// `(path, fraction)` pairs; fractions are non-negative and sum to 1.
    pub splits: Vec<(Path, f64)>,
}

impl AggregatePlacement {
    /// Volume-weighted mean propagation delay of this aggregate (ms).
    pub fn mean_delay_ms(&self) -> f64 {
        self.splits.iter().map(|(p, x)| p.delay_ms() * x).sum()
    }

    /// Worst-case (maximum) delay over paths actually used.
    pub fn max_delay_ms(&self) -> f64 {
        self.splits.iter().filter(|(_, x)| *x > 1e-9).map(|(p, _)| p.delay_ms()).fold(0.0, f64::max)
    }
}

/// A complete traffic placement: one [`AggregatePlacement`] per aggregate of
/// the traffic matrix, in the same order as
/// [`TrafficMatrix::aggregates`].
#[derive(Clone, Debug)]
pub struct Placement {
    per_aggregate: Vec<AggregatePlacement>,
}

impl Placement {
    /// Wraps per-aggregate splits (aligned with the traffic matrix).
    pub fn new(per_aggregate: Vec<AggregatePlacement>) -> Self {
        Placement { per_aggregate }
    }

    /// Splits for every aggregate.
    pub fn per_aggregate(&self) -> &[AggregatePlacement] {
        &self.per_aggregate
    }

    /// Splits for aggregate `i`.
    pub fn aggregate(&self, i: usize) -> &AggregatePlacement {
        &self.per_aggregate[i]
    }

    /// Total load each directed link carries under this placement (Mbps,
    /// indexed by link id).
    pub fn link_loads(&self, graph: &Graph, tm: &TrafficMatrix) -> Vec<f64> {
        let mut loads = vec![0.0; graph.link_count()];
        for (agg, placement) in tm.aggregates().iter().zip(&self.per_aggregate) {
            for (path, fraction) in &placement.splits {
                let volume = agg.volume_mbps * fraction;
                if volume > 0.0 {
                    for &l in path.links() {
                        loads[l.idx()] += volume;
                    }
                }
            }
        }
        loads
    }

    /// Fraction of aggregate `i` crossing each link (sparse). Used by LDR's
    /// multiplexing check to scale trace samples per link.
    pub fn link_fractions_of(&self, i: usize) -> std::collections::HashMap<u32, f64> {
        let mut out = std::collections::HashMap::new();
        for (path, fraction) in &self.per_aggregate[i].splits {
            if *fraction > 1e-12 {
                for &l in path.links() {
                    *out.entry(l.0).or_insert(0.0) += fraction;
                }
            }
        }
        out
    }

    /// Checks structural invariants against the matrix it was computed for:
    /// alignment, endpoints, loopless valid paths, fractions in [0,1]
    /// summing to 1. Returns the first violation.
    pub fn validate(&self, graph: &Graph, tm: &TrafficMatrix) -> Result<(), String> {
        if self.per_aggregate.len() != tm.aggregates().len() {
            return Err(format!(
                "placement covers {} aggregates, matrix has {}",
                self.per_aggregate.len(),
                tm.aggregates().len()
            ));
        }
        for (i, (agg, pl)) in tm.aggregates().iter().zip(&self.per_aggregate).enumerate() {
            if pl.splits.is_empty() {
                return Err(format!("aggregate {i} has no paths"));
            }
            let mut total = 0.0;
            for (path, x) in &pl.splits {
                if !(-1e-9..=1.0 + 1e-9).contains(x) {
                    return Err(format!("aggregate {i} fraction {x} out of range"));
                }
                total += x;
                if path.src() != agg.src || path.dst() != agg.dst {
                    return Err(format!("aggregate {i} path endpoints mismatch"));
                }
                path.validate(graph).map_err(|e| format!("aggregate {i}: {e}"))?;
            }
            if (total - 1.0).abs() > 1e-6 {
                return Err(format!("aggregate {i} fractions sum to {total}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::NodeId;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, TopologyBuilder};

    fn setup() -> (lowlat_topology::Topology, TrafficMatrix) {
        let mut b = TopologyBuilder::new("t");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let c = b.add_pop("B", GeoPoint::new(40.0, -95.0));
        let d = b.add_pop("C", GeoPoint::new(40.0, -90.0));
        b.connect(a, c, 100.0);
        b.connect(c, d, 100.0);
        b.connect(a, d, 100.0);
        let topo = b.build();
        let tm = TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(2),
            volume_mbps: 60.0,
            flow_count: 12,
        }]);
        (topo, tm)
    }

    #[test]
    fn loads_and_fractions() {
        let (topo, tm) = setup();
        let g = topo.graph();
        let direct = g.find_link(NodeId(0), NodeId(2)).unwrap();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l12 = g.find_link(NodeId(1), NodeId(2)).unwrap();
        let p_direct = Path::new(g, vec![direct]);
        let p_via = Path::new(g, vec![l01, l12]);
        let pl = Placement::new(vec![AggregatePlacement {
            splits: vec![(p_direct, 0.75), (p_via, 0.25)],
        }]);
        assert!(pl.validate(g, &tm).is_ok());
        let loads = pl.link_loads(g, &tm);
        assert!((loads[direct.idx()] - 45.0).abs() < 1e-9);
        assert!((loads[l01.idx()] - 15.0).abs() < 1e-9);
        let fr = pl.link_fractions_of(0);
        assert!((fr[&direct.0] - 0.75).abs() < 1e-12);
        assert!((fr[&l12.0] - 0.25).abs() < 1e-12);
        // Delay accounting.
        assert!(pl.aggregate(0).mean_delay_ms() > 0.0);
        assert!(pl.aggregate(0).max_delay_ms() >= pl.aggregate(0).mean_delay_ms());
    }

    #[test]
    fn validate_rejects_bad_sum() {
        let (topo, tm) = setup();
        let g = topo.graph();
        let direct = g.find_link(NodeId(0), NodeId(2)).unwrap();
        let pl = Placement::new(vec![AggregatePlacement {
            splits: vec![(Path::new(g, vec![direct]), 0.5)],
        }]);
        assert!(pl.validate(g, &tm).is_err());
    }

    #[test]
    fn validate_rejects_wrong_endpoints() {
        let (topo, tm) = setup();
        let g = topo.graph();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let pl = Placement::new(vec![AggregatePlacement {
            splits: vec![(Path::new(g, vec![l01]), 1.0)],
        }]);
        assert!(pl.validate(g, &tm).is_err());
    }
}
