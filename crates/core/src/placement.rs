//! Traffic placements: the output of every routing scheme.

use lowlat_netgraph::{Graph, Path};
use lowlat_tmgen::TrafficMatrix;

/// How one aggregate's traffic is split over paths.
#[derive(Clone, Debug)]
pub struct AggregatePlacement {
    /// `(path, fraction)` pairs; fractions are non-negative and sum to 1.
    pub splits: Vec<(Path, f64)>,
}

impl AggregatePlacement {
    /// Volume-weighted mean propagation delay of this aggregate (ms).
    pub fn mean_delay_ms(&self) -> f64 {
        self.splits.iter().map(|(p, x)| p.delay_ms() * x).sum()
    }

    /// Worst-case (maximum) delay over paths actually used.
    pub fn max_delay_ms(&self) -> f64 {
        self.splits.iter().filter(|(_, x)| *x > 1e-9).map(|(p, _)| p.delay_ms()).fold(0.0, f64::max)
    }
}

/// Split weights below this are treated as "path not installed" throughout
/// the churn accounting (matching the `> 1e-9` convention the evaluators
/// use for "path actually carries traffic").
const INSTALL_EPS: f64 = 1e-9;
/// Weight shifts below this do not count as a re-program: LP round-off
/// between equivalent vertices is noise, not churn (the placement
/// validator itself only holds split sums to 1e-6).
const REWEIGHT_EPS: f64 = 1e-6;

/// What changed between two placements of the same aggregate set — the
/// churn a controller would push to the switches when replacing one with
/// the other: paths newly installed, paths uninstalled, surviving paths
/// whose split weight was re-programmed, and how much traffic volume moved
/// onto different paths. Accumulated per minute by the timeline controller
/// and reported as the `paths_changed` / `moved_volume_fraction` columns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlacementDelta {
    /// Paths carrying traffic in the new placement but not the old.
    pub paths_added: usize,
    /// Paths carrying traffic in the old placement but not the new.
    pub paths_removed: usize,
    /// Paths present in both whose split weight shifted by more than the
    /// re-weight tolerance.
    pub paths_reweighted: usize,
    /// Offered volume (Mbps) that moved onto different paths or shares:
    /// per aggregate, `volume * Σ_p max(0, x_new(p) − x_old(p))`.
    pub moved_volume_mbps: f64,
    /// Total offered volume (Mbps) of the aggregates compared — the
    /// denominator of [`PlacementDelta::moved_volume_fraction`].
    pub total_volume_mbps: f64,
}

impl PlacementDelta {
    /// Total switch operations: installs + uninstalls + re-programs.
    pub fn paths_changed(&self) -> usize {
        self.paths_added + self.paths_removed + self.paths_reweighted
    }

    /// Fraction of the compared volume that moved (0 when nothing was
    /// compared).
    pub fn moved_volume_fraction(&self) -> f64 {
        if self.total_volume_mbps > 0.0 {
            self.moved_volume_mbps / self.total_volume_mbps
        } else {
            0.0
        }
    }

    /// Folds another delta into this one (summing counters and volumes).
    pub fn accumulate(&mut self, other: &PlacementDelta) {
        self.paths_added += other.paths_added;
        self.paths_removed += other.paths_removed;
        self.paths_reweighted += other.paths_reweighted;
        self.moved_volume_mbps += other.moved_volume_mbps;
        self.total_volume_mbps += other.total_volume_mbps;
    }

    /// The churn of replacing `prev` with `new` for one aggregate carrying
    /// `volume_mbps`. `prev = None` models a fresh install: every used path
    /// counts as added and the whole volume as moved. Paths are identified
    /// by their link sequence.
    pub fn of_aggregate(
        prev: Option<&AggregatePlacement>,
        new: &AggregatePlacement,
        volume_mbps: f64,
    ) -> PlacementDelta {
        let mut delta = PlacementDelta { total_volume_mbps: volume_mbps, ..Default::default() };
        let empty: &[(Path, f64)] = &[];
        let prev_splits = prev.map_or(empty, |p| p.splits.as_slice());
        let mut moved_fraction = 0.0f64;
        for (path, x_new) in &new.splits {
            if *x_new <= INSTALL_EPS {
                continue;
            }
            let x_old = prev_splits
                .iter()
                .find(|(p, x)| *x > INSTALL_EPS && p.links() == path.links())
                .map(|(_, x)| *x);
            match x_old {
                None => {
                    delta.paths_added += 1;
                    moved_fraction += x_new;
                }
                Some(x_old) => {
                    if (x_new - x_old).abs() > REWEIGHT_EPS {
                        delta.paths_reweighted += 1;
                    }
                    moved_fraction += (x_new - x_old).max(0.0);
                }
            }
        }
        for (path, x_old) in prev_splits {
            if *x_old <= INSTALL_EPS {
                continue;
            }
            let survives =
                new.splits.iter().any(|(p, x)| *x > INSTALL_EPS && p.links() == path.links());
            if !survives {
                delta.paths_removed += 1;
            }
        }
        delta.moved_volume_mbps = volume_mbps * moved_fraction;
        delta
    }
}

/// A complete traffic placement: one [`AggregatePlacement`] per aggregate of
/// the traffic matrix, in the same order as
/// [`TrafficMatrix::aggregates`].
#[derive(Clone, Debug)]
pub struct Placement {
    per_aggregate: Vec<AggregatePlacement>,
}

impl Placement {
    /// Wraps per-aggregate splits (aligned with the traffic matrix).
    pub fn new(per_aggregate: Vec<AggregatePlacement>) -> Self {
        Placement { per_aggregate }
    }

    /// Splits for every aggregate.
    pub fn per_aggregate(&self) -> &[AggregatePlacement] {
        &self.per_aggregate
    }

    /// Splits for aggregate `i`.
    pub fn aggregate(&self, i: usize) -> &AggregatePlacement {
        &self.per_aggregate[i]
    }

    /// Total load each directed link carries under this placement (Mbps,
    /// indexed by link id).
    pub fn link_loads(&self, graph: &Graph, tm: &TrafficMatrix) -> Vec<f64> {
        let mut loads = vec![0.0; graph.link_count()];
        for (agg, placement) in tm.aggregates().iter().zip(&self.per_aggregate) {
            for (path, fraction) in &placement.splits {
                let volume = agg.volume_mbps * fraction;
                if volume > 0.0 {
                    for &l in path.links() {
                        loads[l.idx()] += volume;
                    }
                }
            }
        }
        loads
    }

    /// Fraction of aggregate `i` crossing each link (sparse). Used by LDR's
    /// multiplexing check to scale trace samples per link.
    pub fn link_fractions_of(&self, i: usize) -> std::collections::HashMap<u32, f64> {
        let mut out = std::collections::HashMap::new();
        for (path, fraction) in &self.per_aggregate[i].splits {
            if *fraction > 1e-12 {
                for &l in path.links() {
                    *out.entry(l.0).or_insert(0.0) += fraction;
                }
            }
        }
        out
    }

    /// The churn of replacing `prev` with `self`, both placed for `tm`
    /// (same aggregates, same order): the install/uninstall/re-program
    /// operations a controller would push plus the volume that moved. See
    /// [`PlacementDelta`].
    ///
    /// # Panics
    /// Panics if the two placements or the matrix disagree on aggregate
    /// count.
    pub fn delta(&self, prev: &Placement, tm: &TrafficMatrix) -> PlacementDelta {
        assert_eq!(self.per_aggregate.len(), prev.per_aggregate.len(), "placement shapes differ");
        assert_eq!(self.per_aggregate.len(), tm.aggregates().len(), "matrix shape differs");
        let mut total = PlacementDelta::default();
        for ((agg, new), old) in
            tm.aggregates().iter().zip(&self.per_aggregate).zip(&prev.per_aggregate)
        {
            total.accumulate(&PlacementDelta::of_aggregate(Some(old), new, agg.volume_mbps));
        }
        total
    }

    /// Checks structural invariants against the matrix it was computed for:
    /// alignment, endpoints, loopless valid paths, fractions in [0,1]
    /// summing to 1. Returns the first violation.
    pub fn validate(&self, graph: &Graph, tm: &TrafficMatrix) -> Result<(), String> {
        if self.per_aggregate.len() != tm.aggregates().len() {
            return Err(format!(
                "placement covers {} aggregates, matrix has {}",
                self.per_aggregate.len(),
                tm.aggregates().len()
            ));
        }
        for (i, (agg, pl)) in tm.aggregates().iter().zip(&self.per_aggregate).enumerate() {
            if pl.splits.is_empty() {
                return Err(format!("aggregate {i} has no paths"));
            }
            let mut total = 0.0;
            for (path, x) in &pl.splits {
                if !(-1e-9..=1.0 + 1e-9).contains(x) {
                    return Err(format!("aggregate {i} fraction {x} out of range"));
                }
                total += x;
                if path.src() != agg.src || path.dst() != agg.dst {
                    return Err(format!("aggregate {i} path endpoints mismatch"));
                }
                path.validate(graph).map_err(|e| format!("aggregate {i}: {e}"))?;
            }
            if (total - 1.0).abs() > 1e-6 {
                return Err(format!("aggregate {i} fractions sum to {total}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::NodeId;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, TopologyBuilder};

    fn setup() -> (lowlat_topology::Topology, TrafficMatrix) {
        let mut b = TopologyBuilder::new("t");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let c = b.add_pop("B", GeoPoint::new(40.0, -95.0));
        let d = b.add_pop("C", GeoPoint::new(40.0, -90.0));
        b.connect(a, c, 100.0);
        b.connect(c, d, 100.0);
        b.connect(a, d, 100.0);
        let topo = b.build();
        let tm = TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(2),
            volume_mbps: 60.0,
            flow_count: 12,
        }]);
        (topo, tm)
    }

    #[test]
    fn loads_and_fractions() {
        let (topo, tm) = setup();
        let g = topo.graph();
        let direct = g.find_link(NodeId(0), NodeId(2)).unwrap();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l12 = g.find_link(NodeId(1), NodeId(2)).unwrap();
        let p_direct = Path::new(g, vec![direct]);
        let p_via = Path::new(g, vec![l01, l12]);
        let pl = Placement::new(vec![AggregatePlacement {
            splits: vec![(p_direct, 0.75), (p_via, 0.25)],
        }]);
        assert!(pl.validate(g, &tm).is_ok());
        let loads = pl.link_loads(g, &tm);
        assert!((loads[direct.idx()] - 45.0).abs() < 1e-9);
        assert!((loads[l01.idx()] - 15.0).abs() < 1e-9);
        let fr = pl.link_fractions_of(0);
        assert!((fr[&direct.0] - 0.75).abs() < 1e-12);
        assert!((fr[&l12.0] - 0.25).abs() < 1e-12);
        // Delay accounting.
        assert!(pl.aggregate(0).mean_delay_ms() > 0.0);
        assert!(pl.aggregate(0).max_delay_ms() >= pl.aggregate(0).mean_delay_ms());
    }

    #[test]
    fn delta_counts_installs_uninstalls_and_moves() {
        let (topo, tm) = setup();
        let g = topo.graph();
        let direct = g.find_link(NodeId(0), NodeId(2)).unwrap();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l12 = g.find_link(NodeId(1), NodeId(2)).unwrap();
        let p_direct = Path::new(g, vec![direct]);
        let p_via = Path::new(g, vec![l01, l12]);
        let all_direct =
            Placement::new(vec![AggregatePlacement { splits: vec![(p_direct.clone(), 1.0)] }]);
        let split = Placement::new(vec![AggregatePlacement {
            splits: vec![(p_direct.clone(), 0.75), (p_via.clone(), 0.25)],
        }]);
        // Same placement: zero churn.
        let zero = all_direct.delta(&all_direct, &tm);
        assert_eq!(zero.paths_changed(), 0);
        assert_eq!(zero.moved_volume_mbps, 0.0);
        assert_eq!(zero.total_volume_mbps, 60.0);
        // 1.0 direct -> 0.75/0.25: the detour is installed, the direct path
        // re-programmed, a quarter of the 60 Mbps moved.
        let d = split.delta(&all_direct, &tm);
        assert_eq!((d.paths_added, d.paths_removed, d.paths_reweighted), (1, 0, 1));
        assert!((d.moved_volume_mbps - 15.0).abs() < 1e-9);
        assert!((d.moved_volume_fraction() - 0.25).abs() < 1e-9);
        // The reverse direction uninstalls the detour instead.
        let back = all_direct.delta(&split, &tm);
        assert_eq!((back.paths_added, back.paths_removed, back.paths_reweighted), (0, 1, 1));
        assert!((back.moved_volume_fraction() - 0.25).abs() < 1e-9);
        // A full path swap moves everything.
        let all_via =
            Placement::new(vec![AggregatePlacement { splits: vec![(p_via.clone(), 1.0)] }]);
        let swap = all_via.delta(&all_direct, &tm);
        assert_eq!((swap.paths_added, swap.paths_removed), (1, 1));
        assert!((swap.moved_volume_fraction() - 1.0).abs() < 1e-9);
        // Fresh install (no previous placement): all paths added, all
        // volume moved; and sub-tolerance jitter is not churn.
        let fresh = PlacementDelta::of_aggregate(None, &split.per_aggregate()[0], 60.0);
        assert_eq!(fresh.paths_added, 2);
        assert!((fresh.moved_volume_fraction() - 1.0).abs() < 1e-9);
        let jitter = Placement::new(vec![AggregatePlacement {
            splits: vec![(p_direct, 0.75 + 1e-9), (p_via, 0.25 - 1e-9)],
        }]);
        assert_eq!(jitter.delta(&split, &tm).paths_changed(), 0);
        // Accumulation sums both counters and volumes.
        let mut acc = PlacementDelta::default();
        acc.accumulate(&d);
        acc.accumulate(&back);
        assert_eq!(acc.paths_changed(), d.paths_changed() + back.paths_changed());
        assert!((acc.total_volume_mbps - 120.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_bad_sum() {
        let (topo, tm) = setup();
        let g = topo.graph();
        let direct = g.find_link(NodeId(0), NodeId(2)).unwrap();
        let pl = Placement::new(vec![AggregatePlacement {
            splits: vec![(Path::new(g, vec![direct]), 0.5)],
        }]);
        assert!(pl.validate(g, &tm).is_err());
    }

    #[test]
    fn validate_rejects_wrong_endpoints() {
        let (topo, tm) = setup();
        let g = topo.graph();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let pl = Placement::new(vec![AggregatePlacement {
            splits: vec![(Path::new(g, vec![l01]), 1.0)],
        }]);
        assert!(pl.validate(g, &tm).is_err());
    }
}
