//! Placement evaluation: the quantities the paper's figures plot.

use lowlat_netgraph::{all_pairs_delays, Graph};
use lowlat_tmgen::TrafficMatrix;
use lowlat_topology::Topology;

use crate::placement::Placement;

/// Relative tolerance above which a link counts as congested.
pub const CONGESTION_TOL: f64 = 1e-6;

/// Metrics of one placement on one (topology, traffic matrix) pair.
#[derive(Clone, Debug)]
pub struct PlacementEval {
    congested_pairs: usize,
    total_pairs: usize,
    latency_stretch: f64,
    max_flow_stretch: f64,
    utilizations: Vec<f64>,
    fits: bool,
}

impl PlacementEval {
    /// Evaluates `placement` for `tm` on `topology`.
    ///
    /// * **congested pair fraction** — aggregates whose traffic crosses at
    ///   least one link loaded beyond capacity (Figures 3, 4 top halves).
    /// * **latency stretch** — `Σ_f d_f / Σ_f d_f,sp` over all flows, where
    ///   an aggregate's flows see its volume-weighted mean path delay
    ///   (Figures 4 bottom halves, 8).
    /// * **max flow stretch** — worst used-path delay over shortest-path
    ///   delay, over all aggregates (Figures 16, 17, 18).
    /// * **utilizations** — per-link load/capacity (Figure 7).
    /// * **fits** — true when no link is loaded beyond capacity.
    pub fn evaluate(topology: &Topology, tm: &TrafficMatrix, placement: &Placement) -> Self {
        Self::evaluate_on(topology.graph(), tm, placement)
    }

    /// As [`PlacementEval::evaluate`], directly against a graph — the form
    /// the source-generic timeline uses, where only a
    /// [`PathSource`](crate::source::PathSource)'s graph view exists.
    pub fn evaluate_on(graph: &Graph, tm: &TrafficMatrix, placement: &Placement) -> Self {
        debug_assert!(placement.validate(graph, tm).is_ok());
        let loads = placement.link_loads(graph, tm);
        let mut congested_link = vec![false; graph.link_count()];
        let mut utilizations = vec![0.0; graph.link_count()];
        for l in graph.link_ids() {
            let cap = graph.link(l).capacity_mbps;
            utilizations[l.idx()] = loads[l.idx()] / cap;
            congested_link[l.idx()] = loads[l.idx()] > cap * (1.0 + CONGESTION_TOL);
        }
        let fits = !congested_link.iter().any(|&c| c);

        let sp_delays = all_pairs_delays(graph);
        let mut congested_pairs = 0;
        let mut weighted_delay = 0.0;
        let mut weighted_sp_delay = 0.0;
        let mut max_flow_stretch: f64 = 1.0;
        for (agg, pl) in tm.aggregates().iter().zip(placement.per_aggregate()) {
            let sp = sp_delays[agg.src.idx()][agg.dst.idx()];
            debug_assert!(sp.is_finite() && sp > 0.0);
            let mut crosses_congestion = false;
            let mut worst = 0.0f64;
            for (path, x) in &pl.splits {
                if *x <= 1e-9 {
                    continue;
                }
                worst = worst.max(path.delay_ms());
                if path.links().iter().any(|&l| congested_link[l.idx()]) {
                    crosses_congestion = true;
                }
            }
            if crosses_congestion {
                congested_pairs += 1;
            }
            let n = agg.flow_count as f64;
            weighted_delay += n * pl.mean_delay_ms();
            weighted_sp_delay += n * sp;
            max_flow_stretch = max_flow_stretch.max(worst / sp);
        }
        PlacementEval {
            congested_pairs,
            total_pairs: tm.aggregates().len(),
            latency_stretch: weighted_delay / weighted_sp_delay,
            max_flow_stretch,
            utilizations,
            fits,
        }
    }

    /// Fraction of source-destination pairs crossing a saturated link.
    pub fn congested_pair_fraction(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.congested_pairs as f64 / self.total_pairs as f64
        }
    }

    /// Flow-weighted latency stretch `Σ n_a d_a / Σ n_a S_a` (>= 1 up to LP
    /// tolerance).
    pub fn latency_stretch(&self) -> f64 {
        self.latency_stretch
    }

    /// Maximum over aggregates of (worst used path delay / shortest delay).
    pub fn max_flow_stretch(&self) -> f64 {
        self.max_flow_stretch
    }

    /// Per-link utilization (load / capacity).
    pub fn utilizations(&self) -> &[f64] {
        &self.utilizations
    }

    /// Highest link utilization.
    pub fn max_utilization(&self) -> f64 {
        self.utilizations.iter().cloned().fold(0.0, f64::max)
    }

    /// True when no link exceeds its capacity.
    pub fn fits(&self) -> bool {
        self.fits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::AggregatePlacement;
    use lowlat_netgraph::{NodeId, Path};
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, TopologyBuilder};

    /// Triangle where A-C direct is slow, A-B-C is fast.
    fn setup(volume: f64) -> (Topology, TrafficMatrix) {
        let mut b = TopologyBuilder::new("t");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let p = b.add_pop("B", GeoPoint::new(41.0, -97.0));
        let c = b.add_pop("C", GeoPoint::new(40.0, -94.0));
        b.connect_with_delay(a, p, 1.0, 100.0);
        b.connect_with_delay(p, c, 1.0, 100.0);
        b.connect_with_delay(a, c, 5.0, 100.0);
        (
            b.build(),
            TrafficMatrix::new(vec![Aggregate {
                src: NodeId(0),
                dst: NodeId(2),
                volume_mbps: volume,
                flow_count: 10,
            }]),
        )
    }

    fn place_on_shortest(topo: &Topology, tm: &TrafficMatrix) -> Placement {
        let g = topo.graph();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l12 = g.find_link(NodeId(1), NodeId(2)).unwrap();
        let _ = tm;
        Placement::new(vec![AggregatePlacement {
            splits: vec![(Path::new(g, vec![l01, l12]), 1.0)],
        }])
    }

    #[test]
    fn uncongested_shortest_placement() {
        let (topo, tm) = setup(50.0);
        let pl = place_on_shortest(&topo, &tm);
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        assert_eq!(ev.congested_pair_fraction(), 0.0);
        assert!((ev.latency_stretch() - 1.0).abs() < 1e-9);
        assert!((ev.max_flow_stretch() - 1.0).abs() < 1e-9);
        assert!(ev.fits());
        assert!((ev.max_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn overloaded_link_counts_pair_congested() {
        let (topo, tm) = setup(150.0);
        let pl = place_on_shortest(&topo, &tm);
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        assert_eq!(ev.congested_pair_fraction(), 1.0);
        assert!(!ev.fits());
        assert!(ev.max_utilization() > 1.4);
    }

    #[test]
    fn detour_shows_stretch() {
        let (topo, tm) = setup(50.0);
        let g = topo.graph();
        let direct = g.find_link(NodeId(0), NodeId(2)).unwrap();
        let pl = Placement::new(vec![AggregatePlacement {
            splits: vec![(Path::new(g, vec![direct]), 1.0)],
        }]);
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        // Direct 5 ms vs shortest 2 ms.
        assert!((ev.latency_stretch() - 2.5).abs() < 1e-9);
        assert!((ev.max_flow_stretch() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn split_placement_weights_delay() {
        let (topo, tm) = setup(50.0);
        let g = topo.graph();
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l12 = g.find_link(NodeId(1), NodeId(2)).unwrap();
        let direct = g.find_link(NodeId(0), NodeId(2)).unwrap();
        let pl = Placement::new(vec![AggregatePlacement {
            splits: vec![(Path::new(g, vec![l01, l12]), 0.5), (Path::new(g, vec![direct]), 0.5)],
        }]);
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        // Mean delay (2+5)/2 = 3.5 over sp 2 => 1.75; max stretch 2.5.
        assert!((ev.latency_stretch() - 1.75).abs() < 1e-9);
        assert!((ev.max_flow_stretch() - 2.5).abs() < 1e-9);
    }
}
