//! # lowlat-core
//!
//! The paper's primary contribution, reimplemented from scratch:
//!
//! * [`llpd`] — the **Alternate Path Availability** (APA) and **Low-Latency
//!   Path Diversity** (LLPD) metrics of §2: a routing- and traffic-agnostic
//!   measure of a topology's potential for congestion-free low-latency
//!   delivery.
//! * [`schemes`] — the routing schemes of §3–§5: delay-weighted shortest
//!   path, B4-style greedy progressive filling, MinMax (with and without the
//!   TeXCP k-shortest-path limit), the latency-optimal LP of Figure 12 with
//!   the lazy path generation of Figure 13, and **LDR** — latency-optimal
//!   routing with automatic headroom from the statistical-multiplexing loop
//!   of Figure 14.
//! * [`eval`] — placement evaluation: congested-pair fraction, latency
//!   stretch, maximum flow stretch, link-utilization CDFs (the y-axes of
//!   Figures 3, 4, 7, 16–18).
//! * [`growth`] — §8's topology-growth experiment: greedily add the cables
//!   that raise LLPD the most (Figure 20).
//! * [`failure`] — the topology-dynamics axis: failure-scenario generators
//!   (single-link, random-k, node-down, SRLG), routable-demand
//!   partitioning, post-failure metrics, and the cache-repair +
//!   warm-re-place recovery drill.
//!
//! The scheme implementations share two pieces of machinery that the paper
//! singles out as generally useful (§8 "Generality of building blocks"):
//! the cached incremental k-shortest-path sets ([`pathset`]) and the
//! grow-where-overloaded LP loop ([`pathgrow`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod eval;
pub mod failure;
pub mod growth;
pub mod hier;
pub mod llpd;
pub mod pathgrow;
pub mod pathset;
pub mod placement;
pub mod scale;
pub mod schemes;
pub mod source;

pub use eval::PlacementEval;
pub use failure::{FailureImpact, FailureScenario, RecoveryOutcome};
pub use hier::{EngineConfig, PartitionedPathEngine, QueryStats};
pub use llpd::{LlpdAnalysis, LlpdConfig};
pub use pathgrow::GrowRequest;
pub use placement::Placement;
pub use scale::ScaleToLoad;
pub use schemes::RoutingScheme;
pub use source::PathSource;
