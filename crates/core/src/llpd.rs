//! Alternate Path Availability (APA) and Low-Latency Path Diversity (LLPD),
//! §2 of the paper.
//!
//! For every PoP pair the metric asks, link by link along the lowest-latency
//! path: *if this link congested, could we route around it without blowing
//! the delay budget?* An alternate is **viable** when its bottleneck
//! capacity matches the shortest path's bottleneck; when one alternate is
//! too thin, the n lowest-latency alternates are pooled until their min-cut
//! suffices, and the delay charged is the n-th path's (the paper's
//! progressive-accumulation rule). A link is routable-around when the
//! resulting stretch `da/ds` stays within the limit (1.4 by default).
//!
//! * `APA(pair)` = fraction of links on the pair's shortest path that are
//!   routable-around (0..1); Figure 1 plots the CDF over pairs.
//! * `LLPD(network)` = fraction of pairs with APA >= 0.7.

use lowlat_netgraph::{min_cut_of_links, BitSet, KspGenerator, LinkId, Path};
use lowlat_topology::Topology;

/// Tunables for the APA/LLPD computation (paper defaults).
#[derive(Clone, Debug)]
pub struct LlpdConfig {
    /// Maximum acceptable stretch `da/ds` (paper: 1.4, i.e. "40%").
    pub stretch_limit: f64,
    /// APA level a pair must reach to count toward LLPD (paper: 0.7).
    pub apa_threshold: f64,
    /// Cap on the number of alternate paths pooled per probed link. The
    /// paper's rule terminates naturally at the stretch limit; this guards
    /// pathological cases.
    pub max_alternates: usize,
}

impl Default for LlpdConfig {
    fn default() -> Self {
        LlpdConfig { stretch_limit: 1.4, apa_threshold: 0.7, max_alternates: 24 }
    }
}

/// APA for every PoP pair plus the scalar LLPD.
#[derive(Clone, Debug)]
pub struct LlpdAnalysis {
    apa_per_pair: Vec<f64>,
    llpd: f64,
    config: LlpdConfig,
}

impl LlpdAnalysis {
    /// Computes APA for all unordered PoP pairs of `topology` and reduces to
    /// LLPD. Cost is one Yen enumeration per (pair, shortest-path link), so
    /// O(n²·diameter) shortest-path computations — fine for backbone sizes.
    pub fn compute(topology: &Topology, config: &LlpdConfig) -> Self {
        assert!(config.stretch_limit >= 1.0);
        assert!((0.0..=1.0).contains(&config.apa_threshold));
        let pairs = topology.unordered_pairs();
        let mut apa_per_pair = Vec::with_capacity(pairs.len());
        for (s, d) in pairs {
            apa_per_pair.push(apa_of_pair(topology, s, d, config));
        }
        let good = apa_per_pair.iter().filter(|&&a| a >= config.apa_threshold).count();
        let llpd =
            if apa_per_pair.is_empty() { 0.0 } else { good as f64 / apa_per_pair.len() as f64 };
        LlpdAnalysis { apa_per_pair, llpd, config: config.clone() }
    }

    /// APA values, one per unordered pair (ordering matches
    /// [`Topology::unordered_pairs`]).
    pub fn apa_values(&self) -> &[f64] {
        &self.apa_per_pair
    }

    /// The scalar LLPD of the network.
    pub fn llpd(&self) -> f64 {
        self.llpd
    }

    /// The configuration used.
    pub fn config(&self) -> &LlpdConfig {
        &self.config
    }
}

/// APA of one pair: walk the shortest path, probe each cable.
fn apa_of_pair(
    topology: &Topology,
    s: lowlat_topology::PopId,
    d: lowlat_topology::PopId,
    config: &LlpdConfig,
) -> f64 {
    let graph = topology.graph();
    let shortest =
        lowlat_netgraph::shortest_path(graph, s, d, None, None).expect("topologies are connected");
    let ds = shortest.delay_ms();
    let bottleneck = shortest.bottleneck_mbps(graph);
    let mut routable = 0usize;
    for &link in shortest.links() {
        if link_routable_around(topology, &shortest, link, ds, bottleneck, config) {
            routable += 1;
        }
    }
    routable as f64 / shortest.links().len() as f64
}

/// Can traffic route around `link` (as a cable: both directions are removed)
/// within the stretch limit, with enough pooled capacity?
fn link_routable_around(
    topology: &Topology,
    shortest: &Path,
    link: LinkId,
    ds: f64,
    bottleneck: f64,
    config: &LlpdConfig,
) -> bool {
    let graph = topology.graph();
    let mut avoid = BitSet::new(graph.link_count());
    avoid.insert(link.idx());
    avoid.insert(topology.reverse_link(link).idx());

    let mut gen =
        KspGenerator::with_avoided_links(graph, shortest.src(), shortest.dst(), Some(avoid));
    let limit = ds * config.stretch_limit;
    let mut pooled_links: Vec<LinkId> = Vec::new();
    for _ in 0..config.max_alternates {
        let Some(alt) = gen.next_path() else {
            return false; // no more alternates at all
        };
        // Paths arrive in non-decreasing delay order: once over the limit,
        // pooling further paths cannot help (da only grows).
        if alt.delay_ms() > limit + 1e-12 {
            return false;
        }
        pooled_links.extend_from_slice(alt.links());
        // Single viable alternate fast-path: bottleneck already sufficient.
        if alt.bottleneck_mbps(graph) >= bottleneck {
            return true;
        }
        let cut = min_cut_of_links(graph, &pooled_links, shortest.src(), shortest.dst());
        if cut >= bottleneck - 1e-9 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_topology::{GeoPoint, TopologyBuilder};

    fn cfg() -> LlpdConfig {
        LlpdConfig::default()
    }

    /// A pure chain has zero APA everywhere: nothing can be routed around.
    #[test]
    fn chain_has_zero_llpd() {
        let mut b = TopologyBuilder::new("chain");
        let mut prev = b.add_pop("p0", GeoPoint::new(40.0, -120.0));
        for i in 1..6 {
            let p = b.add_pop(format!("p{i}"), GeoPoint::new(40.0, -120.0 + 3.0 * i as f64));
            b.connect(prev, p, 10_000.0);
            prev = p;
        }
        let t = b.build();
        let a = LlpdAnalysis::compute(&t, &cfg());
        assert_eq!(a.llpd(), 0.0);
        assert!(a.apa_values().iter().all(|&v| v == 0.0));
    }

    /// A corridor clique (cities roughly along a line, fully meshed): long
    /// pairs always have a near-collinear intermediate, so most pairs can
    /// route around every link cheaply — the overlay networks whose CDFs
    /// are horizontal lines in Figure 1.
    #[test]
    fn corridor_clique_has_high_llpd() {
        let mut b = TopologyBuilder::new("clique6");
        let p: Vec<_> = (0..6)
            .map(|i| {
                // Roughly collinear with slight jitter.
                b.add_pop(
                    format!("p{i}"),
                    GeoPoint::new(40.0 + 0.3 * ((i % 2) as f64), -110.0 + 4.0 * i as f64),
                )
            })
            .collect();
        for i in 0..6 {
            for j in i + 1..6 {
                b.connect(p[i], p[j], 10_000.0);
            }
        }
        let t = b.build();
        let a = LlpdAnalysis::compute(&t, &cfg());
        // Adjacent-city pairs have no cheap detour (any intermediate is a
        // large relative detour), but every longer pair does; with 6 nodes
        // that is 10 of 15 pairs.
        assert!(a.llpd() > 0.5, "llpd {}", a.llpd());
    }

    /// Wide ring: routing around a link means going all the way back round;
    /// stretch explodes, so LLPD is 0 despite 2-connectivity.
    #[test]
    fn wide_ring_low_llpd() {
        let mut b = TopologyBuilder::new("ring");
        let n = 8;
        let p: Vec<_> = (0..n)
            .map(|i| {
                let ang = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                b.add_pop(
                    format!("p{i}"),
                    GeoPoint::new(45.0 + 6.0 * ang.sin(), -100.0 + 8.0 * ang.cos()),
                )
            })
            .collect();
        for i in 0..n {
            b.connect(p[i], p[(i + 1) % n], 10_000.0);
        }
        let t = b.build();
        let a = LlpdAnalysis::compute(&t, &cfg());
        assert!(a.llpd() < 0.3, "llpd {}", a.llpd());
    }

    /// Capacity matters: an alternate with a thin bottleneck is not viable
    /// on its own (paper's 1 Gb/s vs 100 Gb/s example).
    #[test]
    fn thin_alternate_not_viable() {
        let mut b = TopologyBuilder::new("thin");
        let a0 = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let a1 = b.add_pop("B", GeoPoint::new(40.0, -97.0));
        let mid = b.add_pop("M", GeoPoint::new(41.0, -98.5));
        b.connect(a0, a1, 100_000.0); // fat direct link
        b.connect(a0, mid, 1_000.0); // thin detour
        b.connect(mid, a1, 1_000.0);
        let t = b.build();
        let an = LlpdAnalysis::compute(&t, &cfg());
        // Pair (A,B): shortest = direct fat link; detour exists and is
        // within stretch (geometry), but its min-cut is 1G < 100G.
        let pairs = t.unordered_pairs();
        let idx = pairs.iter().position(|&(s, d)| s.idx() == 0 && d.idx() == 1).unwrap();
        assert_eq!(an.apa_values()[idx], 0.0);
    }

    /// Pooling: two medium alternates together can stand in for one fat
    /// shortest path (the paper's progressive n-path accumulation).
    #[test]
    fn pooled_alternates_become_viable() {
        let mut b = TopologyBuilder::new("pool");
        let a0 = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let a1 = b.add_pop("B", GeoPoint::new(40.0, -97.0));
        let m1 = b.add_pop("M1", GeoPoint::new(40.8, -98.5));
        let m2 = b.add_pop("M2", GeoPoint::new(39.2, -98.5));
        b.connect(a0, a1, 10_000.0); // 10G direct
        b.connect(a0, m1, 5_000.0); // two 5G detours
        b.connect(m1, a1, 5_000.0);
        b.connect(a0, m2, 5_000.0);
        b.connect(m2, a1, 5_000.0);
        let t = b.build();
        let an = LlpdAnalysis::compute(&t, &cfg());
        let pairs = t.unordered_pairs();
        let idx = pairs.iter().position(|&(s, d)| s.idx() == 0 && d.idx() == 1).unwrap();
        assert_eq!(an.apa_values()[idx], 1.0, "pooled 5G+5G covers the 10G bottleneck");
    }

    #[test]
    fn apa_values_in_unit_interval() {
        let t = lowlat_topology::zoo::named::abilene();
        let a = LlpdAnalysis::compute(&t, &cfg());
        assert!(a.apa_values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((0.0..=1.0).contains(&a.llpd()));
    }

    #[test]
    fn google_like_has_highest_llpd() {
        let google = LlpdAnalysis::compute(&lowlat_topology::zoo::named::google_like(), &cfg());
        let abilene = LlpdAnalysis::compute(&lowlat_topology::zoo::named::abilene(), &cfg());
        assert!(
            google.llpd() > abilene.llpd(),
            "google {} vs abilene {}",
            google.llpd(),
            abilene.llpd()
        );
        assert!(google.llpd() > 0.6, "Figure 19 expects very high LLPD, got {}", google.llpd());
    }
}
