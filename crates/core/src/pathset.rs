//! Cached, lazily grown k-shortest-path sets.
//!
//! The paper observes (§5) that in the iterative LP loop "the bottleneck is
//! not the linear optimizer, but the k shortest paths algorithm, the results
//! of which can be readily cached". [`PathCache`] is that cache: one
//! incremental Yen generator per (src, dst) pair, grown on demand and shared
//! across LP iterations — and across *schemes* and *traffic matrices*, which
//! is what makes the warm LDR runs in Figure 15 fast and lets the experiment
//! engine hand one cache per network to every worker thread.
//!
//! The interior is lock-striped: pairs hash onto [`SHARD_COUNT`] independent
//! mutexes, so concurrent placements of different aggregates on the same
//! graph contend only when they land on the same shard, not on every lookup.

use std::collections::HashMap;

use parking_lot::Mutex;

use lowlat_netgraph::{Graph, KspGenerator, NodeId, Path};

/// Number of independent lock shards. A power of two well above the worker
/// counts we run with; per-shard memory is one empty `HashMap`, so
/// over-provisioning is free.
const SHARD_COUNT: usize = 64;

type Shard<'g> = Mutex<HashMap<(NodeId, NodeId), KspGenerator<'g>>>;

/// Thread-safe cache of k-shortest paths per ordered pair, lock-striped
/// across [`SHARD_COUNT`] shards.
pub struct PathCache<'g> {
    graph: &'g Graph,
    shards: Vec<Shard<'g>>,
}

impl<'g> PathCache<'g> {
    /// Creates an empty cache over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        PathCache { graph, shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// The graph this cache serves.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The shard holding `(src, dst)`. Fibonacci-style mixing spreads the
    /// small consecutive node ids real topologies use across all shards.
    fn shard(&self, src: NodeId, dst: NodeId) -> &Shard<'g> {
        let h = (src.idx() as u64)
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(dst.idx() as u64)
            .wrapping_mul(0x85EB_CA6B);
        &self.shards[(h >> 16) as usize % SHARD_COUNT]
    }

    /// Returns the `k` shortest loopless paths from `src` to `dst` (fewer if
    /// the graph has fewer), cloned out of the cache.
    ///
    /// The result depends only on the graph and `k`, never on what other
    /// pairs or smaller `k` values were requested before — the generator
    /// produces paths in a deterministic order and this returns its prefix.
    /// The experiment engine's worker-count-independent output rests on
    /// this.
    pub fn paths(&self, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        let mut map = self.shard(src, dst).lock();
        let gen = map.entry((src, dst)).or_insert_with(|| KspGenerator::new(self.graph, src, dst));
        let produced = gen.take_up_to(k);
        produced[..produced.len().min(k)].to_vec()
    }

    /// The single shortest path (None when disconnected).
    pub fn shortest(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        self.paths(src, dst, 1).into_iter().next()
    }

    /// Number of paths currently materialized for the pair (0 when the pair
    /// was never requested).
    pub fn cached_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.shard(src, dst).lock().get(&(src, dst)).map_or(0, |g| g.produced().len())
    }

    /// Number of (src, dst) pairs with at least one materialized generator —
    /// a cheap cache-occupancy gauge for benchmarks and tests.
    pub fn cached_pairs(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::GraphBuilder;

    fn square() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0);
        b.add_duplex(NodeId(0), NodeId(3), 1.5, 10.0);
        b.add_duplex(NodeId(3), NodeId(2), 1.5, 10.0);
        b.build()
    }

    #[test]
    fn grows_incrementally_and_caches() {
        let g = square();
        let cache = PathCache::new(&g);
        assert_eq!(cache.cached_count(NodeId(0), NodeId(2)), 0);
        let one = cache.paths(NodeId(0), NodeId(2), 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].delay_ms(), 2.0);
        assert_eq!(cache.cached_count(NodeId(0), NodeId(2)), 1);
        let two = cache.paths(NodeId(0), NodeId(2), 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[1].delay_ms(), 3.0);
        // Re-asking for fewer returns the cached prefix.
        assert_eq!(cache.paths(NodeId(0), NodeId(2), 1).len(), 1);
    }

    #[test]
    fn exhaustion_caps_path_count() {
        let g = square();
        let cache = PathCache::new(&g);
        let all = cache.paths(NodeId(0), NodeId(2), 100);
        // Square has exactly 2 loopless 0->2 paths.
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn shortest_convenience() {
        let g = square();
        let cache = PathCache::new(&g);
        assert_eq!(cache.shortest(NodeId(0), NodeId(2)).unwrap().delay_ms(), 2.0);
    }

    #[test]
    fn pairs_land_on_their_own_shards_without_interference() {
        // Every ordered pair of the square keeps its own generator: growing
        // one pair never perturbs what another pair returns, whichever
        // shard they share.
        let g = square();
        let cache = PathCache::new(&g);
        let mut pairs = Vec::new();
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s != d {
                    pairs.push((NodeId(s), NodeId(d)));
                }
            }
        }
        let expected: Vec<Vec<f64>> = pairs
            .iter()
            .map(|&(s, d)| PathCache::new(&g).paths(s, d, 3).iter().map(|p| p.delay_ms()).collect())
            .collect();
        // Interleave growth across all pairs, then re-read.
        for k in 1..=3 {
            for &(s, d) in &pairs {
                let _ = cache.paths(s, d, k);
            }
        }
        for (&(s, d), want) in pairs.iter().zip(&expected) {
            let got: Vec<f64> = cache.paths(s, d, 3).iter().map(|p| p.delay_ms()).collect();
            assert_eq!(&got, want, "pair {s:?}->{d:?}");
        }
        assert_eq!(cache.cached_pairs(), pairs.len());
    }

    #[test]
    fn concurrent_lookups_agree_with_sequential() {
        let g = square();
        let cache = PathCache::new(&g);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        for s in 0..4u32 {
                            for d in 0..4u32 {
                                if s != d {
                                    let ps = cache.paths(NodeId(s), NodeId(d), 2);
                                    assert!(!ps.is_empty());
                                }
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(cache.paths(NodeId(0), NodeId(2), 2).len(), 2);
    }
}
