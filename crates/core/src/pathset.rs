//! Cached, lazily grown k-shortest-path sets.
//!
//! The paper observes (§5) that in the iterative LP loop "the bottleneck is
//! not the linear optimizer, but the k shortest paths algorithm, the results
//! of which can be readily cached". [`PathCache`] is that cache: one
//! incremental Yen generator per (src, dst) pair, grown on demand and shared
//! across LP iterations — and across *schemes*, which is what makes the warm
//! LDR runs in Figure 15 fast.

use std::collections::HashMap;

use parking_lot::Mutex;

use lowlat_netgraph::{Graph, KspGenerator, NodeId, Path};

/// Thread-safe cache of k-shortest paths per ordered pair.
pub struct PathCache<'g> {
    graph: &'g Graph,
    map: Mutex<HashMap<(NodeId, NodeId), KspGenerator<'g>>>,
}

impl<'g> PathCache<'g> {
    /// Creates an empty cache over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        PathCache { graph, map: Mutex::new(HashMap::new()) }
    }

    /// The graph this cache serves.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Returns the `k` shortest loopless paths from `src` to `dst` (fewer if
    /// the graph has fewer), cloned out of the cache.
    pub fn paths(&self, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        let mut map = self.map.lock();
        let gen = map.entry((src, dst)).or_insert_with(|| KspGenerator::new(self.graph, src, dst));
        let produced = gen.take_up_to(k);
        produced[..produced.len().min(k)].to_vec()
    }

    /// The single shortest path (None when disconnected).
    pub fn shortest(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        self.paths(src, dst, 1).into_iter().next()
    }

    /// Number of paths currently materialized for the pair (0 when the pair
    /// was never requested).
    pub fn cached_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.map.lock().get(&(src, dst)).map_or(0, |g| g.produced().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::GraphBuilder;

    fn square() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0);
        b.add_duplex(NodeId(0), NodeId(3), 1.5, 10.0);
        b.add_duplex(NodeId(3), NodeId(2), 1.5, 10.0);
        b.build()
    }

    #[test]
    fn grows_incrementally_and_caches() {
        let g = square();
        let cache = PathCache::new(&g);
        assert_eq!(cache.cached_count(NodeId(0), NodeId(2)), 0);
        let one = cache.paths(NodeId(0), NodeId(2), 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].delay_ms(), 2.0);
        assert_eq!(cache.cached_count(NodeId(0), NodeId(2)), 1);
        let two = cache.paths(NodeId(0), NodeId(2), 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[1].delay_ms(), 3.0);
        // Re-asking for fewer returns the cached prefix.
        assert_eq!(cache.paths(NodeId(0), NodeId(2), 1).len(), 1);
    }

    #[test]
    fn exhaustion_caps_path_count() {
        let g = square();
        let cache = PathCache::new(&g);
        let all = cache.paths(NodeId(0), NodeId(2), 100);
        // Square has exactly 2 loopless 0->2 paths.
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn shortest_convenience() {
        let g = square();
        let cache = PathCache::new(&g);
        assert_eq!(cache.shortest(NodeId(0), NodeId(2)).unwrap().delay_ms(), 2.0);
    }
}
