//! Cached, lazily grown k-shortest-path sets.
//!
//! The paper observes (§5) that in the iterative LP loop "the bottleneck is
//! not the linear optimizer, but the k shortest paths algorithm, the results
//! of which can be readily cached". [`PathCache`] is that cache: one
//! incremental Yen generator per (src, dst) pair, grown on demand and shared
//! across LP iterations — and across *schemes* and *traffic matrices*, which
//! is what makes the warm LDR runs in Figure 15 fast and lets the experiment
//! engine hand one cache per network to every worker thread.
//!
//! The interior is lock-striped: pairs hash onto [`SHARD_COUNT`] independent
//! mutexes, so concurrent placements of different aggregates on the same
//! graph contend only when they land on the same shard, not on every lookup.
//!
//! ## Failure-aware repair
//!
//! When links or nodes fail, the cache does not start over:
//! [`PathCache::apply_failure`] walks the cached generators, *keeps* every
//! pair whose materialized paths avoid the failed elements, and rebuilds
//! only the crossing pairs under the mask (regrown to the path count they
//! had, so schemes see equally-deep path sets after repair). All subsequent
//! growth — of repaired pairs and of pairs first requested after the
//! failure — runs masked, so a failed topology behaves like a view of the
//! intact graph. [`PathCache::clear_failure`] reverses the process. On real
//! backbones a single link failure touches a small fraction of pairs, which
//! is why repair beats a full rebuild (the `failure` bench measures it).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use lowlat_netgraph::{BitSet, FailureMask, Graph, KspGenerator, NodeId, Path};
use lowlat_telemetry as telemetry;

/// Number of independent lock shards. A power of two well above the worker
/// counts we run with; per-shard memory is one empty `HashMap`, so
/// over-provisioning is free.
const SHARD_COUNT: usize = 64;

/// One cached generator plus whether it was constructed under the cache's
/// active failure mask (pure generators survive failures that miss their
/// paths; masked ones are rebuilt whenever the mask changes).
struct CachedGen<'g> {
    gen: KspGenerator<'g>,
    masked: bool,
}

type Shard<'g> = Mutex<HashMap<(NodeId, NodeId), CachedGen<'g>>>;

/// What [`PathCache::apply_failure`] did — the cache-repair telemetry the
/// failure sweep and the `failure` bench report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Cached pairs whose materialized paths all avoid the failed elements:
    /// their generators (and all Yen state) survive untouched.
    pub kept_pairs: usize,
    /// Pairs invalidated (a path crossed a failed element, an endpoint went
    /// down, or the generator was built under a previous mask) and regrown
    /// under the new mask.
    pub repaired_pairs: usize,
    /// Paths re-materialized while regrowing repaired pairs.
    pub paths_regrown: usize,
    /// Paths that could not be regrown (the masked graph has fewer paths —
    /// possibly none, when a pair is disconnected).
    pub paths_lost: usize,
}

impl RepairStats {
    /// Total cached pairs examined.
    pub fn pairs(&self) -> usize {
        self.kept_pairs + self.repaired_pairs
    }

    /// Mirrors the stats into the telemetry registry (`cache.repair.*`) —
    /// the single code path both the failure sweep's TSV and a metrics
    /// snapshot report repair work from.
    pub fn record(&self) {
        if !telemetry::enabled() {
            return;
        }
        telemetry::counter_add("cache.repair.kept_pairs", self.kept_pairs as u64);
        telemetry::counter_add("cache.repair.repaired_pairs", self.repaired_pairs as u64);
        telemetry::counter_add("cache.repair.paths_regrown", self.paths_regrown as u64);
        telemetry::counter_add("cache.repair.paths_lost", self.paths_lost as u64);
    }
}

/// Thread-safe cache of k-shortest paths per ordered pair, lock-striped
/// across [`SHARD_COUNT`] shards, with failure-aware repair.
pub struct PathCache<'g> {
    graph: &'g Graph,
    shards: Vec<Shard<'g>>,
    /// The failure mask in force; `None` means the intact topology. A
    /// read-write lock so the per-lookup read never contends in the
    /// (overwhelmingly common) failure-free hot path; writes happen only
    /// at failure transitions, which are documented quiescent (see
    /// [`PathCache::apply_failure`]).
    mask: RwLock<Option<Arc<FailureMask>>>,
    /// Node-scope restriction: the *complement* of the member set, merged
    /// into every generator's avoided nodes so Dijkstra/Yen frontiers never
    /// leave the scope. `None` for whole-graph caches. This is what lets
    /// the hierarchical path engine run one small cache per partition of an
    /// Internet-scale graph.
    scope_avoid: Option<BitSet>,
}

impl<'g> PathCache<'g> {
    /// Creates an empty cache over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        PathCache {
            graph,
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: RwLock::new(None),
            scope_avoid: None,
        }
    }

    /// Creates a cache restricted to the `members` node set: every query is
    /// answered as if nodes outside the scope did not exist, so enumeration
    /// cost scales with the partition, not the graph. Queries with an
    /// endpoint outside the scope return no paths. Failure masks compose
    /// with the scope (both restrictions apply).
    pub fn scoped(graph: &'g Graph, members: &[NodeId]) -> Self {
        let mut avoid = BitSet::new(graph.node_count());
        for v in 0..graph.node_count() {
            avoid.insert(v);
        }
        for &m in members {
            avoid.remove(m.idx());
        }
        PathCache {
            graph,
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: RwLock::new(None),
            scope_avoid: (!avoid.is_empty()).then_some(avoid),
        }
    }

    /// The graph this cache serves.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The failure mask currently in force, if any.
    pub fn failure_mask(&self) -> Option<Arc<FailureMask>> {
        self.mask.read().clone()
    }

    /// Per-link effective capacities (Mbps) under the active failure mask,
    /// indexed by `LinkId` — raw capacities when no mask is in force. This
    /// is the capacity-provider view the LP schemes pose constraints
    /// against, so brown-outs (degradation-only masks) are visible to every
    /// capacity row even though they change no paths.
    pub fn effective_capacities(&self) -> Vec<f64> {
        match self.failure_mask() {
            Some(mask) => mask.effective_capacities(self.graph),
            None => self.graph.link_ids().map(|l| self.graph.link(l).capacity_mbps).collect(),
        }
    }

    /// The shard holding `(src, dst)`. Fibonacci-style mixing spreads the
    /// small consecutive node ids real topologies use across all shards.
    fn shard(&self, src: NodeId, dst: NodeId) -> &Shard<'g> {
        let h = (src.idx() as u64)
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(dst.idx() as u64)
            .wrapping_mul(0x85EB_CA6B);
        &self.shards[(h >> 16) as usize % SHARD_COUNT]
    }

    /// A fresh generator for `(src, dst)` under the given mask. A mask that
    /// does not affect routing (degradation only) yields a pure generator —
    /// enumeration is identical, and the pure flag spares it from rebuilds
    /// on later mask transitions. The node scope (if any) is merged into
    /// the avoided nodes either way; `masked` tracks only the *failure*
    /// mask, so scoped-but-intact generators still survive repair.
    fn make_gen(&self, src: NodeId, dst: NodeId, mask: Option<&FailureMask>) -> CachedGen<'g> {
        match mask.filter(|m| m.affects_routing()) {
            Some(m) => {
                let avoid_nodes = match (&self.scope_avoid, m.node_mask()) {
                    (Some(scope), Some(down)) => {
                        let mut merged = scope.clone();
                        for v in down.iter() {
                            merged.insert(v);
                        }
                        Some(merged)
                    }
                    (Some(scope), None) => Some(scope.clone()),
                    (None, down) => down.cloned(),
                };
                CachedGen {
                    gen: KspGenerator::with_avoided(
                        self.graph,
                        src,
                        dst,
                        m.link_mask().cloned(),
                        avoid_nodes,
                    ),
                    masked: true,
                }
            }
            None => CachedGen {
                gen: KspGenerator::with_avoided(
                    self.graph,
                    src,
                    dst,
                    None,
                    self.scope_avoid.clone(),
                ),
                masked: false,
            },
        }
    }

    /// Returns the `k` shortest loopless paths from `src` to `dst` (fewer if
    /// the masked graph has fewer — possibly zero under a disconnecting
    /// failure), cloned out of the cache.
    ///
    /// The result depends only on the graph, the active failure mask, and
    /// `k`, never on what other pairs or smaller `k` values were requested
    /// before — the generator produces paths in a deterministic order and
    /// this returns its prefix. The experiment engine's
    /// worker-count-independent output rests on this.
    pub fn paths(&self, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        let mask = self.mask.read().clone();
        let shard = self.shard(src, dst);
        // With telemetry on, probe the shard lock first so contended
        // acquisitions are visible (`cache.shard_contention`); otherwise take
        // the lock directly — the uncontended fast path is unchanged.
        let mut map = if telemetry::enabled() {
            telemetry::counter_add("cache.lookups", 1);
            match shard.try_lock() {
                Some(guard) => guard,
                None => {
                    telemetry::counter_add("cache.shard_contention", 1);
                    shard.lock()
                }
            }
        } else {
            shard.lock()
        };
        let entry =
            map.entry((src, dst)).or_insert_with(|| self.make_gen(src, dst, mask.as_deref()));
        // A pure (unmasked) generator that survived `apply_failure` holds a
        // verified-clean prefix, but growing it would enumerate unmasked
        // paths: rebuild it masked on the first post-failure growth. (The
        // clean prefix *is* the masked prefix, so results are unchanged.
        // Degradation-only masks change no paths and skip the rebuild.)
        if k > entry.gen.produced().len()
            && mask.as_deref().is_some_and(FailureMask::affects_routing)
            && !entry.masked
        {
            *entry = self.make_gen(src, dst, mask.as_deref());
        }
        let before = entry.gen.produced().len();
        let produced = entry.gen.take_up_to(k);
        let expanded = produced.len().saturating_sub(before);
        if expanded > 0 {
            telemetry::counter_add("cache.yen_expansions", expanded as u64);
        }
        produced[..produced.len().min(k)].to_vec()
    }

    /// The single shortest path (None when disconnected under the mask).
    pub fn shortest(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        self.paths(src, dst, 1).into_iter().next()
    }

    /// Puts the failure mask in force and repairs the cache: pairs whose
    /// materialized paths avoid every failed element keep their generators
    /// (and Yen state); crossing pairs are rebuilt under the mask and
    /// regrown to the path count they had. An empty mask is equivalent to
    /// [`PathCache::clear_failure`].
    ///
    /// Concurrent [`PathCache::paths`] lookups from *other* threads must be
    /// quiescent while the mask changes — the experiment drivers apply
    /// failures between placement phases, never during one.
    pub fn apply_failure(&self, mask: &FailureMask) -> RepairStats {
        let _span = telemetry::span("cache.repair", "cache");
        let active: Option<Arc<FailureMask>> = (!mask.is_empty()).then(|| Arc::new(mask.clone()));
        *self.mask.write() = active.clone();
        let mut stats = RepairStats::default();
        for shard in &self.shards {
            let mut map = shard.lock();
            for (&(src, dst), cg) in map.iter_mut() {
                let endpoint_down = mask.node_down(src) || mask.node_down(dst);
                let dirty = cg.masked
                    || endpoint_down
                    || cg.gen.produced().iter().any(|p| mask.hits_path(self.graph, p));
                if !dirty {
                    stats.kept_pairs += 1;
                    continue;
                }
                let want = cg.gen.produced().len();
                let mut fresh = self.make_gen(src, dst, active.as_deref());
                let got = fresh.gen.take_up_to(want).len();
                *cg = fresh;
                stats.repaired_pairs += 1;
                stats.paths_regrown += got;
                stats.paths_lost += want - got;
            }
        }
        stats.record();
        stats
    }

    /// Restores the intact topology: masked generators are rebuilt pure and
    /// regrown; untouched pure generators survive.
    pub fn clear_failure(&self) -> RepairStats {
        self.apply_failure(&FailureMask::new())
    }

    /// Number of paths currently materialized for the pair (0 when the pair
    /// was never requested).
    pub fn cached_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.shard(src, dst).lock().get(&(src, dst)).map_or(0, |cg| cg.gen.produced().len())
    }

    /// Number of (src, dst) pairs with at least one materialized generator —
    /// a cheap cache-occupancy gauge for benchmarks and tests.
    pub fn cached_pairs(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// The flat backend of the pricing-oracle API: every method delegates to the
/// inherent ones above, so placements through `&dyn PathSource` are
/// bit-identical to placements against the concrete cache.
impl crate::source::PathSource for PathCache<'_> {
    fn graph(&self) -> &Graph {
        PathCache::graph(self)
    }

    fn paths(&self, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        PathCache::paths(self, src, dst, k)
    }

    fn shortest(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        PathCache::shortest(self, src, dst)
    }

    /// Exact for the flat cache: the shortest-path delay (all further columns
    /// are at least this expensive), `INFINITY` when disconnected.
    fn shortest_delay_bound(&self, src: NodeId, dst: NodeId) -> f64 {
        PathCache::shortest(self, src, dst).map_or(f64::INFINITY, |p| p.delay_ms())
    }

    fn effective_capacities(&self) -> Vec<f64> {
        PathCache::effective_capacities(self)
    }

    fn failure_mask(&self) -> Option<Arc<FailureMask>> {
        PathCache::failure_mask(self)
    }

    fn apply_failure(&self, mask: &FailureMask) -> RepairStats {
        PathCache::apply_failure(self, mask)
    }

    fn clear_failure(&self) -> RepairStats {
        PathCache::clear_failure(self)
    }

    fn cached_pairs(&self) -> usize {
        PathCache::cached_pairs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::GraphBuilder;

    fn square() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0);
        b.add_duplex(NodeId(0), NodeId(3), 1.5, 10.0);
        b.add_duplex(NodeId(3), NodeId(2), 1.5, 10.0);
        b.build()
    }

    #[test]
    fn grows_incrementally_and_caches() {
        let g = square();
        let cache = PathCache::new(&g);
        assert_eq!(cache.cached_count(NodeId(0), NodeId(2)), 0);
        let one = cache.paths(NodeId(0), NodeId(2), 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].delay_ms(), 2.0);
        assert_eq!(cache.cached_count(NodeId(0), NodeId(2)), 1);
        let two = cache.paths(NodeId(0), NodeId(2), 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[1].delay_ms(), 3.0);
        // Re-asking for fewer returns the cached prefix.
        assert_eq!(cache.paths(NodeId(0), NodeId(2), 1).len(), 1);
    }

    #[test]
    fn exhaustion_caps_path_count() {
        let g = square();
        let cache = PathCache::new(&g);
        let all = cache.paths(NodeId(0), NodeId(2), 100);
        // Square has exactly 2 loopless 0->2 paths.
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn shortest_convenience() {
        let g = square();
        let cache = PathCache::new(&g);
        assert_eq!(cache.shortest(NodeId(0), NodeId(2)).unwrap().delay_ms(), 2.0);
    }

    #[test]
    fn pairs_land_on_their_own_shards_without_interference() {
        // Every ordered pair of the square keeps its own generator: growing
        // one pair never perturbs what another pair returns, whichever
        // shard they share.
        let g = square();
        let cache = PathCache::new(&g);
        let mut pairs = Vec::new();
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s != d {
                    pairs.push((NodeId(s), NodeId(d)));
                }
            }
        }
        let expected: Vec<Vec<f64>> = pairs
            .iter()
            .map(|&(s, d)| PathCache::new(&g).paths(s, d, 3).iter().map(|p| p.delay_ms()).collect())
            .collect();
        // Interleave growth across all pairs, then re-read.
        for k in 1..=3 {
            for &(s, d) in &pairs {
                let _ = cache.paths(s, d, k);
            }
        }
        for (&(s, d), want) in pairs.iter().zip(&expected) {
            let got: Vec<f64> = cache.paths(s, d, 3).iter().map(|p| p.delay_ms()).collect();
            assert_eq!(&got, want, "pair {s:?}->{d:?}");
        }
        assert_eq!(cache.cached_pairs(), pairs.len());
    }

    #[test]
    fn concurrent_lookups_agree_with_sequential() {
        let g = square();
        let cache = PathCache::new(&g);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        for s in 0..4u32 {
                            for d in 0..4u32 {
                                if s != d {
                                    let ps = cache.paths(NodeId(s), NodeId(d), 2);
                                    assert!(!ps.is_empty());
                                }
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(cache.paths(NodeId(0), NodeId(2), 2).len(), 2);
    }

    /// The failure mask downing the 0-1 cable of the square.
    fn mask_01(g: &Graph) -> FailureMask {
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let mut mask = FailureMask::new();
        mask.fail_cable(g, l01);
        mask
    }

    #[test]
    fn repair_keeps_clean_pairs_and_regrows_crossing_ones() {
        let g = square();
        let cache = PathCache::new(&g);
        // Materialize: 0->2 (2 paths, one crossing 0-1), 3->2 (clean).
        cache.paths(NodeId(0), NodeId(2), 2);
        cache.paths(NodeId(3), NodeId(2), 1);
        let stats = cache.apply_failure(&mask_01(&g));
        assert_eq!(stats.repaired_pairs, 1, "only 0->2 crossed the failure");
        assert_eq!(stats.kept_pairs, 1);
        assert_eq!(stats.pairs(), 2);
        // The repaired pair was regrown under the mask: the masked square
        // has exactly one 0->2 path (via 3).
        assert_eq!(stats.paths_regrown, 1);
        assert_eq!(stats.paths_lost, 1);
        let got = cache.paths(NodeId(0), NodeId(2), 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].delay_ms(), 3.0);
    }

    #[test]
    fn repair_stats_mirror_into_the_registry() {
        // RepairStats::record runs inside apply_failure: the registry's
        // cache.repair.* counters and the returned stats come from one code
        // path. Counters are process-global and other tests may add to them
        // concurrently while telemetry is enabled — never subtract — so the
        // deltas are asserted as lower bounds.
        let g = square();
        let cache = PathCache::new(&g);
        cache.paths(NodeId(0), NodeId(2), 2);
        cache.paths(NodeId(3), NodeId(2), 1);
        let before = telemetry::snapshot();
        telemetry::set_enabled(true);
        let stats = cache.apply_failure(&mask_01(&g));
        telemetry::set_enabled(false);
        let after = telemetry::snapshot();
        let delta = |name: &str| after.counter(name) - before.counter(name);
        assert_eq!(stats.kept_pairs, 1);
        assert_eq!(stats.repaired_pairs, 1);
        assert!(delta("cache.repair.kept_pairs") >= stats.kept_pairs as u64);
        assert!(delta("cache.repair.repaired_pairs") >= stats.repaired_pairs as u64);
        assert!(delta("cache.repair.paths_regrown") >= stats.paths_regrown as u64);
        assert!(delta("cache.repair.paths_lost") >= stats.paths_lost as u64);
        cache.clear_failure();
    }

    #[test]
    fn masked_results_equal_fresh_masked_cache() {
        let g = square();
        let mask = mask_01(&g);
        let warm = PathCache::new(&g);
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s != d {
                    warm.paths(NodeId(s), NodeId(d), 3);
                }
            }
        }
        warm.apply_failure(&mask);
        let fresh = PathCache::new(&g);
        fresh.apply_failure(&mask);
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s != d {
                    let a: Vec<f64> =
                        warm.paths(NodeId(s), NodeId(d), 3).iter().map(|p| p.delay_ms()).collect();
                    let b: Vec<f64> =
                        fresh.paths(NodeId(s), NodeId(d), 3).iter().map(|p| p.delay_ms()).collect();
                    assert_eq!(a, b, "pair {s}->{d} under failure");
                }
            }
        }
    }

    #[test]
    fn growth_after_failure_is_masked_even_for_kept_pairs() {
        let g = square();
        let cache = PathCache::new(&g);
        // 3->2 materializes only its direct path (clean under the mask)...
        assert_eq!(cache.paths(NodeId(3), NodeId(2), 1).len(), 1);
        let stats = cache.apply_failure(&mask_01(&g));
        assert_eq!(stats.kept_pairs, 1);
        // ...but growing it now must not surface the 3-0-1-2 path that
        // crosses the failed cable.
        let grown = cache.paths(NodeId(3), NodeId(2), 5);
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        assert!(grown.iter().all(|p| !p.contains_link(l01)));
        assert_eq!(grown.len(), 1, "masked square has one 3->2 path");
    }

    #[test]
    fn clear_failure_restores_the_intact_view() {
        let g = square();
        let cache = PathCache::new(&g);
        cache.paths(NodeId(0), NodeId(2), 2);
        cache.apply_failure(&mask_01(&g));
        assert_eq!(cache.paths(NodeId(0), NodeId(2), 2).len(), 1);
        let stats = cache.clear_failure();
        assert_eq!(stats.repaired_pairs, 1, "the masked generator is rebuilt pure");
        assert!(cache.failure_mask().is_none());
        assert!(
            cache.effective_capacities().iter().all(|&c| (c - 10.0).abs() < 1e-9),
            "intact view exposes raw capacities"
        );
        let restored = cache.paths(NodeId(0), NodeId(2), 2);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[0].delay_ms(), 2.0, "shortest path is back");
    }

    #[test]
    fn degradation_only_masks_keep_every_pair() {
        let g = square();
        let cache = PathCache::new(&g);
        cache.paths(NodeId(0), NodeId(2), 2);
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let mut mask = FailureMask::new();
        mask.degrade_cable(&g, l01, 0.5);
        let stats = cache.apply_failure(&mask);
        assert_eq!(stats.kept_pairs, 1, "degradation does not invalidate paths");
        assert_eq!(stats.repaired_pairs, 0);
        // The capacity-provider view sees the brown-out...
        let caps = cache.effective_capacities();
        assert!((caps[l01.idx()] - 5.0).abs() < 1e-9, "degraded cable at half capacity");
        assert_eq!(caps.len(), g.link_count());
        assert_eq!(cache.paths(NodeId(0), NodeId(2), 2).len(), 2);
        // Growth under a degradation-only mask keeps the generator pure:
        // re-applying the same mask must not count the pair as repaired.
        assert_eq!(cache.paths(NodeId(0), NodeId(2), 5).len(), 2);
        let again = cache.apply_failure(&mask);
        assert_eq!(again.kept_pairs, 1, "degradation-only growth must stay pure");
        assert_eq!(again.repaired_pairs, 0);
    }

    #[test]
    fn scoped_cache_never_leaves_the_member_set() {
        // Line 0-1-2 plus a shortcut 0-4-2 through an out-of-scope node.
        let mut b = GraphBuilder::new(5);
        b.add_duplex(NodeId(0), NodeId(1), 2.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 2.0, 10.0);
        b.add_duplex(NodeId(0), NodeId(4), 0.5, 10.0);
        b.add_duplex(NodeId(4), NodeId(2), 0.5, 10.0);
        let g = b.build();
        let scoped = PathCache::scoped(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
        let ps = scoped.paths(NodeId(0), NodeId(2), 5);
        assert_eq!(ps.len(), 1, "the shortcut through node 4 is out of scope");
        assert_eq!(ps[0].delay_ms(), 4.0);
        // An endpoint outside the scope yields nothing.
        assert!(scoped.paths(NodeId(0), NodeId(4), 3).is_empty());
        // Full-scope behaves like an unscoped cache.
        let full = PathCache::scoped(&g, &g.nodes().collect::<Vec<_>>());
        assert_eq!(full.paths(NodeId(0), NodeId(2), 1)[0].delay_ms(), 1.0);
    }

    #[test]
    fn scoped_cache_composes_with_failure_masks() {
        let g = square();
        let scoped = PathCache::scoped(&g, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(scoped.paths(NodeId(0), NodeId(2), 3).len(), 2);
        let stats = scoped.apply_failure(&mask_01(&g));
        assert_eq!(stats.repaired_pairs, 1);
        let got = scoped.paths(NodeId(0), NodeId(2), 3);
        assert_eq!(got.len(), 1, "failure applies inside the scope");
        assert_eq!(got[0].delay_ms(), 3.0);
        scoped.clear_failure();
        assert_eq!(scoped.paths(NodeId(0), NodeId(2), 3).len(), 2, "scope survives clearing");
        // Narrow scope + failure: only the 0-3-2 route is in scope, and
        // failing node 3 disconnects it entirely.
        let narrow = PathCache::scoped(&g, &[NodeId(0), NodeId(3), NodeId(2)]);
        assert_eq!(narrow.paths(NodeId(0), NodeId(2), 3).len(), 1);
        let mut mask = FailureMask::new();
        mask.fail_node(NodeId(3));
        narrow.apply_failure(&mask);
        assert!(narrow.paths(NodeId(0), NodeId(2), 3).is_empty());
    }

    #[test]
    fn disconnecting_failure_yields_empty_path_sets() {
        let g = square();
        let cache = PathCache::new(&g);
        cache.paths(NodeId(0), NodeId(2), 2);
        let mut mask = FailureMask::new();
        mask.fail_node(NodeId(0));
        let stats = cache.apply_failure(&mask);
        assert_eq!(stats.repaired_pairs, 1);
        assert_eq!(stats.paths_regrown, 0);
        assert_eq!(stats.paths_lost, 2);
        assert!(cache.paths(NodeId(0), NodeId(2), 2).is_empty());
        assert!(cache.shortest(NodeId(0), NodeId(2)).is_none());
    }
}
