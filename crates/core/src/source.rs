//! The pricing-oracle abstraction behind every LP scheme: [`PathSource`].
//!
//! The Figure-13 growth loop never needs *all* paths of a pair — it asks for
//! the next-cheapest candidates of the aggregates that are currently
//! overloaded (classic column generation, with paths as columns). This trait
//! is that contract, decoupled from any concrete cache:
//!
//! * [`PathCache`](crate::pathset::PathCache) implements it with flat,
//!   fully-materialized incremental Yen generators — bit-identical to the
//!   pre-trait behavior, right for PoP backbones (tens of nodes).
//! * [`PartitionedPathEngine`](crate::hier::PartitionedPathEngine)
//!   implements it with per-leaf scoped caches plus landmark stitching —
//!   columns are priced on demand and cross-leaf per-pair state is never
//!   materialized, which is what makes *placement* (not just KSP queries)
//!   Internet-scale.
//!
//! Everything above the pricing step — the LPs, the schemes, the failure
//! drill, the sim runner/timeline — takes `&dyn PathSource` and runs
//! unchanged on either backend.

use std::sync::Arc;

use lowlat_netgraph::{FailureMask, Graph, NodeId, Path};

use crate::pathset::RepairStats;

/// A source of candidate paths (columns) for the placement LPs, with a
/// mask-aware capacity view and failure plumbing.
///
/// Object-safe and `Sync`: the experiment engine shares one source per
/// network across worker threads, exactly as it shared the flat cache.
///
/// # Contract
///
/// * [`paths`](PathSource::paths) returns up to `k` loopless paths,
///   best-first, deterministic in `(graph, active mask, k)` — never in the
///   history of other queries. Fewer than `k` (possibly zero under a
///   disconnecting failure) means the source cannot produce more.
/// * [`grow`](PathSource::grow) is the column-generation entry point: ask
///   for `want` candidates, use the suffix beyond what you already had. A
///   result shorter than `want` means the pair is exhausted — re-asking
///   will not produce more.
/// * [`shortest_delay_bound`](PathSource::shortest_delay_bound) bounds the
///   delay of the best column the source can price for the pair;
///   `INFINITY` means it cannot price any beyond a bare reachability
///   fallback, so growth loops skip the pair.
/// * Failure methods mirror the flat cache: `apply_failure` puts a mask in
///   force (repairing internal state), `clear_failure` restores the intact
///   view, and both require concurrent queries to be quiescent.
pub trait PathSource: Sync {
    /// The graph this source routes over.
    fn graph(&self) -> &Graph;

    /// Up to `k` loopless paths from `src` to `dst`, best-first.
    fn paths(&self, src: NodeId, dst: NodeId, k: usize) -> Vec<Path>;

    /// The single best path (`None` when disconnected under the mask).
    fn shortest(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        self.paths(src, dst, 1).into_iter().next()
    }

    /// Prices the next columns of a pair: returns up to `want` candidates
    /// (a superset-prefix of every earlier call). The default simply
    /// delegates to [`PathSource::paths`]; sources with a cheaper
    /// incremental route may override.
    fn grow(&self, src: NodeId, dst: NodeId, want: usize) -> Vec<Path> {
        self.paths(src, dst, want)
    }

    /// Upper bound (ms) on the delay of the best column this source can
    /// price for `(src, dst)` — `INFINITY` when it cannot price any (the
    /// pair may still be reachable through an exact fallback, but growth
    /// cannot help it).
    fn shortest_delay_bound(&self, src: NodeId, dst: NodeId) -> f64;

    /// Per-link effective capacities (Mbps) under the active failure mask,
    /// indexed by `LinkId` — raw capacities when no mask is in force.
    fn effective_capacities(&self) -> Vec<f64>;

    /// The failure mask currently in force, if any.
    fn failure_mask(&self) -> Option<Arc<FailureMask>>;

    /// Puts `mask` in force and repairs internal state. An empty mask is
    /// equivalent to [`PathSource::clear_failure`].
    fn apply_failure(&self, mask: &FailureMask) -> RepairStats;

    /// Restores the intact topology view.
    fn clear_failure(&self) -> RepairStats;

    /// Number of (src, dst) pairs with materialized per-pair state — the
    /// "never the full corpus" gauge the scale smoke asserts stays bounded
    /// by the columns actually priced in.
    fn cached_pairs(&self) -> usize;
}
