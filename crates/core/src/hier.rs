//! Hierarchical partitioned path engine for Internet-scale graphs.
//!
//! The flat [`PathCache`](crate::pathset::PathCache) materializes one Yen
//! generator per requested pair over the whole graph — perfect for the
//! paper's PoP backbones (tens of nodes), hopeless at CAIDA scale (78k
//! nodes): a single cross-graph Yen spur re-runs Dijkstra over everything,
//! and caching all-pairs state is quadratic. [`PartitionedPathEngine`]
//! splits the work along a delay-weighted
//! [`Hierarchy`](lowlat_netgraph::hierarchy::Hierarchy):
//!
//! * **Intra-leaf** queries go to a per-leaf *scoped* `PathCache` — the
//!   existing warm machinery, restricted so enumeration never leaves the
//!   leaf. Same Yen semantics, partition-sized cost.
//! * **Cross-leaf** queries are answered by **landmark stitching**: a
//!   global budget of landmark nodes (picked per depth-1 group, weighted by
//!   group size) precomputes one forward and one reverse shortest-path tree
//!   each; a query concatenates `s → ℓ` and `ℓ → d`, de-loops the splice,
//!   and ranks candidates across landmarks. Cost per query is `O(landmarks
//!   × path length)` — no Yen over the full graph, and the full cross-pair
//!   path set is never materialized.
//!
//! Landmark stitching is approximate (stretch ≥ 1 versus flat Yen) but
//! *bounded*: the best stitched delay never exceeds `min_ℓ (d(s,ℓ) +
//! d(ℓ,d))`, which [`PartitionedPathEngine::landmark_bound_ms`] exposes and
//! the property tests pin. When no landmark connects a pair (sparse cuts,
//! overflow clusters), a single targeted Dijkstra answers exactly — so
//! reachability always matches the flat engine.

use std::sync::atomic::{AtomicUsize, Ordering};

use lowlat_netgraph::{
    reverse_shortest_path_tree, shortest_path, Graph, Hierarchy, HierarchyConfig, NodeId, Path,
    ReverseShortestPathTree, ShortestPathTree,
};
use lowlat_telemetry as telemetry;

use crate::pathset::PathCache;

/// Knobs for [`PartitionedPathEngine::build`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Hierarchy shape.
    pub hierarchy: HierarchyConfig,
    /// Global landmark budget, distributed over depth-1 groups by size
    /// (every group gets at least one). Memory is two `O(V)` trees per
    /// landmark, so the budget — not the node count — caps tree storage.
    pub landmarks: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { hierarchy: HierarchyConfig::default(), landmarks: 32 }
    }
}

/// Query-mix counters (cumulative, thread-safe).
///
/// Every increment is mirrored into the telemetry registry (`hier.intra`,
/// `hier.cross`, `hier.fallback`) at the same call site, so a metrics
/// snapshot and this struct's [`QueryStats::snapshot`] report the query mix
/// from one code path and cannot disagree.
#[derive(Debug, Default)]
pub struct QueryStats {
    /// Queries answered by a per-leaf scoped cache.
    pub intra: AtomicUsize,
    /// Queries answered by landmark stitching.
    pub cross: AtomicUsize,
    /// Cross queries where stitching found nothing and the exact Dijkstra
    /// fallback ran.
    pub fallback: AtomicUsize,
}

impl QueryStats {
    /// Snapshot as `(intra, cross, fallback)`.
    pub fn snapshot(&self) -> (usize, usize, usize) {
        (
            self.intra.load(Ordering::Relaxed),
            self.cross.load(Ordering::Relaxed),
            self.fallback.load(Ordering::Relaxed),
        )
    }
}

/// One landmark: a node plus its forward (from) and reverse (to) trees.
struct Landmark {
    node: NodeId,
    /// Shortest paths landmark → everywhere.
    fwd: ShortestPathTree,
    /// Shortest paths everywhere → landmark.
    rev: ReverseShortestPathTree,
}

/// The hierarchical engine. See the module docs for the routing split.
pub struct PartitionedPathEngine<'g> {
    graph: &'g Graph,
    hierarchy: Hierarchy,
    /// `caches[i]` serves the leaf with arena id `leaf_ids[i]`.
    leaf_ids: Vec<usize>,
    caches: Vec<PathCache<'g>>,
    /// Arena-id → dense cache index.
    cache_of_leaf: Vec<usize>,
    landmarks: Vec<Landmark>,
    stats: QueryStats,
}

/// Removes splice loops from a concatenated node walk: whenever a node
/// repeats, the cycle between its two occurrences is cut out. O(len²) with
/// tiny constants — stitched paths are tens of hops.
fn splice_loopless(graph: &Graph, first: &[Path], second: &[Path]) -> Option<Path> {
    let mut links = Vec::new();
    for p in first.iter().chain(second) {
        links.extend_from_slice(p.links());
    }
    if links.is_empty() {
        return None;
    }
    loop {
        // Node sequence of the current walk.
        let mut nodes = Vec::with_capacity(links.len() + 1);
        nodes.push(graph.link(links[0]).src);
        for &l in &links {
            nodes.push(graph.link(l).dst);
        }
        let mut cut = None;
        'outer: for i in 0..nodes.len() {
            for j in (i + 1..nodes.len()).rev() {
                if nodes[i] == nodes[j] {
                    cut = Some((i, j));
                    break 'outer;
                }
            }
        }
        match cut {
            // Links i..j traverse the cycle nodes[i] .. nodes[j]==nodes[i].
            Some((i, j)) => {
                links.drain(i..j);
                if links.is_empty() {
                    return None;
                }
            }
            None => return Some(Path::new(graph, links)),
        }
    }
}

impl<'g> PartitionedPathEngine<'g> {
    /// Builds hierarchy, per-leaf caches and landmark trees. Deterministic
    /// in `(graph, config)`.
    pub fn build(graph: &'g Graph, config: &EngineConfig) -> Self {
        let hierarchy = Hierarchy::build(graph, &config.hierarchy);
        let leaf_ids = hierarchy.leaves();
        let mut cache_of_leaf = vec![usize::MAX; hierarchy.clusters().len()];
        let mut caches = Vec::with_capacity(leaf_ids.len());
        for (i, &leaf) in leaf_ids.iter().enumerate() {
            cache_of_leaf[leaf] = i;
            caches.push(PathCache::scoped(graph, &hierarchy.cluster(leaf).members));
        }

        // Landmark budget: distributed over depth-1 groups proportionally
        // to size (floor 1 per group), landmarks chosen evenly spaced
        // through each group's sorted member list so they spread over the
        // delay space the farthest-point split already organized.
        let groups = hierarchy.groups();
        let n = graph.node_count() as f64;
        let budget = config.landmarks.max(1);
        let mut landmarks = Vec::new();
        for &gid in &groups {
            let members = &hierarchy.cluster(gid).members;
            let share =
                (((members.len() as f64 / n) * budget as f64).round() as usize).clamp(1, budget);
            let share = share.min(members.len());
            for s in 0..share {
                let idx = s * members.len() / share + members.len() / (2 * share);
                let node = members[idx.min(members.len() - 1)];
                if landmarks.iter().any(|l: &Landmark| l.node == node) {
                    continue;
                }
                landmarks.push(Landmark {
                    node,
                    fwd: lowlat_netgraph::shortest_path_tree(graph, node, None, None),
                    rev: reverse_shortest_path_tree(graph, node, None, None),
                });
            }
        }

        PartitionedPathEngine {
            graph,
            hierarchy,
            leaf_ids,
            caches,
            cache_of_leaf,
            landmarks,
            stats: QueryStats::default(),
        }
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The graph this engine routes over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of landmark nodes actually installed.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// Cumulative query-mix counters.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Leaf arena ids served by per-leaf caches, dense-order.
    pub fn leaf_ids(&self) -> &[usize] {
        &self.leaf_ids
    }

    /// Total (src,dst) pairs materialized across all leaf caches — the
    /// "never the full path set" gauge: for cross-leaf traffic this stays
    /// zero no matter how many queries run.
    pub fn cached_pairs(&self) -> usize {
        self.caches.iter().map(|c| c.cached_pairs()).sum()
    }

    /// The landmark stitching upper bound for `(src, dst)`: the smallest
    /// `d(s,ℓ) + d(ℓ,d)` over installed landmarks, or `INFINITY` when no
    /// landmark connects the pair. The best path [`Self::paths`] returns
    /// for a cross-leaf pair never exceeds this (de-looping only shortens).
    pub fn landmark_bound_ms(&self, src: NodeId, dst: NodeId) -> f64 {
        self.landmarks
            .iter()
            .map(|l| l.rev.dist_ms(src) + l.fwd.dist_ms(dst))
            .fold(f64::INFINITY, f64::min)
    }

    /// True when the pair shares a leaf (answered exactly by warm Yen).
    pub fn same_leaf(&self, src: NodeId, dst: NodeId) -> bool {
        self.hierarchy.same_leaf(src, dst)
    }

    /// Up to `k` loopless paths from `src` to `dst`, best-first.
    ///
    /// Intra-leaf pairs draw from the leaf's scoped Yen cache (the warm
    /// machinery) *merged with* landmark-stitched candidates — the merge
    /// matters both for quality (a pair may be better connected through a
    /// hub outside its leaf) and for correctness on overflow leaves, whose
    /// members can connect only via other leaves. Cross-leaf pairs are
    /// landmark-stitched only. Either way the best returned delay is
    /// within [`Self::landmark_bound_ms`], and when no candidate exists at
    /// all one exact Dijkstra answers — so a reachable pair never comes
    /// back empty.
    ///
    /// # Panics
    /// Panics when `src == dst` (mirrors the flat cache/Yen contract).
    pub fn paths(&self, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        assert!(src != dst, "paths between a node and itself");
        let cross_leaf = !self.hierarchy.same_leaf(src, dst);
        let mut candidates: Vec<Path> = if !cross_leaf {
            self.stats.intra.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("hier.intra", 1);
            let leaf = self.hierarchy.leaf_of(src);
            self.caches[self.cache_of_leaf[leaf]].paths(src, dst, k)
        } else {
            self.stats.cross.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("hier.cross", 1);
            Vec::new()
        };
        for l in &self.landmarks {
            if !l.rev.reachable(src) || !l.fwd.reachable(dst) {
                continue;
            }
            let spliced = if l.node == src {
                l.fwd.path_to(self.graph, dst)
            } else if l.node == dst {
                l.rev.path_from(self.graph, src)
            } else {
                let to_l = l.rev.path_from(self.graph, src);
                let from_l = l.fwd.path_to(self.graph, dst);
                match (to_l, from_l) {
                    (Some(a), Some(b)) => {
                        splice_loopless(self.graph, std::slice::from_ref(&a), &[b])
                    }
                    _ => None,
                }
            };
            if let Some(p) = spliced {
                debug_assert_eq!(p.src(), src);
                debug_assert_eq!(p.dst(), dst);
                candidates.push(p);
            }
        }

        if candidates.is_empty() {
            // Exact fallback: one targeted Dijkstra. Keeps reachability
            // identical to the flat engine even when every landmark sits on
            // the wrong side of a cut.
            self.stats.fallback.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("hier.fallback", 1);
            if let Some(p) = shortest_path(self.graph, src, dst, None, None) {
                candidates.push(p);
            }
        }

        // Rank by (delay, hop count), drop duplicate link sequences.
        candidates.sort_by(|a, b| {
            a.delay_ms()
                .partial_cmp(&b.delay_ms())
                .expect("finite delays")
                .then_with(|| a.hop_count().cmp(&b.hop_count()))
                .then_with(|| a.links().cmp(b.links()))
        });
        candidates.dedup_by(|a, b| a.links() == b.links());
        candidates.truncate(k);
        // Bound tightness: how close the best stitched delay comes to the
        // landmark upper bound (1.0 = on the bound, lower = de-looping or a
        // better candidate beat it). Cross-leaf only — intra answers are
        // exact Yen and say nothing about stitching quality.
        if cross_leaf && telemetry::enabled() {
            if let Some(best) = candidates.first() {
                let bound = self.landmark_bound_ms(src, dst);
                if bound.is_finite() && bound > 0.0 {
                    telemetry::observe("hier.bound_tightness", best.delay_ms() / bound);
                }
            }
        }
        candidates
    }

    /// The single best path (None when disconnected).
    pub fn shortest(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        self.paths(src, dst, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::GraphBuilder;

    /// Two 8-node rings joined by a single bridge — forces cross-leaf
    /// stitching through the cut.
    fn two_rings() -> Graph {
        let mut b = GraphBuilder::new(16);
        for base in [0u32, 8] {
            for i in 0..8u32 {
                b.add_duplex(NodeId(base + i), NodeId(base + (i + 1) % 8), 1.0, 100.0);
            }
        }
        b.add_duplex(NodeId(0), NodeId(8), 10.0, 100.0);
        b.build()
    }

    fn small_engine(g: &Graph) -> PartitionedPathEngine<'_> {
        PartitionedPathEngine::build(
            g,
            &EngineConfig {
                hierarchy: HierarchyConfig { max_depth: 2, max_leaf: 8, branching: 2 },
                landmarks: 4,
            },
        )
    }

    #[test]
    fn intra_leaf_matches_flat_cache() {
        let g = two_rings();
        let eng = small_engine(&g);
        assert!(eng.same_leaf(NodeId(1), NodeId(3)));
        let flat = PathCache::new(&g);
        let a: Vec<f64> = eng.paths(NodeId(1), NodeId(3), 2).iter().map(|p| p.delay_ms()).collect();
        let b: Vec<f64> =
            flat.paths(NodeId(1), NodeId(3), 2).iter().map(|p| p.delay_ms()).collect();
        // Shortest must agree exactly; deeper paths may differ because the
        // scoped cache cannot detour through the other ring.
        assert_eq!(a[0], b[0]);
        let (intra, cross, _) = eng.stats().snapshot();
        assert_eq!((intra, cross), (1, 0));
    }

    #[test]
    fn cross_leaf_is_stitched_and_bounded() {
        let g = two_rings();
        let eng = small_engine(&g);
        assert!(!eng.same_leaf(NodeId(3), NodeId(12)));
        let ps = eng.paths(NodeId(3), NodeId(12), 3);
        assert!(!ps.is_empty(), "rings are connected through the bridge");
        let best = ps[0].delay_ms();
        let flat = shortest_path(&g, NodeId(3), NodeId(12), None, None).unwrap().delay_ms();
        let bound = eng.landmark_bound_ms(NodeId(3), NodeId(12));
        assert!(best >= flat - 1e-12, "cannot beat the true shortest");
        assert!(best <= bound + 1e-12, "stitching respects the landmark bound");
        for p in &ps {
            assert_eq!(p.src(), NodeId(3));
            assert_eq!(p.dst(), NodeId(12));
            p.validate(&g).expect("stitched paths are valid walks");
            let nodes = p.nodes(&g);
            let mut sorted: Vec<NodeId> = nodes.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), nodes.len(), "paths are loopless");
        }
    }

    #[test]
    fn cross_leaf_never_materializes_pair_state() {
        let g = two_rings();
        let eng = small_engine(&g);
        for s in 0..8u32 {
            for d in 8..16u32 {
                let _ = eng.paths(NodeId(s), NodeId(d), 2);
            }
        }
        assert_eq!(eng.cached_pairs(), 0, "cross queries must not touch leaf caches");
        let (_, cross, _) = eng.stats().snapshot();
        assert_eq!(cross, 64);
    }

    #[test]
    fn query_mix_counters_mirror_into_the_registry() {
        // The registry's hier.* counters are incremented at the same call
        // sites as the QueryStats atomics — the metrics snapshot and the
        // engine's own stats cannot disagree. Registry counters are
        // process-global (other tests may add concurrently while enabled),
        // so the deltas are asserted as lower bounds.
        let g = two_rings();
        let eng = small_engine(&g);
        let before = telemetry::snapshot();
        telemetry::set_enabled(true);
        let _ = eng.paths(NodeId(1), NodeId(3), 2); // intra-leaf
        let _ = eng.paths(NodeId(3), NodeId(12), 2); // cross-leaf
        telemetry::set_enabled(false);
        let after = telemetry::snapshot();
        let (intra, cross, _) = eng.stats().snapshot();
        assert_eq!((intra, cross), (1, 1));
        assert!(after.counter("hier.intra") - before.counter("hier.intra") >= 1);
        assert!(after.counter("hier.cross") - before.counter("hier.cross") >= 1);
        // The cross query also grades stitching against the landmark bound.
        let tightness = after.histograms.get("hier.bound_tightness").expect("tightness recorded");
        assert!(tightness.count >= 1);
        assert!(tightness.max <= 1.0 + 1e-9, "best delay never exceeds the bound");
    }

    #[test]
    fn disconnected_pairs_return_empty() {
        let mut b = GraphBuilder::new(6);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0);
        b.add_duplex(NodeId(3), NodeId(4), 1.0, 10.0);
        b.add_duplex(NodeId(4), NodeId(5), 1.0, 10.0);
        let g = b.build();
        let eng = PartitionedPathEngine::build(
            &g,
            &EngineConfig {
                hierarchy: HierarchyConfig { max_depth: 2, max_leaf: 3, branching: 2 },
                landmarks: 2,
            },
        );
        // Whether same-leaf or cross-leaf, a cut pair yields nothing.
        assert!(eng.paths(NodeId(0), NodeId(4), 3).is_empty());
        assert!(eng.shortest(NodeId(2), NodeId(3)).is_none());
        assert!(eng.paths(NodeId(0), NodeId(2), 3).len() == 1);
    }

    #[test]
    fn landmark_budget_caps_tree_count() {
        let g = two_rings();
        let eng = small_engine(&g);
        assert!(eng.landmark_count() >= 1);
        assert!(eng.landmark_count() <= 4 + eng.hierarchy().groups().len());
    }

    #[test]
    fn splice_deloops_overlapping_halves() {
        // s -> a -> l and l -> a -> d share node a: the splice must cut the
        // a..a cycle and still deliver a valid s -> d path.
        let mut b = GraphBuilder::new(4);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0); // s-a
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0); // a-l
        b.add_duplex(NodeId(1), NodeId(3), 1.0, 10.0); // a-d
        let g = b.build();
        let s_to_l = Path::new(
            &g,
            vec![
                g.find_link(NodeId(0), NodeId(1)).unwrap(),
                g.find_link(NodeId(1), NodeId(2)).unwrap(),
            ],
        );
        let l_to_d = Path::new(
            &g,
            vec![
                g.find_link(NodeId(2), NodeId(1)).unwrap(),
                g.find_link(NodeId(1), NodeId(3)).unwrap(),
            ],
        );
        let spliced = splice_loopless(&g, &[s_to_l], &[l_to_d]).unwrap();
        assert_eq!(spliced.src(), NodeId(0));
        assert_eq!(spliced.dst(), NodeId(3));
        assert_eq!(spliced.hop_count(), 2, "the a->l->a cycle is removed");
        spliced.validate(&g).unwrap();
    }

    #[test]
    fn deterministic_across_builds() {
        let g = two_rings();
        let a = small_engine(&g);
        let b = small_engine(&g);
        for s in [1u32, 5, 11] {
            for d in [3u32, 9, 14] {
                if s == d {
                    continue;
                }
                let pa: Vec<Vec<_>> =
                    a.paths(NodeId(s), NodeId(d), 3).iter().map(|p| p.links().to_vec()).collect();
                let pb: Vec<Vec<_>> =
                    b.paths(NodeId(s), NodeId(d), 3).iter().map(|p| p.links().to_vec()).collect();
                assert_eq!(pa, pb, "{s}->{d}");
            }
        }
    }
}
