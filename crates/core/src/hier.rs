//! Hierarchical partitioned path engine for Internet-scale graphs.
//!
//! The flat [`PathCache`](crate::pathset::PathCache) materializes one Yen
//! generator per requested pair over the whole graph — perfect for the
//! paper's PoP backbones (tens of nodes), hopeless at CAIDA scale (78k
//! nodes): a single cross-graph Yen spur re-runs Dijkstra over everything,
//! and caching all-pairs state is quadratic. [`PartitionedPathEngine`]
//! splits the work along a delay-weighted
//! [`Hierarchy`](lowlat_netgraph::hierarchy::Hierarchy):
//!
//! * **Intra-leaf** queries go to a per-leaf *scoped* `PathCache` — the
//!   existing warm machinery, restricted so enumeration never leaves the
//!   leaf. Same Yen semantics, partition-sized cost.
//! * **Cross-leaf** queries are answered by **landmark stitching**: a
//!   global budget of landmark nodes (picked per depth-1 group, weighted by
//!   group size) precomputes one forward and one reverse shortest-path tree
//!   each; a query concatenates `s → ℓ` and `ℓ → d`, de-loops the splice,
//!   and ranks candidates across landmarks. Cost per query is `O(landmarks
//!   × path length)` — no Yen over the full graph, and the full cross-pair
//!   path set is never materialized.
//!
//! Landmark stitching is approximate (stretch ≥ 1 versus flat Yen) but
//! *bounded*: the best stitched delay never exceeds `min_ℓ (d(s,ℓ) +
//! d(ℓ,d))`, which [`PartitionedPathEngine::landmark_bound_ms`] exposes and
//! the property tests pin. When no landmark connects a pair (sparse cuts,
//! overflow clusters), a single targeted Dijkstra answers exactly — so
//! reachability always matches the flat engine.
//!
//! The engine implements [`PathSource`](crate::source::PathSource), so the
//! whole LP/scheme stack places through it: `pathgrow`'s column-generation
//! loop prices candidate columns with [`PartitionedPathEngine::paths`] and
//! prunes hopeless pairs with the landmark bound — placement at Internet
//! scale without ever materializing the flat path corpus. Failure masks
//! apply here too ([`PartitionedPathEngine::apply_failure`]): leaf caches
//! repair exactly like the flat cache, and landmark trees are rebuilt under
//! the mask, so recovery re-placement runs on priced-on-demand columns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use lowlat_netgraph::{
    reverse_shortest_path_tree, shortest_path, shortest_path_tree, FailureMask, Graph, Hierarchy,
    HierarchyConfig, NodeId, Path, ReverseShortestPathTree, ShortestPathTree,
};
use lowlat_telemetry as telemetry;

use crate::pathset::{PathCache, RepairStats};

/// Knobs for [`PartitionedPathEngine::build`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Hierarchy shape.
    pub hierarchy: HierarchyConfig,
    /// Global landmark budget, distributed over depth-1 groups by size
    /// (every group gets at least one). Memory is two `O(V)` trees per
    /// landmark, so the budget — not the node count — caps tree storage.
    pub landmarks: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { hierarchy: HierarchyConfig::default(), landmarks: 32 }
    }
}

/// Query-mix counters (cumulative, thread-safe).
///
/// Every increment is mirrored into the telemetry registry (`hier.intra`,
/// `hier.cross`, `hier.fallback`) at the same call site, so a metrics
/// snapshot and this struct's [`QueryStats::snapshot`] report the query mix
/// from one code path and cannot disagree.
#[derive(Debug, Default)]
pub struct QueryStats {
    /// Queries answered by a per-leaf scoped cache.
    pub intra: AtomicUsize,
    /// Queries answered by landmark stitching.
    pub cross: AtomicUsize,
    /// Cross queries where stitching found nothing and the exact Dijkstra
    /// fallback ran.
    pub fallback: AtomicUsize,
}

impl QueryStats {
    /// Snapshot as `(intra, cross, fallback)`.
    pub fn snapshot(&self) -> (usize, usize, usize) {
        (
            self.intra.load(Ordering::Relaxed),
            self.cross.load(Ordering::Relaxed),
            self.fallback.load(Ordering::Relaxed),
        )
    }
}

/// One landmark: a node plus its forward (from) and reverse (to) trees.
struct Landmark {
    node: NodeId,
    /// Shortest paths landmark → everywhere.
    fwd: ShortestPathTree,
    /// Shortest paths everywhere → landmark.
    rev: ReverseShortestPathTree,
}

/// The hierarchical engine. See the module docs for the routing split.
pub struct PartitionedPathEngine<'g> {
    graph: &'g Graph,
    hierarchy: Hierarchy,
    /// `caches[i]` serves the leaf with arena id `leaf_ids[i]`.
    leaf_ids: Vec<usize>,
    caches: Vec<PathCache<'g>>,
    /// Arena-id → dense cache index.
    cache_of_leaf: Vec<usize>,
    /// The deterministic landmark node choice — kept so failure transitions
    /// can rebuild the trees under a mask without re-deriving the pick.
    landmark_nodes: Vec<NodeId>,
    /// Landmark trees under the active mask. A read-write lock for the same
    /// reason as the cache's mask: per-query reads never contend, writes
    /// happen only at (documented-quiescent) failure transitions.
    landmarks: RwLock<Vec<Landmark>>,
    /// The failure mask in force; `None` means the intact topology.
    mask: RwLock<Option<Arc<FailureMask>>>,
    stats: QueryStats,
}

/// FNV-1a over node ids for the splice position map. The splice runs once
/// per landmark per cross-leaf query on walks of tens of hops, where the
/// std `HashMap`'s default SipHash costs more than the rest of the splice
/// combined.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }
}

type FnvMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FnvHasher>>;

/// Removes splice loops from a concatenated link walk in one pass: the walk
/// is replayed with a node → position map, and whenever a link returns to a
/// node already on the walk, everything after that node's position is
/// dropped (cutting the cycle). Amortized O(len) — each link is pushed and
/// drained at most once.
fn splice_loopless(graph: &Graph, first: &[Path], second: &[Path]) -> Option<Path> {
    // Node at position 0 is the walk's start; the node at position i > 0 is
    // the dst of walk[i-1]. Both containers are pre-sized to the full
    // concatenation so a splice never rehashes or reallocates mid-walk.
    let hops = first.iter().chain(second).map(|p| p.links().len()).sum::<usize>();
    let mut walk: Vec<lowlat_netgraph::LinkId> = Vec::with_capacity(hops);
    let mut pos: FnvMap<NodeId, usize> =
        FnvMap::with_capacity_and_hasher(hops + 1, Default::default());
    let mut started = false;
    for p in first.iter().chain(second) {
        for &l in p.links() {
            if !started {
                pos.insert(graph.link(l).src, 0);
                started = true;
            }
            let dst = graph.link(l).dst;
            walk.push(l);
            if let Some(&back) = pos.get(&dst) {
                // Returning to a node already on the walk: cut the cycle.
                // `dst` itself keeps its entry (its stored position is
                // exactly `back`); every node strictly after it goes.
                for cut in walk.drain(back..) {
                    let d = graph.link(cut).dst;
                    if pos.get(&d).is_some_and(|&q| q > back) {
                        pos.remove(&d);
                    }
                }
            } else {
                pos.insert(dst, walk.len());
            }
        }
    }
    if walk.is_empty() {
        None
    } else {
        Some(Path::new(graph, walk))
    }
}

/// Builds the forward/reverse tree pair of every landmark node under
/// `mask`. Landmark nodes the mask downs are skipped — their trees would be
/// empty — so a failed landmark degrades coverage instead of poisoning it.
fn build_landmarks(graph: &Graph, nodes: &[NodeId], mask: Option<&FailureMask>) -> Vec<Landmark> {
    let routing = mask.filter(|m| m.affects_routing());
    let link_mask = routing.and_then(FailureMask::link_mask);
    let node_mask = routing.and_then(FailureMask::node_mask);
    nodes
        .iter()
        .filter(|&&node| !routing.is_some_and(|m| m.node_down(node)))
        .map(|&node| Landmark {
            node,
            fwd: shortest_path_tree(graph, node, link_mask, node_mask),
            rev: reverse_shortest_path_tree(graph, node, link_mask, node_mask),
        })
        .collect()
}

impl<'g> PartitionedPathEngine<'g> {
    /// Builds hierarchy, per-leaf caches and landmark trees. Deterministic
    /// in `(graph, config)`.
    pub fn build(graph: &'g Graph, config: &EngineConfig) -> Self {
        let hierarchy = Hierarchy::build(graph, &config.hierarchy);
        let leaf_ids = hierarchy.leaves();
        let mut cache_of_leaf = vec![usize::MAX; hierarchy.clusters().len()];
        let mut caches = Vec::with_capacity(leaf_ids.len());
        for (i, &leaf) in leaf_ids.iter().enumerate() {
            cache_of_leaf[leaf] = i;
            caches.push(PathCache::scoped(graph, &hierarchy.cluster(leaf).members));
        }

        // Landmark budget: distributed over depth-1 groups proportionally
        // to size (floor 1 per group), landmarks chosen evenly spaced
        // through each group's sorted member list so they spread over the
        // delay space the farthest-point split already organized.
        let groups = hierarchy.groups();
        let n = graph.node_count() as f64;
        let budget = config.landmarks.max(1);
        let mut landmark_nodes: Vec<NodeId> = Vec::new();
        for &gid in &groups {
            let members = &hierarchy.cluster(gid).members;
            let share =
                (((members.len() as f64 / n) * budget as f64).round() as usize).clamp(1, budget);
            let share = share.min(members.len());
            for s in 0..share {
                let idx = s * members.len() / share + members.len() / (2 * share);
                let node = members[idx.min(members.len() - 1)];
                if !landmark_nodes.contains(&node) {
                    landmark_nodes.push(node);
                }
            }
        }
        let landmarks = build_landmarks(graph, &landmark_nodes, None);

        PartitionedPathEngine {
            graph,
            hierarchy,
            leaf_ids,
            caches,
            cache_of_leaf,
            landmark_nodes,
            landmarks: RwLock::new(landmarks),
            mask: RwLock::new(None),
            stats: QueryStats::default(),
        }
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The graph this engine routes over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of landmark nodes actually installed (under the active mask —
    /// downed landmarks are uninstalled until the mask clears).
    pub fn landmark_count(&self) -> usize {
        self.landmarks.read().len()
    }

    /// Cumulative query-mix counters.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Leaf arena ids served by per-leaf caches, dense-order.
    pub fn leaf_ids(&self) -> &[usize] {
        &self.leaf_ids
    }

    /// Total (src,dst) pairs materialized across all leaf caches — the
    /// "never the full path set" gauge: for cross-leaf traffic this stays
    /// zero no matter how many queries run.
    pub fn cached_pairs(&self) -> usize {
        self.caches.iter().map(|c| c.cached_pairs()).sum()
    }

    /// The landmark stitching upper bound for `(src, dst)`: the smallest
    /// `d(s,ℓ) + d(ℓ,d)` over installed landmarks, or `INFINITY` when no
    /// landmark connects the pair. The best path [`Self::paths`] returns
    /// for a cross-leaf pair never exceeds this (de-looping only shortens).
    pub fn landmark_bound_ms(&self, src: NodeId, dst: NodeId) -> f64 {
        self.landmarks
            .read()
            .iter()
            .map(|l| l.rev.dist_ms(src) + l.fwd.dist_ms(dst))
            .fold(f64::INFINITY, f64::min)
    }

    /// Upper bound (ms) on the best column the engine can price for
    /// `(src, dst)`: the leaf-scoped shortest delay for same-leaf pairs,
    /// min-combined with the landmark bound (which also covers overflow
    /// leaves whose members connect only through other leaves). `INFINITY`
    /// means pricing cannot produce anything beyond the exact-Dijkstra
    /// reachability fallback — the column-generation loop skips such pairs.
    pub fn shortest_delay_bound(&self, src: NodeId, dst: NodeId) -> f64 {
        let mut bound = self.landmark_bound_ms(src, dst);
        if self.hierarchy.same_leaf(src, dst) {
            let leaf = self.hierarchy.leaf_of(src);
            if let Some(p) = self.caches[self.cache_of_leaf[leaf]].shortest(src, dst) {
                bound = bound.min(p.delay_ms());
            }
        }
        bound
    }

    /// The failure mask currently in force, if any.
    pub fn failure_mask(&self) -> Option<Arc<FailureMask>> {
        self.mask.read().clone()
    }

    /// Per-link effective capacities (Mbps) under the active failure mask —
    /// the same capacity-provider view the flat cache exposes.
    pub fn effective_capacities(&self) -> Vec<f64> {
        match self.failure_mask() {
            Some(mask) => mask.effective_capacities(self.graph),
            None => self.graph.link_ids().map(|l| self.graph.link(l).capacity_mbps).collect(),
        }
    }

    /// Puts the failure mask in force: every leaf cache repairs exactly like
    /// the flat cache (kept/repaired pair accounting sums across leaves),
    /// landmark trees are rebuilt under the mask (downed landmark nodes are
    /// uninstalled), and the reachability fallback runs masked. An empty
    /// mask is equivalent to [`Self::clear_failure`]. Concurrent queries
    /// must be quiescent, as for [`PathCache::apply_failure`].
    pub fn apply_failure(&self, mask: &FailureMask) -> RepairStats {
        let _span = telemetry::span("hier.repair", "cache");
        let active: Option<Arc<FailureMask>> = (!mask.is_empty()).then(|| Arc::new(mask.clone()));
        *self.mask.write() = active.clone();
        let mut stats = RepairStats::default();
        for cache in &self.caches {
            let s = cache.apply_failure(mask);
            stats.kept_pairs += s.kept_pairs;
            stats.repaired_pairs += s.repaired_pairs;
            stats.paths_regrown += s.paths_regrown;
            stats.paths_lost += s.paths_lost;
        }
        *self.landmarks.write() =
            build_landmarks(self.graph, &self.landmark_nodes, active.as_deref());
        stats
    }

    /// Restores the intact topology view: leaf caches rebuild pure, landmark
    /// trees rebuild unmasked.
    pub fn clear_failure(&self) -> RepairStats {
        self.apply_failure(&FailureMask::new())
    }

    /// True when the pair shares a leaf (answered exactly by warm Yen).
    pub fn same_leaf(&self, src: NodeId, dst: NodeId) -> bool {
        self.hierarchy.same_leaf(src, dst)
    }

    /// Up to `k` loopless paths from `src` to `dst`, best-first.
    ///
    /// Intra-leaf pairs draw from the leaf's scoped Yen cache (the warm
    /// machinery) *merged with* landmark-stitched candidates — the merge
    /// matters both for quality (a pair may be better connected through a
    /// hub outside its leaf) and for correctness on overflow leaves, whose
    /// members can connect only via other leaves. Cross-leaf pairs are
    /// landmark-stitched only. Either way the best returned delay is
    /// within [`Self::landmark_bound_ms`], and when no candidate exists at
    /// all one exact Dijkstra answers — so a reachable pair never comes
    /// back empty.
    ///
    /// # Panics
    /// Panics when `src == dst` (mirrors the flat cache/Yen contract).
    pub fn paths(&self, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        assert!(src != dst, "paths between a node and itself");
        let cross_leaf = !self.hierarchy.same_leaf(src, dst);
        let mut candidates: Vec<Path> = if !cross_leaf {
            self.stats.intra.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("hier.intra", 1);
            let leaf = self.hierarchy.leaf_of(src);
            self.caches[self.cache_of_leaf[leaf]].paths(src, dst, k)
        } else {
            self.stats.cross.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("hier.cross", 1);
            Vec::new()
        };
        let landmarks = self.landmarks.read();
        for l in landmarks.iter() {
            if !l.rev.reachable(src) || !l.fwd.reachable(dst) {
                continue;
            }
            let spliced = if l.node == src {
                l.fwd.path_to(self.graph, dst)
            } else if l.node == dst {
                l.rev.path_from(self.graph, src)
            } else {
                let to_l = l.rev.path_from(self.graph, src);
                let from_l = l.fwd.path_to(self.graph, dst);
                match (to_l, from_l) {
                    (Some(a), Some(b)) => {
                        splice_loopless(self.graph, std::slice::from_ref(&a), &[b])
                    }
                    _ => None,
                }
            };
            if let Some(p) = spliced {
                debug_assert_eq!(p.src(), src);
                debug_assert_eq!(p.dst(), dst);
                candidates.push(p);
            }
        }

        if candidates.is_empty() {
            // Exact fallback: one targeted Dijkstra (masked, so reachability
            // matches the flat engine under the same failure). Keeps pairs
            // answerable even when every landmark sits on the wrong side of
            // a cut.
            self.stats.fallback.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("hier.fallback", 1);
            let mask = self.mask.read().clone();
            let routing = mask.as_deref().filter(|m| m.affects_routing());
            let p = shortest_path(
                self.graph,
                src,
                dst,
                routing.and_then(FailureMask::link_mask),
                routing.and_then(FailureMask::node_mask),
            );
            if let Some(p) = p {
                candidates.push(p);
            }
        }

        // Rank by (delay, hop count), drop duplicate link sequences.
        candidates.sort_by(|a, b| {
            a.delay_ms()
                .partial_cmp(&b.delay_ms())
                .expect("finite delays")
                .then_with(|| a.hop_count().cmp(&b.hop_count()))
                .then_with(|| a.links().cmp(b.links()))
        });
        candidates.dedup_by(|a, b| a.links() == b.links());
        candidates.truncate(k);
        // Bound tightness: how close the best stitched delay comes to the
        // landmark upper bound (1.0 = on the bound, lower = de-looping or a
        // better candidate beat it). Cross-leaf only — intra answers are
        // exact Yen and say nothing about stitching quality.
        if cross_leaf && telemetry::enabled() {
            if let Some(best) = candidates.first() {
                let bound = self.landmark_bound_ms(src, dst);
                if bound.is_finite() && bound > 0.0 {
                    telemetry::observe("hier.bound_tightness", best.delay_ms() / bound);
                }
            }
        }
        candidates
    }

    /// The single best path (None when disconnected).
    pub fn shortest(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        self.paths(src, dst, 1).into_iter().next()
    }
}

/// The partitioned backend of the pricing-oracle API: columns are priced by
/// leaf-scoped Yen plus landmark stitching, the pricing bound is the
/// landmark bound, and per-pair state is materialized only for intra-leaf
/// pairs actually priced in — never for the cross-leaf corpus.
impl crate::source::PathSource for PartitionedPathEngine<'_> {
    fn graph(&self) -> &Graph {
        PartitionedPathEngine::graph(self)
    }

    fn paths(&self, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
        PartitionedPathEngine::paths(self, src, dst, k)
    }

    fn shortest(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        PartitionedPathEngine::shortest(self, src, dst)
    }

    fn shortest_delay_bound(&self, src: NodeId, dst: NodeId) -> f64 {
        PartitionedPathEngine::shortest_delay_bound(self, src, dst)
    }

    fn effective_capacities(&self) -> Vec<f64> {
        PartitionedPathEngine::effective_capacities(self)
    }

    fn failure_mask(&self) -> Option<Arc<FailureMask>> {
        PartitionedPathEngine::failure_mask(self)
    }

    fn apply_failure(&self, mask: &FailureMask) -> RepairStats {
        PartitionedPathEngine::apply_failure(self, mask)
    }

    fn clear_failure(&self) -> RepairStats {
        PartitionedPathEngine::clear_failure(self)
    }

    fn cached_pairs(&self) -> usize {
        PartitionedPathEngine::cached_pairs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::GraphBuilder;

    /// Two 8-node rings joined by a single bridge — forces cross-leaf
    /// stitching through the cut.
    fn two_rings() -> Graph {
        let mut b = GraphBuilder::new(16);
        for base in [0u32, 8] {
            for i in 0..8u32 {
                b.add_duplex(NodeId(base + i), NodeId(base + (i + 1) % 8), 1.0, 100.0);
            }
        }
        b.add_duplex(NodeId(0), NodeId(8), 10.0, 100.0);
        b.build()
    }

    fn small_engine(g: &Graph) -> PartitionedPathEngine<'_> {
        PartitionedPathEngine::build(
            g,
            &EngineConfig {
                hierarchy: HierarchyConfig { max_depth: 2, max_leaf: 8, branching: 2 },
                landmarks: 4,
            },
        )
    }

    #[test]
    fn intra_leaf_matches_flat_cache() {
        let g = two_rings();
        let eng = small_engine(&g);
        assert!(eng.same_leaf(NodeId(1), NodeId(3)));
        let flat = PathCache::new(&g);
        let a: Vec<f64> = eng.paths(NodeId(1), NodeId(3), 2).iter().map(|p| p.delay_ms()).collect();
        let b: Vec<f64> =
            flat.paths(NodeId(1), NodeId(3), 2).iter().map(|p| p.delay_ms()).collect();
        // Shortest must agree exactly; deeper paths may differ because the
        // scoped cache cannot detour through the other ring.
        assert_eq!(a[0], b[0]);
        let (intra, cross, _) = eng.stats().snapshot();
        assert_eq!((intra, cross), (1, 0));
    }

    #[test]
    fn cross_leaf_is_stitched_and_bounded() {
        let g = two_rings();
        let eng = small_engine(&g);
        assert!(!eng.same_leaf(NodeId(3), NodeId(12)));
        let ps = eng.paths(NodeId(3), NodeId(12), 3);
        assert!(!ps.is_empty(), "rings are connected through the bridge");
        let best = ps[0].delay_ms();
        let flat = shortest_path(&g, NodeId(3), NodeId(12), None, None).unwrap().delay_ms();
        let bound = eng.landmark_bound_ms(NodeId(3), NodeId(12));
        assert!(best >= flat - 1e-12, "cannot beat the true shortest");
        assert!(best <= bound + 1e-12, "stitching respects the landmark bound");
        for p in &ps {
            assert_eq!(p.src(), NodeId(3));
            assert_eq!(p.dst(), NodeId(12));
            p.validate(&g).expect("stitched paths are valid walks");
            let nodes = p.nodes(&g);
            let mut sorted: Vec<NodeId> = nodes.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), nodes.len(), "paths are loopless");
        }
    }

    #[test]
    fn cross_leaf_never_materializes_pair_state() {
        let g = two_rings();
        let eng = small_engine(&g);
        for s in 0..8u32 {
            for d in 8..16u32 {
                let _ = eng.paths(NodeId(s), NodeId(d), 2);
            }
        }
        assert_eq!(eng.cached_pairs(), 0, "cross queries must not touch leaf caches");
        let (_, cross, _) = eng.stats().snapshot();
        assert_eq!(cross, 64);
    }

    #[test]
    fn query_mix_counters_mirror_into_the_registry() {
        // The registry's hier.* counters are incremented at the same call
        // sites as the QueryStats atomics — the metrics snapshot and the
        // engine's own stats cannot disagree. Registry counters are
        // process-global (other tests may add concurrently while enabled),
        // so the deltas are asserted as lower bounds.
        let g = two_rings();
        let eng = small_engine(&g);
        let before = telemetry::snapshot();
        telemetry::set_enabled(true);
        let _ = eng.paths(NodeId(1), NodeId(3), 2); // intra-leaf
        let _ = eng.paths(NodeId(3), NodeId(12), 2); // cross-leaf
        telemetry::set_enabled(false);
        let after = telemetry::snapshot();
        let (intra, cross, _) = eng.stats().snapshot();
        assert_eq!((intra, cross), (1, 1));
        assert!(after.counter("hier.intra") - before.counter("hier.intra") >= 1);
        assert!(after.counter("hier.cross") - before.counter("hier.cross") >= 1);
        // The cross query also grades stitching against the landmark bound.
        let tightness = after.histograms.get("hier.bound_tightness").expect("tightness recorded");
        assert!(tightness.count >= 1);
        assert!(tightness.max <= 1.0 + 1e-9, "best delay never exceeds the bound");
    }

    #[test]
    fn disconnected_pairs_return_empty() {
        let mut b = GraphBuilder::new(6);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0);
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0);
        b.add_duplex(NodeId(3), NodeId(4), 1.0, 10.0);
        b.add_duplex(NodeId(4), NodeId(5), 1.0, 10.0);
        let g = b.build();
        let eng = PartitionedPathEngine::build(
            &g,
            &EngineConfig {
                hierarchy: HierarchyConfig { max_depth: 2, max_leaf: 3, branching: 2 },
                landmarks: 2,
            },
        );
        // Whether same-leaf or cross-leaf, a cut pair yields nothing.
        assert!(eng.paths(NodeId(0), NodeId(4), 3).is_empty());
        assert!(eng.shortest(NodeId(2), NodeId(3)).is_none());
        assert!(eng.paths(NodeId(0), NodeId(2), 3).len() == 1);
    }

    #[test]
    fn landmark_budget_caps_tree_count() {
        let g = two_rings();
        let eng = small_engine(&g);
        assert!(eng.landmark_count() >= 1);
        assert!(eng.landmark_count() <= 4 + eng.hierarchy().groups().len());
    }

    #[test]
    fn splice_deloops_overlapping_halves() {
        // s -> a -> l and l -> a -> d share node a: the splice must cut the
        // a..a cycle and still deliver a valid s -> d path.
        let mut b = GraphBuilder::new(4);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0); // s-a
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0); // a-l
        b.add_duplex(NodeId(1), NodeId(3), 1.0, 10.0); // a-d
        let g = b.build();
        let s_to_l = Path::new(
            &g,
            vec![
                g.find_link(NodeId(0), NodeId(1)).unwrap(),
                g.find_link(NodeId(1), NodeId(2)).unwrap(),
            ],
        );
        let l_to_d = Path::new(
            &g,
            vec![
                g.find_link(NodeId(2), NodeId(1)).unwrap(),
                g.find_link(NodeId(1), NodeId(3)).unwrap(),
            ],
        );
        let spliced = splice_loopless(&g, &[s_to_l], &[l_to_d]).unwrap();
        assert_eq!(spliced.src(), NodeId(0));
        assert_eq!(spliced.dst(), NodeId(3));
        assert_eq!(spliced.hop_count(), 2, "the a->l->a cycle is removed");
        spliced.validate(&g).unwrap();
    }

    #[test]
    fn splice_deloops_nested_and_start_crossing_loops() {
        // Regression for the single-pass de-looper: walks whose halves
        // overlap over several hops (nested cycles) and walks whose cycle
        // passes back through the start node.
        let mut b = GraphBuilder::new(5);
        b.add_duplex(NodeId(0), NodeId(1), 1.0, 10.0); // s-a
        b.add_duplex(NodeId(1), NodeId(2), 1.0, 10.0); // a-b
        b.add_duplex(NodeId(2), NodeId(3), 1.0, 10.0); // b-l
        b.add_duplex(NodeId(1), NodeId(4), 1.0, 10.0); // a-d
        b.add_duplex(NodeId(0), NodeId(4), 1.0, 10.0); // s-d
        let g = b.build();
        let link = |s: u32, d: u32| g.find_link(NodeId(s), NodeId(d)).unwrap();

        // s→a→b→l spliced with l→b→a→d backtracks two hops: the whole
        // a→b→l→b→a excursion must collapse, leaving s→a→d.
        let first = Path::new(&g, vec![link(0, 1), link(1, 2), link(2, 3)]);
        let second = Path::new(&g, vec![link(3, 2), link(2, 1), link(1, 4)]);
        let spliced = splice_loopless(&g, &[first], &[second]).unwrap();
        spliced.validate(&g).unwrap();
        assert_eq!(spliced.links(), &[link(0, 1), link(1, 4)], "nested cycle fully removed");

        // s→a spliced with a→s→d loops through the start node: the s…s
        // cycle goes, leaving the single link s→d.
        let first = Path::new(&g, vec![link(0, 1)]);
        let second = Path::new(&g, vec![link(1, 0), link(0, 4)]);
        let spliced = splice_loopless(&g, &[first], &[second]).unwrap();
        spliced.validate(&g).unwrap();
        assert_eq!(spliced.links(), &[link(0, 4)], "cycle through the walk start removed");

        // A walk that cancels completely (s→a then a→s) yields nothing.
        let first = Path::new(&g, vec![link(0, 1)]);
        let second = Path::new(&g, vec![link(1, 0)]);
        assert!(splice_loopless(&g, &[first], &[second]).is_none());
    }

    #[test]
    fn failure_masks_apply_across_leaves_and_landmarks() {
        let g = two_rings();
        let eng = small_engine(&g);
        // Warm an intra-leaf pair, then fail the bridge: cross-leaf pairs
        // disconnect, intra-leaf answers survive.
        assert_eq!(eng.paths(NodeId(1), NodeId(3), 2).len(), 2);
        assert!(eng.shortest(NodeId(3), NodeId(12)).is_some());
        let bridge = g.find_link(NodeId(0), NodeId(8)).unwrap();
        let mut mask = FailureMask::new();
        mask.fail_cable(&g, bridge);
        eng.apply_failure(&mask);
        assert!(eng.failure_mask().is_some());
        assert!(
            eng.paths(NodeId(3), NodeId(12), 3).is_empty(),
            "bridge down disconnects the rings — stitching and fallback both masked"
        );
        assert!(eng.shortest_delay_bound(NodeId(3), NodeId(12)).is_infinite());
        assert!(eng.shortest(NodeId(1), NodeId(3)).is_some(), "intra-leaf unaffected");
        // Effective capacities expose the downed cable.
        assert_eq!(eng.effective_capacities()[bridge.idx()], 0.0);
        // Clearing restores the stitched route and the raw capacity view.
        eng.clear_failure();
        assert!(eng.failure_mask().is_none());
        assert!(eng.shortest(NodeId(3), NodeId(12)).is_some());
        assert!(eng.effective_capacities()[bridge.idx()] > 0.0);
        // Masked results match an engine built fresh on the masked view.
        eng.apply_failure(&mask);
        let fresh = small_engine(&g);
        fresh.apply_failure(&mask);
        for (s, d) in [(1u32, 3u32), (9, 14), (3, 12)] {
            let a: Vec<f64> =
                eng.paths(NodeId(s), NodeId(d), 3).iter().map(|p| p.delay_ms()).collect();
            let b: Vec<f64> =
                fresh.paths(NodeId(s), NodeId(d), 3).iter().map(|p| p.delay_ms()).collect();
            assert_eq!(a, b, "pair {s}->{d} under failure");
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let g = two_rings();
        let a = small_engine(&g);
        let b = small_engine(&g);
        for s in [1u32, 5, 11] {
            for d in [3u32, 9, 14] {
                if s == d {
                    continue;
                }
                let pa: Vec<Vec<_>> =
                    a.paths(NodeId(s), NodeId(d), 3).iter().map(|p| p.links().to_vec()).collect();
                let pb: Vec<Vec<_>> =
                    b.paths(NodeId(s), NodeId(d), 3).iter().map(|p| p.links().to_vec()).collect();
                assert_eq!(pa, pb, "{s}->{d}");
            }
        }
    }
}
