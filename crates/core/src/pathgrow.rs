//! The Figure-12 linear program and the Figure-13 iterative path-growth
//! loop — shared machinery behind the latency-optimal scheme, MinMax, and
//! LDR.
//!
//! ## The LP (Figure 12)
//!
//! Per aggregate `a` with candidate paths `P_a`, fractions `x_ap` split its
//! volume `B_a`; per link an overload variable `O_l = 1 + o_l >= 1` scales
//! the capacity, and `Omax` bounds all `O_l`. The paper's objective
//!
//! ```text
//! min Σ_a n_a Σ_p x_ap d_p (1 + M1/S_a)  +  M2·Omax  +  Σ_l O_l
//! ```
//!
//! is a big-M encoding of a lexicographic order: avoid congestion first,
//! then minimize delay (with the M1 term breaking ties toward moving the
//! aggregate whose RTT is already larger), then spread unavoidable overload.
//! We solve that order *literally* instead of numerically: one LP minimizes
//! `Omax`, a second minimizes the delay objective subject to
//! `Omax <= Omax*`. Same optimum, no big-M conditioning problems.
//!
//! ## The loop (Figure 13) — column generation over a [`PathSource`]
//!
//! Start every aggregate with only its shortest path; solve; wherever
//! `O_l = Omax > 1`, extend the path lists of the aggregates crossing those
//! links with their next-shortest paths; repeat until nothing is
//! overloaded. A final refinement pass grows path sets across *saturated*
//! (not just overloaded) links so the delay objective can rebalance them
//! (the Figure-6 effect), which the LP can only exploit if the alternative
//! paths exist in the model.
//!
//! The growth step is classic column generation, and the pricing oracle is
//! abstract: every solve takes a `&dyn` [`PathSource`], asks it only for
//! the next-cheapest columns of the pairs that are actually
//! overloaded/saturated, and remaps warm bases to the grown column
//! numbering ([`lowlat_linprog::Basis::remap_columns`]). Pairs the source
//! reports exhausted — or whose
//! [`PathSource::shortest_delay_bound`] is infinite, meaning its best
//! possible column cannot exist — are never priced again. Against the flat
//! [`PathCache`] this is bit-identical to the historical behavior; against
//! the [`PartitionedPathEngine`](crate::hier::PartitionedPathEngine) it
//! places Internet-scale topologies without a materialized path corpus.
//! Use [`GrowRequest`] to pose a solve; the `solve_*` free functions are
//! deprecated shims over it.
//!
//! ## Effective capacities (brown-outs)
//!
//! Every capacity row, utilization cap, and tight-link filter poses the
//! *effective* capacity under the cache's active
//! [`lowlat_netgraph::FailureMask`] ([`PathCache::effective_capacities`]),
//! not the raw `capacity_mbps`. A degraded-but-up link — a brown-out — thus
//! constrains the LP at `factor * capacity`, so every scheme built on this
//! module (LatOpt, LDR, MinMax) re-places against the capacity that actually
//! survives, with warm bases intact ([`lowlat_linprog::Problem::solve_warm`]
//! re-verifies the basis against the changed coefficients, so a stale basis
//! degrades to a cold solve, never to a wrong answer). Downed links never
//! appear: masked cache repair keeps them off every candidate path, and
//! degradation factors are strictly inside (0, 1), so every capacity the LP
//! divides by is positive.

use std::collections::HashMap;

use lowlat_linprog::{Basis, LpError, Problem, Relation, Solution};
use lowlat_netgraph::{Graph, LinkId, Path};
use lowlat_telemetry as telemetry;
use lowlat_tmgen::TrafficMatrix;

#[allow(unused_imports)] // doc links
use crate::pathset::PathCache;
use crate::placement::{AggregatePlacement, Placement};
use crate::source::PathSource;

/// Warm-start state carried across LP solves — one per scheme instance in a
/// long-running controller (the §5 deployment cycle re-solves nearly
/// identical LPs every minute).
///
/// The growth loop poses a *sequence* of LPs per call (one per round, each a
/// different size as path sets grow), so the context keys stored bases by
/// `(objective mode, rows, vars)`: when the next minute's solve retraces the
/// same growth trajectory — the common case on an unchanged topology — every
/// round restarts from the matching basis of the previous minute.
/// [`lowlat_linprog::Problem::solve_warm`] degrades stale bases to cold
/// solves on its own, so a context can never change *what* is computed, only
/// how fast.
#[derive(Debug, Default)]
pub struct SolveContext {
    bases: HashMap<(u8, usize, usize), StoredBasis>,
    warm_hits: usize,
    solves: usize,
}

/// A stored basis plus the solve count at its last use, for eviction.
#[derive(Debug, Default)]
struct StoredBasis {
    basis: Basis,
    last_used: usize,
}

/// Stored bases beyond this trigger eviction of stale entries — a
/// long-lived controller whose growth trajectories drift would otherwise
/// accumulate one (possibly multi-MB, inverse-carrying) basis per shape
/// ever seen.
const MAX_STORED_BASES: usize = 64;

/// Eviction horizon: entries not used for this many solves are dropped
/// when the context is over [`MAX_STORED_BASES`].
const STALE_AFTER_SOLVES: usize = 256;

impl SolveContext {
    /// A fresh (all-cold) context.
    pub fn new() -> Self {
        SolveContext::default()
    }

    /// The basis slot for an LP of the given mode and dimensions.
    fn slot(&mut self, tag: u8, rows: usize, vars: usize) -> &mut Basis {
        if self.bases.len() > MAX_STORED_BASES {
            let now = self.solves;
            self.bases.retain(|_, s| now - s.last_used < STALE_AFTER_SOLVES);
        }
        let entry = self.bases.entry((tag, rows, vars)).or_default();
        entry.last_used = self.solves;
        &mut entry.basis
    }

    /// Seeds `to_tag`'s slot from `from_tag`'s basis of the same problem
    /// shape when the target has nothing stored yet. Phase 2 optimizes a
    /// different objective over phase 1's feasible region, so phase 1's
    /// optimal vertex is a valid primal-feasible restart for it.
    fn seed_cross_mode(&mut self, from_tag: u8, to_tag: u8, rows: usize, vars: usize) {
        let to_key = (to_tag, rows, vars);
        if self.bases.get(&to_key).is_none_or(|s| !s.basis.is_warm()) {
            if let Some(src) = self.bases.get(&(from_tag, rows, vars)) {
                if src.basis.is_warm() {
                    let seeded = StoredBasis { basis: src.basis.clone(), last_used: self.solves };
                    self.bases.insert(to_key, seeded);
                }
            }
        }
    }

    /// Moves a stored basis to the re-labelled key of a grown problem —
    /// see [`Basis::remap_columns`].
    fn remap_entry(
        &mut self,
        tag: u8,
        rows: usize,
        old_vars: usize,
        new_vars: usize,
        map: &[usize],
    ) {
        if let Some(mut s) = self.bases.remove(&(tag, rows, old_vars)) {
            if s.basis.remap_columns(old_vars, new_vars, map) {
                s.last_used = self.solves;
                self.bases.insert((tag, rows, new_vars), s);
            }
        }
    }

    /// LP solves that actually restarted from a stored basis.
    pub fn warm_hits(&self) -> usize {
        self.warm_hits
    }

    /// Total LP solves routed through this context.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Drops all stored bases (e.g. after a topology change).
    pub fn clear(&mut self) {
        self.bases.clear();
    }
}

/// Tunables for the LP + growth loop.
#[derive(Clone, Debug)]
pub struct GrowthConfig {
    /// Fraction of every link's capacity reserved as headroom (§4's dial).
    pub headroom: f64,
    /// The paper's M1: weight of the `d_p/S_a` tie-break term.
    pub m1: f64,
    /// Paths added to an overloaded aggregate per round.
    pub growth_step: usize,
    /// Maximum growth rounds before conceding congestion is unavoidable.
    pub max_rounds: usize,
    /// Refinement rounds growing across saturated links for delay
    /// rebalancing (0 disables).
    pub refine_rounds: usize,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        GrowthConfig { headroom: 0.0, m1: 1e-3, growth_step: 2, max_rounds: 48, refine_rounds: 2 }
    }
}

/// Result of the grow-and-solve loop.
#[derive(Clone, Debug)]
pub struct GrowOutcome {
    /// The traffic placement (always produced; congested when `omax > 0`).
    pub placement: Placement,
    /// Final maximum overload: `max_l load_l / cap_l - 1`, clamped at 0.
    /// Zero means the traffic fits under the configured headroom.
    pub omax: f64,
    /// Total simplex pivots across all LP solves.
    pub lp_pivots: usize,
    /// Growth rounds executed.
    pub rounds: usize,
}

/// Internal: per-aggregate constants for the LP.
struct AggInfo {
    flows: f64,
    sp_delay: f64,
}

/// What the LP optimizes.
// The shared Min prefix is the point: all three are minimization modes.
#[allow(clippy::enum_variant_names)]
enum LpMode {
    /// Minimize the maximum overload `omax` (+ tiny spread term).
    MinOverload,
    /// Minimize the maximum utilization `U` (MinMax stage 1; may be < 1).
    MinUtilization,
    /// Minimize the Figure-12 delay objective, overload capped at `omax_cap`
    /// (0 = hard capacity constraints), utilization capped at `util_cap`
    /// (MinMax stage 2 passes its `U*`; others pass infinity).
    MinLatency { omax_cap: f64, util_cap: f64 },
}

struct LpOutcome {
    fractions: Vec<Vec<f64>>,
    /// `omax` or `U*` depending on mode.
    level: f64,
    pivots: usize,
    /// Links at the critical level (overloaded / at max utilization /
    /// saturated), for growth targeting.
    critical_links: Vec<LinkId>,
    /// Constraint rows of the solved LP (the warm-start context key).
    rows: usize,
}

impl LpMode {
    /// Context key tag: LPs of different modes never share a basis.
    fn tag(&self) -> u8 {
        match self {
            LpMode::MinOverload => 0,
            LpMode::MinUtilization => 1,
            LpMode::MinLatency { .. } => 2,
        }
    }
}

/// Builds and solves one LP over the given path sets, warm-starting from
/// (and refreshing) the context's basis for this mode and problem size.
///
/// `volumes[a]` is the (possibly inflated — LDR) demand of aggregate `a`;
/// `caps[l]` is the effective per-link capacity (masked; see module docs);
/// `cap_scale` scales every capacity (1 - headroom).
#[allow(clippy::too_many_arguments)] // one call site; a params struct would just rename the args
fn solve_lp(
    graph: &Graph,
    aggs: &[AggInfo],
    path_sets: &[Vec<Path>],
    volumes: &[f64],
    caps: &[f64],
    cap_scale: f64,
    m1: f64,
    mode: &LpMode,
    ctx: &mut SolveContext,
) -> Result<LpOutcome, LpError> {
    let nl = graph.link_count();
    // Fixed loads from single-path aggregates; variable index per (a, p).
    let mut fixed_load = vec![0.0; nl];
    let mut var_of: Vec<Vec<usize>> = Vec::with_capacity(aggs.len());
    let mut num_x = 0usize;
    for (a, paths) in path_sets.iter().enumerate() {
        assert!(!paths.is_empty(), "aggregate {a} has no candidate path");
        if paths.len() == 1 {
            for &l in paths[0].links() {
                fixed_load[l.idx()] += volumes[a];
            }
            var_of.push(Vec::new());
        } else {
            var_of.push((num_x..num_x + paths.len()).collect());
            num_x += paths.len();
        }
    }
    // Per-link potential load decides which links need rows.
    let mut link_used = vec![false; nl];
    for (l, &f) in fixed_load.iter().enumerate() {
        if f > 0.0 {
            link_used[l] = true;
        }
    }
    for paths in path_sets {
        if paths.len() > 1 {
            for p in paths {
                for &l in p.links() {
                    link_used[l.idx()] = true;
                }
            }
        }
    }
    let used_links: Vec<usize> = (0..nl).filter(|&l| link_used[l]).collect();
    let o_var_base = num_x;
    let num_o = used_links.len();
    // Aux variable: omax (MinOverload) or U (MinUtilization); MinLatency
    // keeps an omax variable only to report the level.
    let aux = o_var_base + num_o;
    let total_vars = aux + 1;

    let mut p = Problem::minimize(total_vars);

    // The deployment-cycle modes (MinOverload, MinLatency) pose their split
    // variables as *absolute traffic* `z_ap = B_a x_ap`, not fractions:
    // that keeps every constraint coefficient independent of the demands,
    // so the minute-to-minute LPs differ only in right-hand sides and
    // objective — exactly the change a warm restart absorbs with a few
    // dual pivots and a carried basis inverse (a coefficient change would
    // force an O(m³) refactorization instead). MinUtilization keeps the
    // fraction form: its `B_a/C_l` coefficients are O(1)-conditioned, it
    // is not on the per-minute hot path, and the two forms never share a
    // basis (different mode tags).
    let traffic_units = !matches!(mode, LpMode::MinUtilization);
    //
    // Capacity rows, scaled by 1/cap for conditioning:
    //   Σ (z_ap / C_l) - o_l <= cap_scale - fixed_l / C_l      (overload modes)
    //   Σ (B_a x_ap / C_l) - U <= -fixed_l / C_l               (MinUtilization)
    for (oi, &l) in used_links.iter().enumerate() {
        let cap = caps[l];
        assert!(
            cap > 0.0,
            "used link {l} has zero effective capacity (path crosses a downed link)"
        );
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for (a, paths) in path_sets.iter().enumerate() {
            if paths.len() > 1 {
                for (pi, path) in paths.iter().enumerate() {
                    if path.links().iter().any(|&pl| pl.idx() == l) {
                        let unit = if traffic_units { 1.0 } else { volumes[a] };
                        coeffs.push((var_of[a][pi], unit / cap));
                    }
                }
            }
        }
        match mode {
            LpMode::MinUtilization => {
                coeffs.push((aux, -1.0));
                p.add_row(Relation::Le, -fixed_load[l] / cap, &coeffs);
            }
            _ => {
                coeffs.push((o_var_base + oi, -1.0));
                p.add_row(Relation::Le, cap_scale - fixed_load[l] / cap, &coeffs);
            }
        }
    }
    // o_l <= omax rows (overload modes only).
    if !matches!(mode, LpMode::MinUtilization) {
        for oi in 0..num_o {
            p.add_row(Relation::Le, 0.0, &[(o_var_base + oi, 1.0), (aux, -1.0)]);
        }
    }
    // Σ_p z_ap = B_a (traffic units) or Σ_p x_ap = 1 per multi-path
    // aggregate.
    for (a, vars) in var_of.iter().enumerate() {
        if !vars.is_empty() {
            let coeffs: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
            p.add_row(Relation::Eq, if traffic_units { volumes[a] } else { 1.0 }, &coeffs);
        }
    }

    // Objective per mode.
    match mode {
        LpMode::MinOverload | LpMode::MinUtilization => {
            p.set_objective(aux, 1.0);
            if matches!(mode, LpMode::MinOverload) {
                for oi in 0..num_o {
                    p.set_objective(o_var_base + oi, 1e-6);
                }
            }
        }
        LpMode::MinLatency { omax_cap, util_cap } => {
            // Delay term, normalized by Σ n_a S_a so the spread weight has a
            // stable meaning across instances.
            let norm: f64 = aggs.iter().map(|a| a.flows * a.sp_delay).sum::<f64>().max(1e-9);
            for (a, paths) in path_sets.iter().enumerate() {
                if paths.len() > 1 {
                    for (pi, path) in paths.iter().enumerate() {
                        let w = aggs[a].flows
                            * path.delay_ms()
                            * (1.0 + m1 / aggs[a].sp_delay.max(1e-9));
                        // Per unit of traffic: z_ap carries B_a x_ap.
                        p.set_objective(var_of[a][pi], w / (norm * volumes[a].max(1e-12)));
                    }
                }
            }
            for oi in 0..num_o {
                p.set_objective(o_var_base + oi, 1e-6);
                p.set_upper_bound(o_var_base + oi, *omax_cap);
            }
            p.set_upper_bound(aux, *omax_cap);
            if util_cap.is_finite() {
                // Utilization cap rows: Σ (B_a/C_l) x + fixed/C <= util_cap.
                for &l in &used_links {
                    let cap = caps[l];
                    let mut coeffs: Vec<(usize, f64)> = Vec::new();
                    for (a, paths) in path_sets.iter().enumerate() {
                        if paths.len() > 1 {
                            for (pi, path) in paths.iter().enumerate() {
                                if path.links().iter().any(|&pl| pl.idx() == l) {
                                    coeffs.push((var_of[a][pi], 1.0 / cap));
                                }
                            }
                        }
                    }
                    if !coeffs.is_empty() || fixed_load[l] > 0.0 {
                        p.add_row(Relation::Le, util_cap - fixed_load[l] / cap, &coeffs);
                    }
                }
            }
        }
    }

    // Phase 2 shares phase 1's rows and columns; restart it from phase 1's
    // vertex when no previous phase-2 basis fits.
    if matches!(mode, LpMode::MinLatency { .. }) {
        ctx.seed_cross_mode(LpMode::MinOverload.tag(), mode.tag(), p.num_rows(), p.num_vars());
    }
    let basis = ctx.slot(mode.tag(), p.num_rows(), p.num_vars());
    let sol = p.solve_warm(basis)?;
    ctx.solves += 1;
    if sol.warm_started() {
        ctx.warm_hits += 1;
    }
    if telemetry::enabled() {
        telemetry::counter_add("pathgrow.lp_solves", 1);
        telemetry::counter_add(
            if sol.warm_started() { "pathgrow.lp_warm_hits" } else { "pathgrow.lp_cold" },
            1,
        );
        telemetry::observe("pathgrow.lp_pivots", sol.iterations() as f64);
    }
    static LP_DEBUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    if *LP_DEBUG.get_or_init(|| std::env::var_os("LOWLAT_LP_DEBUG").is_some()) {
        eprintln!(
            "    lp tag {} rows {} vars {}: {} pivots warm={}",
            mode.tag(),
            p.num_rows(),
            p.num_vars(),
            sol.iterations(),
            sol.warm_started()
        );
    }

    // Extract fractions (z_ap / B_a in traffic units) and the critical
    // link set.
    let fractions: Vec<Vec<f64>> = path_sets
        .iter()
        .enumerate()
        .map(|(a, paths)| {
            if paths.len() == 1 {
                vec![1.0]
            } else {
                let b = if traffic_units { volumes[a].max(1e-12) } else { 1.0 };
                normalize_fractions(var_of[a].iter().map(|&v| sol.value(v) / b).collect())
            }
        })
        .collect();

    let (level, critical_links) =
        critical_links_of(graph, &sol, mode, &used_links, o_var_base, aux);
    Ok(LpOutcome { fractions, level, pivots: sol.iterations(), critical_links, rows: p.num_rows() })
}

/// LP round-off can leave fraction sums at 1 ± 1e-8; renormalize exactly.
fn normalize_fractions(mut xs: Vec<f64>) -> Vec<f64> {
    for x in xs.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    let total: f64 = xs.iter().sum();
    debug_assert!((total - 1.0).abs() < 1e-4, "fraction sum {total}");
    if total > 0.0 {
        for x in xs.iter_mut() {
            *x /= total;
        }
    }
    xs
}

fn critical_links_of(
    graph: &Graph,
    sol: &Solution,
    mode: &LpMode,
    used_links: &[usize],
    o_var_base: usize,
    aux: usize,
) -> (f64, Vec<LinkId>) {
    let _ = graph;
    match mode {
        LpMode::MinUtilization => {
            let u = sol.value(aux);
            // Stage-1 growth targets: links whose capacity row is tight,
            // i.e. the ones pinning U. We approximate via the row slack by
            // recomputing below in the caller (needs loads); here we return
            // the level only.
            (u, Vec::new())
        }
        _ => {
            let omax = sol.value(aux);
            let mut crit = Vec::new();
            if omax > 1e-7 {
                for (oi, &l) in used_links.iter().enumerate() {
                    if sol.value(o_var_base + oi) >= omax - 1e-7 {
                        crit.push(LinkId(l as u32));
                    }
                }
            }
            (omax, crit)
        }
    }
}

/// Builds per-aggregate constants from a traffic matrix. `weights`
/// multiplies flow counts (the §8 traffic-classes hook: latency-sensitive
/// aggregates weigh more in the delay objective).
fn agg_infos(source: &dyn PathSource, tm: &TrafficMatrix, weights: Option<&[f64]>) -> Vec<AggInfo> {
    tm.aggregates()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let sp = source.shortest(a.src, a.dst).expect("connected topology").delay_ms();
            let w = weights.map_or(1.0, |ws| ws[i]);
            assert!(w.is_finite() && w > 0.0, "bad class weight {w}");
            AggInfo { flows: a.flow_count as f64 * w, sp_delay: sp }
        })
        .collect()
}

fn to_placement(path_sets: &[Vec<Path>], fractions: &[Vec<f64>]) -> Placement {
    Placement::new(
        path_sets
            .iter()
            .zip(fractions)
            .map(|(paths, xs)| AggregatePlacement {
                splits: paths.iter().cloned().zip(xs.iter().cloned()).collect(),
            })
            .collect(),
    )
}

/// Link loads implied by fractional path sets (for growth targeting).
fn loads_of(
    graph: &Graph,
    path_sets: &[Vec<Path>],
    fractions: &[Vec<f64>],
    volumes: &[f64],
) -> Vec<f64> {
    let mut loads = vec![0.0; graph.link_count()];
    for (a, paths) in path_sets.iter().enumerate() {
        for (pi, path) in paths.iter().enumerate() {
            let v = volumes[a] * fractions[a][pi];
            if v > 0.0 {
                for &l in path.links() {
                    loads[l.idx()] += v;
                }
            }
        }
    }
    loads
}

/// Per-pair pricing state that persists across growth rounds of one solve.
///
/// `exhausted[a]`: once the source returns fewer columns than asked — or
/// its [`PathSource::shortest_delay_bound`] is infinite, meaning no further
/// column can exist at all — the pair is never priced again this solve.
///
/// `bounds[a]` memoizes the pair's delay bound (NaN = not yet asked): the
/// failure mask is fixed for the duration of a solve, so the bound is
/// solve-constant and each pair pays the source query at most once instead
/// of once per round.
struct PricingState {
    exhausted: Vec<bool>,
    bounds: Vec<f64>,
}

impl PricingState {
    fn new(pairs: usize) -> Self {
        PricingState { exhausted: vec![false; pairs], bounds: vec![f64::NAN; pairs] }
    }
}

/// The column-generation pricing step: grows the path sets of every
/// aggregate whose current placement crosses one of `targets`, asking the
/// source only for those pairs' next-cheapest columns. Returns true if any
/// set actually grew. `state` carries the exhausted/bound memos between
/// rounds (see [`PricingState`]).
fn grow_crossing(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    path_sets: &mut [Vec<Path>],
    fractions: &[Vec<f64>],
    targets: &[LinkId],
    step: usize,
    state: &mut PricingState,
) -> bool {
    let mut target_mask = vec![false; source.graph().link_count()];
    for &l in targets {
        target_mask[l.idx()] = true;
    }
    let mut grew = false;
    let mut columns_grown = 0usize;
    let mut pricing_skips = 0usize;
    for (a, agg) in tm.aggregates().iter().enumerate() {
        if state.exhausted[a] {
            continue;
        }
        let crosses = path_sets[a].iter().enumerate().any(|(pi, p)| {
            fractions[a].get(pi).copied().unwrap_or(0.0) > 1e-9
                && p.links().iter().any(|&l| target_mask[l.idx()])
        });
        if !crosses {
            continue;
        }
        if state.bounds[a].is_nan() {
            state.bounds[a] = source.shortest_delay_bound(agg.src, agg.dst);
        }
        if state.bounds[a].is_infinite() {
            // The source cannot price any column for this pair (for the
            // partitioned engine: no landmark connects it) — whatever the
            // initial query produced is all there will ever be.
            state.exhausted[a] = true;
            pricing_skips += 1;
            continue;
        }
        let want = path_sets[a].len() + step;
        let got = source.grow(agg.src, agg.dst, want);
        if got.len() < want {
            state.exhausted[a] = true;
        }
        if got.len() > path_sets[a].len() {
            columns_grown += got.len() - path_sets[a].len();
            path_sets[a] = got;
            grew = true;
        }
    }
    if columns_grown > 0 {
        telemetry::counter_add("pathgrow.columns_grown", columns_grown as u64);
    }
    if pricing_skips > 0 {
        telemetry::counter_add("pathgrow.pricing_skips", pricing_skips as u64);
    }
    grew
}

/// After a growth step that only *appended* paths — no single→multi
/// transitions, no newly used links — the grown LP keeps the exact rows of
/// the one just solved, so its stored basis can be re-labelled to the new
/// column numbering and the next solve restarts from the placement it just
/// computed instead of running cold. Silently does nothing when the growth
/// changed the row structure.
fn remap_basis_after_growth(
    ctx: &mut SolveContext,
    tag: u8,
    rows: usize,
    graph: &Graph,
    old_lens: &[usize],
    path_sets: &[Vec<Path>],
) {
    // A single-path aggregate turning multi-path gains a Σz = B row.
    if old_lens.iter().zip(path_sets).any(|(&o, s)| o == 1 && s.len() > 1) {
        return;
    }
    // The old solve's used-link set (single-path fixed loads count too).
    let mut used = vec![false; graph.link_count()];
    for (a, s) in path_sets.iter().enumerate() {
        for p in &s[..old_lens[a]] {
            for &l in p.links() {
                used[l.idx()] = true;
            }
        }
    }
    // New paths must not introduce new capacity rows.
    for (a, s) in path_sets.iter().enumerate() {
        if s[old_lens[a]..].iter().any(|p| p.links().iter().any(|&l| !used[l.idx()])) {
            return;
        }
    }
    let num_o = used.iter().filter(|&&u| u).count();
    // Structural layout (mirrors solve_lp): per-aggregate z blocks in
    // order, then one o per used link, then the aux variable.
    let mut new_base = vec![0usize; path_sets.len()];
    let mut num_x_new = 0usize;
    for (a, s) in path_sets.iter().enumerate() {
        if s.len() > 1 {
            new_base[a] = num_x_new;
            num_x_new += s.len();
        }
    }
    let mut map = Vec::new();
    for (a, &old_len) in old_lens.iter().enumerate() {
        if old_len > 1 {
            map.extend((0..old_len).map(|pi| new_base[a] + pi));
        }
    }
    for oi in 0..=num_o {
        map.push(num_x_new + oi); // o vars and, last, the aux variable
    }
    let old_structural = map.len();
    let new_structural = num_x_new + num_o + 1;
    ctx.remap_entry(tag, rows, old_structural, new_structural, &map);
}

/// What a [`GrowRequest`] optimizes.
#[derive(Clone, Copy, Debug)]
enum GrowObjective {
    /// Figure 13's latency-optimal loop: phase 1 drives overload to zero,
    /// phase 2 minimizes delay at that overload level, refinement rounds
    /// rebalance across saturated links.
    LatencyOptimal,
    /// MinMax: minimize the maximum utilization, tie-broken by delay.
    /// `k_limit` caps every aggregate's path set (TeXCP's k = 10); `None`
    /// grows path sets until `U*` stops improving.
    MinMax { k_limit: Option<usize> },
}

/// Builder for one grow-and-solve run — the single entry point the old
/// `solve_latency_optimal*` / `solve_minmax*` family collapsed into.
///
/// ```ignore
/// let out = GrowRequest::new(&cache, &tm)     // any &dyn PathSource
///     .volumes(&inflated)                      // optional (LDR headroom)
///     .class_weights(&weights)                 // optional (§8 classes)
///     .config(&growth_config)                  // optional
///     .solve_with(&mut ctx)?;                  // or .solve() for cold
/// ```
///
/// Defaults: latency-optimal objective, volumes from the traffic matrix,
/// unit class weights, [`GrowthConfig::default`], a fresh (cold)
/// [`SolveContext`]. `.minmax(k_limit)` switches the objective.
pub struct GrowRequest<'a> {
    source: &'a dyn PathSource,
    tm: &'a TrafficMatrix,
    volumes: Option<&'a [f64]>,
    class_weights: Option<&'a [f64]>,
    config: GrowthConfig,
    objective: GrowObjective,
}

impl<'a> GrowRequest<'a> {
    /// A latency-optimal request with all defaults; chain setters to adjust.
    pub fn new(source: &'a dyn PathSource, tm: &'a TrafficMatrix) -> Self {
        GrowRequest {
            source,
            tm,
            volumes: None,
            class_weights: None,
            config: GrowthConfig::default(),
            objective: GrowObjective::LatencyOptimal,
        }
    }

    /// Overrides the per-aggregate volumes (LDR inflates them to buy
    /// per-aggregate headroom). Must match the matrix's aggregate count.
    pub fn volumes(mut self, volumes: &'a [f64]) -> Self {
        self.volumes = Some(volumes);
        self
    }

    /// Per-aggregate objective weights — the §8 differentiated-traffic-
    /// classes extension. A weight of `w` makes an aggregate's delay count
    /// `w` times as much, so the LP prefers giving it the low-latency paths
    /// when someone must detour.
    pub fn class_weights(mut self, weights: &'a [f64]) -> Self {
        self.class_weights = Some(weights);
        self
    }

    /// Growth-loop tunables (headroom, growth step, round caps).
    pub fn config(mut self, config: &GrowthConfig) -> Self {
        self.config = config.clone();
        self
    }

    /// Switches to the MinMax objective (§3 "MinMax based routing").
    pub fn minmax(mut self, k_limit: Option<usize>) -> Self {
        self.objective = GrowObjective::MinMax { k_limit };
        self
    }

    /// Solves cold (a fresh context every call).
    pub fn solve(self) -> Result<GrowOutcome, LpError> {
        self.solve_with(&mut SolveContext::new())
    }

    /// Solves warm-starting every LP from `ctx` — the deployment-cycle
    /// entry point: keep one context per scheme and successive calls
    /// (minutes) restart from each other's bases.
    pub fn solve_with(self, ctx: &mut SolveContext) -> Result<GrowOutcome, LpError> {
        let matrix_volumes: Vec<f64>;
        let volumes: &[f64] = match self.volumes {
            Some(v) => v,
            None => {
                matrix_volumes = self.tm.aggregates().iter().map(|a| a.volume_mbps).collect();
                &matrix_volumes
            }
        };
        assert_eq!(volumes.len(), self.tm.aggregates().len());
        if let Some(w) = self.class_weights {
            assert_eq!(w.len(), self.tm.aggregates().len());
        }
        if self.tm.is_empty() {
            return Ok(GrowOutcome {
                placement: Placement::new(Vec::new()),
                omax: 0.0,
                lp_pivots: 0,
                rounds: 0,
            });
        }
        match self.objective {
            GrowObjective::LatencyOptimal => run_latency_optimal(
                self.source,
                self.tm,
                volumes,
                self.class_weights,
                &self.config,
                ctx,
            ),
            GrowObjective::MinMax { k_limit } => run_minmax(
                self.source,
                self.tm,
                volumes,
                self.class_weights,
                k_limit,
                &self.config,
                ctx,
            ),
        }
    }
}

/// The latency-optimal solve: Figure 13's loop around Figure 12's LP, with
/// the pricing step asking `source` only for the columns of overloaded /
/// saturated pairs.
fn run_latency_optimal(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    volumes: &[f64],
    class_weights: Option<&[f64]>,
    config: &GrowthConfig,
    ctx: &mut SolveContext,
) -> Result<GrowOutcome, LpError> {
    assert!((0.0..1.0).contains(&config.headroom));
    let graph = source.graph();
    let aggs = agg_infos(source, tm, class_weights);
    let caps = source.effective_capacities();
    let cap_scale = 1.0 - config.headroom;
    let mut path_sets: Vec<Vec<Path>> =
        tm.aggregates().iter().map(|a| source.paths(a.src, a.dst, 1)).collect();
    let mut pricing = PricingState::new(path_sets.len());

    let mut pivots = 0usize;
    let mut rounds = 0usize;
    let mut omax;
    // Phase 1: drive overload to zero, growing across overloaded links.
    let phase1 = telemetry::span("pathgrow.phase1", "pathgrow");
    loop {
        rounds += 1;
        let out = solve_lp(
            graph,
            &aggs,
            &path_sets,
            volumes,
            &caps,
            cap_scale,
            config.m1,
            &LpMode::MinOverload,
            ctx,
        )?;
        pivots += out.pivots;
        omax = out.level;
        if omax <= 1e-7 || rounds >= config.max_rounds {
            break;
        }
        if !grow_crossing(
            source,
            tm,
            &mut path_sets,
            &out.fractions,
            &out.critical_links,
            config.growth_step,
            &mut pricing,
        ) {
            break; // all alternatives exhausted: congestion unavoidable
        }
    }
    drop(phase1);

    // Phase 2: minimize delay subject to the achieved overload level (with
    // slack covering LP tolerance so phase 1's solution stays feasible).
    let phase2 = telemetry::span("pathgrow.phase2", "pathgrow");
    let mode = LpMode::MinLatency { omax_cap: omax * (1.0 + 1e-6) + 1e-7, util_cap: f64::INFINITY };
    let mut out =
        solve_lp(graph, &aggs, &path_sets, volumes, &caps, cap_scale, config.m1, &mode, ctx)?;
    pivots += out.pivots;
    drop(phase2);

    // Refinement: give the delay objective alternatives across *saturated*
    // links (Figure-6 rebalancing), as long as it keeps helping. Saturation
    // is judged against effective capacity, so a browned-out link at its
    // degraded limit is a growth target even when its raw-capacity slack
    // looks comfortable.
    for _ in 0..config.refine_rounds {
        let _refine = telemetry::span("pathgrow.refine_round", "pathgrow");
        let loads = loads_of(graph, &path_sets, &out.fractions, volumes);
        let saturated: Vec<LinkId> = graph
            .link_ids()
            .filter(|&l| {
                caps[l.idx()] > 0.0 && loads[l.idx()] >= caps[l.idx()] * cap_scale * (1.0 - 1e-6)
            })
            .collect();
        if saturated.is_empty() {
            break;
        }
        let old_lens: Vec<usize> = path_sets.iter().map(|s| s.len()).collect();
        if !grow_crossing(
            source,
            tm,
            &mut path_sets,
            &out.fractions,
            &saturated,
            config.growth_step,
            &mut pricing,
        ) {
            break;
        }
        remap_basis_after_growth(ctx, mode.tag(), out.rows, graph, &old_lens, &path_sets);
        let next =
            solve_lp(graph, &aggs, &path_sets, volumes, &caps, cap_scale, config.m1, &mode, ctx)?;
        pivots += next.pivots;
        out = next;
        rounds += 1;
    }

    Ok(GrowOutcome {
        placement: to_placement(&path_sets, &out.fractions),
        omax,
        lp_pivots: pivots,
        rounds,
    })
}

/// MinMax: minimize the maximum link utilization, tie-broken by the delay
/// objective (§3 "MinMax based routing").
fn run_minmax(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    volumes: &[f64],
    class_weights: Option<&[f64]>,
    k_limit: Option<usize>,
    config: &GrowthConfig,
    ctx: &mut SolveContext,
) -> Result<GrowOutcome, LpError> {
    let graph = source.graph();
    let aggs = agg_infos(source, tm, class_weights);
    let caps = source.effective_capacities();
    let seed_k = k_limit.unwrap_or(1);
    let mut path_sets: Vec<Vec<Path>> =
        tm.aggregates().iter().map(|a| source.paths(a.src, a.dst, seed_k)).collect();
    let mut pricing = PricingState::new(path_sets.len());

    let mut pivots = 0usize;
    let mut rounds = 0usize;
    // Stage 1: minimize U; for pure MinMax, grow across the links pinning
    // U until U stops improving.
    let mut best_u = f64::INFINITY;
    let stage1 = telemetry::span("pathgrow.minmax_stage1", "pathgrow");
    loop {
        rounds += 1;
        let out = solve_lp(
            graph,
            &aggs,
            &path_sets,
            volumes,
            &caps,
            1.0,
            config.m1,
            &LpMode::MinUtilization,
            ctx,
        )?;
        pivots += out.pivots;
        let improved = out.level < best_u * (1.0 - 1e-4);
        best_u = best_u.min(out.level);
        if k_limit.is_some() || rounds >= config.max_rounds || (rounds > 1 && !improved) {
            break;
        }
        // The links pinning U, judged against effective (masked) capacity.
        let loads = loads_of(graph, &path_sets, &out.fractions, volumes);
        let pinning: Vec<LinkId> = graph
            .link_ids()
            .filter(|&l| {
                caps[l.idx()] > 0.0 && loads[l.idx()] >= caps[l.idx()] * out.level * (1.0 - 1e-6)
            })
            .collect();
        if !grow_crossing(
            source,
            tm,
            &mut path_sets,
            &out.fractions,
            &pinning,
            config.growth_step,
            &mut pricing,
        ) {
            break;
        }
    }
    drop(stage1);

    // Stage 2: minimize delay subject to utilization <= U*. When the
    // traffic genuinely exceeds capacity (U* > 1) the overload variables
    // must be allowed to absorb the excess.
    let _stage2 = telemetry::span("pathgrow.minmax_stage2", "pathgrow");
    let mode = LpMode::MinLatency {
        omax_cap: (best_u - 1.0).max(0.0) * (1.0 + 1e-6) + 1e-7,
        util_cap: best_u * (1.0 + 1e-5) + 1e-7,
    };
    let out = solve_lp(graph, &aggs, &path_sets, volumes, &caps, 1.0, config.m1, &mode, ctx)?;
    pivots += out.pivots;
    let omax = (best_u - 1.0).max(0.0);
    Ok(GrowOutcome {
        placement: to_placement(&path_sets, &out.fractions),
        omax,
        lp_pivots: pivots,
        rounds,
    })
}

/// The latency-optimal solve with all defaults.
#[deprecated(note = "use GrowRequest::new(source, tm).volumes(..).config(..).solve()")]
pub fn solve_latency_optimal(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    volumes: &[f64],
    config: &GrowthConfig,
) -> Result<GrowOutcome, LpError> {
    GrowRequest::new(source, tm).volumes(volumes).config(config).solve()
}

/// The latency-optimal solve with a warm-start context.
#[deprecated(note = "use GrowRequest::new(source, tm).volumes(..).config(..).solve_with(ctx)")]
pub fn solve_latency_optimal_ctx(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    volumes: &[f64],
    config: &GrowthConfig,
    ctx: &mut SolveContext,
) -> Result<GrowOutcome, LpError> {
    GrowRequest::new(source, tm).volumes(volumes).config(config).solve_with(ctx)
}

/// The latency-optimal solve with per-aggregate class weights.
#[deprecated(note = "use GrowRequest::new(source, tm).class_weights(..).solve()")]
pub fn solve_latency_optimal_weighted(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    volumes: &[f64],
    class_weights: Option<&[f64]>,
    config: &GrowthConfig,
) -> Result<GrowOutcome, LpError> {
    let mut req = GrowRequest::new(source, tm).volumes(volumes).config(config);
    if let Some(w) = class_weights {
        req = req.class_weights(w);
    }
    req.solve()
}

/// The full-generality latency-optimal solve.
#[deprecated(note = "use GrowRequest::new(source, tm).class_weights(..).solve_with(ctx)")]
pub fn solve_latency_optimal_weighted_ctx(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    volumes: &[f64],
    class_weights: Option<&[f64]>,
    config: &GrowthConfig,
    ctx: &mut SolveContext,
) -> Result<GrowOutcome, LpError> {
    let mut req = GrowRequest::new(source, tm).volumes(volumes).config(config);
    if let Some(w) = class_weights {
        req = req.class_weights(w);
    }
    req.solve_with(ctx)
}

/// MinMax with all defaults.
#[deprecated(note = "use GrowRequest::new(source, tm).minmax(k_limit).solve()")]
pub fn solve_minmax(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    k_limit: Option<usize>,
    config: &GrowthConfig,
) -> Result<GrowOutcome, LpError> {
    GrowRequest::new(source, tm).minmax(k_limit).config(config).solve()
}

/// MinMax with a warm-start context.
#[deprecated(note = "use GrowRequest::new(source, tm).minmax(k_limit).solve_with(ctx)")]
pub fn solve_minmax_ctx(
    source: &dyn PathSource,
    tm: &TrafficMatrix,
    k_limit: Option<usize>,
    config: &GrowthConfig,
    ctx: &mut SolveContext,
) -> Result<GrowOutcome, LpError> {
    GrowRequest::new(source, tm).minmax(k_limit).config(config).solve_with(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowlat_netgraph::NodeId;
    use lowlat_tmgen::Aggregate;
    use lowlat_topology::{GeoPoint, Topology, TopologyBuilder};

    /// Two-path network: fast path 2 ms (cap 100), slow path 6 ms (cap 100).
    fn two_path() -> Topology {
        let mut b = TopologyBuilder::new("two");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect_with_delay(a, m, 1.0, 100.0);
        b.connect_with_delay(m, z, 1.0, 100.0);
        b.connect_with_delay(a, n, 3.0, 100.0);
        b.connect_with_delay(n, z, 3.0, 100.0);
        b.build()
    }

    fn tm_one(volume: f64) -> TrafficMatrix {
        TrafficMatrix::new(vec![Aggregate {
            src: NodeId(0),
            dst: NodeId(3),
            volume_mbps: volume,
            flow_count: 10,
        }])
    }

    #[test]
    fn fits_on_shortest_when_light() {
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(50.0);
        let out = GrowRequest::new(&cache, &tm).volumes(&[50.0]).solve().unwrap();
        assert_eq!(out.omax, 0.0);
        let pl = &out.placement.per_aggregate()[0];
        assert_eq!(pl.splits.len(), 1, "no growth needed");
        assert!((pl.mean_delay_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn splits_when_shortest_overflows() {
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(150.0);
        let out = GrowRequest::new(&cache, &tm).volumes(&[150.0]).solve().unwrap();
        assert!(out.omax <= 1e-7, "150 fits across both paths");
        let pl = out.placement.aggregate(0);
        // 100 on the fast path, 50 on the slow one.
        let mean = pl.mean_delay_ms();
        let expect = (100.0 / 150.0) * 2.0 + (50.0 / 150.0) * 6.0;
        assert!((mean - expect).abs() < 1e-6, "mean {mean} vs {expect}");
        assert!(out.rounds >= 2, "needed at least one growth round");
    }

    #[test]
    fn reports_overload_when_truly_infeasible() {
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(250.0);
        let out = GrowRequest::new(&cache, &tm).volumes(&[250.0]).solve().unwrap();
        assert!(out.omax > 0.2, "250 over 200 total: omax ~ 0.25, got {}", out.omax);
        // Placement still produced and structurally valid.
        assert!(out.placement.validate(topo.graph(), &tm).is_ok());
    }

    #[test]
    fn headroom_shrinks_effective_capacity() {
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(150.0);
        let cfg = GrowthConfig { headroom: 0.4, ..Default::default() };
        // Effective capacity 60 per link: 150 > 120 -> overload.
        let out = GrowRequest::new(&cache, &tm).volumes(&[150.0]).config(&cfg).solve().unwrap();
        assert!(out.omax > 0.1);
    }

    #[test]
    fn figure6_rebalancing() {
        // Two aggregates share a bottleneck on their shortest paths; the
        // cheap-detour aggregate should move, the expensive-detour one stay.
        let mut b = TopologyBuilder::new("fig6");
        let s1 = b.add_pop("S1", GeoPoint::new(40.0, -100.0));
        let s2 = b.add_pop("S2", GeoPoint::new(42.0, -100.0));
        let j1 = b.add_pop("J1", GeoPoint::new(41.0, -99.0));
        let j2 = b.add_pop("J2", GeoPoint::new(41.0, -96.0));
        let t1 = b.add_pop("T1", GeoPoint::new(40.0, -95.0));
        let t2 = b.add_pop("T2", GeoPoint::new(42.0, -95.0));
        // Shared bottleneck J1-J2.
        b.connect_with_delay(s1, j1, 1.0, 200.0);
        b.connect_with_delay(s2, j1, 1.0, 200.0);
        b.connect_with_delay(j1, j2, 1.0, 100.0);
        b.connect_with_delay(j2, t1, 1.0, 200.0);
        b.connect_with_delay(j2, t2, 1.0, 200.0);
        // Red detour (cheap): S1 -> T1 direct at 4 ms (stretch 4/3).
        b.connect_with_delay(s1, t1, 4.0, 200.0);
        // Blue detour (expensive): S2 -> T2 direct at 30 ms (stretch 10).
        b.connect_with_delay(s2, t2, 30.0, 200.0);
        let topo = b.build();
        let cache = PathCache::new(topo.graph());
        let tm = TrafficMatrix::new(vec![
            Aggregate { src: s1, dst: t1, volume_mbps: 80.0, flow_count: 16 },
            Aggregate { src: s2, dst: t2, volume_mbps: 80.0, flow_count: 16 },
        ]);
        let vols: Vec<f64> = tm.aggregates().iter().map(|a| a.volume_mbps).collect();
        let out = GrowRequest::new(&cache, &tm).volumes(&vols).solve().unwrap();
        assert!(out.omax <= 1e-7, "fits: 100 through bottleneck + 60 detoured");
        // The optimum detours 60 of red (cost 1 ms extra per unit) and keeps
        // blue on the bottleneck (its detour costs 27 ms extra per unit).
        let blue = out.placement.aggregate(1);
        assert!(
            (blue.mean_delay_ms() - 3.0).abs() < 1e-3,
            "blue must stay on its shortest path, delay {}",
            blue.mean_delay_ms()
        );
        let red = out.placement.aggregate(0);
        assert!(red.mean_delay_ms() > 3.0 + 1e-6, "red takes the cheap detour");
    }

    #[test]
    fn minmax_spreads_and_tiebreaks_latency() {
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(100.0);
        let out = GrowRequest::new(&cache, &tm).minmax(None).solve().unwrap();
        // MinMax halves utilization by splitting 50/50 even though latency
        // suffers — exactly the §3 critique.
        let pl = out.placement.aggregate(0);
        let mean = pl.mean_delay_ms();
        // Tolerance covers the deliberate slack on the U* cap.
        assert!((mean - 4.0).abs() < 1e-3, "50/50 split means 4 ms, got {mean}");
    }

    #[test]
    fn minmax_k1_is_shortest_path() {
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(100.0);
        let out = GrowRequest::new(&cache, &tm).minmax(Some(1)).solve().unwrap();
        let pl = out.placement.aggregate(0);
        assert!((pl.mean_delay_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solve_context_warm_starts_successive_minutes() {
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(150.0);
        let mut ctx = SolveContext::new();
        let cfg = GrowthConfig::default();
        // Minute 0 seeds the context (phase 2 may already restart from
        // phase 1's basis within the call).
        let first = GrowRequest::new(&cache, &tm)
            .volumes(&[150.0])
            .config(&cfg)
            .solve_with(&mut ctx)
            .unwrap();
        let solves_minute0 = ctx.solves();
        let hits_minute0 = ctx.warm_hits();
        // Minutes 1..: slightly drifted demand, same growth trajectory.
        for (minute, vol) in [152.0, 149.0, 155.0].into_iter().enumerate() {
            let warm = GrowRequest::new(&cache, &tm)
                .volumes(&[vol])
                .config(&cfg)
                .solve_with(&mut ctx)
                .unwrap();
            let cold = GrowRequest::new(&cache, &tm).volumes(&[vol]).config(&cfg).solve().unwrap();
            assert!(
                (warm.placement.aggregate(0).mean_delay_ms()
                    - cold.placement.aggregate(0).mean_delay_ms())
                .abs()
                    < 1e-6,
                "minute {minute}: warm and cold placements must agree"
            );
            assert!((warm.omax - cold.omax).abs() < 1e-9);
        }
        assert!(
            ctx.warm_hits() - hits_minute0 >= ctx.solves() - solves_minute0 - 1,
            "successive minutes must restart warm: {} hits over {} post-seed solves",
            ctx.warm_hits() - hits_minute0,
            ctx.solves() - solves_minute0
        );
        let _ = first;
    }

    /// `two_path` with each cable's capacity pre-scaled by its factor — the
    /// physically rebuilt counterpart of a degradation-only mask.
    fn two_path_scaled(factors: [f64; 4]) -> Topology {
        let mut b = TopologyBuilder::new("two-scaled");
        let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
        let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
        let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
        let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
        b.connect_with_delay(a, m, 1.0, 100.0 * factors[0]);
        b.connect_with_delay(m, z, 1.0, 100.0 * factors[1]);
        b.connect_with_delay(a, n, 3.0, 100.0 * factors[2]);
        b.connect_with_delay(n, z, 3.0, 100.0 * factors[3]);
        b.build()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// A degradation-only mask must constrain the LP exactly like a
        /// graph whose capacities are physically scaled down: same overload,
        /// same mean delay. This pins the masked capacity-provider path to
        /// the rebuilt-graph oracle.
        #[test]
        fn masked_lp_matches_physically_rebuilt_graph(
            (f0, f1, f2, f3) in (0.1f64..0.95, 0.1f64..0.95, 0.1f64..0.95, 0.1f64..0.95),
            volume in 20.0f64..250.0,
        ) {
            use proptest::prelude::prop_assert;
            let factors = [f0, f1, f2, f3];
            let topo = two_path();
            let cache = PathCache::new(topo.graph());
            let mut mask = lowlat_netgraph::FailureMask::new();
            for (c, &f) in topo.cables().iter().zip(&factors) {
                mask.degrade_cable(topo.graph(), *c, f);
            }
            let stats = cache.apply_failure(&mask);
            prop_assert!(stats.repaired_pairs == 0, "degradation-only repair is free");
            let tm = tm_one(volume);
            let cfg = GrowthConfig::default();
            let masked = GrowRequest::new(&cache, &tm).volumes(&[volume]).config(&cfg).solve().unwrap();

            let rebuilt = two_path_scaled(factors);
            let oracle_cache = PathCache::new(rebuilt.graph());
            let oracle = GrowRequest::new(&oracle_cache, &tm).volumes(&[volume]).config(&cfg).solve().unwrap();

            prop_assert!(
                (masked.omax - oracle.omax).abs() < 1e-6,
                "omax: masked {} vs rebuilt {}", masked.omax, oracle.omax
            );
            let (md, od) = (
                masked.placement.aggregate(0).mean_delay_ms(),
                oracle.placement.aggregate(0).mean_delay_ms(),
            );
            prop_assert!((md - od).abs() < 1e-5, "mean delay: masked {md} vs rebuilt {od}");
        }
    }

    #[test]
    fn latopt_beats_minmax_on_latency() {
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(100.0);
        let lat = GrowRequest::new(&cache, &tm).volumes(&[100.0]).solve().unwrap();
        let mm = GrowRequest::new(&cache, &tm).minmax(None).solve().unwrap();
        assert!(
            lat.placement.aggregate(0).mean_delay_ms()
                < mm.placement.aggregate(0).mean_delay_ms() - 1e-6
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_grow_request() {
        // The legacy solve_* entry points are thin shims over GrowRequest:
        // identical placements, identical overload.
        let topo = two_path();
        let cache = PathCache::new(topo.graph());
        let tm = tm_one(150.0);
        let cfg = GrowthConfig::default();
        let builder = GrowRequest::new(&cache, &tm).volumes(&[150.0]).config(&cfg).solve().unwrap();
        let wrapper = solve_latency_optimal(&cache, &tm, &[150.0], &cfg).unwrap();
        assert_eq!(
            builder.placement.aggregate(0).mean_delay_ms(),
            wrapper.placement.aggregate(0).mean_delay_ms()
        );
        assert_eq!(builder.omax, wrapper.omax);
        let mut ctx = SolveContext::new();
        let wrapper_ctx = solve_latency_optimal_ctx(&cache, &tm, &[150.0], &cfg, &mut ctx).unwrap();
        assert_eq!(builder.omax, wrapper_ctx.omax);
        let weighted =
            solve_latency_optimal_weighted(&cache, &tm, &[150.0], Some(&[2.0]), &cfg).unwrap();
        let weighted_builder = GrowRequest::new(&cache, &tm)
            .volumes(&[150.0])
            .class_weights(&[2.0])
            .config(&cfg)
            .solve()
            .unwrap();
        assert_eq!(
            weighted.placement.aggregate(0).mean_delay_ms(),
            weighted_builder.placement.aggregate(0).mean_delay_ms()
        );
        let mm_builder = GrowRequest::new(&cache, &tm).minmax(Some(1)).solve().unwrap();
        let mm_wrapper = solve_minmax(&cache, &tm, Some(1), &cfg).unwrap();
        assert_eq!(
            mm_builder.placement.aggregate(0).mean_delay_ms(),
            mm_wrapper.placement.aggregate(0).mean_delay_ms()
        );
    }
}
