//! Property tests pinning the hierarchical partitioned engine against the
//! flat machinery it approximates.
//!
//! On small random graphs the engine must (a) agree with flat Dijkstra on
//! *reachability* — the exact-fallback guarantee, (b) never claim a path
//! better than flat Yen's best — stitching is approximate from above, and
//! (c) keep its best answer within the landmark stitching bound
//! `min_ℓ (d(s,ℓ) + d(ℓ,d))` whenever that bound is finite. Every returned
//! path must also be a valid loopless walk, best-first and duplicate-free.

use proptest::prelude::*;

use lowlat_core::{EngineConfig, PartitionedPathEngine};
use lowlat_netgraph::{shortest_path, Graph, GraphBuilder, HierarchyConfig, KspGenerator, NodeId};

/// A hierarchy small enough that 10-node graphs still split into several
/// leaves, so cross-leaf stitching actually exercises.
fn small_config() -> EngineConfig {
    EngineConfig {
        hierarchy: HierarchyConfig { max_depth: 2, max_leaf: 4, branching: 2 },
        landmarks: 3,
    }
}

/// A random strongly-connected graph: a duplex ring plus random duplex
/// chords (same shape the netgraph substrate proptests use).
fn arb_connected(max_nodes: usize, max_extra: usize) -> impl Strategy<Value = Graph> {
    (
        4..=max_nodes,
        proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 1u32..1000, 1u32..1000),
            0..max_extra,
        ),
    )
        .prop_map(|(n, extras)| {
            let mut b = GraphBuilder::new(n);
            for i in 0..n {
                let j = (i + 1) % n;
                b.add_duplex(NodeId(i as u32), NodeId(j as u32), 1.0 + (i as f64), 100.0);
            }
            for (x, y, d, c) in extras {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v {
                    b.add_duplex(NodeId(u as u32), NodeId(v as u32), d as f64 / 10.0, c as f64);
                }
            }
            b.build()
        })
}

/// A possibly-disconnected graph: random duplex links only, no ring, so
/// isolated nodes and multiple components occur and reachability parity is
/// tested on both sides.
fn arb_sparse(max_nodes: usize, max_links: usize) -> impl Strategy<Value = Graph> {
    (
        4..=max_nodes,
        proptest::collection::vec(
            (any::<u32>(), any::<u32>(), 1u32..1000, 1u32..1000),
            1..max_links,
        ),
    )
        .prop_map(|(n, links)| {
            let mut b = GraphBuilder::new(n);
            for (x, y, d, c) in links {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v {
                    b.add_duplex(NodeId(u as u32), NodeId(v as u32), d as f64 / 10.0, c as f64);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_reachability_matches_flat_dijkstra(g in arb_sparse(12, 14)) {
        // The exact-fallback guarantee: a pair is answered by the engine
        // iff flat Dijkstra connects it — even when every landmark sits on
        // the wrong side of a cut or a leaf overflows across components.
        let eng = PartitionedPathEngine::build(&g, &small_config());
        for s in g.nodes() {
            for d in g.nodes() {
                if s == d {
                    continue;
                }
                let flat = shortest_path(&g, s, d, None, None);
                let got = eng.paths(s, d, 3);
                prop_assert_eq!(
                    flat.is_some(),
                    !got.is_empty(),
                    "{:?}->{:?}: flat {:?} vs engine {} paths",
                    s, d, flat.map(|p| p.delay_ms()), got.len()
                );
            }
        }
    }

    #[test]
    fn engine_never_beats_flat_yen_and_respects_landmark_bound(g in arb_connected(10, 12)) {
        let eng = PartitionedPathEngine::build(&g, &small_config());
        for s in g.nodes() {
            for d in g.nodes() {
                if s == d {
                    continue;
                }
                let flat_best = KspGenerator::new(&g, s, d)
                    .next_path()
                    .expect("ring guarantees connectivity")
                    .delay_ms();
                let ps = eng.paths(s, d, 3);
                prop_assert!(!ps.is_empty(), "{:?}->{:?}: connected pair unanswered", s, d);
                let best = ps[0].delay_ms();
                prop_assert!(
                    best >= flat_best - 1e-9,
                    "{:?}->{:?}: engine {best} beats flat Yen {flat_best}", s, d
                );
                let bound = eng.landmark_bound_ms(s, d);
                if bound.is_finite() {
                    prop_assert!(
                        best <= bound + 1e-9,
                        "{:?}->{:?}: engine {best} exceeds landmark bound {bound}", s, d
                    );
                }
            }
        }
    }

    #[test]
    fn engine_paths_are_valid_loopless_sorted_and_distinct(g in arb_connected(10, 12)) {
        let eng = PartitionedPathEngine::build(&g, &small_config());
        for s in g.nodes() {
            for d in g.nodes().skip(1) {
                if s == d {
                    continue;
                }
                let ps = eng.paths(s, d, 4);
                let mut prev = 0.0f64;
                let mut seen = std::collections::HashSet::new();
                for p in &ps {
                    prop_assert_eq!(p.src(), s);
                    prop_assert_eq!(p.dst(), d);
                    prop_assert!(p.validate(&g).is_ok(), "invalid walk {:?}->{:?}", s, d);
                    let nodes = p.nodes(&g);
                    let mut sorted = nodes.clone();
                    sorted.sort();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), nodes.len(), "loop in {:?}->{:?}", s, d);
                    prop_assert!(p.delay_ms() >= prev - 1e-12, "unsorted {:?}->{:?}", s, d);
                    prev = p.delay_ms();
                    prop_assert!(seen.insert(p.links().to_vec()), "duplicate {:?}->{:?}", s, d);
                }
            }
        }
    }

    #[test]
    fn cross_leaf_queries_materialize_no_pair_state(g in arb_connected(12, 10)) {
        // The scale contract: cross-leaf traffic must never touch a leaf
        // cache's per-pair Yen state, no matter how many queries run.
        let eng = PartitionedPathEngine::build(&g, &small_config());
        for s in g.nodes() {
            for d in g.nodes() {
                if s == d || eng.same_leaf(s, d) {
                    continue;
                }
                let _ = eng.paths(s, d, 3);
            }
        }
        prop_assert_eq!(eng.cached_pairs(), 0);
    }
}
