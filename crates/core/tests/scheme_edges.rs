//! Edge cases across the routing schemes: degenerate matrices, tolerance
//! boundaries, configuration extremes.

use lowlat_core::eval::PlacementEval;
use lowlat_core::pathset::PathCache;
use lowlat_core::schemes::b4::{B4Config, B4Routing};
use lowlat_core::schemes::latopt::LatencyOptimal;
use lowlat_core::schemes::ldr::Ldr;
use lowlat_core::schemes::minmax::MinMaxRouting;
use lowlat_core::schemes::mpls::MplsAutoBandwidth;
use lowlat_core::schemes::sp::ShortestPathRouting;
use lowlat_core::schemes::RoutingScheme;
use lowlat_netgraph::NodeId;
use lowlat_tmgen::{Aggregate, TrafficMatrix};
use lowlat_topology::{GeoPoint, Topology, TopologyBuilder};

fn line3() -> Topology {
    let mut b = TopologyBuilder::new("line3");
    let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
    let m = b.add_pop("M", GeoPoint::new(40.5, -97.0));
    let z = b.add_pop("Z", GeoPoint::new(41.0, -94.0));
    b.connect_with_delay(a, m, 1.0, 100.0);
    b.connect_with_delay(m, z, 1.0, 100.0);
    b.build()
}

fn tm1(v: f64) -> TrafficMatrix {
    TrafficMatrix::new(vec![Aggregate {
        src: NodeId(0),
        dst: NodeId(2),
        volume_mbps: v,
        flow_count: 1,
    }])
}

#[test]
fn exact_capacity_load_fits() {
    // Load == capacity exactly: within CONGESTION_TOL, must count as fit.
    let topo = line3();
    let tm = tm1(100.0);
    let pl = ShortestPathRouting.place_on(&topo, &tm).unwrap();
    let ev = PlacementEval::evaluate(&topo, &tm, &pl);
    assert!(ev.fits(), "exact fill is not congestion");
    assert!((ev.max_utilization() - 1.0).abs() < 1e-12);
}

#[test]
fn single_path_network_all_schemes_agree() {
    // Only one path exists: every scheme must produce the same placement.
    let topo = line3();
    let tm = tm1(42.0);
    let schemes: Vec<Box<dyn RoutingScheme>> = vec![
        Box::new(ShortestPathRouting),
        Box::new(B4Routing::default()),
        Box::new(MplsAutoBandwidth::default()),
        Box::new(MinMaxRouting::unrestricted()),
        Box::new(LatencyOptimal::default()),
        Box::new(Ldr::default()),
    ];
    for s in schemes {
        let pl = s.place_on(&topo, &tm).unwrap();
        let ev = PlacementEval::evaluate(&topo, &tm, &pl);
        assert!((ev.latency_stretch() - 1.0).abs() < 1e-9, "{}", s.name());
        assert_eq!(pl.aggregate(0).splits.iter().filter(|(_, x)| *x > 1e-9).count(), 1);
    }
}

#[test]
fn empty_matrix_handled_by_lp_schemes() {
    let topo = line3();
    let tm = TrafficMatrix::new(vec![]);
    for s in [
        Box::new(LatencyOptimal::default()) as Box<dyn RoutingScheme>,
        Box::new(MinMaxRouting::unrestricted()),
        Box::new(Ldr::default()),
        Box::new(ShortestPathRouting) as Box<dyn RoutingScheme>,
    ] {
        let pl = s.place_on(&topo, &tm).unwrap();
        assert!(pl.per_aggregate().is_empty(), "{}", s.name());
    }
}

#[test]
fn b4_with_max_paths_one_is_sp_with_overflow() {
    let mut b = TopologyBuilder::new("two");
    let a = b.add_pop("A", GeoPoint::new(40.0, -100.0));
    let m = b.add_pop("M", GeoPoint::new(41.0, -97.0));
    let n = b.add_pop("N", GeoPoint::new(39.0, -97.0));
    let z = b.add_pop("Z", GeoPoint::new(40.0, -94.0));
    b.connect_with_delay(a, m, 1.0, 100.0);
    b.connect_with_delay(m, z, 1.0, 100.0);
    b.connect_with_delay(a, n, 3.0, 100.0);
    b.connect_with_delay(n, z, 3.0, 100.0);
    let topo = b.build();
    let tm = TrafficMatrix::new(vec![Aggregate {
        src: NodeId(0),
        dst: NodeId(3),
        volume_mbps: 150.0,
        flow_count: 1,
    }]);
    let pl = B4Routing::new(B4Config { max_paths: 1, ..Default::default() })
        .place_on(&topo, &tm)
        .unwrap();
    let ev = PlacementEval::evaluate(&topo, &tm, &pl);
    // With one path allowed, the 150 lands on the 100-capacity short path.
    assert!(!ev.fits());
    assert!((ev.latency_stretch() - 1.0).abs() < 1e-9);
}

#[test]
fn reverse_direction_independence() {
    // Forward congestion must not mark the reverse-direction pair congested
    // (directionality, the crux of the Figure-5 example).
    let topo = line3();
    let tm = TrafficMatrix::new(vec![
        Aggregate { src: NodeId(0), dst: NodeId(2), volume_mbps: 150.0, flow_count: 1 },
        Aggregate { src: NodeId(2), dst: NodeId(0), volume_mbps: 10.0, flow_count: 1 },
    ]);
    let pl = ShortestPathRouting.place_on(&topo, &tm).unwrap();
    let ev = PlacementEval::evaluate(&topo, &tm, &pl);
    assert!((ev.congested_pair_fraction() - 0.5).abs() < 1e-9, "only the forward pair");
}

#[test]
fn path_cache_shared_across_schemes() {
    // The Figure-15 deployment mode: one cache serving several schemes.
    let topo = line3();
    let cache = PathCache::new(topo.graph());
    let tm = tm1(10.0);
    let _ = ShortestPathRouting.place(&cache, &tm).unwrap();
    let _ = B4Routing::default().place(&cache, &tm).unwrap();
    let _ = Ldr::default().place(&cache, &tm).unwrap();
    assert!(cache.cached_count(NodeId(0), NodeId(2)) >= 1);
}

#[test]
fn zero_headroom_ldr_equals_latopt() {
    let topo = line3();
    let tm = tm1(60.0);
    let cfg = lowlat_core::schemes::ldr::LdrConfig { static_headroom: 0.0, ..Default::default() };
    let ldr = Ldr::new(cfg).place_on(&topo, &tm).unwrap();
    let lo = LatencyOptimal::default().place_on(&topo, &tm).unwrap();
    let (e1, e2) =
        (PlacementEval::evaluate(&topo, &tm, &ldr), PlacementEval::evaluate(&topo, &tm, &lo));
    assert!((e1.latency_stretch() - e2.latency_stretch()).abs() < 1e-9);
}
